"""Scale benchmark: the flat-array core on 100k–1M-node synthetics.

Builds the seeded synthetic generators (``repro.circuits.synthetic``)
at large node counts and measures the bulk paths the struct-of-arrays
kernel exists for, writing ``BENCH_scale.json`` at the repository root:

* **construction** — ``add_gates_bulk`` vs the per-call
  ``add_gate`` loop on the same netlist spec (nodes/s each, speedup);
* **peak memory** — tracemalloc peak during bulk construction;
* **sweep** — ``sweep()`` (clone + free-list compact) wall time;
* **simulation** — the gate-grouped kernel vs the per-node
  ``simulate_nodewise`` loop at width 64, warm (schedule built),
  best-of-``repeats`` (nodes/s each, speedup);
* **cut enumeration** (ratchet circuit only) — the flat-array
  ``enumerate_cuts`` kernel vs ``enumerate_cuts_reference`` at k=3,
  plus ``CutDatabase.nbytes()`` flat-storage memory;
* **rewrite sweep** (ratchet circuit only) — the priority-queue
  ``refactor`` kernel vs the seed ``refactor_reference`` single sweep
  at cut size 4 (the oracle side is timed once — it is the slow path
  the ratio exists to retire);
* **numpy simulation** (when numpy is importable) — the opt-in
  vectorised uint64 lane vs the big-int kernel, reported without a
  floor: measured, the big-int kernel wins at width 64 and the lane
  stays an explicit ``engine="numpy"`` opt-in.

Timings are best-of-N *within one process*, so the speedup ratios are
machine-independent; with ``--ratchet`` (the CI perf-smoke mode) the
100k-node datapath must hold **bulk construction >= 2x per-call**,
**grouped simulation >= 1.5x per-node**, **cut enumeration >= 2x
reference** and **rewrite sweep >= 2x reference** or the run exits
non-zero.  Kernel invariant failures always exit non-zero.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py             # + 1M run
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --ratchet
"""

from __future__ import annotations

import argparse
import gc
import platform
import sys
import time
import tracemalloc
from pathlib import Path

from repro.circuits.synthetic import build_synthetic
from repro.errors import NetworkError
from repro.io.json_report import dump_json_report
from repro.network import (
    Gate,
    LogicNetwork,
    enumerate_cuts,
    enumerate_cuts_reference,
    refactor,
    refactor_reference,
    simulate,
    simulate_nodewise,
    sweep,
)
from repro.network.simulation import random_patterns
from repro.util import have_numpy

REPO_ROOT = Path(__file__).resolve().parent.parent

#: construction-ratchet floor (bulk vs per-call nodes/s)
MIN_CONSTRUCTION_SPEEDUP = 2.0
#: simulation-ratchet floor (grouped vs per-node nodes/s)
MIN_SIMULATION_SPEEDUP = 1.5
#: cut-enumeration-ratchet floor (flat kernel vs reference nodes/s)
MIN_CUT_ENUM_SPEEDUP = 2.0
#: rewrite-sweep-ratchet floor (queue kernel vs reference nodes/s)
MIN_REWRITE_SPEEDUP = 2.0
#: the circuit the ratchet is pinned to
RATCHET_CIRCUIT = "datapath_100k"

SIM_WIDTH = 64
CUT_K = 3
REWRITE_CUT_SIZE = 4


def _best_of(fn, repeats):
    """Min-of-N with the collector paused, so GC pauses on the large
    transient buffers don't turn the within-process ratios into noise."""
    best = None
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            dt = time.perf_counter() - t0
        finally:
            gc.enable()
        if best is None or dt < best:
            best = dt
    return best, result


def _spec_of(net: LogicNetwork):
    """The (gate, fanins) replay spec of a built network."""
    return [(net.gate(n), net.fanin(n)) for n in range(2, net.num_nodes())]


def _per_call_build(spec):
    out = LogicNetwork("replay")
    for gate, fins in spec:
        if not fins and gate is Gate.PI:
            out.add_pi()
        else:
            out.add_gate(gate, fins)
    return out


def _bulk_build(spec):
    out = LogicNetwork("replay")
    out.add_gates_bulk(spec)
    return out


def bench_circuit(name, scale, repeats, failures):
    net = build_synthetic(name, scale)
    spec = _spec_of(net)
    n = len(spec)

    bulk_s, bulk_net = _best_of(lambda: _bulk_build(spec), repeats)
    per_call_s, per_call_net = _best_of(lambda: _per_call_build(spec), repeats)
    if not (
        bulk_net.gates == per_call_net.gates
        and bulk_net.fanins == per_call_net.fanins
    ):
        failures.append(f"{name}: bulk and per-call construction diverge")
    try:
        bulk_net.check_invariants()
    except NetworkError as exc:
        failures.append(f"{name}: {exc}")

    tracemalloc.start()
    _bulk_build(spec)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    t0 = time.perf_counter()
    swept, _nm = sweep(net)
    sweep_s = time.perf_counter() - t0
    if swept.num_nodes() != net.num_nodes():
        # every generator binds its sinks as POs, so nothing is dead
        failures.append(f"{name}: sweep dropped nodes on a fully live net")

    pats = random_patterns(len(net.pis), SIM_WIDTH, seed=7)
    # warm both paths: grouped builds its schedule, nodewise its tuples
    grouped0 = simulate(net, pats, SIM_WIDTH)
    nodewise0 = simulate_nodewise(net, pats, SIM_WIDTH)
    if grouped0 != nodewise0:
        failures.append(f"{name}: grouped simulation diverges from nodewise")
    sim_g_s, _ = _best_of(lambda: simulate(net, pats, SIM_WIDTH), repeats)
    sim_n_s, _ = _best_of(
        lambda: simulate_nodewise(net, pats, SIM_WIDTH), repeats
    )

    total = net.num_nodes()
    return {
        "nodes": total,
        "gates": net.num_gates(),
        "pis": len(net.pis),
        "pos": len(net.pos),
        "depth": net.depth(),
        "construction": {
            "bulk_seconds": round(bulk_s, 6),
            "bulk_nodes_per_s": round(n / bulk_s),
            "per_call_seconds": round(per_call_s, 6),
            "per_call_nodes_per_s": round(n / per_call_s),
            "bulk_speedup": round(per_call_s / bulk_s, 2),
        },
        "peak_memory_bytes": peak,
        "peak_bytes_per_node": round(peak / total, 1),
        "sweep_seconds": round(sweep_s, 6),
        "simulation": {
            "width": SIM_WIDTH,
            "grouped_seconds": round(sim_g_s, 6),
            "grouped_nodes_per_s": round(total / sim_g_s),
            "nodewise_seconds": round(sim_n_s, 6),
            "nodewise_nodes_per_s": round(total / sim_n_s),
            "grouped_speedup": round(sim_n_s / sim_g_s, 2),
        },
    }


def bench_rewrite_kernels(name, scale, repeats, failures, key):
    """Ratchet-circuit-only sections: the flat-array cut kernel and the
    priority-queue rewrite kernel vs their retained references, plus the
    opt-in numpy simulation lane.

    The oracle sides are timed once (min-of-1): they are the slow paths
    the ratios exist to retire, and a single cold run already bounds the
    ratio from below.  The kernel sides keep min-of-N but cap N so the
    rewrite section stays CI-sized.
    """
    from repro.network.cuts import cached_cut_database

    net = build_synthetic(name, scale)
    total = net.num_nodes()

    cut_rep = max(1, min(repeats, 3))
    cut_s, db = _best_of(lambda: enumerate_cuts(net, k=CUT_K), cut_rep)
    ref_cut_s, ref_db = _best_of(
        lambda: enumerate_cuts_reference(net, k=CUT_K), 1
    )
    kl, kb = db.raw_rows()
    rl, rb = ref_db.raw_rows()
    for node in range(total):
        if [(kl[i], kb[i]) for i in db.node_rows(node)] != [
            (rl[i], rb[i]) for i in ref_db.node_rows(node)
        ]:
            failures.append(
                f"{key}: flat cut kernel diverges from reference "
                f"at node {node}"
            )
            break
    nbytes = db.nbytes()

    # warm the epoch-shared cut database so neither timed side pays
    # enumeration (both kernels call cached_cut_database internally)
    cached_cut_database(net, k=REWRITE_CUT_SIZE)
    rw_rep = max(1, min(repeats, 2))
    rw_s, (rw_net, rw_accepted) = _best_of(
        lambda: refactor(net, cut_size=REWRITE_CUT_SIZE), rw_rep
    )
    ref_rw_s, (ref_net, ref_accepted) = _best_of(
        lambda: refactor_reference(net, cut_size=REWRITE_CUT_SIZE), 1
    )
    if rw_accepted != ref_accepted:
        failures.append(
            f"{key}: rewrite kernel accepted {rw_accepted} rewrites, "
            f"reference accepted {ref_accepted}"
        )
    elif not (
        rw_net.gates == ref_net.gates and rw_net.fanins == ref_net.fanins
    ):
        failures.append(
            f"{key}: rewrite kernel result diverges from reference"
        )

    sections = {
        "cut_enumeration": {
            "k": CUT_K,
            "kernel_seconds": round(cut_s, 6),
            "kernel_nodes_per_s": round(total / cut_s),
            "reference_seconds": round(ref_cut_s, 6),
            "reference_nodes_per_s": round(total / ref_cut_s),
            "speedup_vs_reference": round(ref_cut_s / cut_s, 2),
            "db_nbytes": nbytes,
            "db_bytes_per_node": round(nbytes / total, 1),
        },
        "rewrite_sweep": {
            "cut_size": REWRITE_CUT_SIZE,
            "accepted": rw_accepted,
            "kernel_seconds": round(rw_s, 6),
            "kernel_nodes_per_s": round(total / rw_s),
            "reference_seconds": round(ref_rw_s, 6),
            "reference_nodes_per_s": round(total / ref_rw_s),
            "speedup_vs_reference": round(ref_rw_s / rw_s, 2),
        },
    }

    if have_numpy():
        pats = random_patterns(len(net.pis), SIM_WIDTH, seed=7)
        py0 = simulate(net, pats, SIM_WIDTH, engine="python")
        np0 = simulate(net, pats, SIM_WIDTH, engine="numpy")
        if py0 != np0:
            failures.append(
                f"{key}: numpy simulation lane diverges from python kernel"
            )
        py_s, _ = _best_of(
            lambda: simulate(net, pats, SIM_WIDTH, engine="python"), repeats
        )
        np_s, _ = _best_of(
            lambda: simulate(net, pats, SIM_WIDTH, engine="numpy"), repeats
        )
        sections["numpy_simulation"] = {
            "available": True,
            "width": SIM_WIDTH,
            "python_seconds": round(py_s, 6),
            "numpy_seconds": round(np_s, 6),
            # reported, not ratcheted: the big-int kernel wins at width
            # 64 and the numpy lane stays an explicit opt-in
            "numpy_speedup": round(py_s / np_s, 2),
        }
    else:
        sections["numpy_simulation"] = {"available": False}

    return sections


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: skip the 1M-node run",
    )
    parser.add_argument(
        "--ratchet", action="store_true",
        help=f"fail if the {RATCHET_CIRCUIT} speedups fall below "
             f"{MIN_CONSTRUCTION_SPEEDUP}x construction / "
             f"{MIN_SIMULATION_SPEEDUP}x simulation / "
             f"{MIN_CUT_ENUM_SPEEDUP}x cut enumeration / "
             f"{MIN_REWRITE_SPEEDUP}x rewrite sweep",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_scale.json"),
        help="output JSON path (default: BENCH_scale.json at repo root)",
    )
    args = parser.parse_args(argv)

    runs = [
        ("datapath_100k", "datapath", 100_000),
        ("cascade_100k", "cascade", 100_000),
    ]
    if not args.quick:
        runs.append(("datapath_1m", "datapath", 1_000_000))

    failures: list = []
    circuits = {}
    for key, gen, scale in runs:
        circuits[key] = bench_circuit(gen, scale, args.repeats, failures)
        c = circuits[key]
        print(
            f"{key:<14} {c['nodes']:>9,} nodes | "
            f"build bulk {c['construction']['bulk_nodes_per_s']:>9,}/s "
            f"({c['construction']['bulk_speedup']}x per-call) | "
            f"sim grouped {c['simulation']['grouped_nodes_per_s']:>10,}/s "
            f"({c['simulation']['grouped_speedup']}x nodewise) | "
            f"peak {c['peak_memory_bytes'] / 1e6:.1f} MB"
        )

    gen, scale = next(
        (g, s) for key, g, s in runs if key == RATCHET_CIRCUIT
    )
    circuits[RATCHET_CIRCUIT].update(
        bench_rewrite_kernels(
            gen, scale, args.repeats, failures, RATCHET_CIRCUIT
        )
    )
    ce = circuits[RATCHET_CIRCUIT]["cut_enumeration"]
    rw = circuits[RATCHET_CIRCUIT]["rewrite_sweep"]
    ns = circuits[RATCHET_CIRCUIT]["numpy_simulation"]
    print(
        f"{RATCHET_CIRCUIT:<14} kernels | "
        f"cuts k={ce['k']} {ce['kernel_nodes_per_s']:>7,}/s "
        f"({ce['speedup_vs_reference']}x reference, "
        f"db {ce['db_nbytes'] / 1e6:.1f} MB) | "
        f"rewrite {rw['kernel_nodes_per_s']:>7,}/s "
        f"({rw['speedup_vs_reference']}x reference, "
        f"{rw['accepted']} accepted) | "
        + (
            f"numpy sim {ns['numpy_speedup']}x python"
            if ns["available"]
            else "numpy absent"
        )
    )

    ratchet = {
        "circuit": RATCHET_CIRCUIT,
        "min_construction_speedup": MIN_CONSTRUCTION_SPEEDUP,
        "min_simulation_speedup": MIN_SIMULATION_SPEEDUP,
        "min_cut_enumeration_speedup": MIN_CUT_ENUM_SPEEDUP,
        "min_rewrite_speedup": MIN_REWRITE_SPEEDUP,
        "construction_speedup": circuits[RATCHET_CIRCUIT]["construction"][
            "bulk_speedup"
        ],
        "simulation_speedup": circuits[RATCHET_CIRCUIT]["simulation"][
            "grouped_speedup"
        ],
        "cut_enumeration_speedup": ce["speedup_vs_reference"],
        "rewrite_speedup": rw["speedup_vs_reference"],
    }
    ratchet_failures = []
    if ratchet["construction_speedup"] < MIN_CONSTRUCTION_SPEEDUP:
        ratchet_failures.append(
            f"bulk construction {ratchet['construction_speedup']}x "
            f"< {MIN_CONSTRUCTION_SPEEDUP}x per-call"
        )
    if ratchet["simulation_speedup"] < MIN_SIMULATION_SPEEDUP:
        ratchet_failures.append(
            f"grouped simulation {ratchet['simulation_speedup']}x "
            f"< {MIN_SIMULATION_SPEEDUP}x nodewise"
        )
    if ratchet["cut_enumeration_speedup"] < MIN_CUT_ENUM_SPEEDUP:
        ratchet_failures.append(
            f"cut enumeration {ratchet['cut_enumeration_speedup']}x "
            f"< {MIN_CUT_ENUM_SPEEDUP}x reference"
        )
    if ratchet["rewrite_speedup"] < MIN_REWRITE_SPEEDUP:
        ratchet_failures.append(
            f"rewrite sweep {ratchet['rewrite_speedup']}x "
            f"< {MIN_REWRITE_SPEEDUP}x reference"
        )
    ratchet["ok"] = not ratchet_failures

    report = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "repeats": args.repeats,
        },
        "circuits": circuits,
        "ratchet": ratchet,
        "invariants_ok": not failures,
        "invariant_failures": failures,
    }
    dump_json_report(args.out, report)
    print(f"wrote {args.out}")

    if failures:
        print("SCALE KERNEL FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if args.ratchet and ratchet_failures:
        print("PERF RATCHET FAILURES:", file=sys.stderr)
        for f in ratchet_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
