"""Microbenchmark suite for the incremental schedule kernel (§II-B/C).

Measures the axes the scheduling refactor targets and writes the results
to ``BENCH_schedule.json`` at the repository root, extending the perf
trajectory started by ``bench_kernel.py``:

* **heuristic sweeps** — wall time and moves evaluated of the
  delta-evaluated kernel heuristic vs the retained seed scan-and-rebuild
  reference (``assign_stages_rescan_reference``), measured **in the same
  run** on the same netlists, with the speedup per circuit;
* **delta evaluation** — mean cost of one ``state_if_moved`` probe vs
  one seed-style ``local_cost`` rescan on the largest registry netlist;
* **ILP model build** — time to build the §II-B model on the
  :class:`~repro.solvers.model.SolverModel` IR and lower it to the MILP
  backend (small circuit, the exact path of ``method="auto"``).

Contract (the CI gate): *invariant* failures exit non-zero —

* the kernel heuristic must produce the **same stage vector** as the
  seed reference on every measured circuit;
* the kernel's maintained cost terms must match a from-scratch
  recomputation after the sweeps (``StageSchedule.check_invariants``).

Timing numbers are recorded, never asserted: wall-clock noise must not
fail a pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_schedule.py            # paper scale
    PYTHONPATH=src python benchmarks/bench_schedule.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.circuits.registry import TABLE1_ORDER, build
from repro.core.phase_assignment import (
    assign_stages_heuristic,
    assign_stages_rescan_reference,
    build_ilp_model,
)
from repro.core.schedule import StageSchedule
from repro.errors import TimingError
from repro.io.json_report import dump_json_report
from repro.pipeline import Pipeline
from repro.pipeline.context import FlowContext

REPO_ROOT = Path(__file__).resolve().parent.parent


def mapped_netlist(name: str, preset: str):
    """Standard pipeline up to (excluding) phase assignment."""
    pipe = Pipeline.standard(n_phases=4, use_t1=True, verify="none")
    ctx = FlowContext(source=build(name, preset), name=name, verify="none")
    for p in pipe.passes:
        if p.name == "phase_assign":
            break
        ctx = p.run(ctx) or ctx
    return ctx.netlist


def bench_heuristic(circuits, preset, failures):
    out = {}
    for name in circuits:
        nl_kernel = mapped_netlist(name, preset)
        nl_seed = mapped_netlist(name, preset)

        t0 = time.perf_counter()
        rep_kernel = assign_stages_heuristic(nl_kernel)
        t_kernel = time.perf_counter() - t0

        t0 = time.perf_counter()
        rep_seed = assign_stages_rescan_reference(nl_seed)
        t_seed = time.perf_counter() - t0

        got = [c.stage for c in nl_kernel.cells]
        want = [c.stage for c in nl_seed.cells]
        if got != want:
            # Deliberate pin: from ASAP starts the kernel currently
            # reproduces the seed sweeps exactly on every registry
            # circuit.  An *intentional* scheduling change that breaks
            # this (e.g. a circuit finally exercising the live-boundary
            # fix) must update this gate together with the pinned
            # registry metrics in tests/pipeline/test_registry_pinned.py.
            failures.append(
                f"heuristic:{name}: kernel stage vector diverged from the "
                f"seed reference (if intentional, update this gate and "
                f"the pinned registry metrics together)"
            )
        try:
            StageSchedule(
                nl_kernel, stages=[c.stage for c in nl_kernel.cells]
            ).check_invariants()
        except TimingError as exc:
            failures.append(f"invariants:{name}: {exc}")
        out[name] = {
            "cells": len(nl_kernel.cells),
            "kernel_seconds": round(t_kernel, 5),
            "seed_rescan_seconds": round(t_seed, 5),
            "speedup_vs_seed": round(t_seed / t_kernel, 2) if t_kernel else None,
            "kernel_moves_evaluated": rep_kernel.moves_evaluated,
            "seed_moves_evaluated": rep_seed.moves_evaluated,
            "moves_applied": rep_kernel.moves_applied,
            "sweeps": rep_kernel.sweeps_run,
            "final_cost": rep_kernel.final_cost,
        }
    return out


def bench_delta_probe(preset, failures):
    """One delta probe vs one seed-style local rescan, biggest circuit."""
    name = "multiplier"
    nl = mapped_netlist(name, preset)
    kernel = StageSchedule(nl)
    st = nl.structure()
    movable = [i for i in range(len(nl.cells)) if st.clocked[i]]
    probes = [(x, kernel.stages[x] + 1 + (x % 3)) for x in movable]

    t0 = time.perf_counter()
    for x, s in probes:
        kernel.state_if_moved(x, s)
    t_delta = (time.perf_counter() - t0) / len(probes)

    # the seed priced the same probe by re-summing every incident term
    from repro.core.phase_assignment import _net_cost, t1_stagger_cost

    stages = kernel.stages
    boundary = kernel.boundary()

    def local_rescan(x):
        total = 0.0
        affected = set(st.signals_of_cell[x])
        affected.update(st.fanin_signals[x])
        for sig in affected:
            cons = st.nets.get(sig)
            if cons is None:
                continue
            b = boundary if sig in st.po_signals else None
            cost = _net_cost(
                stages[sig[0]], [stages[c] for c in cons], st.n, b
            )
            if cost == float("inf"):
                return cost
            total += cost
        for t in st.t1_consumers[x]:
            total += t1_stagger_cost(
                stages[t], [stages[d] for d in st.fanin_drivers[t]], st.n
            )
        return total

    t0 = time.perf_counter()
    for x, _s in probes:
        local_rescan(x)
    t_rescan = (time.perf_counter() - t0) / len(probes)
    return {
        "circuit": name,
        "probes": len(probes),
        "delta_seconds_per_probe": round(t_delta, 9),
        "rescan_seconds_per_probe": round(t_rescan, 9),
        "speedup": round(t_rescan / t_delta, 2) if t_delta else None,
    }


def bench_ilp_model_build(preset):
    """IR build time of the §II-B exact model on a small netlist."""
    nl = mapped_netlist("adder" if preset == "ci" else "c6288", "ci")
    t0 = time.perf_counter()
    model, sigma, k_vars = build_ilp_model(nl)
    t_build = time.perf_counter() - t0
    return {
        "cells": len(nl.cells),
        "variables": len(model.vars),
        "constraints": len(model.constraints),
        "build_seconds": round(t_build, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: down-scaled circuits",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_schedule.json"),
        help="output JSON path (default: BENCH_schedule.json at repo root)",
    )
    args = parser.parse_args(argv)

    preset = "ci" if args.quick else "paper"
    circuits = list(TABLE1_ORDER)
    failures: list = []
    report = {
        "meta": {
            "preset": preset,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "heuristic": bench_heuristic(circuits, preset, failures),
        "delta_probe": bench_delta_probe(preset, failures),
        "ilp_model_build": bench_ilp_model_build(preset),
        "invariants_ok": not failures,
        "invariant_failures": failures,
    }

    dump_json_report(args.out, report)
    print(f"wrote {args.out}")
    for name, entry in report["heuristic"].items():
        print(
            f"schedule {name:<11} kernel {entry['kernel_seconds']:.3f}s  "
            f"seed {entry['seed_rescan_seconds']:.3f}s  "
            f"({entry['speedup_vs_seed']}x, "
            f"{entry['kernel_moves_evaluated']} moves evaluated)"
        )
    probe = report["delta_probe"]
    print(
        f"delta probe on {probe['circuit']}: "
        f"{probe['delta_seconds_per_probe']:.2e}s vs rescan "
        f"{probe['rescan_seconds_per_probe']:.2e}s ({probe['speedup']}x)"
    )
    if failures:
        print("SCHEDULE KERNEL INVARIANT FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
