"""Microbenchmark suite for the mapping-layer performance kernel (§II-A).

Measures the axes the mapping refactor targets and writes the results to
``BENCH_mapping.json`` at the repository root, extending the perf
trajectory of ``bench_kernel.py`` / ``bench_schedule.py``:

* **NPN matching** — per-call cost of the table-driven
  :func:`~repro.network.npn.npn_canon` vs the retained enumerating
  oracle (:func:`~repro.network.npn.npn_canon_enum`) over all 256
  3-input functions;
* **cut enumeration** — the allocation-light int kernel
  (:func:`~repro.network.cuts.enumerate_cuts`) vs the seed
  per-candidate implementation
  (:func:`~repro.network.cuts.enumerate_cuts_reference`), same run,
  same networks;
* **t1-detect + CEC segment** — the full kernel path
  (``detect_and_replace`` with the epoch-cached cut database + the
  fast-path CEC driver) vs the seed path (reference enumeration and
  candidate search + the seed driver's CEC engine at matching
  escalation: single-pass exhaustive at small PI counts, the 16-round
  narrow-width random engine above), per circuit, with the speedup the
  acceptance gate asks for on the largest registry circuits;
* **cut database caching** — cost of a second ``find_candidates`` on an
  unmutated network (one epoch-cache hit) vs the first.

Contract (the CI gate): *invariant* failures exit non-zero —

* the kernel cut sets must be bit-identical to the reference
  enumeration on every measured circuit;
* kernel candidates (found / used / gains) must be bit-identical to the
  reference candidate search;
* the NPN tables must agree with the enumerating oracle on the complete
  k=3 function space;
* both CEC engines must certify the substitution.

Timing numbers are recorded, never asserted: wall-clock noise must not
fail a pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_mapping.py            # paper scale
    PYTHONPATH=src python benchmarks/bench_mapping.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from pathlib import Path

from repro.circuits.registry import build
from repro.core.t1_detection import (
    apply_candidates,
    detect_and_replace,
    find_candidates,
    find_candidates_reference,
    select_candidates,
)
from repro.network.cuts import (
    cached_cut_database,
    enumerate_cuts,
    enumerate_cuts_reference,
)
from repro.network.equivalence import (
    EXHAUSTIVE_PI_LIMIT,
    check_equivalence,
    exhaustive_equivalence,
    simulate_equivalence,
)
from repro.network.npn import npn_canon, npn_canon_enum
from repro.network.truth_table import TruthTable
from repro.io.json_report import dump_json_report
from repro.pipeline.context import FlowContext
from repro.pipeline.passes.decompose import DecomposePass

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the acceptance gate's "largest registry circuits"
SEGMENT_CIRCUITS = ("sin", "multiplier", "log2")


def decomposed_network(name: str, preset: str):
    """Standard pipeline up to (excluding) T1 detection."""
    ctx = FlowContext(source=build(name, preset), name=name, verify="none")
    ctx = DecomposePass().run(ctx) or ctx
    return ctx.network


def bench_npn(failures):
    """Table lookups vs the enumerating oracle, all 256 k=3 functions."""
    tables = [TruthTable(bits, 3) for bits in range(256)]
    npn_canon(tables[0])  # build the table outside the timed region

    t0 = time.perf_counter()
    reps = 50
    for _ in range(reps):
        for tt in tables:
            npn_canon(tt)
    t_table = (time.perf_counter() - t0) / (reps * len(tables))

    t0 = time.perf_counter()
    for tt in tables:
        got = npn_canon(tt)
        want = npn_canon_enum(tt)
        if (got[0].bits, got[1]) != (want[0].bits, want[1]):
            failures.append(f"npn:{tt.bits}: table diverged from oracle")
    t_enum = (time.perf_counter() - t0) / len(tables)
    return {
        "functions": len(tables),
        "table_seconds_per_call": round(t_table, 9),
        "enum_seconds_per_call": round(t_enum, 9),
        "speedup": round(t_enum / t_table, 1) if t_table else None,
    }


def bench_cuts(circuits, preset, failures, repeats=3):
    """Kernel vs seed cut enumeration, min-of-N with the collector paused.

    Same measurement discipline as :func:`bench_segment` (symmetric for
    both paths).  The PR 5 bench ran each path once with the collector
    live, so whichever enumeration happened to run while earlier
    circuits' large databases were still reachable got billed for the
    collections — that asymmetry, not the kernel, was the "multiplier
    regression" the PR 6 issue flagged.
    """
    import gc

    out = {}
    for name in circuits:
        net = decomposed_network(name, preset)
        net.topological_order()  # shared traversal out of the timed region

        def timed(fn):
            best = None
            result = None
            for _ in range(repeats):
                gc.collect()
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    result = fn()
                    dt = time.perf_counter() - t0
                finally:
                    gc.enable()
                best = dt if best is None else min(best, dt)
            return result, best

        db_kernel, t_kernel = timed(
            lambda: enumerate_cuts(net, k=3, cuts_per_node=8)
        )
        db_ref, t_ref = timed(
            lambda: enumerate_cuts_reference(net, k=3, cuts_per_node=8)
        )
        for node in range(net.num_nodes()):
            got = [(c.leaves, c.table.bits, c.signature) for c in db_kernel[node]]
            want = [(c.leaves, c.table.bits, c.signature) for c in db_ref[node]]
            if got != want:
                failures.append(
                    f"cuts:{name}: kernel cut set diverged at node {node}"
                )
                break
        out[name] = {
            "nodes": net.num_nodes(),
            "kernel_seconds": round(t_kernel, 5),
            "seed_reference_seconds": round(t_ref, 5),
            "speedup_vs_seed": round(t_ref / t_kernel, 2) if t_kernel else None,
        }
    return out


def bench_segment(circuits, preset, failures, repeats=3):
    """The acceptance-gate segment: t1 detection + post-substitution CEC.

    Both paths run ``repeats`` times with the garbage collector paused
    inside the timed region, and report the fastest run — the standard
    microbenchmark discipline (min-of-N, symmetric for both paths), so
    a stray collection or scheduler hiccup in the middle of a 0.3 s
    region does not masquerade as a slowdown of either path.
    """
    import gc

    out = {}
    for name in circuits:
        net = decomposed_network(name, preset)

        def run_seed():
            cands_ref = find_candidates_reference(net)
            sel_ref = select_candidates(cands_ref)
            net_ref, _ = apply_candidates(net, sel_ref)
            # mirror the seed driver's engine choice: exhaustive at a
            # small PI count (the ci-preset circuits), the 16-round
            # narrow random engine above it — so both paths always
            # compare like CEC engines
            if len(net.pis) <= EXHAUSTIVE_PI_LIMIT:
                cec_ref = exhaustive_equivalence(
                    net, net_ref, chunk_pis=EXHAUSTIVE_PI_LIMIT
                )
            else:
                cec_ref = simulate_equivalence(net, net_ref)
            return cands_ref, sel_ref, cec_ref

        def run_kernel():
            # fresh epoch-cache per attempt: the kernel path must pay
            # for its own enumeration, not reuse a previous attempt's
            if hasattr(net, "_cut_db_cache"):
                del net._cut_db_cache
            det = detect_and_replace(net)
            cec = check_equivalence(net, det.network, complete=False)
            return det, cec

        def timed(fn):
            best = None
            result = None
            for _ in range(repeats):
                gc.collect()
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    result = fn()
                    dt = time.perf_counter() - t0
                finally:
                    gc.enable()
                best = dt if best is None else min(best, dt)
            return result, best

        # seed path: reference cuts + reference candidate search + seed
        # greedy/apply + the seed driver's CEC engine
        (cands_ref, sel_ref, cec_ref), t_seed = timed(run_seed)

        # kernel path: epoch-cached int cut kernel + table-driven
        # matching + fast-path CEC
        (det, cec), t_kernel = timed(run_kernel)

        if not (cec.equivalent and cec_ref.equivalent):
            failures.append(f"segment:{name}: CEC refuted the substitution")
        if det.found != len(cands_ref) or det.used != len(sel_ref):
            failures.append(
                f"segment:{name}: kernel found/used "
                f"({det.found}/{det.used}) diverged from the seed reference "
                f"({len(cands_ref)}/{len(sel_ref)})"
            )
        got = [(c.leaves, c.polarity, c.gain, c.matches) for c in det.candidates]
        want = [(c.leaves, c.polarity, c.gain, c.matches) for c in cands_ref]
        if got != want:
            failures.append(
                f"segment:{name}: kernel candidate list diverged from the "
                f"seed reference"
            )
        out[name] = {
            "found": det.found,
            "used": det.used,
            "kernel_seconds": round(t_kernel, 5),
            "seed_seconds": round(t_seed, 5),
            "speedup_vs_seed": round(t_seed / t_kernel, 2) if t_kernel else None,
        }
    return out


def bench_cut_cache(preset, failures):
    """Epoch-cache hit vs cold enumeration inside find_candidates."""
    name = "multiplier"
    net = decomposed_network(name, preset)
    t0 = time.perf_counter()
    first = find_candidates(net)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = find_candidates(net)
    t_warm = time.perf_counter() - t0
    if [(c.leaves, c.gain) for c in first] != [(c.leaves, c.gain) for c in second]:
        failures.append("cut_cache: re-detection diverged on unmutated network")
    db = cached_cut_database(net)
    if db.epoch != net.epoch:
        failures.append("cut_cache: cached database epoch out of sync")
    return {
        "circuit": name,
        "cold_seconds": round(t_cold, 5),
        "cached_seconds": round(t_warm, 5),
        "speedup": round(t_cold / t_warm, 2) if t_warm else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: down-scaled circuits",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_mapping.json"),
        help="output JSON path (default: BENCH_mapping.json at repo root)",
    )
    parser.add_argument(
        "--gate-cuts", action="store_true",
        help="perf ratchet: fail if any cuts speedup_vs_seed drops "
        "below 1.0 (the PR 6 regression gate)",
    )
    args = parser.parse_args(argv)

    preset = "ci" if args.quick else "paper"
    failures: list = []
    cuts = bench_cuts(SEGMENT_CIRCUITS, preset, failures)
    if args.gate_cuts:
        for name, entry in cuts.items():
            speedup = entry["speedup_vs_seed"]
            if speedup is not None and speedup < 1.0:
                failures.append(
                    f"cuts:{name}: kernel slower than seed reference "
                    f"({speedup}x < 1.0)"
                )
    report = {
        "meta": {
            "preset": preset,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "npn": bench_npn(failures),
        "cuts": cuts,
        "t1_detect_cec_segment": bench_segment(SEGMENT_CIRCUITS, preset, failures),
        "cut_cache": bench_cut_cache(preset, failures),
        "invariants_ok": not failures,
        "invariant_failures": failures,
    }

    dump_json_report(args.out, report)
    print(f"wrote {args.out}")
    npn = report["npn"]
    print(
        f"npn canon: table {npn['table_seconds_per_call']:.2e}s vs enum "
        f"{npn['enum_seconds_per_call']:.2e}s ({npn['speedup']}x)"
    )
    for name, entry in report["cuts"].items():
        print(
            f"cuts    {name:<11} kernel {entry['kernel_seconds']:.3f}s  "
            f"seed {entry['seed_reference_seconds']:.3f}s  "
            f"({entry['speedup_vs_seed']}x)"
        )
    for name, entry in report["t1_detect_cec_segment"].items():
        print(
            f"segment {name:<11} kernel {entry['kernel_seconds']:.3f}s  "
            f"seed {entry['seed_seconds']:.3f}s  "
            f"({entry['speedup_vs_seed']}x, found {entry['found']}, "
            f"used {entry['used']})"
        )
    cache = report["cut_cache"]
    print(
        f"cut cache on {cache['circuit']}: cold {cache['cold_seconds']:.3f}s "
        f"vs cached {cache['cached_seconds']:.3f}s ({cache['speedup']}x)"
    )
    if failures:
        print("MAPPING KERNEL INVARIANT FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
