"""Ablation A3: heuristic vs exact ILP phase assignment.

The paper solves phase assignment with an ILP (OR-Tools); our scalable
flow uses coordinate descent over the true insertion cost.  On circuits
small enough for the exact branch-and-bound MILP, the heuristic must stay
within a few DFFs of the optimum of the paper's per-edge objective.
"""

import pytest

from repro.circuits import c7552_like, ripple_carry_adder
from repro.network.cleanup import strash
from repro.sfq import map_to_sfq
from repro.sfq.multiphase import edge_dffs
from repro.core.dff_insertion import insert_dffs
from repro.core.phase_assignment import (
    assign_stages_heuristic,
    assign_stages_ilp,
)


def _edge_objective(nl):
    total = 0
    for cell in nl.cells:
        if not cell.clocked:
            continue
        for sig in cell.fanins:
            total += edge_dffs(cell.stage - nl.cells[sig[0]].stage, nl.n_phases)
    return total


def _prepare(bits, n):
    net, _ = strash(ripple_carry_adder(bits))
    nl, _ = map_to_sfq(net, n_phases=n)
    return nl


@pytest.mark.parametrize("n", [1, 2, 4])
def test_ilp_phase_assignment(benchmark, n):
    benchmark.group = "ablation-ilp"
    nl = _prepare(3, n)
    benchmark.pedantic(assign_stages_ilp, args=(nl,), rounds=1, iterations=1)
    insert_dffs(nl)
    benchmark.extra_info.update({"n": n, "objective": _edge_objective(nl)})


@pytest.mark.parametrize("n", [1, 2, 4])
def test_heuristic_matches_ilp_objective(n):
    nl_i = _prepare(3, n)
    assign_stages_ilp(nl_i)
    opt = _edge_objective(nl_i)

    nl_h = _prepare(3, n)
    assign_stages_heuristic(nl_h, free_pi_phases=False)
    got = _edge_objective(nl_h)
    assert got <= opt + 2, f"heuristic {got} vs ILP optimum {opt}"


def test_heuristic_speed(benchmark):
    benchmark.group = "ablation-ilp"
    net, _ = strash(c7552_like(16))
    nl, _ = map_to_sfq(net, n_phases=4)
    benchmark.pedantic(
        assign_stages_heuristic, args=(nl,), rounds=1, iterations=1
    )
    insert_dffs(nl)
    benchmark.extra_info["dffs"] = nl.num_dffs()


def test_ilp_as_pass_replacement():
    """The exact assignment drops into the standard pipeline by name."""
    from repro.pipeline import IlpPhasePass, Pipeline

    pipe = Pipeline.standard(n_phases=4, use_t1=False, verify="none")
    exact = pipe.replace("phase_assign", IlpPhasePass())
    assert exact.names() == pipe.names()

    net, _ = strash(ripple_carry_adder(3))
    res = exact.run(net)
    assert res.timings["phase_assign"] > 0
    assert res.metrics.depth_cycles >= 1
