"""Microbenchmark suite for the incremental network kernel.

Measures the four axes the kernel refactor targets and writes the
results to ``BENCH_kernel.json`` at the repository root, so every PR
extends a measured perf trajectory instead of guessing:

* **construction** — node append throughput on the registry generators,
  plus a replay of each built netlist through ``add_gates_bulk`` vs the
  per-call ``add_gate`` loop (the two paths the flat-array core offers);
* **analysis caching** — cold vs warm ``topological_order``/``levels``
  (warm calls must be O(1) on an unchanged network);
* **substitute scaling** — mean cost of ``substitute`` on a small vs a
  16x larger network with identical per-node fanout.  With the
  maintained fanout index the ratio stays near 1; the old
  full-scan kernel scaled with network size;
* **cut enumeration / full flow** — the mapping hot loop and
  end-to-end ``Pipeline.standard`` wall time per registry circuit,
  with speedups against ``benchmarks/baseline_seed.json`` (the
  pre-refactor kernel) when that file is present;
* **rewrite loops** — the PR 6 priority-queue ``refactor`` kernel vs
  the retained seed sweep ``refactor_reference`` on every large
  registry circuit, pinned to identical accepted counts and an
  identical strashed result (an invariant, not a timing).

Kernel *invariant* failures (maintained indices diverging from a
from-scratch recomputation) exit non-zero — that is the CI contract.
Timing numbers are recorded, never asserted: wall-clock noise must not
fail a pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # paper scale
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.circuits.registry import TABLE1_ORDER, build
from repro.io.json_report import dump_json_report
from repro.errors import NetworkError
from repro.network import Gate, LogicNetwork, enumerate_cuts, refactor, balance
from repro.pipeline import Pipeline

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_seed.json"


def _check(net: LogicNetwork, where: str, failures: list) -> None:
    try:
        net.check_invariants()
    except NetworkError as exc:
        failures.append(f"{where}: {exc}")


def bench_construction(circuits, preset, failures):
    out = {}
    for name in circuits:
        t0 = time.perf_counter()
        net = build(name, preset=preset)
        dt = time.perf_counter() - t0
        _check(net, f"construction:{name}", failures)

        # replay the built netlist through both construction paths:
        # the per-call add_gate loop and the single add_gates_bulk call
        spec = [(net.gate(n), net.fanin(n)) for n in range(2, net.num_nodes())]
        t0 = time.perf_counter()
        per_call = LogicNetwork("replay")
        for gate, fins in spec:
            if not fins and gate is Gate.PI:
                per_call.add_pi()
            else:
                per_call.add_gate(gate, fins)
        dt_call = time.perf_counter() - t0
        t0 = time.perf_counter()
        bulk = LogicNetwork("replay")
        bulk.add_gates_bulk(spec)
        dt_bulk = time.perf_counter() - t0
        if bulk.gates != per_call.gates or bulk.fanins != per_call.fanins:
            failures.append(
                f"construction:{name}: bulk and per-call replays diverge"
            )
        _check(bulk, f"construction:{name}:bulk", failures)

        out[name] = {
            "nodes": net.num_nodes(),
            "seconds": round(dt, 6),
            "nodes_per_s": round(net.num_nodes() / dt) if dt > 0 else None,
            "per_call_seconds": round(dt_call, 6),
            "bulk_seconds": round(dt_bulk, 6),
            "bulk_speedup": round(dt_call / dt_bulk, 2) if dt_bulk else None,
        }
    return out


def bench_analysis_cache(circuits, preset, failures):
    out = {}
    for name in circuits:
        net = build(name, preset=preset)
        t0 = time.perf_counter()
        net.topological_order()
        net.levels()
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_iters = 100
        for _ in range(warm_iters):
            net.topological_order()
            net.levels()
        warm = (time.perf_counter() - t0) / warm_iters
        _check(net, f"analysis:{name}", failures)
        out[name] = {
            "nodes": net.num_nodes(),
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm, 9),
            "cache_speedup": round(cold / warm, 1) if warm > 0 else None,
        }
    return out


def _substitute_probe(n_stubs: int, failures) -> float:
    """Mean seconds per substitute on a network with ``2*n_stubs`` gates.

    Every substituted node has fanout exactly 1, so an O(fanout) kernel
    shows a flat cost as ``n_stubs`` grows; the old kernel scanned all
    fanin tuples per call and scaled linearly.
    """
    net = LogicNetwork("subst_probe")
    a, b, c = net.add_pi("a"), net.add_pi("b"), net.add_pi("c")
    xs = []
    for _ in range(n_stubs):
        x = net.add_and(a, b)
        y = net.add_or(x, c)
        net.add_po(y)
        xs.append(x)
    t0 = time.perf_counter()
    for x in xs:
        net.substitute(x, c)
    per_call = (time.perf_counter() - t0) / n_stubs
    _check(net, f"substitute:{n_stubs}", failures)
    return per_call


def bench_substitute(quick: bool, failures):
    small_n, large_n = (500, 8000) if quick else (2000, 32000)
    small = _substitute_probe(small_n, failures)
    large = _substitute_probe(large_n, failures)
    return {
        "small_network_gates": 2 * small_n,
        "large_network_gates": 2 * large_n,
        "small_seconds_per_call": round(small, 9),
        "large_seconds_per_call": round(large, 9),
        # ~1.0 for O(fanout); ~network-size ratio for the old O(n) scan
        "scaling_ratio": round(large / small, 2) if small > 0 else None,
    }


def bench_cut_enumeration(circuits, preset, failures):
    out = {}
    for name in circuits:
        net = build(name, preset=preset)
        t0 = time.perf_counter()
        db = enumerate_cuts(net, k=3, cuts_per_node=8)
        dt = time.perf_counter() - t0
        _check(net, f"cuts:{name}", failures)
        out[name] = {
            "nodes": net.num_nodes(),
            "seconds": round(dt, 6),
            "cuts": sum(len(db[n]) for n in net.nodes()),
        }
    return out


#: the large registry circuits the rewrite-loop gate runs on
REWRITE_CIRCUITS = {
    "paper": ("sin", "voter", "square", "multiplier", "log2"),
    "ci": ("adder",),
}


def bench_rewrite_loops(preset, failures, repeats=2):
    """Balance + the rewrite kernel vs the retained seed sweep.

    Per large registry circuit: ``refactor`` (the PR 6 priority-queue
    kernel) against ``refactor_reference`` (the seed topological sweep),
    min-of-N with the collector paused, the epoch cut cache and the ISOP
    memo cleared before every attempt so each run pays for its own
    enumeration.  Invariant (CI contract): identical accepted counts and
    an identical strashed result — the kernel is pinned bit-exact to the
    reference, so the speedup compares the same computation.
    """
    import gc

    from repro.network import refactor_reference
    from repro.network.isop import clear_sop_cache

    out = {}
    for name in REWRITE_CIRCUITS["ci" if preset == "ci" else "paper"]:
        net = build(name, preset=preset)

        t0 = time.perf_counter()
        balanced, _ = balance(net)
        t_balance = time.perf_counter() - t0
        _check(balanced, f"balance:{name}", failures)

        def timed(fn):
            best = None
            result = None
            for _ in range(repeats):
                if hasattr(net, "_cut_db_cache"):
                    del net._cut_db_cache
                clear_sop_cache()
                gc.collect()
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    result = fn()
                    dt = time.perf_counter() - t0
                finally:
                    gc.enable()
                best = dt if best is None else min(best, dt)
            return result, best

        (ref_net, ref_accepted), t_ref = timed(lambda: refactor_reference(net))
        (k_net, k_accepted), t_kernel = timed(lambda: refactor(net))
        _check(k_net, f"refactor:{name}", failures)

        if k_accepted != ref_accepted:
            failures.append(
                f"rewrite:{name}: kernel accepted {k_accepted} rewrites, "
                f"seed reference accepted {ref_accepted}"
            )
        if (
            k_net.gates != ref_net.gates
            or k_net.fanins != ref_net.fanins
            or k_net.pos != ref_net.pos
        ):
            failures.append(
                f"rewrite:{name}: kernel result diverged structurally "
                f"from the seed reference"
            )
        out[name] = {
            "nodes": net.num_nodes(),
            "balance_seconds": round(t_balance, 6),
            "refactor_accepted": k_accepted,
            "kernel_seconds": round(t_kernel, 5),
            "seed_reference_seconds": round(t_ref, 5),
            "speedup_vs_seed": round(t_ref / t_kernel, 2) if t_kernel else None,
        }
    return out


def bench_flow(circuits, preset, failures, baseline, repeats=3):
    out = {}
    base_flows = (baseline or {}).get("flow", {}).get(preset, {})
    for name in circuits:
        best = None
        ctx = None
        for _ in range(repeats):
            net = build(name, preset=preset)
            t0 = time.perf_counter()
            ctx = Pipeline.standard(n_phases=4, use_t1=True).run(net)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        _check(ctx.network, f"flow:{name}", failures)
        entry = {
            "seconds": round(best, 4),
            "metrics": ctx.metrics.as_dict(),
        }
        if name in base_flows:
            entry["seed_kernel_seconds"] = base_flows[name]
            entry["speedup_vs_seed"] = round(base_flows[name] / best, 2)
        out[name] = entry
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: down-scaled circuits, smaller probes",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_kernel.json"),
        help="output JSON path (default: BENCH_kernel.json at repo root)",
    )
    args = parser.parse_args(argv)

    preset = "ci" if args.quick else "paper"
    circuits = list(TABLE1_ORDER)
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    failures: list = []
    report = {
        "meta": {
            "preset": preset,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "construction": bench_construction(circuits, preset, failures),
        "analysis_cache": bench_analysis_cache(circuits, preset, failures),
        "substitute": bench_substitute(args.quick, failures),
        "cut_enumeration": bench_cut_enumeration(circuits, preset, failures),
        "rewrite_loops": bench_rewrite_loops(preset, failures),
        "flow": bench_flow(circuits, preset, failures, baseline),
        "invariants_ok": not failures,
        "invariant_failures": failures,
    }

    dump_json_report(args.out, report)
    print(f"wrote {args.out}")
    sub = report["substitute"]
    print(
        f"substitute scaling ratio ({sub['large_network_gates']} vs "
        f"{sub['small_network_gates']} gates): {sub['scaling_ratio']}"
    )
    for name, entry in report["rewrite_loops"].items():
        print(
            f"rewrite {name:<11} kernel {entry['kernel_seconds']:.3f}s  "
            f"seed {entry['seed_reference_seconds']:.3f}s  "
            f"({entry['speedup_vs_seed']}x, "
            f"accepted {entry['refactor_accepted']})"
        )
    for name, entry in report["flow"].items():
        speed = entry.get("speedup_vs_seed")
        extra = f"  ({speed}x vs seed kernel)" if speed else ""
        print(f"flow {name:<11} {entry['seconds']:.3f}s{extra}")
    if failures:
        print("KERNEL INVARIANT FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
