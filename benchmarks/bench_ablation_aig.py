"""Ablation A5: T1 detection on structural vs AIG-form networks.

The paper's inputs are the *optimised AIG* releases of the EPFL/ISCAS
suites; our generators emit structural XOR3/MAJ3 fabrics.  This ablation
converts benchmarks to 2-input AIG normal form (+ ISOP refactoring) and
reruns detection — quantifying how much of the found/used difference
against the published table is representation, not algorithm.

Expectations encoded below: cut enumeration recovers full adders from
pure AND2/NOT structure (found > 0), but candidate counts and gains shift
relative to the structural form.
"""

import pytest

from repro.circuits import build
from repro.network import check_equivalence, refactor, to_aig_form
from repro.core import FlowConfig, run_flow


def _variants(name, preset):
    structural = build(name, preset)
    aig = to_aig_form(structural)
    opt, _ = refactor(aig)
    return structural, aig, opt


@pytest.mark.parametrize("form", ["structural", "aig", "aig+refactor"])
def test_detection_vs_representation(benchmark, preset, form):
    benchmark.group = "ablation-aig"
    structural, aig, opt = _variants("adder", preset)
    net = {"structural": structural, "aig": aig, "aig+refactor": opt}[form]

    def flow():
        return run_flow(
            net, FlowConfig(n_phases=4, use_t1=True, verify="none")
        )

    res = benchmark.pedantic(flow, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "form": form,
            "gates_in": net.num_gates(),
            "t1_found": res.t1_found,
            "t1_used": res.t1_used,
            "area": res.area_jj,
        }
    )
    # full adders are recoverable from every representation
    assert res.t1_used > 0


def test_aig_form_recovers_adder_chain(preset):
    """Cut enumeration + Boolean matching must find FA groups even after
    the chain is shredded into AND2/NOT nodes.

    In AIG form adjacent FA cones overlap on the carry logic, so greedy
    selection applies only a subset (found >> used) — exactly the
    found-vs-used gap the paper reports on its AIG benchmarks (e.g. sin
    81/77, square 861/806, log2 644/593).
    """
    structural, aig, _ = _variants("adder", preset)
    s = run_flow(structural, FlowConfig(verify="none"))
    a = run_flow(aig, FlowConfig(verify="none"))
    assert a.t1_found >= s.t1_used          # every FA position is seen
    assert a.t1_used >= 0.4 * s.t1_used     # a good share survives overlap
    assert a.t1_used < a.t1_found           # the paper's found > used gap
    assert check_equivalence(structural, a.logic_network).equivalent


def test_refactor_shrinks_aig(preset):
    _, aig, opt = _variants("c7552", preset)
    assert opt.num_gates() <= aig.num_gates()
    assert check_equivalence(aig, opt, complete=False).equivalent
