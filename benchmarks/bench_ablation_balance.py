"""Ablation A4 (extension): tree balancing before the flow.

Depth == DFFs in gate-level-pipelined SFQ, so rebalancing associative
chains is an area optimisation here, not only a timing one.  This
ablation measures its interaction with T1 detection: balancing can break
linear XOR3/MAJ3 chains into tree shapes, changing which T1 groups exist.
"""

import pytest

from repro.circuits import build
from repro.core import FlowConfig, run_flow


def _flow(net, balance, use_t1):
    return run_flow(
        net,
        FlowConfig(n_phases=4, use_t1=use_t1, balance_network=balance,
                   verify="none"),
    )


@pytest.mark.parametrize("balance", [False, True])
@pytest.mark.parametrize("use_t1", [False, True])
def test_balance_ablation(benchmark, preset, balance, use_t1):
    benchmark.group = "ablation-balance"
    net = build("c7552", preset)
    res = benchmark.pedantic(
        _flow, args=(net, balance, use_t1), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"balance": balance, "t1": use_t1, "area": res.area_jj,
         "dffs": res.num_dffs, "depth": res.depth_cycles,
         "t1_used": res.t1_used}
    )
    assert res.area_jj > 0


def test_balance_never_deepens(preset):
    net = build("c7552", preset)
    plain = _flow(net, False, False)
    balanced = _flow(net, True, False)
    assert balanced.depth_cycles <= plain.depth_cycles


def test_balance_preserves_function(preset):
    from repro.network import check_equivalence
    from repro.network.balance import balance as balance_pass

    net = build("c7552", preset)
    out, _ = balance_pass(net)
    assert check_equivalence(net, out, complete=False).equivalent
