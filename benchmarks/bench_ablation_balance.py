"""Ablation A4 (extension): tree balancing before the flow.

Depth == DFFs in gate-level-pipelined SFQ, so rebalancing associative
chains is an area optimisation here, not only a timing one.  This
ablation measures its interaction with T1 detection: balancing can break
linear XOR3/MAJ3 chains into tree shapes, changing which T1 groups exist.

Expressed with the pipeline API: the balanced variant *inserts* a
``BalancePass`` after decomposition instead of toggling a flow boolean.
"""

import pytest

from repro.circuits import build
from repro.pipeline import BalancePass, Pipeline

T1_PIPE = Pipeline.standard(n_phases=4, verify="none")
BASE_PIPE = T1_PIPE.without("t1_detect")


def _pipeline(balance, use_t1):
    pipe = T1_PIPE if use_t1 else BASE_PIPE
    if balance:
        pipe = pipe.with_pass(BalancePass(), after="decompose")
    return pipe


@pytest.mark.parametrize("balance", [False, True])
@pytest.mark.parametrize("use_t1", [False, True])
def test_balance_ablation(benchmark, preset, balance, use_t1):
    benchmark.group = "ablation-balance"
    net = build("c7552", preset)
    pipe = _pipeline(balance, use_t1)
    res = benchmark.pedantic(pipe.run, args=(net,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"balance": balance, "t1": use_t1, "area": res.area_jj,
         "dffs": res.num_dffs, "depth": res.depth_cycles,
         "t1_used": res.t1_used}
    )
    assert res.area_jj > 0


def test_balance_pass_is_inserted_not_toggled():
    """The two variants differ by exactly the inserted pass."""
    plain = _pipeline(False, True)
    balanced = _pipeline(True, True)
    assert balanced.names() == (
        plain.names()[:1] + ["balance"] + plain.names()[1:]
    )


def test_balance_never_deepens(preset):
    net = build("c7552", preset)
    plain = _pipeline(False, False).run(net)
    balanced = _pipeline(True, False).run(net)
    assert balanced.depth_cycles <= plain.depth_cycles


def test_balance_preserves_function(preset):
    from repro.network import check_equivalence
    from repro.network.balance import balance as balance_pass

    net = build("c7552", preset)
    out, _ = balance_pass(net)
    assert check_equivalence(net, out, complete=False).equivalent
