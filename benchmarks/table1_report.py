"""Regenerate Table I at paper scale and compare with the published rows.

Run with::

    python benchmarks/table1_report.py [--sweeps N] [--preset paper|ci]
                                       [--jobs N] [--markdown out.md]

Prints the Table-I layout (same columns, same thousands separators) and a
measured-vs-paper ratio comparison; optionally writes a Markdown report
(EXPERIMENTS.md is generated this way).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.core import PAPER_AVERAGES, PAPER_TABLE1, Table
from repro.pipeline import run_table


def collect(preset: str, sweeps: int, verify: str, jobs: int = 1) -> Table:
    return run_table(
        preset=preset,
        n_phases=4,
        verify=verify,
        sweeps=sweeps,
        jobs=jobs,
        progress=lambda name: print(f"  [{name}: done]", file=sys.stderr),
    )


def comparison_lines(table: Table) -> List[str]:
    out = []
    out.append(
        f"{'benchmark':<12} {'found/used':>12} {'paper':>12} "
        f"{'area r/4φ':>10} {'paper':>7} {'depth r/4φ':>11} {'paper':>7}"
    )
    for row in table.rows:
        p = PAPER_TABLE1[row.name]
        ours = f"{row.t1_found}/{row.t1_used}"
        theirs = f"{p['found']}/{p['used']}"
        out.append(
            f"{row.name:<12} {ours:>12} {theirs:>12} "
            f"{row.area_ratio_nphi:>10.2f} {p['area_r'][1]:>7.2f} "
            f"{row.depth_ratio_nphi:>11.2f} {p['depth_r'][1]:>7.2f}"
        )
    avg = table.averages()
    out.append(
        f"{'Average':<12} {'':>12} {'':>12} "
        f"{avg['area_ratio_nphi']:>10.2f} "
        f"{PAPER_AVERAGES['area_ratio_nphi']:>7.2f} "
        f"{avg['depth_ratio_nphi']:>11.2f} "
        f"{PAPER_AVERAGES['depth_ratio_nphi']:>7.2f}"
    )
    return out


def markdown_report(table: Table) -> str:
    lines = [
        "| benchmark | T1 found | T1 used | #DFF 1φ | #DFF 4φ | #DFF T1 |"
        " Area 1φ | Area 4φ | Area T1 | D 1φ | D 4φ | D T1 |"
        " area T1/4φ (paper) | depth T1/4φ (paper) |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in table.rows:
        p = PAPER_TABLE1[r.name]
        lines.append(
            f"| {r.name} | {r.t1_found} | {r.t1_used} "
            f"| {r.dff_1phi} | {r.dff_nphi} | {r.dff_t1} "
            f"| {r.area_1phi} | {r.area_nphi} | {r.area_t1} "
            f"| {r.depth_1phi} | {r.depth_nphi} | {r.depth_t1} "
            f"| {r.area_ratio_nphi:.2f} ({p['area_r'][1]:.2f}) "
            f"| {r.depth_ratio_nphi:.2f} ({p['depth_r'][1]:.2f}) |"
        )
    avg = table.averages()
    lines.append(
        f"| **Average** | | | | | | | | | | | "
        f"| **{avg['area_ratio_nphi']:.2f}** "
        f"({PAPER_AVERAGES['area_ratio_nphi']:.2f}) "
        f"| **{avg['depth_ratio_nphi']:.2f}** "
        f"({PAPER_AVERAGES['depth_ratio_nphi']:.2f}) |"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--preset", choices=("paper", "ci"), default="paper")
    p.add_argument("--sweeps", type=int, default=4)
    p.add_argument("--verify", choices=("none", "cec"), default="none")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the batch runner")
    p.add_argument("--markdown", help="write a markdown comparison table")
    args = p.parse_args(argv)

    t0 = time.time()
    table = collect(args.preset, args.sweeps, args.verify, args.jobs)
    print()
    print(f"Table I reproduction ({args.preset} preset)")
    print(table.format())
    print()
    print("comparison with the published table (T1 flow vs 4φ baseline):")
    print("\n".join(comparison_lines(table)))
    print(f"\ntotal runtime: {time.time() - t0:.1f}s")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(markdown_report(table) + "\n")
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
