"""Regenerate Fig. 1b as an ASCII waveform.

Run with::

    python benchmarks/fig1b_waveform.py
"""

from repro.sfq import simulate_pulse_train, waveform_ascii

STIMULUS = [
    (0, "T"), (3, "R"),                        # cycle 1: a
    (4, "T"), (5, "T"), (7, "R"),              # cycle 2: a, b
    (8, "T"), (9, "T"), (10, "T"), (11, "R"),  # cycle 3: a, b, c
]

if __name__ == "__main__":
    print("Fig. 1b — T1 cell simulation (input cycles: a | a,b | a,b,c)")
    print()
    print(waveform_ascii(simulate_pulse_train(STIMULUS)))
    print()
    print("S  fires at the clock when an odd number of T pulses arrived")
    print("C* fires on every second T pulse (carry)")
    print("Q* fires on every 0->1 loop transition (or)")
