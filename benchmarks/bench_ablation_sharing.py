"""Ablation A2: shared DFF chains vs per-edge chains.

Our DFF insertion shares one chain across a net's fanouts (cost =
max-gap); the paper's ILP objective counts DFFs per edge, and its CP-SAT
insertion recovers only part of the sharing.  This ablation quantifies the
difference — it explains why our baselines are stronger than the paper's
and therefore why our T1-vs-4φ ratios are conservative (see
EXPERIMENTS.md).

Expressed with the pipeline API: the per-edge variant *replaces* the
``dff_insert`` pass with one configured for per-edge chains.
"""

import pytest

from repro.circuits import build
from repro.pipeline import DffInsertPass, Pipeline


def _pipeline(share, use_t1=False, n=4):
    pipe = Pipeline.standard(n_phases=n, use_t1=use_t1, verify="none")
    if not share:
        pipe = pipe.replace("dff_insert", DffInsertPass(share_chains=False))
    return pipe


def _flow(net, share, use_t1=False, n=4):
    return _pipeline(share, use_t1, n).run(net)


@pytest.mark.parametrize("share", [True, False])
def test_sharing_mode(benchmark, preset, share):
    benchmark.group = "ablation-sharing"
    net = build("adder", preset)
    res = benchmark.pedantic(_flow, args=(net, share), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"share_chains": share, "dffs": res.num_dffs, "area": res.area_jj}
    )


def test_sharing_never_hurts(preset):
    for name in ("adder", "c6288"):
        net = build(name, preset)
        shared = _flow(net, True)
        per_edge = _flow(net, False)
        assert shared.num_dffs <= per_edge.num_dffs
        assert shared.area_jj <= per_edge.area_jj


def test_t1_ratio_improves_without_sharing(preset):
    """With per-edge counting (paper-style), T1's relative DFF win grows:
    replacing two 3-fanin gates by one cell removes duplicated chains."""
    net = build("adder", preset)
    r_shared = _flow(net, True, True).area_jj / _flow(net, True).area_jj
    r_edge = _flow(net, False, True).area_jj / _flow(net, False).area_jj
    assert r_edge <= r_shared
