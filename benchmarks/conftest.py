"""Shared configuration of the benchmark harness.

Benchmark sizes: pytest-benchmark runs use the ``ci`` preset by default so
``pytest benchmarks/ --benchmark-only`` finishes in a couple of minutes.
Set ``REPRO_BENCH_PRESET=paper`` to benchmark the paper-scale circuits
(the full Table-I regeneration lives in ``table1_report.py``, which always
uses paper scale).
"""

import os

import pytest

PRESET = os.environ.get("REPRO_BENCH_PRESET", "ci")


@pytest.fixture(scope="session")
def preset() -> str:
    return PRESET


def pytest_report_header(config):
    return f"repro benchmarks: circuit preset = {PRESET!r}"
