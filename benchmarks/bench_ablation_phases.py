"""Ablation A1: clock-phase count sweep (the §III depth/area discussion).

The paper attributes the T1 losses on c7552/sin to circuit deepening:
extra T1 stages force additional path balancing.  Sweeping n isolates the
effect: DFFs fall ~1/n, the T1 area benefit appears only for n >= 3, and
the depth overhead of T1 shrinks as n grows.

Expressed with the pipeline API: the baseline flow is the T1 pipeline
*without* its detection pass (see ``test_baseline_is_t1_without_detect``).
"""

import pytest

from repro.circuits import build
from repro.pipeline import Pipeline


def _flow(net, n, use_t1):
    return Pipeline.standard(n_phases=n, use_t1=use_t1, verify="none").run(net)


def test_baseline_is_t1_without_detect(preset):
    """Removing the detection pass IS the multiphase baseline."""
    t1_pipe = Pipeline.standard(n_phases=4, verify="none")
    base_pipe = t1_pipe.without("t1_detect")
    assert base_pipe.names() == Pipeline.standard(
        n_phases=4, use_t1=False, verify="none"
    ).names()
    net = build("c6288", preset)
    assert base_pipe.run(net).metrics == _flow(net, 4, False).metrics


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_phase_sweep_baseline(benchmark, preset, n):
    benchmark.group = "ablation-phases-baseline"
    net = build("c6288", preset)
    res = benchmark.pedantic(_flow, args=(net, n, False), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"n": n, "dffs": res.num_dffs, "area": res.area_jj,
         "depth": res.depth_cycles}
    )
    assert res.metrics.depth_cycles >= 1


@pytest.mark.parametrize("n", [3, 4, 8])
def test_phase_sweep_t1(benchmark, preset, n):
    benchmark.group = "ablation-phases-t1"
    net = build("c6288", preset)
    res = benchmark.pedantic(_flow, args=(net, n, True), rounds=1, iterations=1)
    base = _flow(net, n, False)
    benchmark.extra_info.update(
        {"n": n, "area_ratio": round(res.area_jj / base.area_jj, 3),
         "depth_ratio": round(res.depth_cycles / base.depth_cycles, 3)}
    )
    # the T1 area win holds at every feasible phase count on FA fabrics
    assert res.area_jj < base.area_jj
    # and T1 never improves depth
    assert res.depth_cycles >= base.depth_cycles


def test_dffs_fall_with_phase_count(preset):
    net = build("c6288", preset)
    dffs = {n: _flow(net, n, False).num_dffs for n in (1, 2, 4)}
    assert dffs[2] < dffs[1]
    assert dffs[4] < dffs[2]


def test_t1_requires_three_phases():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        Pipeline.standard(n_phases=2, use_t1=True)
