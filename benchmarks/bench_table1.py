"""Table I regeneration harness (experiment id: T1).

One pytest-benchmark per circuit row: each run executes the three flows
(1φ, 4φ, 4φ + T1) and records the whole Table-I row — T1 found/used,
DFF count, area and depth per flow and the T1-vs-baseline ratios — in
``benchmark.extra_info``.  Shape assertions encode the paper's
qualitative claims per row.  (Plain ``pytest benchmarks/`` additionally
runs the non-benchmark shape checks that ``--benchmark-only`` skips.)

The ``ci`` preset keeps this fast; the paper-scale table (with the
side-by-side comparison against the published numbers) is produced by::

    python benchmarks/table1_report.py
"""

import pytest

from repro.circuits import TABLE1_ORDER
from repro.core import PAPER_TABLE1, TableRow
from repro.pipeline import run_table


def _run_row(name: str, preset: str) -> TableRow:
    return run_table([name], preset=preset, n_phases=4, verify="none").rows[0]


@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_table1_row(benchmark, name, preset):
    benchmark.group = "table1"
    row = benchmark.pedantic(
        _run_row, args=(name, preset), rounds=1, iterations=1
    )
    paper = PAPER_TABLE1[name]
    benchmark.extra_info.update(
        {
            "t1_found": row.t1_found,
            "t1_used": row.t1_used,
            "dff": (row.dff_1phi, row.dff_nphi, row.dff_t1),
            "area": (row.area_1phi, row.area_nphi, row.area_t1),
            "depth": (row.depth_1phi, row.depth_nphi, row.depth_t1),
            "area_ratio_vs_4phi": round(row.area_ratio_nphi, 3),
            "depth_ratio_vs_4phi": round(row.depth_ratio_nphi, 3),
            "paper_area_ratio_vs_4phi": paper["area_r"][1],
            "paper_depth_ratio_vs_4phi": paper["depth_r"][1],
        }
    )

    # --- shape assertions (hold at either preset) ------------------------
    # multiphase baseline slashes DFFs and depth
    assert row.dff_nphi < row.dff_1phi
    assert row.depth_nphi <= (row.depth_1phi + 3) // 4 + 1
    # T1 cells are found on every arithmetic benchmark
    assert row.t1_found > 0
    assert 0 < row.t1_used <= row.t1_found
    # depth: T1 never beats the plain multiphase flow (paper avg 1.13)
    assert row.depth_t1 >= row.depth_nphi
    # and the T1 depth overhead stays small (paper max ratio 1.25)
    assert row.depth_t1 <= max(row.depth_nphi * 1.6, row.depth_nphi + 3)


@pytest.mark.parametrize("name", ["adder", "c6288", "square", "multiplier"])
def test_table1_t1_wins_area_on_fa_fabrics(name, preset):
    """Rows where the paper reports a T1 area win (ratio < 1)."""
    row = _run_row(name, preset)
    assert row.area_t1 < row.area_nphi, (
        f"{name}: T1 area {row.area_t1} vs 4phi {row.area_nphi}"
    )
    assert row.area_t1 < row.area_1phi


def test_table1_average_shape(preset):
    """Suite-average shape: area ratio < 1 (paper 0.94), depth ratio > 1
    (paper 1.13), 1φ->4φ DFF ratio around 1/n (paper 0.35)."""
    from repro.core import Table

    rows = [_run_row(name, preset) for name in TABLE1_ORDER]
    avg = Table(rows).averages()
    assert avg["area_ratio_nphi"] < 1.0
    assert avg["depth_ratio_nphi"] >= 1.0
    assert avg["dff_ratio_1phi"] < 0.6
