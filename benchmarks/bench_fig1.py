"""Fig. 1 regeneration harness (experiment ids: F1b, F1c).

* F1b — the pulse-level T1 cell simulation: replays the figure's exact
  stimulus (cycles carrying a; a,b; a,b,c) and asserts the S/C*/Q*
  responses the figure shows.
* F1c — the T1 full adder with staggered input phases φ0..φ2: maps the
  1-bit full adder onto one T1 cell, checks the eq.-5 arrival slots and
  streams all operand combinations through the pipeline simulator.
"""

import itertools

import pytest

from repro.network import LogicNetwork
from repro.core import FlowConfig, run_flow
from repro.sfq import PulseSimulator, simulate_pulse_train, waveform_ascii

FIG1B_STIMULUS = [
    (0, "T"), (3, "R"),                        # cycle 1: a
    (4, "T"), (5, "T"), (7, "R"),              # cycle 2: a, b
    (8, "T"), (9, "T"), (10, "T"), (11, "R"),  # cycle 3: a, b, c
]


def test_fig1b_waveform(benchmark):
    benchmark.group = "fig1"
    history = benchmark(simulate_pulse_train, FIG1B_STIMULUS)
    by_port = {}
    for e in history:
        by_port.setdefault(e.port, []).append(e.time)
    # figure semantics: S on readouts with odd pulse count
    assert by_port["S"] == [3, 11]
    # C* on every second toggle
    assert by_port["C*"] == [5, 9]
    # Q* on every 0->1 toggle
    assert by_port["Q*"] == [0, 4, 8, 10]
    benchmark.extra_info["waveform"] = waveform_ascii(history)


def _fig1c_flow():
    net = LogicNetwork("fa")
    a, b, c = (net.add_pi(x) for x in "abc")
    net.add_po(net.add_xor(a, b, c), "sum")
    net.add_po(net.add_maj3(a, b, c), "carry")
    return run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))


def test_fig1c_full_adder(benchmark):
    benchmark.group = "fig1"
    res = benchmark.pedantic(_fig1c_flow, rounds=1, iterations=1)
    # exactly one T1 cell implements the adder
    assert res.t1_used == 1
    t1 = next(res.netlist.t1_cells())
    # eq. 5 / Fig. 1c: the three inputs arrive at pairwise distinct phases
    arrivals = [res.netlist.driver_cell(s).stage for s in t1.fanins]
    assert len(set(arrivals)) == 3
    assert all(t1.stage - 4 <= s <= t1.stage - 1 for s in arrivals)
    # stream every operand combination: one full addition per clock cycle
    waves = [list(bits) for bits in itertools.product((0, 1), repeat=3)]
    out = PulseSimulator(res.netlist).run(waves)
    for w, (a, b, c) in enumerate(waves):
        total = a + b + c
        assert out.po_values[w] == [total % 2, 1 if total >= 2 else 0]
    benchmark.extra_info["arrival_stages"] = arrivals
    benchmark.extra_info["t1_stage"] = t1.stage
