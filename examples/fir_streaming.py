"""Streaming DSP on a gate-level-pipelined SFQ FIR filter.

The paper's intro motivates RSFQ for high-throughput stationary computing;
this example shows the end-to-end story on an application kernel:

1. build a 4-tap FIR datapath (shift-and-add constant multipliers — a
   full-adder fabric the T1 flow compresses heavily);
2. run the T1 flow, export the mapped design as SFQ structural Verilog;
3. stream a signal through the pulse-level simulator at one sample per
   clock cycle and compare against the software filter.

Run with::

    python examples/fir_streaming.py
"""

import random

from repro.circuits.fir import fir_filter, fir_reference
from repro.core import FlowConfig, run_flow
from repro.io import dumps_sfq_verilog
from repro.sfq import PulseSimulator, estimate_energy

COEFFS = [3, 5, 7, 2]   # low-pass-ish integer taps
BITS = 8


def main() -> None:
    net = fir_filter(COEFFS, sample_bits=BITS)
    print(f"FIR datapath: {len(COEFFS)} taps x {BITS} bits, "
          f"{net.num_gates()} gates")

    base = run_flow(net, FlowConfig(n_phases=4, use_t1=False, verify="none"))
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="cec"))
    print(f"T1 cells used: {res.t1_used}; area {res.area_jj} JJ "
          f"(vs {base.area_jj} without T1 -> "
          f"{100 * (1 - res.area_jj / base.area_jj):.0f}% saved)")
    print(f"pipeline depth: {res.depth_cycles} cycles "
          f"(throughput: 1 sample/cycle regardless)")
    print(f"energy: {estimate_energy(res.netlist).summary()}")

    # streaming: a noisy step signal through the filter delay line
    rng = random.Random(42)
    signal = [0] * 4 + [200] * 8
    signal = [max(0, min(255, s + rng.randint(-9, 9))) for s in signal]
    window = [0, 0, 0, 0]
    stimulus, expected = [], []
    for sample in signal:
        window = [sample] + window[:-1]
        row = []
        for s in window:
            row.extend((s >> i) & 1 for i in range(BITS))
        stimulus.append(row)
        expected.append(fir_reference(window, COEFFS, BITS))

    out = PulseSimulator(res.netlist).run(stimulus)

    def val(bits):
        v = 0
        for i, b in enumerate(bits):
            v |= b << i
        return v

    print("\n cycle  input  filtered (hw)  filtered (sw)")
    for w, sample in enumerate(signal):
        hw = val(out.po_values[w])
        assert hw == expected[w]
        print(f" {w:>5}  {sample:>5}  {hw:>13}  {expected[w]:>13}")
    print("\nhardware == software for every sample; one result per cycle.")

    verilog = dumps_sfq_verilog(res.netlist)
    with open("fir_t1.v", "w") as fh:
        fh.write(verilog)
    print(f"wrote fir_t1.v ({len(verilog.splitlines())} lines of SFQ netlist)")


if __name__ == "__main__":
    main()
