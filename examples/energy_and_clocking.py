"""Energy and clock-network accounting across the benchmark suite.

The paper motivates RSFQ with its power advantage and reports area in
JJs, leaving the clock network to physical design.  This example adds the
two "hidden" costs to the Table-I picture:

* first-order RSFQ power (I_c·Φ0 switching energy + resistor-bias static
  power, with an ERSFQ variant), and
* the per-phase clock splitter trees every clocked cell hangs from.

It then shows that the T1 flow's area win survives both corrections.

Run with::

    python examples/energy_and_clocking.py
"""

from repro.circuits import build
from repro.core import FlowConfig, run_flow
from repro.sfq import EnergyModel, estimate_energy
from repro.sfq.clock_tree import clock_overhead_ratio, plan_clock_network, total_area_with_clock

BENCHES = ("adder", "c6288", "voter")


def main() -> None:
    print(f"{'bench':<8} {'flow':>5} {'area':>8} {'+clock':>8} {'clk%':>6} "
          f"{'E/cyc aJ':>9} {'P@20GHz uW':>11} {'ERSFQ uW':>9}")
    for name in BENCHES:
        net = build(name, "ci")
        for label, use_t1 in (("4phi", False), ("T1", True)):
            res = run_flow(
                net, FlowConfig(n_phases=4, use_t1=use_t1, verify="none")
            )
            nl = res.netlist
            with_clock = total_area_with_clock(nl)
            rep = estimate_energy(nl, frequency_ghz=20.0)
            ersfq = estimate_energy(
                nl, frequency_ghz=20.0, model=EnergyModel(ersfq=True)
            )
            print(
                f"{name:<8} {label:>5} {res.area_jj:>8} {with_clock:>8} "
                f"{100 * clock_overhead_ratio(nl):>5.1f}% "
                f"{rep.dynamic_energy_per_cycle_j * 1e18:>9.1f} "
                f"{rep.total_power_w * 1e6:>11.2f} "
                f"{ersfq.total_power_w * 1e6:>9.2f}"
            )
        print()

    net = build("adder", "ci")
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
    print("clock plan for the T1 adder:")
    print(" ", plan_clock_network(res.netlist).summary())
    print("\nnote: static bias power dominates conventional RSFQ "
          "(the paper's two-to-three-orders-of-magnitude claim assumes "
          "cryocooler overhead is already included); ERSFQ removes it.")


if __name__ == "__main__":
    main()
