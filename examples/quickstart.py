"""Quickstart: map a small adder with the T1-aware flow.

Run with::

    python examples/quickstart.py
"""

from repro.circuits import ripple_carry_adder
from repro.core import FlowConfig, run_baselines_and_t1, run_flow


def main() -> None:
    # 1. build a circuit (or read one: repro.io.read_blif / read_bench)
    net = ripple_carry_adder(16)
    print(f"circuit: {net.name}, {net.num_gates()} gates, "
          f"{len(net.pis)} inputs, {len(net.pos)} outputs")

    # 2. run the paper's T1 flow: detection -> phase assignment -> DFFs.
    #    verify="full" additionally streams random waves through the
    #    pulse-level simulator and compares against the logic model.
    result = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="full"))

    print(f"\nT1 cells found/used : {result.t1_found}/{result.t1_used}")
    print(f"path-balancing DFFs : {result.num_dffs}")
    print(f"area                : {result.area_jj} JJ")
    print(f"depth               : {result.depth_cycles} cycles")
    print(f"functionally correct: {result.verified}")

    # 3. compare against the paper's two baselines (1-phase, 4-phase)
    print("\nbaseline comparison:")
    results = run_baselines_and_t1(net, verify="none")
    for label, res in results.items():
        print(f"  {label:>5}: dffs={res.num_dffs:>5} area={res.area_jj:>7} JJ "
              f"depth={res.depth_cycles:>3} cycles")
    t1, nphi = results["t1"], results["nphi"]
    print(f"\nT1 vs 4-phase area ratio: {t1.area_jj / nphi.area_jj:.2f}")


if __name__ == "__main__":
    main()
