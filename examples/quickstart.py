"""Quickstart: map a small adder with the T1-aware flow.

Run with::

    python examples/quickstart.py
"""

from repro.circuits import ripple_carry_adder
from repro.pipeline import Pipeline, baseline_pipelines, run_many


def main() -> None:
    # 1. build a circuit (or read one: repro.io.read_blif / read_bench)
    net = ripple_carry_adder(16)
    print(f"circuit: {net.name}, {net.num_gates()} gates, "
          f"{len(net.pis)} inputs, {len(net.pos)} outputs")

    # 2. run the paper's T1 flow: detection -> phase assignment -> DFFs.
    #    verify="full" additionally streams random waves through the
    #    pulse-level simulator and compares against the logic model.
    pipeline = Pipeline.standard(n_phases=4, use_t1=True, verify="full")
    result = pipeline.run(net)

    print(f"\npasses              : {' -> '.join(pipeline.names())}")
    print(f"T1 cells found/used : {result.t1_found}/{result.t1_used}")
    print(f"path-balancing DFFs : {result.num_dffs}")
    print(f"area                : {result.area_jj} JJ")
    print(f"depth               : {result.depth_cycles} cycles")
    print(f"functionally correct: {result.verified}")

    # 3. compare against the paper's two baselines (1-phase, 4-phase).
    #    run_many batches flow executions (jobs=N runs on a process pool).
    print("\nbaseline comparison:")
    flows = baseline_pipelines(n_phases=4, verify="none")
    contexts = run_many([(net, pipe) for pipe in flows.values()])
    results = dict(zip(flows, contexts))
    for label, res in results.items():
        print(f"  {label:>5}: dffs={res.num_dffs:>5} area={res.area_jj:>7} JJ "
              f"depth={res.depth_cycles:>3} cycles")
    t1, nphi = results["t1"], results["nphi"]
    print(f"\nT1 vs 4-phase area ratio: {t1.area_jj / nphi.area_jj:.2f}")


if __name__ == "__main__":
    main()
