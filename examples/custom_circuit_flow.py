"""Using the library on your own design.

Builds a small population-count + threshold datapath (the kind of
filter/accumulator kernel the paper's intro motivates for RSFQ), maps it
with and without T1 cells, checks equivalence, and exports the artefacts
(BLIF netlist, staged DOT graph).

Run with::

    python examples/custom_circuit_flow.py
"""

import io

from repro.circuits import ge_const, popcount_bus
from repro.io import dumps_blif, dumps_netlist_dot, loads_blif
from repro.network import LogicNetwork, check_equivalence
from repro.pipeline import Pipeline


def build_design() -> LogicNetwork:
    """24-input activity detector: fires when >= 10 of 24 lines are high."""
    net = LogicNetwork("activity_detector")
    lines = [net.add_pi(f"line{i}") for i in range(24)]
    count = popcount_bus(net, lines)
    for i, bit in enumerate(count):
        net.add_po(bit, f"count{i}")
    net.add_po(ge_const(net, count, 10), "active")
    return net


def main() -> None:
    net = build_design()
    print(f"design: {net.name}, {net.num_gates()} gates")

    # round-trip through BLIF — what you would do with an external tool
    text = dumps_blif(net)
    print(f"BLIF export: {len(text.splitlines())} lines")
    reread = loads_blif(text)
    assert check_equivalence(net, reread).equivalent
    print("BLIF round-trip: equivalent")

    # baseline vs T1 flow: one pipeline, the baseline drops one pass
    t1_pipe = Pipeline.standard(n_phases=4, use_t1=True, verify="cec")
    base = t1_pipe.without("t1_detect").with_verify("none").run(reread)
    t1 = t1_pipe.run(reread)

    print(f"\n{'':>10} {'#DFF':>6} {'area JJ':>8} {'depth':>6}")
    print(f"{'4-phase':>10} {base.num_dffs:>6} {base.area_jj:>8} "
          f"{base.depth_cycles:>6}")
    print(f"{'+ T1':>10} {t1.num_dffs:>6} {t1.area_jj:>8} "
          f"{t1.depth_cycles:>6}")
    print(f"\nT1 cells used: {t1.t1_used} "
          f"(popcount is a full-adder tree — prime T1 material)")
    print(f"area saving vs 4-phase: "
          f"{100 * (1 - t1.area_jj / base.area_jj):.1f}%")

    dot = dumps_netlist_dot(t1.netlist)
    with open("activity_detector_t1.dot", "w") as fh:
        fh.write(dot)
    print("\nwrote activity_detector_t1.dot "
          "(render with: dot -Tsvg -O activity_detector_t1.dot)")


if __name__ == "__main__":
    main()
