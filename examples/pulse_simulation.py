"""Pulse-level exploration of the T1 flip-flop (Fig. 1 of the paper).

Three views of the same cell:

1. the raw state machine driven by a pulse train (Fig. 1b);
2. the synchronous full-adder readout (Fig. 1c truth table);
3. a mapped-and-scheduled 1-bit T1 full adder streaming operands at one
   result per clock cycle through the pipeline simulator, including a
   demonstration of the data hazard that input staggering prevents.

Run with::

    python examples/pulse_simulation.py
"""

import itertools

from repro.errors import HazardError
from repro.network import Gate, LogicNetwork
from repro.core import FlowConfig, run_flow
from repro.sfq import (
    PulseSimulator,
    T1CellState,
    full_adder_cycle,
    simulate_pulse_train,
    waveform_ascii,
)


def fig1b() -> None:
    print("=" * 64)
    print("Fig. 1b: T1 cell pulse response (cycles: a | a,b | a,b,c)")
    print("=" * 64)
    events = [
        (0, "T"), (3, "R"),
        (4, "T"), (5, "T"), (7, "R"),
        (8, "T"), (9, "T"), (10, "T"), (11, "R"),
    ]
    print(waveform_ascii(simulate_pulse_train(events)))
    print("""
reading: 1 pulse  -> S fires at the clock (sum=1, carry=0)
         2 pulses -> C* fires on the second toggle (carry=1), no S
         3 pulses -> C* fires AND S fires (sum=1, carry=1)""")


def fig1c_truth_table() -> None:
    print("=" * 64)
    print("Fig. 1c: T1 cell as a full adder (synchronous view)")
    print("=" * 64)
    print(" a b c | sum carry or3")
    for a, b, c in itertools.product((0, 1), repeat=3):
        s, cy, q = full_adder_cycle(a, b, c)
        print(f" {a} {b} {c} |  {s}    {cy}    {q}")


def hazard_demo() -> None:
    print("=" * 64)
    print("Why staggering matters: overlapping T pulses merge")
    print("=" * 64)
    cell = T1CellState()
    cell.pulse_t(5)
    try:
        cell.pulse_t(5)  # second operand arrives at the same moment
    except HazardError as exc:
        print(f"HazardError: {exc}")


def streaming_full_adder() -> None:
    print("=" * 64)
    print("Streaming a mapped T1 full adder (one result per cycle)")
    print("=" * 64)
    net = LogicNetwork("fa")
    a, b, c = (net.add_pi(x) for x in "abc")
    net.add_po(net.add_xor(a, b, c), "sum")
    net.add_po(net.add_maj3(a, b, c), "carry")
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
    t1 = next(res.netlist.t1_cells())
    arrivals = [res.netlist.driver_cell(s).stage for s in t1.fanins]
    print(f"T1 cell at stage {t1.stage}; input arrival stages {arrivals} "
          "(pairwise distinct = eq. 5)")

    waves = [[a_, b_, c_] for a_, b_, c_ in itertools.product((0, 1), repeat=3)]
    out = PulseSimulator(res.netlist).run(waves)
    print(" wave  a b c | sum carry")
    for w, (a_, b_, c_) in enumerate(waves):
        s, cy = out.po_values[w]
        print(f"  {w:>3}  {a_} {b_} {c_} |  {s}    {cy}")


if __name__ == "__main__":
    fig1b()
    print()
    fig1c_truth_table()
    print()
    hazard_demo()
    print()
    streaming_full_adder()
