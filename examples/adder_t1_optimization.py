"""The paper's headline result: the 128-bit adder.

"The largest reduction is observed in the adder circuit where almost the
entire circuit is replaced with the T1-FFs, yielding a 25% improvement
in area." (§III)

This example runs the full-size adder through all three flows, prints a
Table-I style row and shows where the area goes (gates vs DFFs vs
splitters).

Run with::

    python examples/adder_t1_optimization.py
"""

from repro.circuits import ripple_carry_adder
from repro.core import Table, TableRow
from repro.pipeline import baseline_pipelines, run_many
from repro.sfq import default_library


def main() -> None:
    net = ripple_carry_adder(128)
    print(f"building and mapping {net.name} "
          f"({net.num_gates()} gates, depth 128)...\n")
    # the three flows are independent — fan them over a process pool
    flows = baseline_pipelines(n_phases=4, verify="none")
    contexts = run_many([(net, pipe) for pipe in flows.values()], jobs=3)
    results = dict(zip(flows, contexts))

    row = TableRow.from_results("adder", results)
    print(Table([row]).format())

    lib = default_library()
    print("\narea breakdown (JJ):")
    print(f"{'flow':>6} {'logic cells':>12} {'DFFs':>10} {'splitters':>10}")
    for label, res in results.items():
        m = res.metrics
        dff_area = m.num_dffs * lib.dff.jj_count
        split_area = m.num_splitters * lib.splitter.jj_count
        logic = m.area_jj - dff_area - split_area
        print(f"{label:>6} {logic:>12} {dff_area:>10} {split_area:>10}")

    t1 = results["t1"]
    print(f"\nT1 cells found/used: {t1.t1_found}/{t1.t1_used} "
          f"(paper: 127/127 — one half adder at bit 0 is not replaceable)")
    print(f"depth: {results['1phi'].depth_cycles} / "
          f"{results['nphi'].depth_cycles} / {t1.depth_cycles} cycles "
          f"(paper: 128 / 32 / 33)")
    ins = t1.insertion
    print(f"T1 DFF split: {ins.path_dffs} ordinary path balancing + "
          f"{ins.t1_stagger_dffs} T1 input chains (balancing + staggering) + "
          f"{ins.po_balance_dffs} output balancing")


if __name__ == "__main__":
    main()
