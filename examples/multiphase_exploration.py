"""Exploring the clock-phase count (the knob behind §I-B).

Sweeps n ∈ {1, 2, 3, 4, 6, 8} on the c6288-style multiplier and shows the
area/DFF/depth trade-off, with and without T1 cells (T1 needs n >= 3 —
three distinct arrival slots inside one freshness window).

This is the experiment behind the paper's choice of 4 phases: DFF count
falls roughly as 1/n while the cycle count of the pipeline falls as n —
and T1 substitution shifts the whole area curve down once n >= 3.

Run with::

    python examples/multiphase_exploration.py
"""

from repro.circuits import c6288_like
from repro.pipeline import Pipeline


def main() -> None:
    net = c6288_like(10)  # 10x10 array multiplier: quick but non-trivial
    print(f"circuit: {net.name} ({net.num_gates()} gates)\n")
    print(f"{'n':>3} {'flow':>8} {'#DFF':>7} {'area JJ':>9} {'depth':>6}")
    for n in (1, 2, 3, 4, 6, 8):
        base = Pipeline.standard(
            n_phases=n, use_t1=False, verify="none"
        ).run(net)
        print(f"{n:>3} {'base':>8} {base.num_dffs:>7} {base.area_jj:>9} "
              f"{base.depth_cycles:>6}")
        if n >= 3:
            t1 = Pipeline.standard(
                n_phases=n, use_t1=True, verify="none"
            ).run(net)
            print(f"{n:>3} {'+T1':>8} {t1.num_dffs:>7} {t1.area_jj:>9} "
                  f"{t1.depth_cycles:>6}   "
                  f"(T1 used: {t1.t1_used})")
    print("\nreading: DFFs drop ~1/n; cycles drop ~n; T1 shifts area down "
          "for every n >= 3 at a small depth cost.")


if __name__ == "__main__":
    main()
