"""Tiny CDCL SAT solver + CNF utilities (used by CEC and the CP layer)."""

from repro.sat.cnf import CnfBuilder, to_dimacs
from repro.sat.solver import SatSolver, SatStatus, solve_cnf

__all__ = ["CnfBuilder", "SatSolver", "SatStatus", "solve_cnf", "to_dimacs"]
