"""CNF construction and Tseitin encoding of logic networks.

Literal convention (DIMACS-like): variables are positive integers; the
literal for variable v is ``v`` (positive phase) or ``-v`` (negated).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import NetworkError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork


class CnfBuilder:
    """Incremental CNF with gate-encoding helpers."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._true_var: Optional[int] = None

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = list(lits)
        if not clause:
            raise NetworkError("empty clause added (model trivially UNSAT)")
        self.clauses.append(clause)

    def true_literal(self) -> int:
        """A literal constrained to be true (lazily created)."""
        if self._true_var is None:
            self._true_var = self.new_var()
            self.add_clause([self._true_var])
        return self._true_var

    # -- gate encoders -------------------------------------------------------

    def add_and(self, fanins: Sequence[int]) -> int:
        out = self.new_var()
        for f in fanins:
            self.add_clause([-out, f])
        self.add_clause([out] + [-f for f in fanins])
        return out

    def add_or(self, fanins: Sequence[int]) -> int:
        out = self.new_var()
        for f in fanins:
            self.add_clause([out, -f])
        self.add_clause([-out] + list(fanins))
        return out

    def add_xor2(self, a: int, b: int) -> int:
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def add_xor(self, fanins: Sequence[int]) -> int:
        acc = fanins[0]
        for f in fanins[1:]:
            acc = self.add_xor2(acc, f)
        return acc

    def add_maj3(self, a: int, b: int, c: int) -> int:
        out = self.new_var()
        # out -> at least two of (a, b, c)
        self.add_clause([-out, a, b])
        self.add_clause([-out, a, c])
        self.add_clause([-out, b, c])
        # two of them -> out
        self.add_clause([out, -a, -b])
        self.add_clause([out, -a, -c])
        self.add_clause([out, -b, -c])
        return out

    # -- network encoding ------------------------------------------------------

    def encode_network(
        self,
        net: LogicNetwork,
        pi_literals: Sequence[int],
        nodes: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Tseitin-encode *net* on the given PI literals; returns PO literals.

        T1 cells are expanded functionally (taps encode XOR3/MAJ3/OR3 over
        the cell fanins).

        *nodes* restricts the encoding to a subset (it must be closed
        under fanin and in topological order — e.g. a transitive-fanin
        cone filtered through ``net.topological_order()``); POs outside
        the subset get ``None`` in the returned list.  The default
        encodes every node.
        """
        if len(pi_literals) != len(net.pis):
            raise NetworkError("PI literal count mismatch")
        lit: Dict[int, int] = {}
        lit[CONST1] = self.true_literal()
        lit[CONST0] = -self.true_literal()
        for pi, l in zip(net.pis, pi_literals):
            lit[pi] = l
        for node in (net.topological_order() if nodes is None else nodes):
            g = net.gates[node]
            if g in (Gate.CONST0, Gate.CONST1, Gate.PI, Gate.T1_CELL):
                continue
            if is_t1_tap(g):
                a, b, c = (lit[f] for f in net.fanins[net.fanins[node][0]])
                if g is Gate.T1_S:
                    lit[node] = self.add_xor([a, b, c])
                elif g is Gate.T1_C:
                    lit[node] = self.add_maj3(a, b, c)
                elif g is Gate.T1_CN:
                    lit[node] = -self.add_maj3(a, b, c)
                elif g is Gate.T1_Q:
                    lit[node] = self.add_or([a, b, c])
                else:  # T1_QN
                    lit[node] = -self.add_or([a, b, c])
                continue
            fins = [lit[f] for f in net.fanins[node]]
            if g is Gate.BUF:
                lit[node] = fins[0]
            elif g is Gate.NOT:
                lit[node] = -fins[0]
            elif g is Gate.AND:
                lit[node] = self.add_and(fins)
            elif g is Gate.NAND:
                lit[node] = -self.add_and(fins)
            elif g is Gate.OR:
                lit[node] = self.add_or(fins)
            elif g is Gate.NOR:
                lit[node] = -self.add_or(fins)
            elif g is Gate.XOR:
                lit[node] = self.add_xor(fins)
            elif g is Gate.XNOR:
                lit[node] = -self.add_xor(fins)
            elif g is Gate.MAJ3:
                lit[node] = self.add_maj3(*fins)
            else:  # pragma: no cover - exhaustive
                raise NetworkError(f"cannot encode gate {g.name}")
        if nodes is None:
            return [lit[po] for po in net.pos]
        return [lit.get(po) for po in net.pos]


def to_dimacs(num_vars: int, clauses: Sequence[Sequence[int]]) -> str:
    """Render in DIMACS CNF format (for debugging / external solvers)."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
