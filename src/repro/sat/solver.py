"""A CDCL SAT solver (watched literals, 1UIP learning, VSIDS, restarts).

Small but complete: enough to decide equivalence miters of the mid-size
networks used in the test-suite.  The API mirrors what the rest of the
library needs — construct with a clause list, call :meth:`solve`, read
:meth:`model`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.errors import SolverError


class SatStatus(enum.Enum):
    """Solver outcome: SAT / UNSAT / UNKNOWN (limit hit)."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class SatSolver:
    """CDCL solver over variables ``1..num_vars``."""

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]]):
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        # assignment state
        self.assign: List[int] = [_UNASSIGNED] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # two-literal watching: watches[lit] = clause indices watching lit
        self.watches: Dict[int, List[List[int]]] = {}
        # VSIDS
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self._status = SatStatus.UNKNOWN
        self._conflicts = 0
        self._units: List[int] = []
        ok = True
        for clause in clauses:
            if not self._add_clause(list(clause)):
                ok = False
                break
        self._trivially_unsat = not ok

    # -- construction ------------------------------------------------------------

    def _watch(self, lit: int, clause: List[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    def _add_clause(self, clause: List[int]) -> bool:
        clause = list(dict.fromkeys(clause))  # dedupe
        if any(-l in clause for l in clause):
            return True  # tautology
        if not clause:
            return False
        if len(clause) == 1:
            self._units.append(clause[0])
            return True
        self.clauses.append(clause)
        self._watch(clause[0], clause)
        self._watch(clause[1], clause)
        return True

    # -- assignment helpers ---------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self.assign[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val == _TRUE:
            return True
        if val == _FALSE:
            return False
        var = abs(lit)
        self.assign[var] = _TRUE if lit > 0 else _FALSE
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            neg = -lit
            watch_list = self.watches.get(neg)
            if not watch_list:
                continue
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                # normalise: watched literals in positions 0/1
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == _TRUE:
                    i += 1
                    continue
                # search replacement watch
                found = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != _FALSE:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watch(clause[1], clause)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                if not self._enqueue(clause[0], clause):
                    return clause
                i += 1
        return None

    # -- conflict analysis -------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        """1UIP learning; returns (learnt clause, backjump level)."""
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause: Optional[List[int]] = conflict
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)
        while True:
            assert clause is not None
            for q in clause:
                if lit is not None and abs(q) == abs(lit):
                    continue  # skip the resolved variable itself
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal from trail
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = -self.trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause = self.reason[var]
        learnt.insert(0, lit)
        if len(learnt) == 1:
            return learnt, 0
        back = max(self.level[abs(q)] for q in learnt[1:])
        # position a literal of backjump level at index 1
        for j in range(1, len(learnt)):
            if self.level[abs(learnt[j])] == back:
                learnt[1], learnt[j] = learnt[j], learnt[1]
                break
        return learnt, back

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            lim = self.trail_lim.pop()
            while len(self.trail) > lim:
                lit = self.trail.pop()
                var = abs(lit)
                self.assign[var] = _UNASSIGNED
                self.reason[var] = None
        self.qhead = min(self.qhead, len(self.trail))

    def _decide(self) -> Optional[int]:
        best = None
        best_act = -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == _UNASSIGNED and self.activity[v] > best_act:
                best = v
                best_act = self.activity[v]
        if best is None:
            return None
        return -best  # negative phase first (works well on miters)

    # -- main loop ----------------------------------------------------------------------

    def solve(self, conflict_limit: int = 10_000_000) -> SatStatus:
        if self._trivially_unsat:
            self._status = SatStatus.UNSAT
            return self._status
        for u in self._units:
            if not self._enqueue(u, None):
                self._status = SatStatus.UNSAT
                return self._status
        if self._propagate() is not None:
            self._status = SatStatus.UNSAT
            return self._status
        restart_interval = 256
        conflicts_since_restart = 0
        root_trail = len(self.trail)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) == 0:
                    self._status = SatStatus.UNSAT
                    return self._status
                learnt, back = self._analyze(conflict)
                self._backtrack(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._status = SatStatus.UNSAT
                        return self._status
                else:
                    self.clauses.append(learnt)
                    self._watch(learnt[0], learnt)
                    self._watch(learnt[1], learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
                if self._conflicts >= conflict_limit:
                    self._status = SatStatus.UNKNOWN
                    return self._status
                if conflicts_since_restart >= restart_interval:
                    conflicts_since_restart = 0
                    restart_interval = int(restart_interval * 1.5)
                    self._backtrack(0)
            else:
                lit = self._decide()
                if lit is None:
                    self._status = SatStatus.SAT
                    return self._status
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)

    # -- results ---------------------------------------------------------------------------

    def model(self) -> List[bool]:
        """Assignment indexed by variable (index 0 unused)."""
        if self._status is not SatStatus.SAT:
            raise SolverError("model() requires a SAT result")
        return [v == _TRUE for v in self.assign]


def solve_cnf(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    conflict_limit: int = 10_000_000,
) -> tuple[SatStatus, Optional[List[bool]]]:
    """Convenience one-shot API."""
    solver = SatSolver(num_vars, clauses)
    status = solver.solve(conflict_limit=conflict_limit)
    if status is SatStatus.SAT:
        return status, solver.model()
    return status, None
