"""Finite-domain constraint-programming solver (the CP-SAT stand-in).

Supports exactly what the paper's DFF-insertion model (§II-C) needs:

* integer variables with interval domains;
* linear constraints  sum(coeff_i * var_i) <op> rhs  for <=, >=, ==, !=;
* ``AllDifferent`` over a set of variables (eq. 5 of the paper);
* optional linear objective, minimised by iterative bound tightening.

Solving = bounds-consistency propagation + DFS with first-fail variable
order and value enumeration.  Complete on the small models it is given.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleError, SolverError, SolverLimitError


@dataclasses.dataclass(frozen=True)
class IntVar:
    index: int
    lb: int
    ub: int
    name: str


class _Linear:
    """sum coeff*var  <op>  rhs, with op in {<=, >=, ==, !=}."""

    __slots__ = ("terms", "op", "rhs")

    def __init__(self, terms: List[Tuple[int, int]], op: str, rhs: int):
        self.terms = terms
        self.op = op
        self.rhs = rhs

    def variables(self) -> List[int]:
        return [v for v, _ in self.terms]


class _AllDifferent:
    __slots__ = ("vars",)

    def __init__(self, variables: List[int]):
        self.vars = variables

    def variables(self) -> List[int]:
        return list(self.vars)


class CpModel:
    """Build a model, then :meth:`solve` or :meth:`minimize`."""

    def __init__(self) -> None:
        self.vars: List[IntVar] = []
        self.constraints: List[object] = []

    def new_int_var(self, lb: int, ub: int, name: str = "") -> IntVar:
        if lb > ub:
            raise SolverError(f"variable {name!r}: empty domain [{lb},{ub}]")
        v = IntVar(len(self.vars), int(lb), int(ub), name or f"x{len(self.vars)}")
        self.vars.append(v)
        return v

    @staticmethod
    def _terms(coeffs: Dict) -> List[Tuple[int, int]]:
        out: Dict[int, int] = {}
        for k, c in coeffs.items():
            idx = k.index if isinstance(k, IntVar) else int(k)
            out[idx] = out.get(idx, 0) + int(c)
        return [(v, c) for v, c in out.items() if c != 0]

    def add_linear(self, coeffs: Dict, op: str, rhs: int) -> None:
        if op not in ("<=", ">=", "==", "!="):
            raise SolverError(f"unknown operator {op!r}")
        self.constraints.append(_Linear(self._terms(coeffs), op, int(rhs)))

    def add_all_different(self, variables: Sequence[IntVar]) -> None:
        self.constraints.append(
            _AllDifferent([v.index for v in variables])
        )

    # -- solving -----------------------------------------------------------

    def _propagate(
        self, lo: List[int], hi: List[int], watch: List[List[object]]
    ) -> bool:
        """Bounds-consistency fixpoint; False on wipe-out."""
        queue = list(self.constraints)
        in_queue = set(id(c) for c in queue)
        while queue:
            con = queue.pop()
            in_queue.discard(id(con))
            changed_vars: List[int] = []
            if isinstance(con, _Linear):
                if not self._prop_linear(con, lo, hi, changed_vars):
                    return False
            else:
                if not self._prop_alldiff(con, lo, hi, changed_vars):
                    return False
            for v in changed_vars:
                for c2 in watch[v]:
                    if id(c2) not in in_queue:
                        queue.append(c2)
                        in_queue.add(id(c2))
        return True

    @staticmethod
    def _prop_linear(
        con: _Linear, lo: List[int], hi: List[int], changed: List[int]
    ) -> bool:
        terms = con.terms
        # min/max of the sum
        smin = 0
        smax = 0
        for v, c in terms:
            if c > 0:
                smin += c * lo[v]
                smax += c * hi[v]
            else:
                smin += c * hi[v]
                smax += c * lo[v]
        rhs = con.rhs
        op = con.op
        if op == "!=":
            # only prunes when all but fixed; check violation on singleton
            if smin == smax and smin == rhs:
                return False
            if len(terms) == 1:
                v, c = terms[0]
                if c != 0 and rhs % c == 0:
                    forbidden = rhs // c
                    if lo[v] == forbidden:
                        lo[v] += 1
                        changed.append(v)
                    if hi[v] == forbidden:
                        hi[v] -= 1
                        changed.append(v)
                    if lo[v] > hi[v]:
                        return False
            return True
        check_le = op in ("<=", "==")
        check_ge = op in (">=", "==")
        if check_le and smin > rhs:
            return False
        if check_ge and smax < rhs:
            return False
        for v, c in terms:
            if c == 0:
                continue
            # bound tightening for each variable
            if c > 0:
                rest_min = smin - c * lo[v]
                rest_max = smax - c * hi[v]
                if check_le:
                    new_hi = (rhs - rest_min) // c
                    if new_hi < hi[v]:
                        hi[v] = new_hi
                        changed.append(v)
                if check_ge:
                    new_lo = math.ceil((rhs - rest_max) / c)
                    if new_lo > lo[v]:
                        lo[v] = new_lo
                        changed.append(v)
            else:
                rest_min = smin - c * hi[v]
                rest_max = smax - c * lo[v]
                if check_le:
                    new_lo = math.ceil((rhs - rest_min) / c)
                    if new_lo > lo[v]:
                        lo[v] = new_lo
                        changed.append(v)
                if check_ge:
                    new_hi = math.floor((rhs - rest_max) / c)
                    if new_hi < hi[v]:
                        hi[v] = new_hi
                        changed.append(v)
            if lo[v] > hi[v]:
                return False
        return True

    @staticmethod
    def _prop_alldiff(
        con: _AllDifferent, lo: List[int], hi: List[int], changed: List[int]
    ) -> bool:
        # value elimination from fixed variables + simple Hall check
        fixed: Dict[int, int] = {
            v: lo[v] for v in con.vars if lo[v] == hi[v]
        }
        values = set(fixed.values())
        if len(values) != len(fixed):
            return False
        for v in con.vars:
            if lo[v] == hi[v]:
                continue
            while lo[v] in values and lo[v] <= hi[v]:
                lo[v] += 1
                changed.append(v)
            while hi[v] in values and hi[v] >= lo[v]:
                hi[v] -= 1
                changed.append(v)
            if lo[v] > hi[v]:
                return False
        # pigeonhole over the union of tight domains
        n = len(con.vars)
        union_lo = min(lo[v] for v in con.vars)
        union_hi = max(hi[v] for v in con.vars)
        if union_hi - union_lo + 1 < n:
            return False
        return True

    def _search(
        self,
        lo: List[int],
        hi: List[int],
        watch: List[List[object]],
        node_budget: List[int],
        deadline: Optional[float] = None,
    ) -> Optional[List[int]]:
        if not self._propagate(lo, hi, watch):
            return None
        # pick unfixed var with smallest domain
        best_v = -1
        best_size = None
        for v in range(len(self.vars)):
            size = hi[v] - lo[v]
            if size > 0 and (best_size is None or size < best_size):
                best_size = size
                best_v = v
        if best_v < 0:
            return list(lo)
        for val in range(lo[best_v], hi[best_v] + 1):
            node_budget[0] -= 1
            if node_budget[0] < 0:
                raise SolverLimitError("CP search node limit exceeded")
            if deadline is not None and time.monotonic() >= deadline:
                raise SolverLimitError("CP search time budget exhausted")
            lo2 = list(lo)
            hi2 = list(hi)
            lo2[best_v] = hi2[best_v] = val
            res = self._search(lo2, hi2, watch, node_budget, deadline)
            if res is not None:
                return res
        return None

    def _watch_lists(self) -> List[List[object]]:
        watch: List[List[object]] = [[] for _ in self.vars]
        for con in self.constraints:
            for v in con.variables():  # type: ignore[attr-defined]
                watch[v].append(con)
        return watch

    def solve(
        self, node_limit: int = 200_000, deadline: Optional[float] = None
    ) -> Dict[int, int]:
        """Find any feasible assignment {var_index: value}.

        *deadline* is an absolute ``time.monotonic()`` instant; past it
        the search raises :class:`SolverLimitError`, like the node limit.
        """
        lo = [v.lb for v in self.vars]
        hi = [v.ub for v in self.vars]
        res = self._search(
            lo, hi, self._watch_lists(), [node_limit], deadline
        )
        if res is None:
            raise InfeasibleError("CP model infeasible")
        return {i: res[i] for i in range(len(self.vars))}

    def minimize(
        self,
        coeffs: Dict,
        node_limit: int = 200_000,
        deadline: Optional[float] = None,
    ) -> Tuple[Dict[int, int], int]:
        """Minimise a linear objective; returns (assignment, objective)."""
        best, best_obj, _ = self.minimize_ex(
            coeffs, node_limit=node_limit, deadline=deadline
        )
        return best, best_obj

    def minimize_ex(
        self,
        coeffs: Dict,
        node_limit: int = 200_000,
        deadline: Optional[float] = None,
    ) -> Tuple[Dict[int, int], int, bool]:
        """Like :meth:`minimize`, plus an optimality-proven flag.

        Bound tightening that runs out of nodes or wall-clock *after*
        finding an incumbent returns the incumbent with ``proven=False``
        instead of raising — the degradation chain's "best effort under
        budget" contract.
        """
        terms = self._terms(coeffs)

        def value(assign: Dict[int, int]) -> int:
            return sum(c * assign[v] for v, c in terms)

        best = self.solve(node_limit=node_limit, deadline=deadline)
        best_obj = value(best)
        while True:
            trial = CpModel()
            trial.vars = self.vars
            trial.constraints = list(self.constraints)
            trial.constraints.append(
                _Linear(terms, "<=", best_obj - 1)
            )
            try:
                cand = trial.solve(node_limit=node_limit, deadline=deadline)
            except InfeasibleError:
                return best, best_obj, True
            except SolverLimitError:
                return best, best_obj, False
            best = cand
            best_obj = value(cand)


# ---------------------------------------------------------------------------
# solver-model IR backend
# ---------------------------------------------------------------------------

#: IR features this backend can lower (see repro.solvers.model)
IR_FEATURES = frozenset({"all_different", "not_equal"})


def solve_model(model, node_limit: int = 200_000, deadline: Optional[float] = None):
    """Lower a :class:`repro.solvers.model.SolverModel` and solve it.

    Requires every variable to be an integer with finite bounds;
    lowering preserves declaration order.  Returns
    ``(values, objective, optimal)``.
    """
    cm = CpModel()
    for v in model.vars:
        if not v.integer:
            raise SolverError(
                f"CP backend needs integer variables ({v.name!r} is continuous)"
            )
        if not (math.isfinite(v.lb) and math.isfinite(v.ub)):
            raise SolverError(
                f"CP backend needs finite domains ({v.name!r} is unbounded)"
            )
        cm.new_int_var(int(v.lb), int(v.ub), v.name)
    for kind, payload in model.constraints:
        if kind == "linear":
            coeffs, sense, rhs = payload
            if any(not float(c).is_integer() for c in coeffs.values()) or (
                not float(rhs).is_integer()
            ):
                raise SolverError("CP backend needs integer coefficients")
            cm.add_linear(
                {i: int(c) for i, c in coeffs.items()}, sense, int(rhs)
            )
        elif kind == "alldiff":
            cm.add_all_different([cm.vars[i] for i in payload])
        else:  # pragma: no cover - defensive
            raise SolverError(f"CP backend cannot lower {kind!r} constraints")
    if not model.objective:
        assignment = cm.solve(node_limit=node_limit, deadline=deadline)
        return {i: float(v) for i, v in assignment.items()}, 0.0, True
    if any(not float(c).is_integer() for c in model.objective.values()):
        raise SolverError("CP backend needs integer objective coefficients")
    sign = -1 if model.maximizing else 1
    coeffs = {i: sign * int(c) for i, c in model.objective.items()}
    assignment, total, proven = cm.minimize_ex(
        coeffs, node_limit=node_limit, deadline=deadline
    )
    return (
        {i: float(v) for i, v in assignment.items()},
        float(sign * total),
        proven,
    )
