"""Optimisation substrate: LP (simplex), MILP (B&B), finite-domain CP.

This package replaces Google OR-Tools in the paper's flow: the phase
assignment ILP (§II-B) runs on :class:`MilpModel` and the DFF-insertion
model (§II-C) on :class:`CpModel`.
"""

from repro.solvers.cpsat import CpModel, IntVar
from repro.solvers.linprog import LpResult, solve_lp
from repro.solvers.milp import MilpModel, MilpSolution, MilpVar

__all__ = [
    "CpModel",
    "IntVar",
    "LpResult",
    "MilpModel",
    "MilpSolution",
    "MilpVar",
    "solve_lp",
]
