"""Optimisation substrate: LP (simplex), MILP (B&B), finite-domain CP.

This package replaces Google OR-Tools in the paper's flow.  The
:class:`SolverModel` IR is the primary modelling surface: the phase
assignment ILP (§II-B) and the DFF-insertion CP model (§II-C) both
build one declarative model and route to a backend by capability
(``solve(backend="auto")``).  The raw engines — :class:`MilpModel`,
:class:`CpModel`, :func:`solve_lp` — remain available for direct use.
"""

from repro.solvers.cpsat import CpModel, IntVar
from repro.solvers.linprog import LpResult, solve_bounded_lp, solve_lp
from repro.solvers.milp import MilpModel, MilpSolution, MilpVar
from repro.solvers.model import ModelSolution, ModelVar, SolverModel

__all__ = [
    "CpModel",
    "IntVar",
    "LpResult",
    "MilpModel",
    "MilpSolution",
    "MilpVar",
    "ModelSolution",
    "ModelVar",
    "SolverModel",
    "solve_bounded_lp",
    "solve_lp",
]
