"""Dense primal simplex LP solver (Big-M), numpy-based.

Solves::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                x >= 0

Small and deterministic (Bland's rule on ties keeps it cycle-free); meant
for the modest phase-assignment ILPs of the paper, not for industrial LPs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InfeasibleError, SolverError, UnboundedError

_BIG_M = 1e7
_EPS = 1e-8


@dataclasses.dataclass
class LpResult:
    x: np.ndarray
    objective: float
    iterations: int


def solve_bounded_lp(
    c: Sequence[float],
    bounds: Sequence[tuple],
    rows: Sequence[tuple],
    max_iterations: int = 50_000,
) -> LpResult:
    """LP with per-variable [lb, ub] bounds and (coeffs, sense, rhs) rows.

    *bounds* is one ``(lb, ub)`` pair per variable (``ub`` may be inf);
    *rows* are ``(coeff_dict, sense, rhs)`` with sense in <=, >=, ==.
    Internally shifts to ``x = lb + y`` standard form and solves with
    :func:`solve_lp`; the result is reported in the original coordinates
    with the true objective ``c @ x``.  This is the single standard-form
    builder shared by the MILP relaxation and the solver-model IR's
    :meth:`~repro.solvers.model.SolverModel.lp_bound`.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lbs = np.array([b[0] for b in bounds], dtype=float)
    ubs = np.array([b[1] for b in bounds], dtype=float)
    if not np.all(np.isfinite(lbs)):
        # the x = lb + y shift needs a finite anchor; -inf would poison
        # every constraint row with NaN
        raise SolverError("every variable needs a finite lower bound")
    if np.any(lbs > ubs + 1e-12):
        raise InfeasibleError("contradictory bounds")
    a_ub: List[np.ndarray] = []
    b_ub: List[float] = []
    a_eq: List[np.ndarray] = []
    b_eq: List[float] = []

    def row(coeffs) -> np.ndarray:
        r = np.zeros(n)
        for idx, coef in coeffs.items():
            r[idx] = coef
        return r

    for coeffs, sense, rhs in rows:
        r = row(coeffs)
        shift = float(r @ lbs)
        if sense == "<=":
            a_ub.append(r)
            b_ub.append(rhs - shift)
        elif sense == ">=":
            a_ub.append(-r)
            b_ub.append(shift - rhs)
        elif sense == "==":
            a_eq.append(r)
            b_eq.append(rhs - shift)
        else:
            raise SolverError(f"unknown sense {sense!r}")
    # upper bounds on the shifted variables
    for i in range(n):
        ub = ubs[i] - lbs[i]
        if math.isfinite(ub):
            r = np.zeros(n)
            r[i] = 1.0
            a_ub.append(r)
            b_ub.append(ub)
    res = solve_lp(
        c,
        a_ub=a_ub if a_ub else None,
        b_ub=b_ub if b_ub else None,
        a_eq=a_eq if a_eq else None,
        b_eq=b_eq if b_eq else None,
        max_iterations=max_iterations,
    )
    x = res.x + lbs
    return LpResult(x, float(c @ x), res.iterations)


def solve_lp(
    c: Sequence[float],
    a_ub: Optional[Sequence[Sequence[float]]] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[Sequence[Sequence[float]]] = None,
    b_eq: Optional[Sequence[float]] = None,
    max_iterations: int = 50_000,
) -> LpResult:
    """Solve the LP; raises Infeasible/Unbounded errors."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    rows: List[np.ndarray] = []
    rhs: List[float] = []
    kinds: List[str] = []
    if a_ub is not None:
        a_ub = np.asarray(a_ub, dtype=float)
        b_ub = np.asarray(b_ub, dtype=float)
        for i in range(a_ub.shape[0]):
            rows.append(a_ub[i])
            rhs.append(float(b_ub[i]))
            kinds.append("ub")
    if a_eq is not None:
        a_eq = np.asarray(a_eq, dtype=float)
        b_eq = np.asarray(b_eq, dtype=float)
        for i in range(a_eq.shape[0]):
            rows.append(a_eq[i])
            rhs.append(float(b_eq[i]))
            kinds.append("eq")
    m = len(rows)
    if m == 0:
        if np.any(c < -_EPS):
            raise UnboundedError("unconstrained variable with negative cost")
        return LpResult(np.zeros(n), 0.0, 0)

    # normalise negative rhs
    a = np.vstack(rows) if rows else np.zeros((0, n))
    b = np.asarray(rhs, dtype=float)
    for i in range(m):
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
            if kinds[i] == "ub":
                kinds[i] = "lb"  # became >=

    # columns: n structural + slacks/surplus + artificials
    slack_cols = sum(1 for k in kinds if k in ("ub", "lb"))
    art_cols = sum(1 for k in kinds if k in ("eq", "lb"))
    total = n + slack_cols + art_cols
    tab = np.zeros((m, total))
    tab[:, :n] = a
    cost = np.zeros(total)
    cost[:n] = c
    basis = [-1] * m
    si = n
    ai = n + slack_cols
    for i, kind in enumerate(kinds):
        if kind == "ub":
            tab[i, si] = 1.0
            basis[i] = si
            si += 1
        elif kind == "lb":
            tab[i, si] = -1.0
            si += 1
            tab[i, ai] = 1.0
            cost[ai] = _BIG_M
            basis[i] = ai
            ai += 1
        else:  # eq
            tab[i, ai] = 1.0
            cost[ai] = _BIG_M
            basis[i] = ai
            ai += 1

    b_vec = b.copy()
    # reduced costs with Big-M basis
    it = 0
    while True:
        it += 1
        if it > max_iterations:
            raise SolverError("simplex iteration limit exceeded")
        cb = cost[basis]
        # reduced costs: c_j - cb @ B^-1 A_j ; tab already holds B^-1 A
        reduced = cost - cb @ tab
        # entering variable: most negative reduced cost (Bland on ties)
        enter = -1
        best = -_EPS * max(1.0, float(np.max(np.abs(cost))))
        for j in range(total):
            if reduced[j] < best - _EPS:
                best = reduced[j]
                enter = j
        if enter < 0:
            break
        col = tab[:, enter]
        # ratio test
        leave = -1
        best_ratio = np.inf
        for i in range(m):
            if col[i] > _EPS:
                ratio = b_vec[i] / col[i]
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leave == -1 or basis[i] < basis[leave])
                ):
                    best_ratio = ratio
                    leave = i
        if leave < 0:
            raise UnboundedError("LP is unbounded")
        # pivot
        piv = tab[leave, enter]
        tab[leave] = tab[leave] / piv
        b_vec[leave] = b_vec[leave] / piv
        for i in range(m):
            if i != leave and abs(tab[i, enter]) > _EPS:
                factor = tab[i, enter]
                tab[i] -= factor * tab[leave]
                b_vec[i] -= factor * b_vec[leave]
        basis[leave] = enter

    # infeasibility: artificial still basic at positive level
    for i, bi in enumerate(basis):
        if bi >= n + slack_cols and b_vec[i] > 1e-5:
            raise InfeasibleError("LP infeasible (artificial variable basic)")
    x = np.zeros(total)
    for i, bi in enumerate(basis):
        x[bi] = b_vec[i]
    return LpResult(x[:n].copy(), float(c @ x[:n]), it)
