"""Branch-and-bound mixed-integer linear programming on the simplex core.

Modelling API in the spirit of OR-Tools' linear solver wrapper::

    m = MilpModel()
    x = m.add_var(lb=0, ub=10, integer=True, name="x")
    m.add_constraint({x: 1, y: 2}, ">=", 3)
    m.minimize({x: 1, y: 1})
    sol = m.solve()
    sol.value(x)

Depth-first branch and bound with best-bound pruning.  Intended for the
paper's phase-assignment ILP on small/medium networks; the scalable
heuristic (:mod:`repro.core.phase_assignment`) covers the big ones and is
validated against this exact solver in the tests.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleError, SolverError, SolverLimitError, UnboundedError
from repro.solvers.linprog import solve_bounded_lp

_INT_TOL = 1e-6


@dataclasses.dataclass(frozen=True)
class MilpVar:
    index: int
    lb: float
    ub: float
    integer: bool
    name: str


@dataclasses.dataclass
class MilpSolution:
    values: Dict[int, float]
    objective: float
    nodes_explored: int
    optimal: bool

    def value(self, var: "MilpVar | int") -> float:
        idx = var.index if isinstance(var, MilpVar) else var
        return self.values[idx]

    def int_value(self, var: "MilpVar | int") -> int:
        return int(round(self.value(var)))


class MilpModel:
    """A small MILP model: variables with bounds, linear constraints."""

    def __init__(self) -> None:
        self.vars: List[MilpVar] = []
        # constraints stored as (coeff dict, sense, rhs)
        self.constraints: List[Tuple[Dict[int, float], str, float]] = []
        self.objective: Dict[int, float] = {}

    def add_var(
        self,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = True,
        name: str = "",
    ) -> MilpVar:
        if lb > ub:
            raise SolverError(f"variable {name!r}: lb {lb} > ub {ub}")
        v = MilpVar(len(self.vars), lb, ub, integer, name or f"v{len(self.vars)}")
        self.vars.append(v)
        return v

    @staticmethod
    def _keyify(coeffs: Dict) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for k, c in coeffs.items():
            idx = k.index if isinstance(k, MilpVar) else int(k)
            out[idx] = out.get(idx, 0.0) + float(c)
        return out

    def add_constraint(self, coeffs: Dict, sense: str, rhs: float) -> None:
        if sense not in ("<=", ">=", "=="):
            raise SolverError(f"unknown sense {sense!r}")
        self.constraints.append((self._keyify(coeffs), sense, float(rhs)))

    def minimize(self, coeffs: Dict) -> None:
        self.objective = self._keyify(coeffs)

    def maximize(self, coeffs: Dict) -> None:
        self.objective = {k: -c for k, c in self._keyify(coeffs).items()}
        self._maximizing = True

    # -- solving ------------------------------------------------------------

    def _solve_relaxation(
        self, extra_bounds: Dict[int, Tuple[float, float]]
    ) -> Tuple[np.ndarray, float]:
        n = len(self.vars)
        c = np.zeros(n)
        for idx, coef in self.objective.items():
            c[idx] = coef
        bounds = [extra_bounds.get(v.index, (v.lb, v.ub)) for v in self.vars]
        res = solve_bounded_lp(c, bounds, self.constraints)
        return res.x, res.objective

    def solve(
        self, node_limit: int = 20_000, deadline: Optional[float] = None
    ) -> MilpSolution:
        """Branch and bound; raises on infeasibility, limit or unboundedness.

        *deadline* is an absolute ``time.monotonic()`` instant: past it
        the search stops with the incumbent (``optimal=False``), exactly
        like the node limit, or raises :class:`SolverLimitError` when no
        feasible solution was found yet.
        """
        best_x: Optional[np.ndarray] = None
        best_obj = math.inf
        nodes = 0
        limited = False
        stack: List[Dict[int, Tuple[float, float]]] = [{}]
        while stack:
            bounds = stack.pop()
            nodes += 1
            if nodes > node_limit or (
                deadline is not None and time.monotonic() >= deadline
            ):
                if best_x is None:
                    raise SolverLimitError(
                        "MILP node limit with no incumbent"
                        if nodes > node_limit
                        else "MILP time budget exhausted with no incumbent"
                    )
                limited = True
                break
            try:
                x, obj = self._solve_relaxation(bounds)
            except InfeasibleError:
                continue
            if obj >= best_obj - 1e-9:
                continue
            # find fractional integer var
            frac_idx = -1
            frac_dist = _INT_TOL
            for v in self.vars:
                if not v.integer:
                    continue
                val = x[v.index]
                dist = abs(val - round(val))
                if dist > frac_dist:
                    frac_dist = dist
                    frac_idx = v.index
                    break  # first-fractional branching (deterministic)
            if frac_idx < 0:
                xi = x.copy()
                for v in self.vars:
                    if v.integer:
                        xi[v.index] = round(xi[v.index])
                obj_i = float(
                    sum(self.objective.get(i, 0.0) * xi[i] for i in range(len(xi)))
                )
                if obj_i < best_obj:
                    best_obj = obj_i
                    best_x = xi
                continue
            val = x[frac_idx]
            cur = bounds.get(
                frac_idx, (self.vars[frac_idx].lb, self.vars[frac_idx].ub)
            )
            lo, hi = cur
            down = dict(bounds)
            down[frac_idx] = (lo, math.floor(val))
            up = dict(bounds)
            up[frac_idx] = (math.ceil(val), hi)
            # DFS: explore the side closer to the fractional value first
            if val - math.floor(val) <= 0.5:
                stack.append(up)
                stack.append(down)
            else:
                stack.append(down)
                stack.append(up)
        if best_x is None:
            raise InfeasibleError("MILP has no feasible solution")
        maximizing = getattr(self, "_maximizing", False)
        return MilpSolution(
            values={i: float(best_x[i]) for i in range(len(self.vars))},
            objective=-best_obj if maximizing else best_obj,
            nodes_explored=nodes,
            optimal=not limited,
        )


# ---------------------------------------------------------------------------
# solver-model IR backend
# ---------------------------------------------------------------------------

#: IR features this backend can lower (see repro.solvers.model)
IR_FEATURES = frozenset({"continuous", "unbounded"})


def solve_model(model, node_limit: int = 20_000, deadline: Optional[float] = None):
    """Lower a :class:`repro.solvers.model.SolverModel` and solve it.

    Variables and constraints are lowered in declaration order, so a
    model built in the same order as a hand-written :class:`MilpModel`
    solves bit-identically.  Returns ``(values, objective, optimal)``.
    """
    mm = MilpModel()
    for v in model.vars:
        mm.add_var(v.lb, v.ub, integer=v.integer, name=v.name)
    for kind, payload in model.constraints:
        if kind != "linear":
            raise SolverError(
                f"MILP backend cannot lower {kind!r} constraints"
            )
        coeffs, sense, rhs = payload
        if sense == "!=":
            raise SolverError("MILP backend cannot lower '!=' constraints")
        mm.add_constraint(dict(coeffs), sense, rhs)
    if model.maximizing:
        mm.maximize(dict(model.objective))
    else:
        mm.minimize(dict(model.objective))
    sol = mm.solve(node_limit=node_limit, deadline=deadline)
    return sol.values, sol.objective, sol.optimal
