"""Unified declarative solver-model IR: one model, several backends.

The phase-assignment ILP (§II-B) and the T1 input-staggering CP model
(§II-C) used to hand-encode their constraint systems against
:class:`~repro.solvers.milp.MilpModel` and
:class:`~repro.solvers.cpsat.CpModel` separately.  :class:`SolverModel`
is the shared intermediate representation both build instead:

* integer/continuous variables with interval bounds;
* linear constraints over <=, >=, ==, != ;
* ``AllDifferent`` (eq. 5 of the paper);
* one linear objective (minimised or maximised).

Backends declare what they can lower through their ``IR_FEATURES``
capability sets and the model reports what it needs through
:meth:`SolverModel.features_required`; ``solve(backend="auto")`` routes
on that — models with ``AllDifferent``/``!=`` go to the CP solver,
everything else to branch-and-bound MILP.  Lowering preserves variable
and constraint declaration order, so an IR model solves bit-identically
to the hand-encoded model it replaced (pinned in the tests).

:meth:`lp_bound` exposes the LP relaxation of the linear part (dropping
integrality, ``AllDifferent`` and ``!=``) as a cheap dual bound via the
shared standard-form builder in :mod:`repro.solvers.linprog`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError


@dataclasses.dataclass(frozen=True)
class ModelVar:
    """One IR variable (interval domain, optional integrality)."""

    index: int
    lb: float
    ub: float
    integer: bool
    name: str


@dataclasses.dataclass
class ModelSolution:
    """A solved model: values by variable index plus the objective."""

    values: Dict[int, float]
    objective: float
    backend: str
    optimal: bool = True

    def value(self, var: "ModelVar | int") -> float:
        idx = var.index if isinstance(var, ModelVar) else var
        return self.values[idx]

    def int_value(self, var: "ModelVar | int") -> int:
        return int(round(self.value(var)))


#: constraint payloads: ("linear", (coeffs, sense, rhs)) | ("alldiff", [idx])
Constraint = Tuple[str, object]


class SolverModel:
    """Build once, solve on whichever backend supports the model."""

    def __init__(self) -> None:
        self.vars: List[ModelVar] = []
        self.constraints: List[Constraint] = []
        self.objective: Dict[int, float] = {}
        self.maximizing = False

    # -- construction -------------------------------------------------------

    def add_var(
        self,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = True,
        name: str = "",
    ) -> ModelVar:
        if lb > ub:
            raise SolverError(f"variable {name!r}: lb {lb} > ub {ub}")
        v = ModelVar(
            len(self.vars), lb, ub, integer, name or f"v{len(self.vars)}"
        )
        self.vars.append(v)
        return v

    @staticmethod
    def _keyify(coeffs: Dict) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for k, c in coeffs.items():
            idx = k.index if isinstance(k, ModelVar) else int(k)
            out[idx] = out.get(idx, 0.0) + float(c)
        return out

    def add_linear(self, coeffs: Dict, sense: str, rhs: float) -> None:
        if sense not in ("<=", ">=", "==", "!="):
            raise SolverError(f"unknown sense {sense!r}")
        self.constraints.append(
            ("linear", (self._keyify(coeffs), sense, float(rhs)))
        )

    # MilpModel-compatible spelling
    add_constraint = add_linear

    def add_all_different(self, variables: Sequence["ModelVar | int"]) -> None:
        idxs = [
            v.index if isinstance(v, ModelVar) else int(v) for v in variables
        ]
        self.constraints.append(("alldiff", idxs))

    def minimize(self, coeffs: Dict) -> None:
        self.objective = self._keyify(coeffs)
        self.maximizing = False

    def maximize(self, coeffs: Dict) -> None:
        self.objective = self._keyify(coeffs)
        self.maximizing = True

    # -- capability routing --------------------------------------------------

    def features_required(self) -> FrozenSet[str]:
        """IR features a backend must support to lower this model."""
        feats = set()
        for kind, payload in self.constraints:
            if kind == "alldiff":
                feats.add("all_different")
            elif payload[1] == "!=":  # type: ignore[index]
                feats.add("not_equal")
        for v in self.vars:
            if not v.integer:
                feats.add("continuous")
            if not (math.isfinite(v.lb) and math.isfinite(v.ub)):
                feats.add("unbounded")
        return frozenset(feats)

    def pick_backend(self) -> str:
        """Routing policy: CP for AllDifferent/!= models, MILP otherwise."""
        from repro.solvers import cpsat, milp

        feats = self.features_required()
        if feats <= milp.IR_FEATURES:
            return "milp"
        if feats <= cpsat.IR_FEATURES:
            return "cp"
        raise SolverError(
            f"no backend supports features {sorted(feats)} "
            f"(milp: {sorted(milp.IR_FEATURES)}, cp: {sorted(cpsat.IR_FEATURES)})"
        )

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        backend: str = "auto",
        node_limit: Optional[int] = None,
        time_budget_s: Optional[float] = None,
    ) -> ModelSolution:
        """Solve on *backend* ("auto" | "milp" | "cp").

        *time_budget_s* caps the wall-clock spent inside the backend
        search: past it, a run holding an incumbent returns it with
        ``optimal=False`` and a run with no incumbent raises
        :class:`~repro.errors.SolverLimitError` — the hook the solver
        degradation chain uses to fall back to the heuristic.
        """
        import time

        from repro.solvers import cpsat, milp

        if backend == "auto":
            backend = self.pick_backend()
        kwargs = {}
        if node_limit is not None:
            kwargs["node_limit"] = node_limit
        if time_budget_s is not None:
            kwargs["deadline"] = time.monotonic() + time_budget_s
        if backend == "milp":
            values, objective, optimal = milp.solve_model(self, **kwargs)
        elif backend == "cp":
            values, objective, optimal = cpsat.solve_model(self, **kwargs)
        else:
            raise SolverError(f"unknown backend {backend!r}")
        return ModelSolution(values, objective, backend, optimal)

    def lp_bound(self) -> float:
        """Objective of the LP relaxation of the linear part.

        Integrality, ``AllDifferent`` and ``!=`` rows are dropped, so for
        minimisation this is a valid lower bound (upper for
        maximisation).
        """
        from repro.solvers.linprog import solve_bounded_lp

        n = len(self.vars)
        c = np.zeros(n)
        sign = -1.0 if self.maximizing else 1.0
        for idx, coef in self.objective.items():
            c[idx] = sign * coef
        rows = [
            payload
            for kind, payload in self.constraints
            if kind == "linear" and payload[1] != "!="  # type: ignore[index]
        ]
        res = solve_bounded_lp(c, [(v.lb, v.ub) for v in self.vars], rows)
        return sign * res.objective
