"""Deterministic, seedable fault injection for resilience testing.

The service layer, batch runner and solver backends are sprinkled with
named *fault points* — ``faults.should_fire("worker.crash")`` — that are
inert unless a fault *plan* is installed.  A plan maps point names to
trigger rules and is fully deterministic given its seed, so CI can
replay the exact same failure schedule on every run.

Plan strings (the ``REPRO_FAULTS`` environment variable or
:func:`install`)::

    seed=7;worker.crash@nth=2;client.request@p=0.25,times=3

* segments are ``;``-separated; a bare ``seed=N`` segment sets the
  plan-wide seed (default 0);
* every other segment is ``point@trigger[,trigger...]``;
* a point name may end in ``.*`` to prefix-match a family of points.

Trigger rules (combined with AND inside one segment):

``nth=N``
    fire on exactly the Nth hit of the point (1-based).
``after=N``
    fire on every hit strictly after the Nth.
``every=N``
    fire on every Nth hit (N, 2N, 3N, ...).
``p=X``
    fire with probability X per hit, from a per-point RNG derived
    deterministically from the plan seed and the point name.
``times=K``
    stop firing after K fires of this rule.
``seed=N``
    per-rule seed override (defaults to the plan seed).

What a fired point *means* is decided at the call site (the worker pool
crashes a worker, the client raises a simulated connection reset, the
cache raises :class:`~repro.errors.FaultInjected`), so the plan only
controls *when* faults happen — every failure mode stays a real code
path, not a mock.

Zero overhead when disabled: :func:`should_fire` returns immediately
when no plan is installed (one global read), and no fault point lives
inside the per-node network kernels — only at job/request granularity.

Thread safety: hit counters are guarded by one lock; concurrent
dispatcher threads observe a single global hit order.  Worker
*processes* never evaluate plans themselves — the dispatcher decides
worker-directed faults parent-side and ships them with the job, so
nth-hit schedules stay deterministic across respawns.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import FaultInjected, FaultPlanError

#: environment variable holding the process-wide default plan
ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``point@...`` plan segment."""

    point: str
    nth: Optional[int] = None
    after: Optional[int] = None
    every: Optional[int] = None
    p: Optional[float] = None
    times: Optional[int] = None
    seed: Optional[int] = None

    def matches(self, point: str) -> bool:
        if self.point.endswith(".*"):
            return point.startswith(self.point[:-1]) or point == self.point[:-2]
        return point == self.point


def _parse_int(key: str, value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise FaultPlanError(f"fault trigger {key}={value!r}: not an integer")
    if n < 0:
        raise FaultPlanError(f"fault trigger {key}={value!r}: must be >= 0")
    return n


def parse_plan(text: str) -> "FaultPlan":
    """Parse a plan string (see the module docstring for the grammar)."""
    rules: List[FaultRule] = []
    seed = 0
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        if "@" not in segment:
            if segment.startswith("seed="):
                seed = _parse_int("seed", segment[5:])
                continue
            raise FaultPlanError(
                f"bad fault-plan segment {segment!r}: expected "
                "'point@trigger,...' or 'seed=N'"
            )
        point, _, spec = segment.partition("@")
        point = point.strip()
        if not point:
            raise FaultPlanError(f"bad fault-plan segment {segment!r}: empty point")
        kwargs: Dict[str, Union[int, float]] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key in ("nth", "after", "every", "times", "seed"):
                kwargs[key] = _parse_int(key, value)
            elif key == "p":
                try:
                    prob = float(value)
                except ValueError:
                    raise FaultPlanError(f"fault trigger p={value!r}: not a number")
                if not 0.0 <= prob <= 1.0:
                    raise FaultPlanError(f"fault trigger p={value!r}: not in [0, 1]")
                kwargs["p"] = prob
            else:
                raise FaultPlanError(
                    f"unknown fault trigger {key!r} "
                    "(use nth, after, every, p, times, seed)"
                )
        if not kwargs:
            raise FaultPlanError(
                f"fault point {point!r} has no trigger — add nth=/after=/"
                "every=/p="
            )
        rules.append(FaultRule(point=point, **kwargs))  # type: ignore[arg-type]
    return FaultPlan(rules=rules, seed=seed)


def _rule_rng(plan_seed: int, rule: FaultRule, index: int) -> random.Random:
    base = rule.seed if rule.seed is not None else plan_seed
    digest = hashlib.sha256(f"{base}:{index}:{rule.point}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class FaultPlan:
    """An installed set of fault rules plus their live counters."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._hits: List[int] = [0] * len(self.rules)
        self._fires: List[int] = [0] * len(self.rules)
        self._point_hits: Dict[str, int] = {}
        self._point_fires: Dict[str, int] = {}
        self._rngs = [
            _rule_rng(self.seed, rule, i) for i, rule in enumerate(self.rules)
        ]

    # -- evaluation ----------------------------------------------------------

    def should_fire(self, point: str) -> bool:
        """Record one hit of *point*; ``True`` if any matching rule fires."""
        fired = False
        with self._lock:
            self._point_hits[point] = self._point_hits.get(point, 0) + 1
            for i, rule in enumerate(self.rules):
                if not rule.matches(point):
                    continue
                self._hits[i] += 1
                hit = self._hits[i]
                if rule.times is not None and self._fires[i] >= rule.times:
                    continue
                fire = True
                if rule.nth is not None and hit != rule.nth:
                    fire = False
                if rule.after is not None and hit <= rule.after:
                    fire = False
                if rule.every is not None and hit % rule.every != 0:
                    fire = False
                if fire and rule.p is not None:
                    # always consume one variate per evaluated hit so the
                    # stream stays aligned with the hit counter
                    fire = self._rngs[i].random() < rule.p
                elif rule.p is not None:
                    self._rngs[i].random()
                if fire:
                    self._fires[i] += 1
                    fired = True
            if fired:
                self._point_fires[point] = self._point_fires.get(point, 0) + 1
        return fired

    # -- introspection -------------------------------------------------------

    def hit_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._point_hits)

    def fire_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._point_fires)

    def total_fires(self) -> int:
        with self._lock:
            return sum(self._fires)


# -- module-level state -------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ENV_LOADED = False
_STATE_LOCK = threading.Lock()


def install(plan: Union[str, FaultPlan, None]) -> Optional[FaultPlan]:
    """Install *plan* process-wide (a plan string, a plan, or ``None``)."""
    global _ACTIVE, _ENV_LOADED
    if isinstance(plan, str):
        plan = parse_plan(plan)
    with _STATE_LOCK:
        _ACTIVE = plan
        _ENV_LOADED = True  # an explicit install overrides the env plan
    return plan


def clear() -> None:
    """Remove the installed plan (fault points become no-ops again)."""
    install(None)


def active() -> Optional[FaultPlan]:
    """The installed plan, loading ``REPRO_FAULTS`` on first use."""
    global _ACTIVE, _ENV_LOADED
    if not _ENV_LOADED:
        with _STATE_LOCK:
            if not _ENV_LOADED:
                text = os.environ.get(ENV_VAR)
                if text:
                    _ACTIVE = parse_plan(text)
                _ENV_LOADED = True
    return _ACTIVE


def should_fire(point: str) -> bool:
    """``True`` when the installed plan fires *point* on this hit.

    The disabled path is one global read and a ``None`` check.
    """
    plan = _ACTIVE
    if plan is None:
        if _ENV_LOADED:
            return False
        plan = active()
        if plan is None:
            return False
    return plan.should_fire(point)


def fire(point: str, detail: str = "") -> None:
    """Raise :class:`FaultInjected` if the plan fires *point*."""
    if should_fire(point):
        raise FaultInjected(point, detail)


def fire_counts() -> Dict[str, int]:
    """Fire counters of the installed plan (empty when none installed)."""
    plan = active()
    return plan.fire_counts() if plan is not None else {}


@contextlib.contextmanager
def injected(plan: Union[str, FaultPlan]):
    """Context manager: install *plan*, restore the previous plan on exit."""
    previous = active()
    installed = install(plan)
    try:
        yield installed
    finally:
        install(previous)
