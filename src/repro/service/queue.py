"""Async job queue in front of a warm multiprocessing worker pool.

Design
------
Each pool slot is one dispatcher *thread* owning one worker *process*
connected by a pipe.  Dispatchers pull jobs from a shared bounded queue,
ship ``(net, config)`` to their worker, and wait with a deadline.  That
one-thread-one-process shape is what buys the serving guarantees:

* **warm workers** — processes are spawned eagerly at :meth:`start` and
  run the *initializer* (:func:`repro.pipeline.batch.warm_worker` by
  default) once, so the NPN/T1 lookup tables are resident before the
  first job arrives and stay resident across jobs;
* **per-job timeouts** — the dispatcher polls the pipe with a deadline;
  an overrunning worker is killed (a thread could never interrupt it)
  and the slot respawns warm;
* **crash isolation** — a dying worker closes its pipe; the dispatcher
  sees EOF, fails *that job* with the exit code, respawns the worker
  and keeps serving.  A crash never takes down the daemon or any other
  in-flight job;
* **backpressure** — the queue is bounded; :meth:`submit` never blocks.
  A full queue raises :class:`QueueFullError` (the server's 429) instead
  of buffering unbounded work;
* **crash retries + quarantine** — an infrastructure failure (worker
  crash, broken pipe) requeues the job for another attempt; a job that
  kills its worker :attr:`job_max_attempts` times is *quarantined* with
  a diagnostic instead of being retried forever.  Flow errors and
  timeouts are deterministic, so they fail immediately with no retry.

Jobs are plain state machines (``queued -> running -> done | failed |
quarantined``) with a :class:`threading.Event` for waiters; the pool
reports every outcome through ``on_job_done`` — a job is *failed* or
*quarantined*, never lost.

Fault points (see :mod:`repro.faults`; all evaluated in the dispatcher
thread so nth-hit schedules stay deterministic across worker respawns):

* ``worker.crash`` — the worker hard-exits on this job attempt;
* ``worker.hang`` — the worker sleeps past the job timeout;
* ``worker.flow_error`` — the flow raises inside the worker;
* ``dispatch.pipe`` — the worker dies just before dispatch (exercises
  the respawn-and-resend path without failing the job).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as _stdlib_queue
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import faults
from repro.errors import ServiceError
from repro.network.logic_network import LogicNetwork
from repro.pipeline.batch import warm_worker
from repro.service.protocol import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    build_pipeline,
    flow_report,
)


class QueueFullError(ServiceError):
    """The bounded job queue is full — back off and resubmit."""

    def __init__(self, message: str):
        super().__init__(message, status=429)


class DrainingError(ServiceError):
    """The pool is draining for shutdown and accepts no new work."""

    def __init__(self, message: str):
        super().__init__(message, status=503)


def new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One unit of service work and its lifecycle record."""

    net: LogicNetwork
    config: Dict[str, Any]
    id: str = field(default_factory=new_job_id)
    cache_key: Optional[str] = None
    timeout_s: Optional[float] = None
    debug: Optional[Dict[str, Any]] = None

    state: str = QUEUED
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    attempts: int = 0
    retryable: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def finish_ok(self, report: Dict[str, Any]) -> None:
        self.report = report
        self.state = DONE
        self.finished_at = time.time()
        self.done.set()

    def finish_failed(self, error: str, retryable: bool = False) -> None:
        self.error = error
        self.retryable = retryable
        self.state = FAILED
        self.finished_at = time.time()
        self.done.set()

    def finish_quarantined(self, error: str) -> None:
        """Terminal poisoned-job state: never retried, never lost."""
        self.error = error
        self.retryable = False
        self.state = QUARANTINED
        self.finished_at = time.time()
        self.done.set()

    def status_dict(self) -> Dict[str, Any]:
        """The wire-format status view of this job."""
        return {
            "job_id": self.id,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
            "attempts": self.attempts,
            "retryable": self.retryable,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def _worker_main(conn, initializer: Optional[Callable[[], None]]) -> None:
    """Worker-process loop: warm up once, then serve jobs until EOF."""
    try:
        if initializer is not None:
            initializer()
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg is None:
                return
            job_id, net, config, debug = msg
            try:
                if debug:
                    sleep_s = debug.get("sleep_s")
                    if sleep_s:
                        time.sleep(float(sleep_s))
                    if debug.get("crash"):
                        # simulate a hard native crash (segfault, OOM kill):
                        # no exception, no cleanup, the pipe just dies
                        os._exit(3)
                    if debug.get("fail"):
                        raise RuntimeError(
                            "injected flow error (debug.fail)"
                        )
                ctx = build_pipeline(config).run(net)
                conn.send(("ok", job_id, flow_report(ctx, config=config)))
            except Exception:
                conn.send(("error", job_id, traceback.format_exc(limit=20)))
    except KeyboardInterrupt:  # pragma: no cover - parent teardown race
        pass


class _Worker:
    """Parent-side handle of one warm worker process."""

    def __init__(self, ctx, initializer: Optional[Callable[[], None]]):
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn, initializer), daemon=True
        )
        self.proc.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> Optional[int]:
        """Force-terminate the process; returns its exit code."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)
        return self.proc.exitcode

    def stop(self) -> None:
        """Ask the process to exit cleanly; force-kill if it won't."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=1.0)
        self.kill()


_SENTINEL = object()


class WorkerPool:
    """Bounded job queue feeding N warm, crash-isolated worker slots."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 32,
        job_timeout_s: float = 300.0,
        initializer: Optional[Callable[[], None]] = warm_worker,
        on_job_done: Optional[Callable[[Job], None]] = None,
        mp_context: Optional[str] = None,
        job_max_attempts: int = 3,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if job_max_attempts < 1:
            raise ValueError("job_max_attempts must be >= 1")
        self.workers = workers
        self.queue_size = queue_size
        self.job_timeout_s = job_timeout_s
        self.job_max_attempts = job_max_attempts
        self.initializer = initializer
        self.on_job_done = on_job_done
        self._ctx = mp.get_context(mp_context)
        self._queue: "_stdlib_queue.Queue" = _stdlib_queue.Queue(
            maxsize=queue_size
        )
        self._slots: List[Optional[_Worker]] = [None] * workers
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._accepting = False
        self._started = False
        self._pending = 0  # queued + in flight
        self._busy = 0
        self._stats = {
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "crashes": 0,
            "respawns": 0,
            "retries": 0,
            "quarantined": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker (warm) and the dispatcher threads."""
        if self._started:
            return
        # spawn the processes before any dispatcher thread exists: forking
        # from a single-threaded parent avoids inherited-lock hazards
        for i in range(self.workers):
            self._slots[i] = _Worker(self._ctx, self.initializer)
        for i in range(self.workers):
            t = threading.Thread(
                target=self._dispatch_loop,
                args=(i,),
                name=f"flow-dispatch-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._started = True
        self._accepting = True

    def begin_drain(self) -> None:
        """Stop accepting new jobs; queued and in-flight work continues."""
        self._accepting = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted job has finished.

        Returns ``False`` if *timeout* elapsed with work still pending.
        """
        # monotonic deadline: a wall-clock jump must not extend or cut
        # short the drain window
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._pending == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def shutdown(self) -> None:
        """Stop dispatchers and terminate every worker process."""
        self.begin_drain()
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for t in self._threads:
            t.join(timeout=10.0)
        for i, worker in enumerate(self._slots):
            if worker is not None:
                worker.stop()
                self._slots[i] = None
        self._threads = []
        self._started = False

    # -- submission ----------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue *job* without blocking; raises on backpressure/drain."""
        if not self._accepting:
            raise DrainingError("service is draining; not accepting jobs")
        with self._lock:
            self._pending += 1
        try:
            self._queue.put_nowait(job)
        except _stdlib_queue.Full:
            with self._lock:
                self._pending -= 1
            raise QueueFullError(
                f"job queue full ({self.queue_size} pending); retry later"
            ) from None
        job.state = QUEUED

    # -- dispatching ---------------------------------------------------------

    def _dispatch_loop(self, slot: int) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            requeue = False
            try:
                requeue = self._run_on_worker(slot, item)
                if requeue:
                    try:
                        # bypasses submit(): an accepted job may retry
                        # even while the pool is draining
                        self._queue.put_nowait(item)
                    except _stdlib_queue.Full:
                        requeue = False
                        self._quarantine(
                            item,
                            f"{item.error or 'worker crashed'}; retry "
                            "requeue rejected (queue full)",
                        )
            finally:
                if not requeue:
                    with self._lock:
                        self._pending -= 1
                    if self.on_job_done is not None:
                        try:
                            self.on_job_done(item)
                        except Exception:  # pragma: no cover - observer bug
                            traceback.print_exc()

    def _ensure_worker(self, slot: int) -> _Worker:
        worker = self._slots[slot]
        if worker is None or not worker.alive():
            if worker is not None:
                worker.kill()
            worker = _Worker(self._ctx, self.initializer)
            self._slots[slot] = worker
            with self._lock:
                self._stats["respawns"] += 1
        return worker

    def _replace_worker(self, slot: int) -> Optional[int]:
        """Kill and respawn the slot's worker; returns the old exit code."""
        worker = self._slots[slot]
        exitcode = worker.kill() if worker is not None else None
        self._slots[slot] = _Worker(self._ctx, self.initializer)
        with self._lock:
            self._stats["respawns"] += 1
        return exitcode

    def _injected_debug(self, job: Job) -> Optional[Dict[str, Any]]:
        """Apply worker-directed fault points to this job attempt.

        Evaluated here, in the dispatcher thread, so the plan's hit
        counters live in one process and nth-hit schedules survive
        worker respawns.  The directives ride the existing debug hooks.
        """
        debug = job.debug
        if faults.should_fire("worker.crash"):
            debug = dict(debug or {})
            debug["crash"] = True
        if faults.should_fire("worker.hang"):
            debug = dict(debug or {})
            timeout = job.timeout_s if job.timeout_s else self.job_timeout_s
            debug["sleep_s"] = timeout * 4 + 1.0
        if faults.should_fire("worker.flow_error"):
            debug = dict(debug or {})
            debug["fail"] = True
        return debug

    def _run_on_worker(self, slot: int, job: Job) -> bool:
        """Run one attempt of *job*; ``True`` asks for a retry requeue."""
        job.attempts += 1
        job.state = RUNNING
        job.started_at = time.time()
        with self._lock:
            self._busy += 1
        try:
            payload = (job.id, job.net, job.config, self._injected_debug(job))
            worker = self._slots[slot]
            if worker is None or not worker.alive():
                worker = self._ensure_worker(slot)
            if faults.should_fire("dispatch.pipe"):
                # the worker dies just before dispatch: the send below
                # hits a broken pipe and the respawn-and-resend path runs
                worker.kill()
            try:
                worker.conn.send(payload)
            except (BrokenPipeError, OSError):
                # the worker died between jobs — respawn once and retry
                self._replace_worker(slot)
                worker = self._slots[slot]
                try:
                    worker.conn.send(payload)
                except (BrokenPipeError, OSError):
                    return self._crash_disposition(
                        job, "worker unavailable (pipe broken twice)"
                    )
            timeout = job.timeout_s if job.timeout_s else self.job_timeout_s
            if not worker.conn.poll(timeout):
                self._replace_worker(slot)
                with self._lock:
                    self._stats["timeouts"] += 1
                # an overrun is deterministic work, not infrastructure
                # flakiness: retrying it would overrun again
                self._fail(job, f"job timed out after {timeout:g}s")
                return False
            try:
                status, job_id, payload = worker.conn.recv()
            except (EOFError, OSError):
                exitcode = self._replace_worker(slot)
                with self._lock:
                    self._stats["crashes"] += 1
                return self._crash_disposition(
                    job, f"worker crashed (exit code {exitcode})"
                )
            if job_id != job.id:  # pragma: no cover - protocol invariant
                self._replace_worker(slot)
                self._fail(job, "worker returned a mismatched job id")
                return False
            if status == "ok":
                with self._lock:
                    self._stats["completed"] += 1
                job.finish_ok(payload)
            else:
                self._fail(job, f"flow failed:\n{payload}")
            return False
        finally:
            with self._lock:
                self._busy -= 1

    def _crash_disposition(self, job: Job, error: str) -> bool:
        """Retry, fail-retryable or quarantine a crashed job attempt."""
        job.error = error
        if job.attempts < self.job_max_attempts:
            with self._lock:
                self._stats["retries"] += 1
            job.state = QUEUED
            return True
        if self.job_max_attempts == 1:
            # server-side retries disabled: surface the crash as a
            # retryable failure so the client may resubmit
            self._fail(job, error, retryable=True)
            return False
        self._quarantine(
            job,
            f"{error}; job crashed its worker on all "
            f"{job.attempts} attempts",
        )
        return False

    def _quarantine(self, job: Job, error: str) -> None:
        with self._lock:
            self._stats["quarantined"] += 1
        job.finish_quarantined(error)

    def _fail(self, job: Job, error: str, retryable: bool = False) -> None:
        with self._lock:
            self._stats["failed"] += 1
        job.finish_failed(error, retryable=retryable)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out = dict(self._stats)
            out["in_flight"] = self._busy
            out["pending"] = self._pending
        out["queue_depth"] = self._queue.qsize()
        out["queue_capacity"] = self.queue_size
        out["workers_configured"] = self.workers
        out["workers_alive"] = sum(
            1 for w in self._slots if w is not None and w.alive()
        )
        out["accepting"] = self._accepting
        return out
