"""The flow-service wire format: job specs, circuits, configs, reports.

Everything that crosses the HTTP boundary is strict JSON (the
:mod:`repro.io.json_report` dialect — no ``Infinity``/``NaN`` tokens),
and everything that feeds the content-addressed cache is canonicalised
here, so the client CLI, the daemon and the in-process test harness all
speak one schema.

Job submission payload::

    {
      "circuit": {"kind": "registry", "name": "adder", "preset": "ci"}
                 | {"kind": "blif",  "text": "<blif source>"}
                 | {"kind": "bench", "text": "<bench source>"},
      "config":  {"n_phases": 4, "use_t1": true, ...},   # partial; defaulted
      "timeout_s": 120,                                  # optional per-job cap
      "debug": {"sleep_s": 0.5, "crash": false}          # test hooks only
    }

The cache key of a job is ``sha256(structural_hash(circuit) + ":" +
canonical_dumps(normalized config))`` — the circuit contributes through
its canonical content hash (:meth:`LogicNetwork.structural_hash`), so
id-renumbered or renamed resubmissions of the same live structure hit
the same entry, and the config contributes through its canonical JSON
encoding, so key order and omitted-vs-explicit defaults cannot split
the cache.  ``debug`` and ``timeout_s`` are operational, not semantic:
they never reach the key (debug jobs bypass the cache entirely).

Flow reports (``schema: repro-flow-report/v1``) are emitted identically
by ``repro-flow run --json``, the service result endpoint and
:func:`flow_report` — one schema, three producers.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.io.json_report import canonical_dumps
from repro.network.logic_network import LogicNetwork
from repro.pipeline.context import FlowContext
from repro.pipeline.pipeline import Pipeline

#: schema tag stamped on every flow report
REPORT_SCHEMA = "repro-flow-report/v1"

#: the Pipeline.standard knobs that cross the wire, with their defaults.
#: (``library`` is deliberately absent: cost models are process-local
#: objects; the service always runs the default library.)
PIPELINE_DEFAULTS: Dict[str, Any] = {
    "n_phases": 4,
    "use_t1": True,
    "balance_pos": True,
    "share_chains": True,
    "free_pi_phases": True,
    "materialize_splitters": False,
    "balance_network": False,
    "phase_method": "heuristic",
    "sweeps": 4,
    "cuts_per_node": 8,
    "t1_min_outputs": 2,
    "verify": "cec",
}

_CONFIG_TYPES: Dict[str, type] = {
    key: type(value) for key, value in PIPELINE_DEFAULTS.items()
}

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: terminal poisoned-job state: the job crashed its worker on every
#: allowed attempt and will never be retried again
QUARANTINED = "quarantined"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED)
#: states a job can never leave
TERMINAL_STATES = (DONE, FAILED, QUARANTINED)


def normalize_config(config: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate a partial config and fill in the defaults.

    Unknown keys and mistyped values are rejected (:class:`ServiceError`)
    rather than ignored: a typo'd knob silently falling back to its
    default would poison the cache key space with configs that *look*
    distinct but ran identically.
    """
    out = dict(PIPELINE_DEFAULTS)
    if config is None:
        return out
    if not isinstance(config, dict):
        raise ServiceError(f"config must be an object, got {type(config).__name__}")
    for key, value in config.items():
        expected = _CONFIG_TYPES.get(key)
        if expected is None:
            raise ServiceError(
                f"unknown config key {key!r} "
                f"(known: {', '.join(sorted(PIPELINE_DEFAULTS))})"
            )
        # bool is an int subclass: require exact-type matches so that
        # e.g. sweeps=true cannot masquerade as sweeps=1
        if type(value) is not expected:
            raise ServiceError(
                f"config key {key!r} expects {expected.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        out[key] = value
    return out


def build_pipeline(config: Dict[str, Any]) -> Pipeline:
    """Instantiate the pipeline a normalized config describes.

    Raises :class:`ServiceError` on semantically invalid combinations
    (e.g. T1 staggering with fewer than 3 phases), so submission can be
    rejected with a 400 before any work is queued.
    """
    from repro.errors import ReproError

    cfg = dict(config)
    n_phases = cfg.pop("n_phases")
    use_t1 = cfg.pop("use_t1")
    try:
        return Pipeline.standard(n_phases=n_phases, use_t1=use_t1, **cfg)
    except ReproError as exc:
        raise ServiceError(f"invalid pipeline config: {exc}") from exc


# -- circuits ----------------------------------------------------------------

def registry_circuit(name: str, preset: str = "paper") -> Dict[str, Any]:
    """Payload for a registered benchmark (built server-side)."""
    return {"kind": "registry", "name": name, "preset": preset}


def blif_circuit(text: str) -> Dict[str, Any]:
    """Payload carrying an inline BLIF netlist."""
    return {"kind": "blif", "text": text}


def bench_circuit(text: str) -> Dict[str, Any]:
    """Payload carrying an inline ISCAS ``.bench`` netlist."""
    return {"kind": "bench", "text": text}


def circuit_payload_from_source(source: str, preset: str = "paper") -> Dict[str, Any]:
    """Map a CLI-style source (registry name or netlist path) to a payload.

    Registry names travel by reference (the daemon builds them); files
    travel by value (their text is inlined), so the daemon never needs
    filesystem access to the client's machine.
    """
    from repro.circuits import benchmark_registry, names

    if source in benchmark_registry:
        return registry_circuit(source, preset)
    if source.endswith(".blif") or source.endswith(".bench"):
        try:
            with open(source) as fh:
                text = fh.read()
        except OSError as exc:
            raise ServiceError(f"cannot read {source!r}: {exc}") from exc
        kind = "blif" if source.endswith(".blif") else "bench"
        return {"kind": kind, "text": text}
    raise ServiceError(
        f"unknown benchmark or file {source!r} "
        f"(known benchmarks: {', '.join(names())})"
    )


def load_circuit(payload: Any) -> LogicNetwork:
    """Materialise the network a circuit payload describes (daemon side)."""
    from repro.errors import ReproError

    if not isinstance(payload, dict) or "kind" not in payload:
        raise ServiceError("circuit payload must be an object with a 'kind'")
    kind = payload["kind"]
    try:
        if kind == "registry":
            from repro.circuits import build

            return build(payload["name"], payload.get("preset", "paper"))
        if kind == "blif":
            from repro.io import loads_blif

            return loads_blif(payload["text"])
        if kind == "bench":
            from repro.io import loads_bench

            return loads_bench(payload["text"])
    except ServiceError:
        raise
    except (ReproError, KeyError, TypeError) as exc:
        raise ServiceError(f"bad {kind!r} circuit payload: {exc}") from exc
    raise ServiceError(
        f"unknown circuit kind {kind!r} (use registry | blif | bench)"
    )


# -- cache keys --------------------------------------------------------------

def cache_key(net: LogicNetwork, config: Dict[str, Any]) -> str:
    """Content address of one (circuit, normalized config) job."""
    payload = net.structural_hash() + ":" + canonical_dumps(config)
    return hashlib.sha256(payload.encode()).hexdigest()


# -- reports -----------------------------------------------------------------

def flow_report(
    ctx: FlowContext,
    *,
    config: Optional[Dict[str, Any]] = None,
    cached: bool = False,
) -> Dict[str, Any]:
    """Package a finished :class:`FlowContext` as the v1 report schema.

    The dict is strict-JSON-safe (ints, floats, strings, bools, null)
    and is what ``repro-flow run --json`` prints and the service stores
    in (and serves from) its result cache.
    """
    metrics = None
    if ctx.metrics is not None:
        metrics = dict(ctx.metrics.as_dict())
        metrics["n_phases"] = ctx.metrics.n_phases
    return {
        "schema": REPORT_SCHEMA,
        "benchmark": ctx.name,
        "config": dict(config) if config is not None else None,
        "metrics": metrics,
        "t1": {"found": ctx.t1_found, "used": ctx.t1_used},
        "verified": ctx.verified,
        "runtime_s": ctx.runtime_s,
        "timings": dict(ctx.timings),
        "events": list(ctx.events),
        "cached": cached,
        # solver graceful degradation: True when an exact solve fell
        # back to the heuristic (budget exhausted or injected fault)
        "degraded": bool(ctx.extras.get("degraded", False)),
        "degraded_reason": ctx.extras.get("degraded_reason"),
    }
