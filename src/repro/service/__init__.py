"""Flow-as-a-service: persistent daemon, warm worker pool, result cache.

The subsystem the scale roadmap plugs into::

    from repro.service import FlowDaemon, ServiceClient

    daemon = FlowDaemon(port=0, workers=2)
    daemon.start()
    client = ServiceClient(daemon.url)
    report = client.submit_and_wait(
        {"kind": "registry", "name": "adder", "preset": "ci"},
        config={"use_t1": True},
    )
    daemon.stop()

Layers (bottom-up):

* :mod:`repro.service.protocol` — wire format, config normalization,
  circuit payloads, content-addressed cache keys, the v1 flow report.
* :mod:`repro.service.cache` — bounded LRU result cache keyed by
  ``structural_hash(circuit) + canonical(config)``.
* :mod:`repro.service.queue` — bounded job queue + warm multiprocessing
  worker pool with per-job timeouts and crash respawn.
* :mod:`repro.service.server` — the transport-free :class:`FlowService`
  core, the stdlib HTTP server, and the :class:`FlowDaemon` lifecycle
  (SIGTERM drain).
* :mod:`repro.service.client` — thin urllib client (used by the
  ``repro-flow submit/status/result`` CLI verbs).
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.protocol import (
    JOB_STATES,
    PIPELINE_DEFAULTS,
    QUARANTINED,
    REPORT_SCHEMA,
    TERMINAL_STATES,
    bench_circuit,
    blif_circuit,
    build_pipeline,
    cache_key,
    circuit_payload_from_source,
    flow_report,
    load_circuit,
    normalize_config,
    registry_circuit,
)
from repro.service.queue import (
    DrainingError,
    Job,
    QueueFullError,
    WorkerPool,
)
from repro.service.server import (
    FlowDaemon,
    FlowService,
    ServiceHTTPServer,
)

__all__ = [
    "JOB_STATES",
    "PIPELINE_DEFAULTS",
    "QUARANTINED",
    "REPORT_SCHEMA",
    "TERMINAL_STATES",
    "DrainingError",
    "FlowDaemon",
    "FlowService",
    "Job",
    "QueueFullError",
    "ResultCache",
    "ServiceClient",
    "ServiceHTTPServer",
    "WorkerPool",
    "bench_circuit",
    "blif_circuit",
    "build_pipeline",
    "cache_key",
    "circuit_payload_from_source",
    "flow_report",
    "load_circuit",
    "normalize_config",
    "registry_circuit",
]
