"""Content-addressed result cache for the flow service.

Keys are the :func:`repro.service.protocol.cache_key` content addresses
(structural hash of the circuit + canonical config encoding); values are
finished flow-report dicts.  The cache is a bounded LRU: a full cache
evicts the least-recently-*used* entry, so hot resubmissions survive
bursts of one-off traffic.

Thread safety: every public method takes the internal lock — the HTTP
handler threads, the pool dispatcher threads and the metrics endpoint
all touch one instance concurrently.  Stored and returned reports are
deep copies, so neither the producer nor any consumer can mutate a
cached entry in place (serving ``cached: true`` must never depend on
caller discipline).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import faults


class ResultCache:
    """Bounded, thread-safe, content-addressed report store."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached report for *key* (a fresh copy), or ``None``.

        The ``cache.get`` fault point simulates a lookup failure
        (storage error, corrupt entry); callers must treat it as a miss.
        """
        faults.fire("cache.get", "simulated cache lookup failure")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(entry)

    def put(self, key: str, report: Dict[str, Any]) -> None:
        """Store a finished report under its content address.

        The ``cache.put`` fault point simulates a store failure; callers
        must treat it as "not cached", never as a job failure.
        """
        faults.fire("cache.put", "simulated cache store failure")
        with self._lock:
            self._entries[key] = copy.deepcopy(report)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
