"""Thin HTTP client for the flow service (stdlib ``urllib`` only).

Speaks the strict-JSON wire format from :mod:`repro.service.protocol`;
every server-side failure surfaces as a :class:`ServiceError` carrying
the HTTP status (429 = backpressure, 503 = draining, 404 = unknown job,
500 = the job itself failed), so callers can branch on ``exc.status``
without parsing message text.

Resilience
----------
Transient failures are retried with capped exponential backoff plus
deterministic jitter: connection-level errors (refused / reset /
injected via the ``client.request`` fault point), 429 backpressure and
503 draining all back off and retry up to ``retries`` times before the
error escapes.  Set ``retries=0`` for the pre-retry behaviour.

:meth:`submit_and_wait` additionally resubmits a job whose *result* was
a retryable infrastructure failure (a worker crash on a pool with
server-side retries disabled) — the content-addressed cache makes
duplicate submissions cheap, so at-least-once delivery is safe.

All deadlines use ``time.monotonic()``: a wall-clock jump (NTP step,
suspend/resume) can neither cut a wait short nor extend it forever.
"""

from __future__ import annotations

import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro import faults
from repro.errors import ServiceError
from repro.io.json_report import dumps_json_report, strict_loads
from repro.service.protocol import DONE, TERMINAL_STATES

#: HTTP statuses worth retrying: backpressure and drain-in-progress.
#: status 0 (no HTTP response: refused, reset, timeout) is also retried.
RETRYABLE_STATUSES = (0, 429, 503)


class ServiceClient:
    """Client for one flow-service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 4,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        retry_jitter: float = 0.1,
        retry_seed: Optional[int] = 0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.retry_jitter = retry_jitter
        # seeded by default: retry schedules are reproducible unless the
        # caller opts into entropy with retry_seed=None
        self._rng = random.Random(retry_seed)

    # -- transport -----------------------------------------------------------

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff with jitter for retry *attempt*."""
        base = min(self.backoff_cap_s, self.backoff_s * (2.0 ** attempt))
        return base * (1.0 + self.retry_jitter * self._rng.random())

    @staticmethod
    def _transient(exc: ServiceError) -> bool:
        return exc.status in RETRYABLE_STATUSES

    def _request_once(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Any:
        if faults.should_fire("client.request"):
            raise ServiceError(
                f"injected connection reset for {method} {path} "
                "(fault: client.request)"
            )
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = dumps_json_report(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return strict_loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode(errors="replace")
            try:
                message = strict_loads(raw).get("error", raw)
            except (ValueError, AttributeError):
                message = raw or exc.reason
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach flow service at {self.base_url}: {exc.reason}"
            ) from exc

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        retry: bool = True,
    ) -> Any:
        attempts = 1 + (self.retries if retry else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if attempt + 1 >= attempts or not self._transient(exc):
                    raise
                time.sleep(self._backoff_delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API -----------------------------------------------------------------

    def submit(
        self,
        circuit: Dict[str, Any],
        config: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        debug: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit one job; returns its status dict (see ``Job.status_dict``).

        Retried on transient failures: resubmitting after an ambiguous
        connection loss is safe because jobs are content-addressed — a
        duplicate lands on the result cache, not on a worker.
        """
        payload: Dict[str, Any] = {"circuit": circuit}
        if config is not None:
            payload["config"] = config
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if debug is not None:
            payload["debug"] = debug
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished flow report (raises while the job is unfinished)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait_status(
        self,
        job_id: str,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
        poll_cap: float = 1.0,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        The poll interval backs off exponentially from *poll_interval*
        up to *poll_cap*, so long jobs do not hammer the daemon.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_interval
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {status['state']})"
                )
            time.sleep(delay)
            delay = min(poll_cap, delay * 2.0)

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; returns its report.

        A failed or quarantined job raises :class:`ServiceError` with
        the server-side error text (status 500).
        """
        self.wait_status(job_id, timeout=timeout, poll_interval=poll_interval)
        return self.result(job_id)

    def submit_and_wait(
        self,
        circuit: Dict[str, Any],
        config: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        timeout: Optional[float] = 300.0,
    ) -> Dict[str, Any]:
        """Submit and block for the report (cache hits return immediately).

        A job whose outcome is a *retryable* failure (infrastructure
        crash, not a flow error) is resubmitted with backoff up to the
        client's retry budget; deterministic failures raise immediately.
        """
        for attempt in range(1 + self.retries):
            status = self.submit(circuit, config=config, timeout_s=timeout_s)
            if status["state"] == DONE:
                return self.result(status["job_id"])
            status = self.wait_status(status["job_id"], timeout=timeout)
            if not (
                status.get("retryable") and attempt + 1 <= self.retries
            ):
                return self.result(status["job_id"])
            time.sleep(self._backoff_delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def wait_ready(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the daemon answers (boot handshake).

        Connection-refused during daemon startup is expected, not
        exceptional: each probe runs without per-request retries (so a
        dead port fails fast instead of burning the deadline inside the
        transport) and the probe interval backs off exponentially.
        """
        deadline = time.monotonic() + timeout
        delay = 0.05
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self._request("GET", "/healthz", retry=False)
            except ServiceError as exc:
                last = exc
                time.sleep(delay)
                delay = min(0.5, delay * 2.0)
        raise ServiceError(
            f"flow service at {self.base_url} not ready after {timeout:g}s"
            + (f" (last error: {last})" if last else "")
        )
