"""Thin HTTP client for the flow service (stdlib ``urllib`` only).

Speaks the strict-JSON wire format from :mod:`repro.service.protocol`;
every server-side failure surfaces as a :class:`ServiceError` carrying
the HTTP status (429 = backpressure, 503 = draining, 404 = unknown job,
500 = the job itself failed), so callers can branch on ``exc.status``
without parsing message text.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.io.json_report import dumps_json_report, strict_loads
from repro.service.protocol import DONE, FAILED


class ServiceClient:
    """Client for one flow-service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = dumps_json_report(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return strict_loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode(errors="replace")
            try:
                message = strict_loads(raw).get("error", raw)
            except (ValueError, AttributeError):
                message = raw or exc.reason
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach flow service at {self.base_url}: {exc.reason}"
            ) from exc

    # -- API -----------------------------------------------------------------

    def submit(
        self,
        circuit: Dict[str, Any],
        config: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        debug: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit one job; returns its status dict (see ``Job.status_dict``)."""
        payload: Dict[str, Any] = {"circuit": circuit}
        if config is not None:
            payload["config"] = config
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if debug is not None:
            payload["debug"] = debug
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished flow report (raises while the job is unfinished)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; returns its report.

        A failed job raises :class:`ServiceError` with the server-side
        error text (status 500).
        """
        deadline = None if timeout is None else time.time() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in (DONE, FAILED):
                return self.result(job_id)
            if deadline is not None and time.time() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last state: {status['state']})"
                )
            time.sleep(poll_interval)

    def submit_and_wait(
        self,
        circuit: Dict[str, Any],
        config: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        timeout: Optional[float] = 300.0,
    ) -> Dict[str, Any]:
        """Submit and block for the report (cache hits return immediately)."""
        status = self.submit(circuit, config=config, timeout_s=timeout_s)
        if status["state"] == DONE:
            return self.result(status["job_id"])
        return self.wait(status["job_id"], timeout=timeout)

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def wait_ready(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the daemon answers (boot handshake)."""
        deadline = time.time() + timeout
        last: Optional[ServiceError] = None
        while time.time() < deadline:
            try:
                return self.healthz()
            except ServiceError as exc:
                last = exc
                time.sleep(0.1)
        raise ServiceError(
            f"flow service at {self.base_url} not ready after {timeout:g}s"
            + (f" (last error: {last})" if last else "")
        )
