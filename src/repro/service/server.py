"""The flow daemon: JSON-over-HTTP API over the warm pool + result cache.

Three layers, separable for testing:

* :class:`FlowService` — transport-free core: submission (validation,
  content-address lookup, enqueue), the job store, cache wiring and the
  operational counters.  The test-suite drives it directly.
* :class:`ServiceHTTPServer` / the request handler — a stdlib
  ``ThreadingHTTPServer`` translating HTTP to service calls.  Every
  response body is strict JSON via :func:`repro.io.json_report`.
* :class:`FlowDaemon` — process-level lifecycle: start the pool and the
  HTTP thread, install SIGTERM/SIGINT handlers, drain gracefully.

Endpoints::

    POST /jobs               submit a job         -> 202 status (200 on cache hit)
    GET  /jobs/<id>          job status           -> 200
    GET  /jobs/<id>/result   finished flow report -> 200 | 409 not finished
    GET  /healthz            liveness + drain state
    GET  /metrics            queue/cache/worker/latency counters

Error mapping: malformed requests 400, unknown jobs 404, backpressure
429, draining 503, failed jobs surface as ``state: "failed"`` with the
error text (the *request* for them still succeeds).
"""

from __future__ import annotations

import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import faults
from repro.errors import ServiceError
from repro.io.json_report import dumps_json_report, strict_loads
from repro.pipeline.batch import warm_worker
from repro.service.cache import ResultCache
from repro.service.protocol import (
    DONE,
    FAILED,
    QUARANTINED,
    TERMINAL_STATES,
    build_pipeline,
    cache_key,
    load_circuit,
    normalize_config,
)
from repro.service.queue import DrainingError, Job, QueueFullError, WorkerPool

#: finished-job records kept for status/result queries (oldest pruned)
MAX_JOB_RECORDS = 4096


class FlowService:
    """Transport-free service core: jobs, warm pool, content cache."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 32,
        job_timeout_s: float = 300.0,
        cache_entries: int = 256,
        initializer=warm_worker,
        mp_context: Optional[str] = None,
        max_job_records: int = MAX_JOB_RECORDS,
        job_max_attempts: int = 3,
        fault_plan: Optional[str] = None,
    ):
        self.cache = ResultCache(cache_entries)
        self.pool = WorkerPool(
            workers=workers,
            queue_size=queue_size,
            job_timeout_s=job_timeout_s,
            initializer=initializer,
            on_job_done=self._job_finished,
            mp_context=mp_context,
            job_max_attempts=job_max_attempts,
        )
        self.fault_plan = fault_plan
        self.max_job_records = max_job_records
        self._jobs: Dict[str, Job] = {}
        self._jobs_order: list = []
        self._lock = threading.Lock()
        self._draining = False
        self._started_at = time.time()
        self._submitted = 0
        self._rejected = 0
        self._cache_served = 0
        self._cache_errors = 0
        self._stage_latency: Dict[str, Tuple[int, float]] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.fault_plan:
            faults.install(self.fault_plan)
        self.pool.start()

    def begin_drain(self) -> None:
        """Refuse new submissions; queued/in-flight jobs keep running."""
        self._draining = True
        self.pool.begin_drain()

    @property
    def draining(self) -> bool:
        return self._draining

    def stop(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Drain accepted work (bounded), then tear the pool down.

        Returns ``True`` when every accepted job finished before the
        teardown; jobs still running at the deadline die with the pool.
        """
        self.begin_drain()
        drained = self.pool.drain(timeout=drain_timeout)
        self.pool.shutdown()
        return drained

    # -- submission ----------------------------------------------------------

    def submit(self, payload: Any) -> Dict[str, Any]:
        """Validate and accept one job; returns its status dict.

        Cache hits complete synchronously (the job never touches the
        queue); misses are enqueued, subject to backpressure.
        """
        if self._draining:
            raise DrainingError("service is draining; not accepting jobs")
        if faults.should_fire("server.reject"):
            with self._lock:
                self._rejected += 1
            raise QueueFullError(
                "injected backpressure (fault: server.reject); retry later"
            )
        if not isinstance(payload, dict):
            raise ServiceError("job payload must be a JSON object")
        if "circuit" not in payload:
            raise ServiceError("job payload needs a 'circuit'")
        unknown = set(payload) - {"circuit", "config", "timeout_s", "debug"}
        if unknown:
            raise ServiceError(
                f"unknown job payload keys: {', '.join(sorted(unknown))}"
            )
        config = normalize_config(payload.get("config"))
        build_pipeline(config)  # reject invalid combinations pre-queue
        net = load_circuit(payload["circuit"])
        timeout_s = self._job_timeout(payload.get("timeout_s"))
        debug = payload.get("debug")
        if debug is not None and not isinstance(debug, dict):
            raise ServiceError("debug must be an object")

        job = Job(net=net, config=config, timeout_s=timeout_s, debug=debug)
        if not debug:
            # debug jobs (sleep/crash hooks) are never content-addressed
            job.cache_key = cache_key(net, config)
            try:
                hit = self.cache.get(job.cache_key)
            except Exception:
                # a broken cache degrades to a miss — it must never
                # reject or fail the job itself
                hit = None
                with self._lock:
                    self._cache_errors += 1
            if hit is not None:
                hit["cached"] = True
                job.cached = True
                job.started_at = job.submitted_at
                job.finish_ok(hit)
                with self._lock:
                    self._submitted += 1
                    self._cache_served += 1
                self._store(job)
                return job.status_dict()
        try:
            self.pool.submit(job)
        except ServiceError:
            with self._lock:
                self._rejected += 1
            raise
        with self._lock:
            self._submitted += 1
        self._store(job)
        return job.status_dict()

    def _job_timeout(self, requested: Any) -> float:
        limit = self.pool.job_timeout_s
        if requested is None:
            return limit
        if not isinstance(requested, (int, float)) or isinstance(
            requested, bool
        ):
            raise ServiceError("timeout_s must be a number")
        if requested <= 0:
            raise ServiceError("timeout_s must be positive")
        # the server-side limit is a cap, not a default
        return min(float(requested), limit)

    def _store(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.id] = job
            self._jobs_order.append(job.id)
            while len(self._jobs_order) > self.max_job_records:
                for i, jid in enumerate(self._jobs_order):
                    old = self._jobs.get(jid)
                    if old is not None and old.state in TERMINAL_STATES:
                        del self._jobs[jid]
                        del self._jobs_order[i]
                        break
                else:  # every record still active: keep them all
                    break

    def _job_finished(self, job: Job) -> None:
        """Pool callback: populate the cache and the latency aggregates."""
        if job.state == DONE and job.cache_key and job.report is not None:
            try:
                self.cache.put(job.cache_key, job.report)
            except Exception:
                # a failed store loses the cache entry, not the result
                with self._lock:
                    self._cache_errors += 1
        if job.report is not None:
            timings = job.report.get("timings") or {}
            with self._lock:
                for stage, seconds in timings.items():
                    count, total = self._stage_latency.get(stage, (0, 0.0))
                    self._stage_latency[stage] = (count + 1, total + seconds)

    # -- queries -------------------------------------------------------------

    def _get_job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def job_status(self, job_id: str) -> Dict[str, Any]:
        return self._get_job(job_id).status_dict()

    def job_result(self, job_id: str) -> Dict[str, Any]:
        """The finished flow report; raises while the job is unfinished."""
        job = self._get_job(job_id)
        if job.state == DONE:
            assert job.report is not None
            return job.report
        if job.state == FAILED:
            raise ServiceError(
                f"job {job_id} failed: {job.error}", status=500
            )
        if job.state == QUARANTINED:
            raise ServiceError(
                f"job {job_id} quarantined: {job.error}", status=500
            )
        raise ServiceError(
            f"job {job_id} is {job.state}; result not ready", status=409
        )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job finishes (in-process callers and tests)."""
        job = self._get_job(job_id)
        if not job.done.wait(timeout):
            raise ServiceError(f"timed out waiting for job {job_id}")
        return job

    def healthz(self) -> Dict[str, Any]:
        stats = self.pool.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.time() - self._started_at,
            "workers_alive": stats["workers_alive"],
            "workers_configured": stats["workers_configured"],
        }

    def metrics(self) -> Dict[str, Any]:
        pool = self.pool.stats()
        with self._lock:
            submitted = self._submitted
            rejected = self._rejected
            cache_served = self._cache_served
            cache_errors = self._cache_errors
            quarantined_jobs = [
                {"job_id": job.id, "attempts": job.attempts,
                 "error": job.error}
                for job in self._jobs.values()
                if job.state == QUARANTINED
            ]
            stage_latency = {
                stage: {
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count,
                }
                for stage, (count, total) in sorted(
                    self._stage_latency.items()
                )
            }
        return {
            "uptime_s": time.time() - self._started_at,
            "queue": {
                "depth": pool["queue_depth"],
                "capacity": pool["queue_capacity"],
                "in_flight": pool["in_flight"],
                "pending": pool["pending"],
            },
            "workers": {
                "configured": pool["workers_configured"],
                "alive": pool["workers_alive"],
                "respawns": pool["respawns"],
            },
            "jobs": {
                "submitted": submitted,
                "completed": pool["completed"],
                "failed": pool["failed"],
                "timeouts": pool["timeouts"],
                "crashes": pool["crashes"],
                "retries": pool["retries"],
                "quarantined": pool["quarantined"],
                "rejected": rejected,
                "served_from_cache": cache_served,
            },
            "quarantine": quarantined_jobs,
            "cache": {**self.cache.stats(), "errors": cache_errors},
            "stage_latency_s": stage_latency,
            "faults": faults.fire_counts(),
        }


# -- HTTP layer --------------------------------------------------------------

class _FlowRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-flow-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> FlowService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: N802
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send(self, code: int, obj: Any) -> None:
        body = dumps_json_report(obj).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except ServiceError as exc:
            self._send_error(exc.status or 400, str(exc))
        except Exception as exc:  # pragma: no cover - handler bug
            self._send_error(500, f"internal error: {exc}")

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._handle_post)

    def _handle_get(self) -> None:
        path = self.path.rstrip("/")
        if path == "/healthz":
            health = self.service.healthz()
            self._send(503 if health["status"] == "draining" else 200, health)
            return
        if path == "/metrics":
            self._send(200, self.service.metrics())
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            if len(parts) == 1:
                self._send(200, self.service.job_status(parts[0]))
                return
            if len(parts) == 2 and parts[1] == "result":
                self._send(200, self.service.job_result(parts[0]))
                return
        self._send_error(404, f"no such endpoint: {self.path}")

    def _handle_post(self) -> None:
        if self.path.rstrip("/") != "/jobs":
            self._send_error(404, f"no such endpoint: {self.path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = strict_loads(raw.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"malformed JSON body: {exc}") from exc
        status = self.service.submit(payload)
        # cache hits are complete on arrival; queued work is 202 Accepted
        self._send(200 if status["state"] == DONE else 202, status)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`FlowService`."""

    daemon_threads = True

    def __init__(self, address, service: FlowService, verbose: bool = False):
        super().__init__(address, _FlowRequestHandler)
        self.service = service
        self.verbose = verbose


class FlowDaemon:
    """Process-level lifecycle: HTTP thread, signal handling, drain."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout_s: float = 30.0,
        verbose: bool = False,
        **service_kwargs,
    ):
        self.service = FlowService(**service_kwargs)
        self.httpd = ServiceHTTPServer((host, port), self.service, verbose)
        self.drain_timeout_s = drain_timeout_s
        self._http_thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        self._stopped = False

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.service.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="flow-http",
            daemon=True,
        )
        self._http_thread.start()

    def request_stop(self, *_args) -> None:
        """Signal-handler-safe stop trigger (SIGTERM/SIGINT target)."""
        self._stop_requested.set()

    def install_signal_handlers(self) -> Dict[int, Any]:
        """Route SIGTERM/SIGINT to a graceful drain; returns old handlers."""
        old = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            old[sig] = signal.signal(sig, self.request_stop)
        return old

    def wait_for_stop(self, timeout: Optional[float] = None) -> bool:
        return self._stop_requested.wait(timeout)

    def stop(self) -> bool:
        """Graceful shutdown: drain accepted jobs, then close everything."""
        if self._stopped:
            return True
        self._stopped = True
        drained = self.service.stop(drain_timeout=self.drain_timeout_s)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        return drained

    def serve_forever(self) -> bool:
        """Run until SIGTERM/SIGINT, then drain and exit (the CLI path)."""
        self.start()
        old = self.install_signal_handlers()
        try:
            self.wait_for_stop()
            return self.stop()
        finally:
            for sig, handler in old.items():
                signal.signal(sig, handler)
