"""``repro-flow`` command-line driver.

Examples::

    repro-flow run adder --phases 4 --t1            # one flow, one circuit
    repro-flow run adder --t1 --timings             # + per-pass breakdown
    repro-flow run adder --t1 --json                # strict-JSON report
    repro-flow table --preset ci --jobs 4           # Table I, 4 workers
    repro-flow list                                 # registered benchmarks
    repro-flow run mydesign.blif --t1 --verify full # external netlist
    repro-flow fig1b                                # T1 pulse waveform

Service mode (flow-as-a-service)::

    repro-flow serve --port 8080 --workers 4        # persistent daemon
    repro-flow submit adder --t1 --wait             # job through the daemon
    repro-flow status <job-id>                      # poll a job
    repro-flow result <job-id> --wait               # fetch/await the report

Flows are composed with :mod:`repro.pipeline` and batched with
:func:`repro.pipeline.run_many`; the service verbs speak the strict-JSON
wire format from :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.circuits import benchmark_registry, build, names
from repro.errors import ReproError
from repro.network.logic_network import LogicNetwork
from repro.pipeline import run_table


def _open_netlist(source: str):
    """Open a user-supplied netlist path, mapping I/O failures to the
    CLI's ``error: ... / exit 2`` contract instead of a traceback."""
    try:
        return open(source)
    except OSError as exc:
        raise ReproError(f"cannot read {source!r}: {exc}") from exc


def _load_network(
    source: str, preset: str, scale: Optional[int] = None
) -> LogicNetwork:
    if scale is not None:
        from repro.circuits.synthetic import SYNTHETIC_BENCHMARKS, build_synthetic

        if source in SYNTHETIC_BENCHMARKS:
            return build_synthetic(source, scale)
        raise SystemExit(
            f"--scale only applies to synthetic benchmarks "
            f"({', '.join(sorted(SYNTHETIC_BENCHMARKS))}), not {source!r}"
        )
    if source in benchmark_registry:
        return build(source, preset)
    if source.endswith(".blif"):
        from repro.io import read_blif

        with _open_netlist(source) as fh:
            return read_blif(fh)
    if source.endswith(".bench"):
        from repro.io import read_bench

        with _open_netlist(source) as fh:
            return read_bench(fh)
    raise SystemExit(
        f"unknown benchmark or file {source!r} "
        f"(known benchmarks: {', '.join(names())})"
    )


def _cmd_list(args) -> int:
    print(f"{'name':<12} description")
    print("-" * 60)
    for name in names():
        print(f"{name:<12} {benchmark_registry[name].description}")
    if getattr(args, "scale", False):
        from repro.circuits.synthetic import SYNTHETIC_DESCRIPTIONS

        print()
        print(f"{'synthetic':<12} (size-parameterised; use run <name> --scale N)")
        print("-" * 60)
        for name in sorted(SYNTHETIC_DESCRIPTIONS):
            print(f"{name:<12} {SYNTHETIC_DESCRIPTIONS[name]}")
    return 0


def _run_config(args) -> dict:
    """The normalized pipeline config the run/submit args describe."""
    from repro.service.protocol import normalize_config

    return normalize_config(
        {
            "n_phases": args.phases,
            "use_t1": args.t1,
            "verify": args.verify,
            "sweeps": args.sweeps,
            "balance_pos": not args.no_po_balance,
            "share_chains": not args.no_share,
            "balance_network": args.balance,
        }
    )


def _cmd_run(args) -> int:
    from repro.service.protocol import build_pipeline

    net = _load_network(args.benchmark, args.preset, getattr(args, "scale", None))
    config = _run_config(args)
    pipeline = build_pipeline(config)
    ctx = pipeline.run(net)
    if args.json:
        from repro.io.json_report import dumps_json_report
        from repro.service.protocol import flow_report

        sys.stdout.write(dumps_json_report(flow_report(ctx, config=config)))
        return 0
    m = ctx.metrics
    print(f"benchmark : {net.name}")
    print(f"flow      : {'T1 + ' if args.t1 else ''}{args.phases}-phase")
    if args.t1:
        print(f"T1 cells  : found {ctx.t1_found}, used {ctx.t1_used}")
    print(f"#DFF      : {m.num_dffs}")
    print(f"area (JJ) : {m.area_jj}")
    print(f"depth     : {m.depth_cycles} cycles")
    print(f"splitters : {m.num_splitters}")
    print(f"runtime   : {ctx.runtime_s:.2f} s")
    if ctx.verified is not None:
        print(f"verified  : {ctx.verified}")
    if args.timings:
        print("per-pass timing:")
        for pass_name, seconds in ctx.timings.items():
            print(f"  {pass_name:<22} {seconds:>8.3f} s")
    if args.energy:
        from repro.sfq import estimate_energy

        rep = estimate_energy(ctx.netlist, frequency_ghz=args.frequency)
        print(f"energy    : {rep.summary()}")
    if args.dot:
        from repro.io import netlist_to_dot

        with open(args.dot, "w") as fh:
            netlist_to_dot(ctx.netlist, fh)
        print(f"wrote {args.dot}")
    return 0


def _cmd_table(args) -> int:
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")
    table = run_table(
        benchmarks=args.benchmarks or list(names()),
        preset=args.preset,
        n_phases=args.phases,
        verify=args.verify,
        sweeps=args.sweeps,
        jobs=args.jobs,
        progress=lambda name: print(f"[{name}: done]", file=sys.stderr),
        # registry names and external .blif/.bench files both work
        loader=lambda name: _load_network(name, args.preset),
        journal_path=args.journal,
        resume=args.resume,
    )
    print(table.format())
    return 0


def _print_json(obj) -> None:
    from repro.io.json_report import dumps_json_report

    sys.stdout.write(dumps_json_report(obj))


def _client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url, timeout=args.http_timeout)


def _cmd_serve(args) -> int:
    from repro.faults import parse_plan
    from repro.service.server import FlowDaemon

    fault_plan = parse_plan(args.faults) if args.faults else None
    daemon = FlowDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        job_timeout_s=args.job_timeout,
        cache_entries=args.cache_entries,
        drain_timeout_s=args.drain_timeout,
        verbose=args.verbose,
        job_max_attempts=args.job_max_attempts,
        fault_plan=fault_plan,
    )
    daemon.start()
    host, port = daemon.address
    print(
        f"repro-flow service listening on http://{host}:{port} "
        f"({args.workers} warm workers, queue {args.queue_size}, "
        f"job timeout {args.job_timeout:g}s)",
        file=sys.stderr,
    )
    old = daemon.install_signal_handlers()
    try:
        daemon.wait_for_stop()
        print("draining...", file=sys.stderr)
        drained = daemon.stop()
    finally:
        import signal as _signal

        for sig, handler in old.items():
            _signal.signal(sig, handler)
    print("shut down cleanly" if drained else "shut down with jobs pending",
          file=sys.stderr)
    return 0 if drained else 1


def _cmd_submit(args) -> int:
    from repro.service.protocol import circuit_payload_from_source

    client = _client(args)
    circuit = circuit_payload_from_source(args.benchmark, args.preset)
    status = client.submit(
        circuit,
        config=_run_config(args),
        timeout_s=args.job_timeout,
    )
    if args.wait:
        _print_json(client.wait(status["job_id"], timeout=args.wait_timeout))
    else:
        _print_json(status)
    return 0


def _cmd_status(args) -> int:
    _print_json(_client(args).status(args.job_id))
    return 0


def _cmd_result(args) -> int:
    client = _client(args)
    if args.wait:
        _print_json(client.wait(args.job_id, timeout=args.wait_timeout))
    else:
        _print_json(client.result(args.job_id))
    return 0


def _cmd_fig1b(_args) -> int:
    from repro.sfq import simulate_pulse_train, waveform_ascii

    events = [
        (0, "T"), (3, "R"),
        (4, "T"), (5, "T"), (7, "R"),
        (8, "T"), (9, "T"), (10, "T"), (11, "R"),
    ]
    history = simulate_pulse_train(events)
    print("T1 cell pulse-level simulation (Fig. 1b stimulus: a | ab | abc)")
    print(waveform_ascii(history))
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-flow",
        description="T1-aware SFQ technology mapping (DATE 2024 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list registered benchmarks")
    list_p.add_argument(
        "--scale", action="store_true",
        help="also list the size-parameterised synthetic generators",
    )
    list_p.set_defaults(fn=_cmd_list)

    def add_flow_args(p_):
        """The flow knobs shared by ``run`` and ``submit``."""
        p_.add_argument(
            "benchmark", help="benchmark name or .blif/.bench file"
        )
        p_.add_argument("--phases", "-n", type=int, default=4)
        p_.add_argument(
            "--t1", action="store_true", help="enable T1 detection"
        )
        p_.add_argument(
            "--preset", choices=("paper", "ci"), default="paper",
            help="benchmark size preset",
        )
        p_.add_argument(
            "--verify", choices=("none", "cec", "full"), default="cec"
        )
        p_.add_argument("--sweeps", type=int, default=4)
        p_.add_argument("--no-po-balance", action="store_true")
        p_.add_argument("--no-share", action="store_true",
                        help="per-edge DFF chains (no net sharing)")
        p_.add_argument("--balance", action="store_true",
                        help="depth-rebalance associative trees first")

    def add_client_args(p_):
        """The transport knobs shared by every service client verb."""
        p_.add_argument("--url", default="http://127.0.0.1:8080",
                        help="flow-service base URL")
        p_.add_argument("--http-timeout", type=float, default=30.0,
                        help="per-request HTTP timeout in seconds")
        p_.add_argument("--wait-timeout", type=float, default=600.0,
                        help="total seconds to wait with --wait")

    run_p = sub.add_parser("run", help="run one flow on one circuit")
    add_flow_args(run_p)
    run_p.add_argument(
        "--scale", type=int, default=None, metavar="N",
        help="build the named synthetic generator at ~N nodes instead of "
             "a registry benchmark (see `list --scale`)",
    )
    run_p.add_argument("--dot", help="write the staged netlist as DOT")
    run_p.add_argument("--energy", action="store_true",
                       help="print the RSFQ energy/power estimate")
    run_p.add_argument("--frequency", type=float, default=20.0,
                       help="clock frequency in GHz for --energy")
    run_p.add_argument("--timings", action="store_true",
                       help="print the per-pass timing breakdown")
    run_p.add_argument("--json", action="store_true",
                       help="print the strict-JSON flow report instead of "
                            "the human-readable summary")
    run_p.set_defaults(fn=_cmd_run)

    tab_p = sub.add_parser("table", help="reproduce Table I")
    tab_p.add_argument(
        "benchmarks", nargs="*", help="subset of benchmarks (default: all)"
    )
    tab_p.add_argument("--phases", "-n", type=int, default=4)
    tab_p.add_argument(
        "--preset", choices=("paper", "ci"), default="paper"
    )
    tab_p.add_argument(
        "--verify", choices=("none", "cec", "full"), default="none"
    )
    tab_p.add_argument("--sweeps", type=int, default=4)
    tab_p.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the batch runner")
    tab_p.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint every finished flow to an "
                            "append-only journal file")
    tab_p.add_argument("--resume", action="store_true",
                       help="resume from an existing --journal, re-running "
                            "only the unfinished flows")
    tab_p.set_defaults(fn=_cmd_table)

    serve_p = sub.add_parser(
        "serve", help="run the persistent flow-service daemon"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 picks a free one)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="warm worker processes")
    serve_p.add_argument("--queue-size", type=int, default=32,
                         help="bounded queue depth (backpressure beyond)")
    serve_p.add_argument("--job-timeout", type=float, default=300.0,
                         help="per-job wall-clock cap in seconds")
    serve_p.add_argument("--cache-entries", type=int, default=256,
                         help="result-cache capacity (LRU beyond)")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds to wait for in-flight jobs on "
                              "SIGTERM before hard shutdown")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    serve_p.add_argument("--job-max-attempts", type=int, default=3,
                         help="attempts before a worker-crashing job is "
                              "quarantined")
    serve_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="deterministic fault-injection plan, e.g. "
                              "'seed=7;worker.crash@nth=2' (testing only)")
    serve_p.set_defaults(fn=_cmd_serve)

    submit_p = sub.add_parser(
        "submit", help="submit one flow job to a running daemon"
    )
    add_flow_args(submit_p)
    add_client_args(submit_p)
    submit_p.add_argument("--job-timeout", type=float, default=None,
                          help="per-job timeout request (capped server-side)")
    submit_p.add_argument("--wait", action="store_true",
                          help="block and print the finished report")
    submit_p.set_defaults(fn=_cmd_submit)

    status_p = sub.add_parser("status", help="query one job's state")
    status_p.add_argument("job_id")
    add_client_args(status_p)
    status_p.set_defaults(fn=_cmd_status)

    result_p = sub.add_parser("result", help="fetch one job's flow report")
    result_p.add_argument("job_id")
    add_client_args(result_p)
    result_p.add_argument("--wait", action="store_true",
                          help="poll until the job finishes first")
    result_p.set_defaults(fn=_cmd_result)

    sub.add_parser(
        "fig1b", help="reproduce the Fig. 1b pulse waveform"
    ).set_defaults(fn=_cmd_fig1b)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
