"""``repro-flow`` command-line driver.

Examples::

    repro-flow run adder --phases 4 --t1            # one flow, one circuit
    repro-flow run adder --t1 --timings             # + per-pass breakdown
    repro-flow table --preset ci --jobs 4           # Table I, 4 workers
    repro-flow list                                 # registered benchmarks
    repro-flow run mydesign.blif --t1 --verify full # external netlist
    repro-flow fig1b                                # T1 pulse waveform

Flows are composed with :mod:`repro.pipeline` and batched with
:func:`repro.pipeline.run_many`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.circuits import benchmark_registry, build, names
from repro.errors import ReproError
from repro.network.logic_network import LogicNetwork
from repro.pipeline import Pipeline, run_table


def _open_netlist(source: str):
    """Open a user-supplied netlist path, mapping I/O failures to the
    CLI's ``error: ... / exit 2`` contract instead of a traceback."""
    try:
        return open(source)
    except OSError as exc:
        raise ReproError(f"cannot read {source!r}: {exc}") from exc


def _load_network(source: str, preset: str) -> LogicNetwork:
    if source in benchmark_registry:
        return build(source, preset)
    if source.endswith(".blif"):
        from repro.io import read_blif

        with _open_netlist(source) as fh:
            return read_blif(fh)
    if source.endswith(".bench"):
        from repro.io import read_bench

        with _open_netlist(source) as fh:
            return read_bench(fh)
    raise SystemExit(
        f"unknown benchmark or file {source!r} "
        f"(known benchmarks: {', '.join(names())})"
    )


def _cmd_list(_args) -> int:
    print(f"{'name':<12} description")
    print("-" * 60)
    for name in names():
        print(f"{name:<12} {benchmark_registry[name].description}")
    return 0


def _cmd_run(args) -> int:
    net = _load_network(args.benchmark, args.preset)
    pipeline = Pipeline.standard(
        n_phases=args.phases,
        use_t1=args.t1,
        verify=args.verify,
        sweeps=args.sweeps,
        balance_pos=not args.no_po_balance,
        share_chains=not args.no_share,
        balance_network=args.balance,
    )
    ctx = pipeline.run(net)
    m = ctx.metrics
    print(f"benchmark : {net.name}")
    print(f"flow      : {'T1 + ' if args.t1 else ''}{args.phases}-phase")
    if args.t1:
        print(f"T1 cells  : found {ctx.t1_found}, used {ctx.t1_used}")
    print(f"#DFF      : {m.num_dffs}")
    print(f"area (JJ) : {m.area_jj}")
    print(f"depth     : {m.depth_cycles} cycles")
    print(f"splitters : {m.num_splitters}")
    print(f"runtime   : {ctx.runtime_s:.2f} s")
    if ctx.verified is not None:
        print(f"verified  : {ctx.verified}")
    if args.timings:
        print("per-pass timing:")
        for pass_name, seconds in ctx.timings.items():
            print(f"  {pass_name:<22} {seconds:>8.3f} s")
    if args.energy:
        from repro.sfq import estimate_energy

        rep = estimate_energy(ctx.netlist, frequency_ghz=args.frequency)
        print(f"energy    : {rep.summary()}")
    if args.dot:
        from repro.io import netlist_to_dot

        with open(args.dot, "w") as fh:
            netlist_to_dot(ctx.netlist, fh)
        print(f"wrote {args.dot}")
    return 0


def _cmd_table(args) -> int:
    table = run_table(
        benchmarks=args.benchmarks or list(names()),
        preset=args.preset,
        n_phases=args.phases,
        verify=args.verify,
        sweeps=args.sweeps,
        jobs=args.jobs,
        progress=lambda name: print(f"[{name}: done]", file=sys.stderr),
        # registry names and external .blif/.bench files both work
        loader=lambda name: _load_network(name, args.preset),
    )
    print(table.format())
    return 0


def _cmd_fig1b(_args) -> int:
    from repro.sfq import simulate_pulse_train, waveform_ascii

    events = [
        (0, "T"), (3, "R"),
        (4, "T"), (5, "T"), (7, "R"),
        (8, "T"), (9, "T"), (10, "T"), (11, "R"),
    ]
    history = simulate_pulse_train(events)
    print("T1 cell pulse-level simulation (Fig. 1b stimulus: a | ab | abc)")
    print(waveform_ascii(history))
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-flow",
        description="T1-aware SFQ technology mapping (DATE 2024 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered benchmarks").set_defaults(
        fn=_cmd_list
    )

    run_p = sub.add_parser("run", help="run one flow on one circuit")
    run_p.add_argument("benchmark", help="benchmark name or .blif/.bench file")
    run_p.add_argument("--phases", "-n", type=int, default=4)
    run_p.add_argument("--t1", action="store_true", help="enable T1 detection")
    run_p.add_argument(
        "--preset", choices=("paper", "ci"), default="paper",
        help="benchmark size preset",
    )
    run_p.add_argument(
        "--verify", choices=("none", "cec", "full"), default="cec"
    )
    run_p.add_argument("--sweeps", type=int, default=4)
    run_p.add_argument("--no-po-balance", action="store_true")
    run_p.add_argument("--no-share", action="store_true",
                       help="per-edge DFF chains (no net sharing)")
    run_p.add_argument("--dot", help="write the staged netlist as DOT")
    run_p.add_argument("--energy", action="store_true",
                       help="print the RSFQ energy/power estimate")
    run_p.add_argument("--frequency", type=float, default=20.0,
                       help="clock frequency in GHz for --energy")
    run_p.add_argument("--balance", action="store_true",
                       help="depth-rebalance associative trees first")
    run_p.add_argument("--timings", action="store_true",
                       help="print the per-pass timing breakdown")
    run_p.set_defaults(fn=_cmd_run)

    tab_p = sub.add_parser("table", help="reproduce Table I")
    tab_p.add_argument(
        "benchmarks", nargs="*", help="subset of benchmarks (default: all)"
    )
    tab_p.add_argument("--phases", "-n", type=int, default=4)
    tab_p.add_argument(
        "--preset", choices=("paper", "ci"), default="paper"
    )
    tab_p.add_argument(
        "--verify", choices=("none", "cec", "full"), default="none"
    )
    tab_p.add_argument("--sweeps", type=int, default=4)
    tab_p.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the batch runner")
    tab_p.set_defaults(fn=_cmd_table)

    sub.add_parser(
        "fig1b", help="reproduce the Fig. 1b pulse waveform"
    ).set_defaults(fn=_cmd_fig1b)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
