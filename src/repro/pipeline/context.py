"""The shared state threaded through a pipeline run.

A :class:`FlowContext` carries every evolving artefact of the flow — the
working logic network, the mapped SFQ netlist, the detection / insertion
reports, metrics, per-pass timings and a free-form event log — so that
passes stay decoupled: each one reads the fields it needs and writes the
fields it produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.metrics import NetlistMetrics
from repro.network.logic_network import LogicNetwork
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.netlist import SFQNetlist

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dff_insertion import InsertionReport
    from repro.core.flow import FlowResult
    from repro.core.t1_detection import DetectionResult


@dataclass
class FlowContext:
    """Everything a pipeline run has produced so far.

    ``source`` is the untouched input network; ``network`` is the working
    copy that passes rewrite (decomposition, T1 substitution, ...).  The
    remaining artefact fields start empty and are filled in by the pass
    that owns them.
    """

    source: LogicNetwork
    name: str
    library: CellLibrary = field(default_factory=default_library)
    verify: str = "cec"  # "none" | "cec" | "full"

    # -- evolving artefacts -------------------------------------------------
    network: Optional[LogicNetwork] = None
    netlist: Optional[SFQNetlist] = None
    n_phases: int = 0  # set by the mapping pass
    detection: Optional["DetectionResult"] = None
    insertion: Optional["InsertionReport"] = None
    metrics: Optional[NetlistMetrics] = None
    verified: Optional[bool] = None
    t1_found: int = 0
    t1_used: int = 0

    # -- bookkeeping --------------------------------------------------------
    timings: Dict[str, float] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)
    runtime_s: float = 0.0

    def __post_init__(self) -> None:
        if self.network is None:
            self.network = self.source

    def log(self, message: str) -> None:
        """Append one line to the run's event log."""
        self.events.append(message)

    # -- metric conveniences (mirror FlowResult) ----------------------------

    @property
    def num_dffs(self) -> int:
        self._require_metrics()
        return self.metrics.num_dffs

    @property
    def area_jj(self) -> int:
        self._require_metrics()
        return self.metrics.area_jj

    @property
    def depth_cycles(self) -> int:
        self._require_metrics()
        return self.metrics.depth_cycles

    def _require_metrics(self) -> None:
        if self.metrics is None:
            from repro.errors import PipelineError

            raise PipelineError(
                "metrics not computed yet — did the pipeline include the "
                "'verify_metrics' pass?"
            )

    def to_result(self, config: Optional[object] = None) -> "FlowResult":
        """Package the context as a legacy :class:`~repro.core.flow.FlowResult`.

        *config* is the :class:`~repro.core.flow.FlowConfig` the run was
        derived from; when omitted an equivalent one is reconstructed from
        the context.
        """
        from repro.core.flow import FlowConfig, FlowResult

        self._require_metrics()
        if config is None:
            config = FlowConfig(
                n_phases=self.n_phases or self.metrics.n_phases,
                use_t1=self.detection is not None,
                verify=self.verify,
                library=self.library,
            )
        return FlowResult(
            name=self.name,
            config=config,
            netlist=self.netlist,
            metrics=self.metrics,
            logic_network=self.network,
            t1_found=self.t1_found,
            t1_used=self.t1_used,
            insertion=self.insertion,
            runtime_s=self.runtime_s,
            verified=self.verified,
        )
