"""The built-in passes: the six flow stages plus the optional extras.

Standard order (``Pipeline.standard()``)::

    decompose -> [balance] -> t1_detect -> map_to_sfq -> phase_assign
              -> dff_insert -> [materialize_splitters] -> verify_metrics

Bracketed passes are optional; every pass can be removed, replaced or
reordered through the :class:`~repro.pipeline.pipeline.Pipeline` builder.
"""

from repro.pipeline.passes.decompose import (
    BalancePass,
    DecomposePass,
    RefactorPass,
)
from repro.pipeline.passes.dff_insert import DffInsertPass, SplitterPass
from repro.pipeline.passes.finalize import VerifyMetricsPass, verify_streaming
from repro.pipeline.passes.mapping import MapPass
from repro.pipeline.passes.phase_assign import IlpPhasePass, PhaseAssignPass
from repro.pipeline.passes.t1_detect import T1DetectPass

__all__ = [
    "BalancePass",
    "DecomposePass",
    "DffInsertPass",
    "IlpPhasePass",
    "MapPass",
    "PhaseAssignPass",
    "RefactorPass",
    "SplitterPass",
    "T1DetectPass",
    "VerifyMetricsPass",
    "verify_streaming",
]
