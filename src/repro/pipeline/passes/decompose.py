"""Library decomposition + structural cleanup (flow stage 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.cleanup import strash
from repro.pipeline.context import FlowContext
from repro.sfq.mapping import decompose_to_library


@dataclass
class DecomposePass:
    """Normalise the network to the cell library and structurally hash it."""

    name: str = "decompose"

    def run(self, ctx: FlowContext) -> FlowContext:
        work = decompose_to_library(ctx.network, ctx.library)
        work, _ = strash(work)
        ctx.network = work
        ctx.log(f"decompose: {work.num_gates()} gates after strash")
        return ctx


@dataclass
class BalancePass:
    """Depth-rebalance associative trees (optional, before detection).

    Depth equals DFFs in gate-level-pipelined SFQ, so rebalancing is an
    area optimisation here; insert it after ``decompose`` to reproduce
    ``FlowConfig(balance_network=True)``.
    """

    name: str = "balance"

    def run(self, ctx: FlowContext) -> FlowContext:
        from repro.network.balance import balance

        work, _ = balance(ctx.network)
        work, _ = strash(work)
        ctx.network = work
        ctx.log(f"balance: {work.num_gates()} gates after rebalancing")
        return ctx
