"""Library decomposition + structural cleanup (flow stage 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.cleanup import strash
from repro.pipeline.context import FlowContext
from repro.sfq.mapping import decompose_to_library


@dataclass
class DecomposePass:
    """Normalise the network to the cell library and structurally hash it."""

    name: str = "decompose"

    def run(self, ctx: FlowContext) -> FlowContext:
        work = decompose_to_library(ctx.network, ctx.library)
        work, _ = strash(work)
        ctx.network = work
        ctx.log(f"decompose: {work.num_gates()} gates after strash")
        return ctx


@dataclass
class BalancePass:
    """Depth-rebalance associative trees (optional, before detection).

    Depth equals DFFs in gate-level-pipelined SFQ, so rebalancing is an
    area optimisation here; insert it after ``decompose`` to reproduce
    ``FlowConfig(balance_network=True)``.
    """

    name: str = "balance"

    def run(self, ctx: FlowContext) -> FlowContext:
        from repro.network.balance import balance

        work, _ = balance(ctx.network)
        work, _ = strash(work)
        ctx.network = work
        ctx.log(f"balance: {work.num_gates()} gates after rebalancing")
        return ctx


@dataclass
class RefactorPass:
    """Cut-based MFFC refactoring (optional, before detection).

    Runs the :func:`~repro.network.transforms.refactor` rewrite kernel —
    resynthesise each node's best cut as an ISOP and accept rewrites
    that shrink the MFFC.  Area-reducing and equivalence-preserving;
    insert it after ``decompose`` (or ``balance``) with
    ``Pipeline.with_pass(RefactorPass(), after="decompose")``.

    ``rewrite_passes`` > 1 iterates the kernel, carrying cut/MFFC
    analyses incrementally across the inter-pass strash; ``priority``
    selects the queue order ("topo" = the pinned reference order,
    "gain" = greedy max-gain).
    """

    name: str = "refactor"
    cut_size: int = 4
    cuts_per_node: int = 8
    rewrite_passes: int = 1
    priority: str = "topo"

    def run(self, ctx: FlowContext) -> FlowContext:
        from repro.network.transforms import refactor

        work, accepted = refactor(
            ctx.network,
            cut_size=self.cut_size,
            cuts_per_node=self.cuts_per_node,
            passes=self.rewrite_passes,
            priority=self.priority,
        )
        ctx.network = work
        ctx.log(
            f"refactor: {accepted} rewrites accepted, "
            f"{work.num_gates()} gates"
        )
        return ctx
