"""T1 detection and substitution (flow stage 2, §II-A)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.t1_detection import detect_and_replace
from repro.errors import EquivalenceError
from repro.network.equivalence import check_equivalence
from repro.pipeline.context import FlowContext


@dataclass
class T1DetectPass:
    """Find T1-implementable gate groups and substitute T1 cells.

    When the context's ``verify`` mode is ``"cec"`` or ``"full"`` the
    substituted network is checked for combinational equivalence against
    the pre-substitution network before it replaces the working copy.
    """

    cuts_per_node: int = 8
    min_outputs: int = 2
    name: str = "t1_detect"

    def run(self, ctx: FlowContext) -> FlowContext:
        detection = detect_and_replace(
            ctx.network,
            library=ctx.library,
            cuts_per_node=self.cuts_per_node,
            min_outputs=self.min_outputs,
        )
        if ctx.verify in ("cec", "full"):
            res = check_equivalence(ctx.network, detection.network,
                                    complete=False)
            if not res.equivalent:
                raise EquivalenceError(
                    "T1 substitution changed the function",
                    res.counterexample,
                )
        ctx.detection = detection
        ctx.network = detection.network
        ctx.t1_found = detection.found
        ctx.t1_used = detection.used
        ctx.log(f"t1_detect: found {detection.found}, used {detection.used}")
        return ctx
