"""Clock-phase (stage) assignment (flow stage 4, §II-B)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.phase_assignment import assign_stages
from repro.errors import PipelineError
from repro.pipeline.context import FlowContext


@dataclass
class PhaseAssignPass:
    """Assign clock stages to every cell of the mapped netlist.

    ``method="heuristic"`` runs the delta-evaluated coordinate-descent
    sweeps on the :class:`~repro.core.schedule.StageSchedule` kernel;
    ``method="ilp"`` solves the exact per-edge objective on the MILP
    backend (small netlists only — see :class:`IlpPhasePass`);
    ``method="auto"`` picks exact-vs-heuristic by netlist size.
    """

    method: str = "heuristic"
    sweeps: int = 4
    balance_pos: bool = True
    free_pi_phases: bool = True
    name: str = "phase_assign"

    def run(self, ctx: FlowContext) -> FlowContext:
        if ctx.netlist is None:
            raise PipelineError(
                "phase_assign needs a mapped netlist — run 'map_to_sfq' first"
            )
        if self.method in ("heuristic", "auto"):
            info = assign_stages(
                ctx.netlist,
                method=self.method,
                sweeps=self.sweeps,
                include_po_balancing=self.balance_pos,
                free_pi_phases=self.free_pi_phases,
            )
        else:
            info = assign_stages(ctx.netlist, method=self.method)
        if info.get("degraded"):
            # surfaced in the flow report so a budget-limited exact run
            # is distinguishable from a clean one
            ctx.extras["degraded"] = True
            ctx.extras["degraded_reason"] = (
                f"phase_assign: {info.get('reason') or 'exact solver fell back'}"
            )
            ctx.log(
                f"phase_assign: degraded to {info['method']} "
                f"({info.get('reason')})"
            )
        ctx.log(f"phase_assign: method={self.method}")
        return ctx


@dataclass
class IlpPhasePass(PhaseAssignPass):
    """Exact ILP phase assignment; drop-in replacement for the heuristic:

    ``Pipeline.standard(...).replace("phase_assign", IlpPhasePass())``
    """

    method: str = "ilp"
