"""Technology mapping onto an SFQ netlist (flow stage 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.context import FlowContext
from repro.sfq.mapping import map_to_sfq


@dataclass
class MapPass:
    """Map the working logic network to clocked SFQ cells.

    The phase count lives here (not on the pipeline) because it is a
    property of the mapped fabric; downstream passes read it back from
    ``ctx.n_phases``.
    """

    n_phases: int = 4
    name: str = "map_to_sfq"

    def run(self, ctx: FlowContext) -> FlowContext:
        netlist, _sig = map_to_sfq(
            ctx.network, n_phases=self.n_phases, library=ctx.library
        )
        ctx.netlist = netlist
        ctx.n_phases = self.n_phases
        ctx.log(f"map_to_sfq: {len(netlist.cells)} cells, "
                f"{self.n_phases}-phase clocking")
        return ctx
