"""Path-balancing / T1-staggering DFF insertion (flow stage 5, §II-C)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dff_insertion import insert_dffs
from repro.errors import PipelineError
from repro.pipeline.context import FlowContext


@dataclass
class DffInsertPass:
    """Insert every path-balancing and staggering DFF into the netlist.

    ``share_chains=False`` gives every fanout edge its own chain (the
    paper's per-edge counting); the default shares one chain per net.
    """

    balance_pos: bool = True
    share_chains: bool = True
    name: str = "dff_insert"

    def run(self, ctx: FlowContext) -> FlowContext:
        if ctx.netlist is None:
            raise PipelineError(
                "dff_insert needs a mapped netlist — run 'map_to_sfq' first"
            )
        ctx.insertion = insert_dffs(
            ctx.netlist,
            balance_pos=self.balance_pos,
            share_chains=self.share_chains,
        )
        ctx.log(f"dff_insert: {ctx.insertion.total} DFFs")
        return ctx


@dataclass
class SplitterPass:
    """Materialise explicit splitter trees (optional, after insertion)."""

    name: str = "materialize_splitters"

    def run(self, ctx: FlowContext) -> FlowContext:
        from repro.sfq.splitters import materialize_splitters

        if ctx.netlist is None:
            raise PipelineError(
                "materialize_splitters needs a mapped netlist"
            )
        materialize_splitters(ctx.netlist)
        ctx.log("materialize_splitters: done")
        return ctx
