"""Static timing checks, metrics and functional verification (stage 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PipelineError
from repro.metrics import measure
from repro.network.logic_network import LogicNetwork
from repro.pipeline.context import FlowContext
from repro.sfq.netlist import SFQNetlist
from repro.sfq.timing import assert_timing


def verify_streaming(
    original: LogicNetwork, netlist: SFQNetlist, waves: int = 24, seed: int = 7
) -> bool:
    """Stream random waves through the mapped pipeline vs the logic model."""
    import random

    from repro.network.simulation import simulate_words
    from repro.sfq.simulator import stream_compare

    rng = random.Random(seed)
    stimulus = [
        [rng.randint(0, 1) for _ in original.pis] for _ in range(waves)
    ]

    def golden(row: Sequence[int]) -> List[int]:
        return simulate_words(original, [list(row)])[0]

    stream_compare(netlist, golden, stimulus)
    return True


@dataclass
class VerifyMetricsPass:
    """Check timing rules, measure the Table-I metrics, verify function.

    Verification follows the context's ``verify`` mode: ``"full"`` streams
    random waves through the pulse-level simulator against the *source*
    network; ``"cec"`` records the equivalence check already performed by
    the detection pass (if any).
    """

    waves: int = 24
    seed: int = 7
    name: str = "verify_metrics"

    def run(self, ctx: FlowContext) -> FlowContext:
        if ctx.netlist is None:
            raise PipelineError(
                "verify_metrics needs a mapped netlist — run the mapping "
                "and insertion passes first"
            )
        assert_timing(ctx.netlist)
        ctx.metrics = measure(ctx.netlist, ctx.library)
        if ctx.verify == "full":
            ctx.verified = verify_streaming(
                ctx.source, ctx.netlist, waves=self.waves, seed=self.seed
            )
        elif ctx.verify == "cec" and ctx.detection is not None:
            ctx.verified = True  # CEC ran inside the detection pass
        ctx.log(
            f"verify_metrics: dffs={ctx.metrics.num_dffs} "
            f"area={ctx.metrics.area_jj} depth={ctx.metrics.depth_cycles}"
        )
        return ctx
