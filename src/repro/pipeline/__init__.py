"""repro.pipeline — the composable pass-manager flow API (primary API).

The monolithic ``repro.core.flow.run_flow`` is retained as a thin shim;
new code composes flows from passes::

    from repro.circuits import build
    from repro.pipeline import Pipeline

    ctx = Pipeline.standard(n_phases=4, use_t1=True).run(build("adder", "ci"))
    print(ctx.metrics.area_jj, ctx.timings)

* :class:`~repro.pipeline.base.Pass` — the stage protocol (name +
  ``run(ctx) -> ctx``);
* :class:`~repro.pipeline.context.FlowContext` — the shared state passes
  read and write (networks, netlist, reports, metrics, timings, events);
* :class:`~repro.pipeline.pipeline.Pipeline` — the immutable composer
  with the fluent builder (``with_pass`` / ``without`` / ``replace`` /
  ``with_hooks``);
* :mod:`~repro.pipeline.passes` — the six flow stages as individual
  passes, plus the optional balance / splitter extras;
* :func:`~repro.pipeline.batch.run_many` — the multiprocessing batch
  executor behind ``repro-flow table --jobs N`` and the benchmarks.
"""

from repro.pipeline.base import Pass
from repro.pipeline.batch import (
    ResumedResult,
    baseline_pipelines,
    pipeline_fingerprint,
    run_many,
    run_table,
    warm_worker,
)
from repro.pipeline.context import FlowContext
from repro.pipeline.journal import BatchJournal
from repro.pipeline.passes import (
    BalancePass,
    DecomposePass,
    DffInsertPass,
    IlpPhasePass,
    MapPass,
    PhaseAssignPass,
    RefactorPass,
    SplitterPass,
    T1DetectPass,
    VerifyMetricsPass,
)
from repro.pipeline.pipeline import Pipeline, PipelineHooks

__all__ = [
    "BalancePass",
    "BatchJournal",
    "DecomposePass",
    "DffInsertPass",
    "FlowContext",
    "IlpPhasePass",
    "MapPass",
    "Pass",
    "PhaseAssignPass",
    "Pipeline",
    "PipelineHooks",
    "RefactorPass",
    "ResumedResult",
    "SplitterPass",
    "T1DetectPass",
    "VerifyMetricsPass",
    "baseline_pipelines",
    "pipeline_fingerprint",
    "run_many",
    "run_table",
    "warm_worker",
]
