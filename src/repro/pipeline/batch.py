"""Multi-circuit batch execution: ``run_many`` and the Table-I driver.

``run_many`` fans a list of (network, pipeline) jobs over a worker pool
(``multiprocessing``) and returns the finished contexts in submission
order; results are deterministic and independent of ``jobs``.  It powers
``repro-flow table --jobs N`` and the benchmark harnesses.

Crash-safe checkpointing: pass ``journal=BatchJournal(path)`` and every
finished job is durably appended (flush + fsync) before the next result
is collected; a resumed journal (``BatchJournal(path, resume=True)``)
skips already-completed jobs and replays their stored reports
bit-identically as :class:`ResumedResult` entries.  ``repro-flow table
--journal PATH --resume`` drives this from the CLI.

The ``batch.abort`` fault point (see :mod:`repro.faults`) kills the
collection loop between two results — a deterministic stand-in for a
mid-sweep SIGKILL that the resume tests replay under seeds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.errors import PipelineError
from repro.network.logic_network import LogicNetwork
from repro.pipeline.context import FlowContext
from repro.pipeline.journal import BatchJournal
from repro.pipeline.pipeline import Pipeline

#: one unit of work: a bare network (paired with the shared pipeline
#: argument of :func:`run_many`) or an explicit (network, pipeline) pair
WorkItem = Union[LogicNetwork, Tuple[LogicNetwork, Pipeline]]

#: the three Table-I columns, in paper order
BASELINE_LABELS = ("1phi", "nphi", "t1")


@dataclass
class ResumedResult:
    """A journal-replayed batch result: the stored flow report, verbatim.

    Stands in for a :class:`FlowContext` in ``run_many`` output when the
    job was completed by an earlier (crashed or killed) run.  Exposes
    the metric attributes the table builder reads, backed by the
    journaled report, so resumed and fresh results mix transparently.
    """

    key: str
    report: Dict[str, Any]

    @property
    def metrics_dict(self) -> Dict[str, Any]:
        metrics = self.report.get("metrics")
        if not isinstance(metrics, dict):
            raise PipelineError(
                f"journaled result {self.key!r} carries no metrics"
            )
        return metrics

    @property
    def num_dffs(self) -> int:
        return self.metrics_dict["dffs"]

    @property
    def area_jj(self) -> int:
        return self.metrics_dict["area_jj"]

    @property
    def depth_cycles(self) -> int:
        return self.metrics_dict["depth_cycles"]

    @property
    def t1_found(self) -> int:
        return self.report["t1"]["found"]

    @property
    def t1_used(self) -> int:
        return self.report["t1"]["used"]


def pipeline_fingerprint(pipeline: Pipeline) -> str:
    """Content fingerprint of a pipeline's passes and settings.

    Built from the deterministic dataclass reprs of the passes, so two
    processes constructing the same flow agree on the fingerprint (the
    property journal resume depends on).  Custom passes holding objects
    with address-bearing reprs fingerprint uniquely per process — their
    jobs are then conservatively re-run instead of resumed.
    """
    text = ";".join(repr(p) for p in pipeline.passes)
    text += f"|verify={pipeline.verify}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _job_key(index: int, net: LogicNetwork, pipeline: Pipeline) -> str:
    return f"{index}:{net.structural_hash()}:{pipeline_fingerprint(pipeline)}"


def _normalize(
    circuits: Sequence[WorkItem], pipeline: Optional[Pipeline]
) -> List[Tuple[LogicNetwork, Pipeline]]:
    jobs: List[Tuple[LogicNetwork, Pipeline]] = []
    for item in circuits:
        if isinstance(item, tuple):
            net, pipe = item
        else:
            net, pipe = item, pipeline
        if pipe is None:
            raise PipelineError(
                "run_many needs a pipeline: pass pipeline= or submit "
                "(network, pipeline) pairs"
            )
        jobs.append((net, pipe))
    return jobs


def warm_worker() -> None:
    """Pre-warm the per-process lookup tables the flow relies on.

    The k<=3 NPN canonisation tables and the complete T1 inverse match
    table are lazy module-level caches: a cold worker process rebuilds
    them on its first mapped circuit.  Passing this as the pool
    *initializer* moves that cost to worker startup, where it is paid
    once and off the critical path of the first job.  Shared by the
    ``run_many`` pool and the service daemon's warm worker pool.
    """
    from repro.core.t1_matching import t1_match_table
    from repro.network.npn import warm_tables

    warm_tables(max_k=3)
    t1_match_table()


def _run_job(job: Tuple[LogicNetwork, Pipeline]) -> FlowContext:
    net, pipe = job
    return pipe.run(net)


def _context_report(ctx: FlowContext) -> Dict[str, Any]:
    """The journal-stored record of one finished context."""
    from repro.service.protocol import flow_report

    return flow_report(ctx)


def run_many(
    circuits: Sequence[WorkItem],
    pipeline: Optional[Pipeline] = None,
    jobs: int = 1,
    on_result: Optional[Callable[[int, object], None]] = None,
    journal: Optional[BatchJournal] = None,
) -> List[FlowContext]:
    """Run pipelines over many circuits, optionally in parallel.

    *circuits* mixes bare networks (run with the shared *pipeline*) and
    explicit ``(network, pipeline)`` pairs.  ``jobs > 1`` executes on a
    process pool; hooks are dropped in workers (callbacks cannot cross
    process boundaries) and the returned contexts arrive in submission
    order regardless of completion order.  *on_result* fires in the main
    process, in submission order, as each context becomes available —
    use it for streaming progress output.

    With a *journal*, every finished job is durably recorded before the
    next result is collected, jobs the journal already holds are not
    re-run (their stored reports come back as :class:`ResumedResult`
    entries, bit-identical to the original run), and *on_result* fires
    for resumed entries too.
    """
    work = _normalize(circuits, pipeline)

    keys: List[str] = []
    resumed: Dict[int, ResumedResult] = {}
    to_run = list(enumerate(work))
    if journal is not None:
        keys = [_job_key(i, net, pipe) for i, (net, pipe) in enumerate(work)]
        for i in range(len(work)):
            report = journal.completed(keys[i])
            if report is not None:
                resumed[i] = ResumedResult(keys[i], report)
        to_run = [(i, job) for i, job in enumerate(work) if i not in resumed]

    def _collect(fresh_results) -> List[FlowContext]:
        out: List[FlowContext] = []
        fresh_pairs = zip((i for i, _ in to_run), fresh_results)
        for i in range(len(work)):
            if i in resumed:
                result: object = resumed[i]
            else:
                j, result = next(fresh_pairs)
                assert j == i  # both streams are in submission order
                faults.fire(
                    "batch.abort",
                    f"batch killed before job {i} reached the journal",
                )
                if journal is not None:
                    journal.record(keys[i], _context_report(result))
            out.append(result)  # type: ignore[arg-type]
            if on_result is not None:
                on_result(i, result)
        return out

    if jobs <= 1 or len(to_run) <= 1:
        return _collect(_run_job(job) for _, job in to_run)

    import multiprocessing as mp

    stripped = [(net, pipe.without_hooks()) for _, (net, pipe) in to_run]
    with mp.Pool(
        processes=min(jobs, len(stripped)), initializer=warm_worker
    ) as pool:
        return _collect(pool.imap(_run_job, stripped))


def baseline_pipelines(
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    library=None,
) -> dict:
    """The paper's three flows (1φ, nφ, nφ + T1) keyed by column label."""
    common = dict(verify=verify, sweeps=sweeps, library=library)
    return {
        "1phi": Pipeline.standard(n_phases=1, use_t1=False, **common),
        "nphi": Pipeline.standard(n_phases=n_phases, use_t1=False, **common),
        "t1": Pipeline.standard(n_phases=n_phases, use_t1=True, **common),
    }


def run_table(
    benchmarks: Optional[Sequence[str]] = None,
    preset: str = "paper",
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    jobs: int = 1,
    library=None,
    progress: Optional[Callable[[str], None]] = None,
    loader: Optional[Callable[[str], LogicNetwork]] = None,
    journal_path=None,
    resume: bool = False,
):
    """Reproduce Table I: every benchmark through the three flows.

    Returns a :class:`~repro.core.report.Table`.  ``jobs > 1`` spreads
    the ``3 × len(benchmarks)`` flow runs over a process pool; the result
    is identical to serial execution.  *progress* fires with each
    benchmark name as its last flow finishes (streamed, not batched at
    the end).  *loader* maps a benchmark name to a network; it defaults
    to the registry (``build(name, preset)``) — pass a custom one to run
    the table over external netlist files.

    *journal_path* checkpoints every finished flow run to an append-only
    journal; with ``resume=True`` a sweep killed mid-run restarts from
    the journal, re-executing only the unfinished flows and replaying
    the completed ones bit-identically.  The journal header pins the
    sweep configuration — resuming with different benchmarks, preset or
    flow settings is an error.
    """
    from repro.circuits import TABLE1_ORDER, build
    from repro.core.report import Table, TableRow

    names = list(benchmarks) if benchmarks else list(TABLE1_ORDER)
    if loader is None:
        loader = lambda name: build(name, preset)  # noqa: E731
    pipes = baseline_pipelines(
        n_phases=n_phases, verify=verify, sweeps=sweeps, library=library
    )
    # Each network appears once per label; the final contexts hold every
    # source network alive anyway (ctx.source), so building them up front
    # costs no extra peak memory over lazy construction.
    work: List[Tuple[LogicNetwork, Pipeline]] = []
    for name in names:
        net = loader(name)
        for label in BASELINE_LABELS:
            work.append((net, pipes[label]))

    per_bench = len(BASELINE_LABELS)

    def _on_result(i: int, _ctx: object) -> None:
        if progress is not None and i % per_bench == per_bench - 1:
            progress(names[i // per_bench])

    journal = None
    if journal_path is not None:
        meta = {
            "table": "table1",
            "benchmarks": names,
            "preset": preset,
            "n_phases": n_phases,
            "verify": verify,
            "sweeps": sweeps,
        }
        journal = BatchJournal(journal_path, meta=meta, resume=resume)
    try:
        contexts = run_many(
            work, jobs=jobs, on_result=_on_result, journal=journal
        )
    finally:
        if journal is not None:
            journal.close()

    rows: List[TableRow] = []
    for i, name in enumerate(names):
        chunk = contexts[per_bench * i : per_bench * (i + 1)]
        rows.append(
            TableRow.from_results(name, dict(zip(BASELINE_LABELS, chunk)))
        )
    return Table(rows, n_phases=n_phases)
