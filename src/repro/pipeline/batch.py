"""Multi-circuit batch execution: ``run_many`` and the Table-I driver.

``run_many`` fans a list of (network, pipeline) jobs over a worker pool
(``multiprocessing``) and returns the finished contexts in submission
order; results are deterministic and independent of ``jobs``.  It powers
``repro-flow table --jobs N`` and the benchmark harnesses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import PipelineError
from repro.network.logic_network import LogicNetwork
from repro.pipeline.context import FlowContext
from repro.pipeline.pipeline import Pipeline

#: one unit of work: a bare network (paired with the shared pipeline
#: argument of :func:`run_many`) or an explicit (network, pipeline) pair
WorkItem = Union[LogicNetwork, Tuple[LogicNetwork, Pipeline]]

#: the three Table-I columns, in paper order
BASELINE_LABELS = ("1phi", "nphi", "t1")


def _normalize(
    circuits: Sequence[WorkItem], pipeline: Optional[Pipeline]
) -> List[Tuple[LogicNetwork, Pipeline]]:
    jobs: List[Tuple[LogicNetwork, Pipeline]] = []
    for item in circuits:
        if isinstance(item, tuple):
            net, pipe = item
        else:
            net, pipe = item, pipeline
        if pipe is None:
            raise PipelineError(
                "run_many needs a pipeline: pass pipeline= or submit "
                "(network, pipeline) pairs"
            )
        jobs.append((net, pipe))
    return jobs


def warm_worker() -> None:
    """Pre-warm the per-process lookup tables the flow relies on.

    The k<=3 NPN canonisation tables and the complete T1 inverse match
    table are lazy module-level caches: a cold worker process rebuilds
    them on its first mapped circuit.  Passing this as the pool
    *initializer* moves that cost to worker startup, where it is paid
    once and off the critical path of the first job.  Shared by the
    ``run_many`` pool and the service daemon's warm worker pool.
    """
    from repro.core.t1_matching import t1_match_table
    from repro.network.npn import warm_tables

    warm_tables(max_k=3)
    t1_match_table()


def _run_job(job: Tuple[LogicNetwork, Pipeline]) -> FlowContext:
    net, pipe = job
    return pipe.run(net)


def run_many(
    circuits: Sequence[WorkItem],
    pipeline: Optional[Pipeline] = None,
    jobs: int = 1,
    on_result: Optional[Callable[[int, FlowContext], None]] = None,
) -> List[FlowContext]:
    """Run pipelines over many circuits, optionally in parallel.

    *circuits* mixes bare networks (run with the shared *pipeline*) and
    explicit ``(network, pipeline)`` pairs.  ``jobs > 1`` executes on a
    process pool; hooks are dropped in workers (callbacks cannot cross
    process boundaries) and the returned contexts arrive in submission
    order regardless of completion order.  *on_result* fires in the main
    process, in submission order, as each context becomes available —
    use it for streaming progress output.
    """
    work = _normalize(circuits, pipeline)

    def _collect(results) -> List[FlowContext]:
        out: List[FlowContext] = []
        for i, ctx in enumerate(results):
            out.append(ctx)
            if on_result is not None:
                on_result(i, ctx)
        return out

    if jobs <= 1 or len(work) <= 1:
        return _collect(_run_job(j) for j in work)

    import multiprocessing as mp

    stripped = [(net, pipe.without_hooks()) for net, pipe in work]
    with mp.Pool(
        processes=min(jobs, len(stripped)), initializer=warm_worker
    ) as pool:
        return _collect(pool.imap(_run_job, stripped))


def baseline_pipelines(
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    library=None,
) -> dict:
    """The paper's three flows (1φ, nφ, nφ + T1) keyed by column label."""
    common = dict(verify=verify, sweeps=sweeps, library=library)
    return {
        "1phi": Pipeline.standard(n_phases=1, use_t1=False, **common),
        "nphi": Pipeline.standard(n_phases=n_phases, use_t1=False, **common),
        "t1": Pipeline.standard(n_phases=n_phases, use_t1=True, **common),
    }


def run_table(
    benchmarks: Optional[Sequence[str]] = None,
    preset: str = "paper",
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    jobs: int = 1,
    library=None,
    progress: Optional[Callable[[str], None]] = None,
    loader: Optional[Callable[[str], LogicNetwork]] = None,
):
    """Reproduce Table I: every benchmark through the three flows.

    Returns a :class:`~repro.core.report.Table`.  ``jobs > 1`` spreads
    the ``3 × len(benchmarks)`` flow runs over a process pool; the result
    is identical to serial execution.  *progress* fires with each
    benchmark name as its last flow finishes (streamed, not batched at
    the end).  *loader* maps a benchmark name to a network; it defaults
    to the registry (``build(name, preset)``) — pass a custom one to run
    the table over external netlist files.
    """
    from repro.circuits import TABLE1_ORDER, build
    from repro.core.report import Table, TableRow

    names = list(benchmarks) if benchmarks else list(TABLE1_ORDER)
    if loader is None:
        loader = lambda name: build(name, preset)  # noqa: E731
    pipes = baseline_pipelines(
        n_phases=n_phases, verify=verify, sweeps=sweeps, library=library
    )
    # Each network appears once per label; the final contexts hold every
    # source network alive anyway (ctx.source), so building them up front
    # costs no extra peak memory over lazy construction.
    work: List[Tuple[LogicNetwork, Pipeline]] = []
    for name in names:
        net = loader(name)
        for label in BASELINE_LABELS:
            work.append((net, pipes[label]))

    per_bench = len(BASELINE_LABELS)

    def _on_result(i: int, _ctx: FlowContext) -> None:
        if progress is not None and i % per_bench == per_bench - 1:
            progress(names[i // per_bench])

    contexts = run_many(work, jobs=jobs, on_result=_on_result)

    rows: List[TableRow] = []
    for i, name in enumerate(names):
        chunk = contexts[per_bench * i : per_bench * (i + 1)]
        rows.append(
            TableRow.from_results(name, dict(zip(BASELINE_LABELS, chunk)))
        )
    return Table(rows, n_phases=n_phases)
