"""Crash-safe batch checkpointing: the append-only job journal.

``run_many``/``run_table`` sweeps over large circuit sets lose all
completed work when the process dies mid-sweep.  A :class:`BatchJournal`
fixes that: every finished job appends one JSON line — flushed and
fsync'd before the next job starts — so a kill at any instant preserves
every *completed* result, and a resumed run re-executes only the
unfinished remainder.

File format (``repro-batch-journal/v1``, one strict-JSON object per
line)::

    {"schema": "repro-batch-journal/v1", "meta": {...}}     # header
    {"key": "<job key>", "report": {...}}                   # one per job

* the header's ``meta`` fingerprints the sweep configuration; resuming
  with a different configuration is an error, not a silent mix of
  incompatible results;
* job keys are content addresses — submission index, the circuit's
  ``structural_hash()`` and the pipeline fingerprint — so a journal can
  never replay a result onto a different circuit or flow;
* a torn final line (the crash happened mid-write) is detected and
  dropped on load; every fully-written line is recovered.

Replayed results are bit-identical by construction: the journal stores
the finished flow report itself, not a recomputation recipe.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import PipelineError
from repro.io.json_report import canonical_dumps, strict_loads

#: schema tag on the journal header line
JOURNAL_SCHEMA = "repro-batch-journal/v1"


class BatchJournal:
    """Append-only, fsync'd, resumable record of finished batch jobs."""

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        resume: bool = False,
    ):
        self.path = Path(path)
        self.meta: Dict[str, Any] = dict(meta or {})
        self._done: Dict[str, Dict[str, Any]] = {}
        self._written = 0  # results recorded by *this* run
        if resume and self.path.exists():
            self._load()
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._append({"schema": JOURNAL_SCHEMA, "meta": self.meta})

    # -- persistence ---------------------------------------------------------

    def _append(self, obj: Dict[str, Any]) -> None:
        self._fh.write(canonical_dumps(obj) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise PipelineError(f"journal {self.path} is empty")
        try:
            header = strict_loads(lines[0])
        except ValueError as exc:
            raise PipelineError(
                f"journal {self.path} has a corrupt header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
            raise PipelineError(
                f"journal {self.path} is not a {JOURNAL_SCHEMA} file"
            )
        if self.meta and header.get("meta") != self.meta:
            raise PipelineError(
                f"journal {self.path} was written by a different sweep "
                f"configuration (journal meta {header.get('meta')!r} != "
                f"current {self.meta!r}); use a fresh journal path"
            )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = strict_loads(line)
                key = entry["key"]
                report = entry["report"]
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    # torn final line: the crash hit mid-append; every
                    # earlier line was fsync'd before the next job ran
                    break
                raise PipelineError(
                    f"journal {self.path} line {lineno} is corrupt: {exc}"
                ) from exc
            self._done[key] = report

    # -- API -----------------------------------------------------------------

    def completed(self, key: str) -> Optional[Dict[str, Any]]:
        """The journaled report for *key*, or ``None`` if not finished."""
        return self._done.get(key)

    def record(self, key: str, report: Dict[str, Any]) -> None:
        """Durably append one finished job before anything else runs."""
        self._append({"key": key, "report": report})
        self._done[key] = report
        self._written += 1

    @property
    def completed_count(self) -> int:
        return len(self._done)

    @property
    def written_count(self) -> int:
        """Results recorded by this run (excludes resumed entries)."""
        return self._written

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
