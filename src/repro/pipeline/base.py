"""The :class:`Pass` protocol every pipeline stage implements.

A pass is a named transformation over a :class:`~repro.pipeline.context.
FlowContext`: it reads the artefacts it needs, writes the ones it
produces, and returns the context (returning ``None`` is treated as
"mutated in place").  Passes must be cheap to construct, deterministic,
and picklable so :func:`~repro.pipeline.batch.run_many` can ship them to
worker processes.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.pipeline.context import FlowContext


@runtime_checkable
class Pass(Protocol):
    """Structural interface of one pipeline stage."""

    #: unique name used to address the pass in the pipeline builder
    #: (``.without("t1_detect")``, ``.replace("phase_assign", ...)``).
    name: str

    def run(self, ctx: FlowContext) -> Optional[FlowContext]:
        """Transform *ctx*; return it (or ``None`` if mutated in place)."""
        ...
