"""The pass-manager: compose, rearrange and run flow pipelines.

``Pipeline`` is an immutable sequence of :class:`~repro.pipeline.base.
Pass` objects with a fluent builder::

    pipe = (Pipeline.standard(n_phases=4, use_t1=True)
            .without("t1_detect")                       # baseline flow
            .replace("phase_assign", IlpPhasePass())    # exact assignment
            .with_pass(BalancePass(), after="decompose"))
    ctx = pipe.run(net)

Every builder method returns a **new** pipeline, so partially-built
pipelines can be shared and specialised freely.  ``run`` threads a
:class:`~repro.pipeline.context.FlowContext` through the passes,
recording per-pass wall-clock timings and firing the registered
``on_pass_start`` / ``on_pass_end`` hooks around each stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import PipelineError, ReproError
from repro.network.logic_network import LogicNetwork
from repro.pipeline.base import Pass
from repro.pipeline.context import FlowContext
from repro.pipeline.passes import (
    BalancePass,
    DecomposePass,
    DffInsertPass,
    IlpPhasePass,
    MapPass,
    PhaseAssignPass,
    SplitterPass,
    T1DetectPass,
    VerifyMetricsPass,
)
from repro.sfq.cell_library import CellLibrary

#: hook signatures: start(ctx, pass_), end(ctx, pass_, elapsed_seconds)
StartHook = Callable[[FlowContext, Pass], None]
EndHook = Callable[[FlowContext, Pass, float], None]


@dataclass(frozen=True)
class PipelineHooks:
    """One observer of pipeline execution; both callbacks are optional."""

    on_pass_start: Optional[StartHook] = None
    on_pass_end: Optional[EndHook] = None


class Pipeline:
    """An ordered, immutable sequence of passes plus run-time settings."""

    def __init__(
        self,
        passes: Sequence[Pass] = (),
        *,
        verify: str = "cec",
        library: Optional[CellLibrary] = None,
        hooks: Sequence[PipelineHooks] = (),
    ):
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.verify = verify
        self.library = library
        self.hooks: Tuple[PipelineHooks, ...] = tuple(hooks)
        seen = set()
        for p in self.passes:
            if p.name in seen:
                raise PipelineError(f"duplicate pass name {p.name!r}")
            seen.add(p.name)

    # -- construction -------------------------------------------------------

    @classmethod
    def standard(
        cls,
        n_phases: int = 4,
        use_t1: bool = True,
        *,
        balance_pos: bool = True,
        share_chains: bool = True,
        free_pi_phases: bool = True,
        materialize_splitters: bool = False,
        balance_network: bool = False,
        phase_method: str = "heuristic",
        sweeps: int = 4,
        cuts_per_node: int = 8,
        t1_min_outputs: int = 2,
        verify: str = "cec",
        library: Optional[CellLibrary] = None,
    ) -> "Pipeline":
        """The paper's flow as a pipeline; knobs mirror ``FlowConfig``.

        The baselines are ``standard(n_phases=1, use_t1=False)`` and
        ``standard(n_phases=4, use_t1=False)``.
        """
        if use_t1 and n_phases < 3:
            raise ReproError(
                "T1 staggering needs n_phases >= 3 (three distinct arrival "
                "slots inside one freshness window)"
            )
        passes: List[Pass] = [DecomposePass()]
        if balance_network:
            passes.append(BalancePass())
        if use_t1:
            passes.append(
                T1DetectPass(
                    cuts_per_node=cuts_per_node, min_outputs=t1_min_outputs
                )
            )
        passes.append(MapPass(n_phases=n_phases))
        passes.append(
            PhaseAssignPass(
                method=phase_method,
                sweeps=sweeps,
                balance_pos=balance_pos,
                free_pi_phases=free_pi_phases,
            )
        )
        passes.append(
            DffInsertPass(balance_pos=balance_pos, share_chains=share_chains)
        )
        if materialize_splitters:
            passes.append(SplitterPass())
        passes.append(VerifyMetricsPass())
        return cls(passes, verify=verify, library=library)

    @classmethod
    def from_config(cls, config) -> "Pipeline":
        """Build the pipeline equivalent to ``run_flow(net, config)``."""
        return cls.standard(
            n_phases=config.n_phases,
            use_t1=config.use_t1,
            balance_pos=config.balance_pos,
            share_chains=config.share_chains,
            free_pi_phases=config.free_pi_phases,
            materialize_splitters=config.materialize_splitters,
            balance_network=config.balance_network,
            phase_method=config.phase_method,
            sweeps=config.sweeps,
            cuts_per_node=config.cuts_per_node,
            t1_min_outputs=config.t1_min_outputs,
            verify=config.verify,
            library=config.library,
        )

    # -- fluent builder (each method returns a new Pipeline) ----------------

    def _rebuild(self, passes: Sequence[Pass]) -> "Pipeline":
        return Pipeline(
            passes, verify=self.verify, library=self.library, hooks=self.hooks
        )

    def names(self) -> List[str]:
        """The pass names in execution order."""
        return [p.name for p in self.passes]

    def _index_of(self, name: str) -> int:
        for i, p in enumerate(self.passes):
            if p.name == name:
                return i
        raise PipelineError(
            f"no pass named {name!r} in pipeline {self.names()}"
        )

    def with_pass(
        self,
        new: Pass,
        *,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "Pipeline":
        """Insert *new* (default: append; or anchored before/after a name)."""
        if before is not None and after is not None:
            raise PipelineError("give at most one of before= / after=")
        if before is not None:
            at = self._index_of(before)
        elif after is not None:
            at = self._index_of(after) + 1
        else:
            at = len(self.passes)
        passes = list(self.passes)
        passes.insert(at, new)
        return self._rebuild(passes)

    def without(self, name: str) -> "Pipeline":
        """Remove the pass called *name*."""
        at = self._index_of(name)
        passes = list(self.passes)
        del passes[at]
        return self._rebuild(passes)

    def replace(self, name: str, new: Pass) -> "Pipeline":
        """Swap the pass called *name* for *new* (same position)."""
        at = self._index_of(name)
        passes = list(self.passes)
        passes[at] = new
        return self._rebuild(passes)

    def with_verify(self, verify: str) -> "Pipeline":
        """Set the verification mode ("none" | "cec" | "full")."""
        return Pipeline(
            self.passes, verify=verify, library=self.library, hooks=self.hooks
        )

    def with_library(self, library: Optional[CellLibrary]) -> "Pipeline":
        """Set the cell library used by every pass."""
        return Pipeline(
            self.passes, verify=self.verify, library=library, hooks=self.hooks
        )

    def with_hooks(
        self,
        on_pass_start: Optional[StartHook] = None,
        on_pass_end: Optional[EndHook] = None,
    ) -> "Pipeline":
        """Register an observer fired around every pass."""
        hooks = self.hooks + (
            PipelineHooks(on_pass_start=on_pass_start, on_pass_end=on_pass_end),
        )
        return Pipeline(
            self.passes, verify=self.verify, library=self.library, hooks=hooks
        )

    def without_hooks(self) -> "Pipeline":
        """Drop all hooks (used before shipping to worker processes)."""
        return Pipeline(self.passes, verify=self.verify, library=self.library)

    # -- execution ----------------------------------------------------------

    def run(self, net: LogicNetwork, name: Optional[str] = None) -> FlowContext:
        """Run every pass over *net*; returns the final context."""
        ctx = FlowContext(
            source=net,
            name=name or net.name,
            verify=self.verify,
            **({"library": self.library} if self.library is not None else {}),
        )
        t0 = time.perf_counter()
        for p in self.passes:
            for h in self.hooks:
                if h.on_pass_start is not None:
                    h.on_pass_start(ctx, p)
            tp = time.perf_counter()
            ctx = p.run(ctx) or ctx
            elapsed = time.perf_counter() - tp
            ctx.timings[p.name] = ctx.timings.get(p.name, 0.0) + elapsed
            for h in self.hooks:
                if h.on_pass_end is not None:
                    h.on_pass_end(ctx, p, elapsed)
        ctx.runtime_s = time.perf_counter() - t0
        return ctx

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pipeline({' -> '.join(self.names())}, verify={self.verify!r})"
