"""The paper's contribution: the three-stage T1-aware mapping flow.

The stage algorithms (detection, phase assignment, DFF insertion) and
the Table-I reporting live here; flow *orchestration* moved to
:mod:`repro.pipeline`, and ``run_flow`` / ``FlowConfig`` remain as thin
shims over it (see :mod:`repro.core.flow`).
"""

from repro.core.dff_insertion import (
    InsertionReport,
    T1InputPlan,
    insert_dffs,
    plan_t1_inputs,
    plan_t1_inputs_cp,
    t1_input_cost,
    t1_slot_cost,
)
from repro.core.flow import (
    FlowConfig,
    FlowResult,
    run_baselines_and_t1,
    run_flow,
)
from repro.core.phase_assignment import (
    HeuristicReport,
    assign_stages,
    assign_stages_heuristic,
    assign_stages_ilp,
    build_ilp_model,
    t1_lower_bound,
)
from repro.core.schedule import StageSchedule, asap_stages
from repro.core.report import (
    PAPER_AVERAGES,
    PAPER_TABLE1,
    Table,
    TableRow,
    fmt_thousands,
)
from repro.core.t1_detection import (
    DetectionResult,
    T1Candidate,
    apply_candidates,
    detect_and_replace,
    find_candidates,
    select_candidates,
)
from repro.core.t1_matching import (
    OutputMatch,
    T1_OUTPUTS,
    is_t1_implementable,
    match_t1_output,
    polarities_matching,
)

__all__ = [
    "DetectionResult",
    "FlowConfig",
    "FlowResult",
    "HeuristicReport",
    "InsertionReport",
    "OutputMatch",
    "PAPER_AVERAGES",
    "PAPER_TABLE1",
    "StageSchedule",
    "T1Candidate",
    "T1InputPlan",
    "T1_OUTPUTS",
    "Table",
    "TableRow",
    "apply_candidates",
    "asap_stages",
    "assign_stages",
    "assign_stages_heuristic",
    "assign_stages_ilp",
    "build_ilp_model",
    "detect_and_replace",
    "find_candidates",
    "fmt_thousands",
    "insert_dffs",
    "is_t1_implementable",
    "match_t1_output",
    "plan_t1_inputs",
    "plan_t1_inputs_cp",
    "polarities_matching",
    "run_baselines_and_t1",
    "run_flow",
    "select_candidates",
    "t1_input_cost",
    "t1_lower_bound",
    "t1_slot_cost",
]
