"""DFF insertion (§II-C of the paper, eq. 5).

After phase assignment every clocked cell has its stage σ.  This module
materialises the path-balancing DFFs:

* **ordinary nets** get a shared chain at stages σ_d + n, σ_d + 2n, …;
  every consumer taps the chain element within n stages (max-gap rule —
  the net costs ``max_v ⌈gap/n⌉ − 1`` DFFs);
* **primary outputs** are balanced to a common boundary one stage past
  the deepest cell (optional, on by default);
* **T1 fanins** are special: the three T pulses must *arrive* at pairwise
  distinct stages inside the freshness window (σ_T1 − n, σ_T1).  An input
  arrives either directly from its driver (gap ≤ n, zero DFFs) or from
  the last DFF of a dedicated chain (stage flexible).  Slots are assigned
  by minimum-cost matching over the ≤ n window slots; a collision between
  two direct inputs costs one extra staggering DFF — exactly the c_T1
  term of eq. 4.  The paper solves this with CP-SAT; we provide both the
  closed-form matcher (used by the flow) and a CP model on
  :class:`repro.solvers.CpModel` (cross-checked in the tests).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TimingError
from repro.sfq.multiphase import edge_dffs
from repro.sfq.netlist import CellKind, OUT, SFQNetlist, Signal

INF = float("inf")


# ---------------------------------------------------------------------------
# T1 input planning
# ---------------------------------------------------------------------------

def t1_slot_cost(driver_stage: int, slot: int, t1_stage: int, n: int) -> float:
    """DFFs needed so the pulse of a fanin at *driver_stage* arrives at *slot*.

    The slot must lie in the freshness window [σ_T1 − n, σ_T1 − 1].
    """
    if not t1_stage - n <= slot <= t1_stage - 1:
        return INF
    if slot < driver_stage:
        return INF
    if slot == driver_stage:
        return 0.0  # direct arrival
    gap = slot - driver_stage
    # a chain of k DFFs ending exactly at `slot` needs k >= ceil(gap / n)
    # (spacing <= n per hop) and k <= gap (spacing >= 1 per hop)
    k = math.ceil(gap / n)
    return float(k)


@dataclass
class T1InputPlan:
    """Chosen arrival slots for the three fanins of one T1 cell."""

    slots: Tuple[int, int, int]
    dffs: Tuple[int, int, int]

    @property
    def total_dffs(self) -> int:
        return sum(self.dffs)


def plan_t1_inputs(
    t1_stage: int, fanin_stages: Sequence[int], n: int
) -> T1InputPlan:
    """Minimum-cost distinct-slot assignment for a T1 cell's inputs.

    Brute-force matching over the window's slot triples (the window has at
    most n <= 8 slots, so this is exact and fast).  Raises
    :class:`TimingError` when no assignment exists — phase assignment must
    have honoured eq. 3 for this to succeed.
    """
    if len(fanin_stages) != 3:
        raise TimingError("T1 cell must have exactly 3 fanins")
    window = range(max(0, t1_stage - n), t1_stage)
    best: Optional[Tuple[float, Tuple[int, ...]]] = None
    for combo in itertools.permutations(window, 3):
        cost = 0.0
        for sd, slot in zip(fanin_stages, combo):
            cost += t1_slot_cost(sd, slot, t1_stage, n)
            if cost >= INF:
                break
        if cost < INF and (best is None or cost < best[0]):
            best = (cost, combo)
    if best is None:
        raise TimingError(
            f"no feasible T1 input staggering: stage {t1_stage}, "
            f"fanins {tuple(fanin_stages)}, n={n} (eq. 3 violated?)"
        )
    slots = best[1]
    dffs = tuple(
        int(t1_slot_cost(sd, slot, t1_stage, n))
        for sd, slot in zip(fanin_stages, slots)
    )
    return T1InputPlan(slots=tuple(slots), dffs=dffs)  # type: ignore[arg-type]


def t1_input_cost(t1_stage: int, fanin_stages: Sequence[int], n: int) -> float:
    """DFF count of the optimal staggering, or +inf when infeasible."""
    try:
        return float(plan_t1_inputs(t1_stage, fanin_stages, n).total_dffs)
    except TimingError:
        return INF


def build_t1_input_model(t1_stage: int, fanin_stages: Sequence[int], n: int):
    """The T1 staggering model (eq. 5) on the solver-model IR.

    Slot variables live in the freshness window, are pairwise distinct
    (eq. 5) and >= their driver stage; the objective counts chain DFFs.
    The ``AllDifferent`` makes ``solve(backend="auto")`` route it to the
    CP solver (the paper's CP-SAT formulation).  Returns
    ``(model, slot_vars, k_vars)``.
    """
    from repro.solvers import SolverModel

    lo = max(0, t1_stage - n)
    hi = t1_stage - 1
    if hi < lo:
        raise TimingError("empty T1 freshness window")
    model = SolverModel()
    slot_vars = []
    k_vars = []
    for i, sd in enumerate(fanin_stages):
        if sd > hi:
            raise TimingError(f"fanin {i} at {sd} cannot precede T1 at {t1_stage}")
        slot = model.add_var(max(lo, sd), hi, name=f"slot{i}")
        # k_i = chain length; n*k_i >= slot_i - sd and minimisation make
        # k_i == ceil((slot_i - sd) / n) without any reification
        k = model.add_var(0, n + 2, name=f"k{i}")
        model.add_linear({k: n, slot: -1}, ">=", -sd)
        slot_vars.append(slot)
        k_vars.append(k)
    model.add_all_different(slot_vars)
    model.minimize({k: 1 for k in k_vars})
    return model, slot_vars, k_vars


def plan_t1_inputs_cp(
    t1_stage: int, fanin_stages: Sequence[int], n: int
) -> T1InputPlan:
    """:func:`build_t1_input_model` solved on the auto-routed backend.

    Used for cross-validation of :func:`plan_t1_inputs`.
    """
    from repro.errors import InfeasibleError

    model, slot_vars, k_vars = build_t1_input_model(t1_stage, fanin_stages, n)
    try:
        sol = model.solve(backend="auto")
    except InfeasibleError as exc:
        raise TimingError(f"CP model infeasible: {exc}") from exc
    slots = tuple(sol.int_value(v) for v in slot_vars)
    dffs = tuple(sol.int_value(v) for v in k_vars)
    return T1InputPlan(slots=slots, dffs=dffs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# net planning and netlist rewriting
# ---------------------------------------------------------------------------

@dataclass
class InsertionReport:
    """Statistics of one insertion run."""

    path_dffs: int = 0
    t1_stagger_dffs: int = 0
    po_balance_dffs: int = 0

    @property
    def total(self) -> int:
        return self.path_dffs + self.t1_stagger_dffs + self.po_balance_dffs


def net_chain_length(gaps: Sequence[int], n: int) -> int:
    """Shared-chain length for a net with the given consumer gaps."""
    if not gaps:
        return 0
    return max(edge_dffs(g, n) for g in gaps)


def insert_dffs(
    netlist: SFQNetlist,
    balance_pos: bool = True,
    share_chains: bool = True,
) -> InsertionReport:
    """Insert every path-balancing and staggering DFF; mutates *netlist*.

    Requires all clocked cells to carry stages.  After this pass the
    netlist satisfies the timing rules of :mod:`repro.sfq.timing`.

    ``share_chains=False`` gives every fanout edge its own chain (the
    per-edge counting of the paper's ILP objective) — used by the A2
    ablation to quantify how much chain sharing changes Table I.
    """
    n = netlist.n_phases
    report = InsertionReport()
    cells = netlist.cells
    for cell in cells:
        if cell.clocked and cell.stage is None:
            raise TimingError(f"cell {cell.index} has no stage")

    # structural snapshot (epoch-cached; usually shared with the phase-
    # assignment pass that just ran) — taken before any chain insertion
    structure = netlist.structure()

    # ---- plan T1 fanin slots first (their chains are dedicated) ----------
    t1_plans: Dict[int, T1InputPlan] = {}
    original_t1 = [c.index for c in cells if c.kind is CellKind.T1]
    for idx in original_t1:
        cell = cells[idx]
        fanin_stages = [
            netlist.driver_cell(sig).stage for sig in cell.fanins
        ]
        t1_plans[idx] = plan_t1_inputs(cell.stage, fanin_stages, n)  # type: ignore[arg-type]

    # ---- output boundary ---------------------------------------------------
    max_stage = netlist.max_stage()
    po_boundary = max_stage + 1

    # ---- group ordinary consumers by net ------------------------------------
    # maintained (consumer, fanin index) slots per signal, T1 fanins excluded
    net_consumers: Dict[Signal, List[Tuple[int, int]]] = structure.net_slots
    po_by_signal: Dict[Signal, List[int]] = (
        structure.po_slots if balance_pos else {}
    )

    def insert_for_group(
        sig: Signal,
        consumers: List[Tuple[int, int]],
        po_indices: List[int],
    ) -> None:
        driver = netlist.driver_cell(sig)
        if driver.kind in (CellKind.CONST0, CellKind.CONST1):
            return  # constants need no balancing (0 = silence, 1 = free-running)
        ds = driver.stage
        assert ds is not None
        gaps = []
        for cons_idx, _i in consumers:
            cs = cells[cons_idx].stage
            assert cs is not None
            if cs - ds < 1:
                raise TimingError(
                    f"edge {driver.index}->{cons_idx}: consumer not later"
                )
            gaps.append(cs - ds)
        length_gates_only = net_chain_length(gaps, n)
        if po_indices:
            gaps.append(po_boundary - ds)
        length = net_chain_length(gaps, n)
        # build the shared chain
        chain: List[int] = []
        prev: Signal = sig
        for j in range(length):
            dff = netlist.add_dff(prev, stage=ds + (j + 1) * n)
            chain.append(dff)
            prev = (dff, OUT)
        report.path_dffs += length_gates_only
        report.po_balance_dffs += length - length_gates_only
        # rewire consumers to their chain tap
        for cons_idx, fanin_i in consumers:
            cs = cells[cons_idx].stage
            tap_idx = edge_dffs(cs - ds, n)  # elements before the consumer
            if tap_idx > 0:
                netlist.replace_fanin(cons_idx, fanin_i, (chain[tap_idx - 1], OUT))
        for po_idx in po_indices:
            tap_idx = edge_dffs(po_boundary - ds, n)
            if tap_idx > 0:
                netlist.replace_po(po_idx, (chain[tap_idx - 1], OUT))

    all_signals = sorted(set(net_consumers) | set(po_by_signal))
    if share_chains:
        for sig in all_signals:
            insert_for_group(
                sig, net_consumers.get(sig, []), po_by_signal.get(sig, [])
            )
    else:
        # per-edge chains: one dedicated chain per consumer and per PO
        for sig in all_signals:
            for cons in net_consumers.get(sig, []):
                insert_for_group(sig, [cons], [])
            for po_idx in po_by_signal.get(sig, []):
                insert_for_group(sig, [], [po_idx])

    # ---- dedicated T1 chains -------------------------------------------------
    for idx in original_t1:
        cell = cells[idx]
        plan = t1_plans[idx]
        for fanin_i, sig in enumerate(cell.fanins):
            driver = netlist.driver_cell(sig)
            ds = driver.stage
            assert ds is not None
            slot = plan.slots[fanin_i]
            count = plan.dffs[fanin_i]
            if count == 0:
                continue
            # chain of `count` DFFs ending exactly at `slot`; spread the
            # positions backwards with gaps <= n and >= 1
            positions: List[int] = []
            pos = slot
            for _ in range(count):
                positions.append(pos)
                pos -= n
            positions = sorted(positions)
            # clamp the earliest hops so every position is after the driver
            for j, p in enumerate(positions):
                min_pos = ds + j + 1
                if p < min_pos:
                    positions[j] = min_pos
            prev = sig
            for p in positions:
                dff = netlist.add_dff(prev, stage=p)
                prev = (dff, OUT)
            report.t1_stagger_dffs += count
            netlist.replace_fanin(idx, fanin_i, prev)
    return report
