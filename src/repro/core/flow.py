"""End-to-end T1-aware technology-mapping flow (§II + §III) — legacy shim.

.. deprecated:: 1.1
    :mod:`repro.pipeline` is the primary API.  ``run_flow`` and
    ``FlowConfig`` remain as thin shims that build the equivalent
    :class:`~repro.pipeline.pipeline.Pipeline`, so existing callers keep
    working; new code should compose pipelines directly::

        from repro.pipeline import Pipeline

        ctx = Pipeline.standard(n_phases=4, use_t1=True).run(net)

The flow, whichever API drives it:

1. library decomposition + structural cleanup;
2. (optional) T1 detection and substitution          — §II-A;
3. mapping onto an SFQ netlist;
4. phase assignment (heuristic or exact ILP)         — §II-B;
5. DFF insertion (path balancing + T1 staggering)    — §II-C;
6. static timing checks, metrics, optional functional verification
   (CEC of the substituted network + pulse-level streaming).

The paper's baselines are the same flow with ``use_t1=False`` and
``n_phases`` 1 (single-phase) or 4 (multiphase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError
from repro.metrics import NetlistMetrics
from repro.network.logic_network import LogicNetwork
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.netlist import SFQNetlist
from repro.core.dff_insertion import InsertionReport

# repro.pipeline's passes import repro.core.* submodules, so the pipeline
# package must be imported lazily (inside the shims) to keep
# ``import repro.pipeline`` -> repro.core -> flow from re-entering the
# partially initialized package.


@dataclass
class FlowConfig:
    """Knobs of the flow; defaults match the paper's T1 configuration.

    Each knob maps onto pass construction in
    :meth:`~repro.pipeline.pipeline.Pipeline.from_config`.
    """

    n_phases: int = 4
    use_t1: bool = True
    balance_pos: bool = True
    share_chains: bool = True
    free_pi_phases: bool = True
    materialize_splitters: bool = False
    balance_network: bool = False  # depth-rebalance associative trees first
    phase_method: str = "heuristic"  # or "ilp" / "auto" (exact when small)
    sweeps: int = 4
    cuts_per_node: int = 8
    t1_min_outputs: int = 2
    verify: str = "cec"  # "none" | "cec" | "full" (cec + pulse streaming)
    library: Optional[CellLibrary] = None

    def resolved_library(self) -> CellLibrary:
        return self.library or default_library()

    def __post_init__(self) -> None:
        if self.use_t1 and self.n_phases < 3:
            raise ReproError(
                "T1 staggering needs n_phases >= 3 (three distinct arrival "
                "slots inside one freshness window)"
            )


@dataclass
class FlowResult:
    """Everything the flow produced."""

    name: str
    config: FlowConfig
    netlist: SFQNetlist
    metrics: NetlistMetrics
    logic_network: LogicNetwork  # the (possibly T1-substituted) network
    t1_found: int = 0
    t1_used: int = 0
    insertion: Optional[InsertionReport] = None
    runtime_s: float = 0.0
    verified: Optional[bool] = None

    @property
    def num_dffs(self) -> int:
        return self.metrics.num_dffs

    @property
    def area_jj(self) -> int:
        return self.metrics.area_jj

    @property
    def depth_cycles(self) -> int:
        return self.metrics.depth_cycles


def run_flow(net: LogicNetwork, config: Optional[FlowConfig] = None) -> FlowResult:
    """Run the full flow on *net*; returns a :class:`FlowResult`.

    Shim over :meth:`Pipeline.from_config` — produces bit-identical
    metrics to the equivalent pipeline (that equivalence is pinned by
    ``tests/pipeline/test_pipeline.py``).
    """
    from repro.pipeline import Pipeline

    config = config or FlowConfig()
    ctx = Pipeline.from_config(config).run(net)
    return ctx.to_result(config)


def run_baselines_and_t1(
    net: LogicNetwork,
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    library: Optional[CellLibrary] = None,
    jobs: int = 1,
) -> Dict[str, FlowResult]:
    """The paper's three columns: 1φ, nφ, and nφ + T1.

    ``jobs`` spreads the three flows over a process pool via
    :func:`~repro.pipeline.batch.run_many`.
    """
    from repro.pipeline.batch import (
        BASELINE_LABELS,
        baseline_pipelines,
        run_many,
    )

    pipes = baseline_pipelines(
        n_phases=n_phases, verify=verify, sweeps=sweeps, library=library
    )
    contexts = run_many(
        [(net, pipes[label]) for label in BASELINE_LABELS], jobs=jobs
    )
    out: Dict[str, FlowResult] = {}
    for label, ctx in zip(BASELINE_LABELS, contexts):
        cfg = FlowConfig(
            n_phases=1 if label == "1phi" else n_phases,
            use_t1=label == "t1",
            verify=verify,
            sweeps=sweeps,
            library=library,
        )
        out[label] = ctx.to_result(cfg)
    return out
