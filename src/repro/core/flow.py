"""End-to-end T1-aware technology-mapping flow (§II + §III).

``run_flow`` executes, on one logic network:

1. library decomposition + structural cleanup;
2. (optional) T1 detection and substitution          — §II-A;
3. mapping onto an SFQ netlist;
4. phase assignment (heuristic or exact ILP)         — §II-B;
5. DFF insertion (path balancing + T1 staggering)    — §II-C;
6. static timing checks, metrics, optional functional verification
   (CEC of the substituted network + pulse-level streaming).

The paper's baselines are the same flow with ``use_t1=False`` and
``n_phases`` 1 (single-phase) or 4 (multiphase).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import EquivalenceError, ReproError
from repro.metrics import NetlistMetrics, measure
from repro.network.cleanup import strash
from repro.network.equivalence import check_equivalence
from repro.network.logic_network import LogicNetwork
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.mapping import decompose_to_library, map_to_sfq
from repro.sfq.netlist import SFQNetlist
from repro.sfq.timing import assert_timing
from repro.core.dff_insertion import InsertionReport, insert_dffs
from repro.core.phase_assignment import assign_stages
from repro.core.t1_detection import DetectionResult, detect_and_replace


@dataclass
class FlowConfig:
    """Knobs of the flow; defaults match the paper's T1 configuration."""

    n_phases: int = 4
    use_t1: bool = True
    balance_pos: bool = True
    share_chains: bool = True
    free_pi_phases: bool = True
    materialize_splitters: bool = False
    balance_network: bool = False  # depth-rebalance associative trees first
    phase_method: str = "heuristic"  # or "ilp"
    sweeps: int = 4
    cuts_per_node: int = 8
    t1_min_outputs: int = 2
    verify: str = "cec"  # "none" | "cec" | "full" (cec + pulse streaming)
    library: Optional[CellLibrary] = None

    def resolved_library(self) -> CellLibrary:
        return self.library or default_library()

    def __post_init__(self) -> None:
        if self.use_t1 and self.n_phases < 3:
            raise ReproError(
                "T1 staggering needs n_phases >= 3 (three distinct arrival "
                "slots inside one freshness window)"
            )


@dataclass
class FlowResult:
    """Everything the flow produced."""

    name: str
    config: FlowConfig
    netlist: SFQNetlist
    metrics: NetlistMetrics
    logic_network: LogicNetwork  # the (possibly T1-substituted) network
    t1_found: int = 0
    t1_used: int = 0
    insertion: Optional[InsertionReport] = None
    runtime_s: float = 0.0
    verified: Optional[bool] = None

    @property
    def num_dffs(self) -> int:
        return self.metrics.num_dffs

    @property
    def area_jj(self) -> int:
        return self.metrics.area_jj

    @property
    def depth_cycles(self) -> int:
        return self.metrics.depth_cycles


def run_flow(net: LogicNetwork, config: Optional[FlowConfig] = None) -> FlowResult:
    """Run the full flow on *net*; returns a :class:`FlowResult`."""
    config = config or FlowConfig()
    library = config.resolved_library()
    t0 = time.perf_counter()

    # 1. normalise to the library and clean up
    work = decompose_to_library(net, library)
    work, _ = strash(work)
    if config.balance_network:
        from repro.network.balance import balance

        work, _ = balance(work)
        work, _ = strash(work)

    # 2. T1 detection
    found = used = 0
    detection: Optional[DetectionResult] = None
    if config.use_t1:
        detection = detect_and_replace(
            work,
            library=library,
            cuts_per_node=config.cuts_per_node,
            min_outputs=config.t1_min_outputs,
        )
        if config.verify in ("cec", "full"):
            res = check_equivalence(work, detection.network, complete=False)
            if not res.equivalent:
                raise EquivalenceError(
                    "T1 substitution changed the function",
                    res.counterexample,
                )
        work = detection.network
        found, used = detection.found, detection.used

    # 3. map
    netlist, _sig = map_to_sfq(work, n_phases=config.n_phases, library=library)

    # 4. phase assignment
    if config.phase_method == "heuristic":
        assign_stages(
            netlist,
            method="heuristic",
            sweeps=config.sweeps,
            include_po_balancing=config.balance_pos,
            free_pi_phases=config.free_pi_phases,
        )
    else:
        assign_stages(netlist, method=config.phase_method)

    # 5. DFF insertion
    insertion = insert_dffs(
        netlist,
        balance_pos=config.balance_pos,
        share_chains=config.share_chains,
    )

    # 6. optional physical splitter trees, checks, metrics
    if config.materialize_splitters:
        from repro.sfq.splitters import materialize_splitters

        materialize_splitters(netlist)
    assert_timing(netlist)
    metrics = measure(netlist, library)

    verified: Optional[bool] = None
    if config.verify == "full":
        verified = _verify_streaming(net, netlist)
    elif config.verify == "cec" and config.use_t1:
        verified = True  # CEC already ran above

    return FlowResult(
        name=net.name,
        config=config,
        netlist=netlist,
        metrics=metrics,
        logic_network=work,
        t1_found=found,
        t1_used=used,
        insertion=insertion,
        runtime_s=time.perf_counter() - t0,
        verified=verified,
    )


def _verify_streaming(
    original: LogicNetwork, netlist: SFQNetlist, waves: int = 24, seed: int = 7
) -> bool:
    """Stream random waves through the mapped pipeline vs the logic model."""
    import random

    from repro.network.simulation import simulate_words
    from repro.sfq.simulator import stream_compare

    rng = random.Random(seed)
    stimulus = [
        [rng.randint(0, 1) for _ in original.pis] for _ in range(waves)
    ]

    def golden(row: Sequence[int]) -> List[int]:
        return simulate_words(original, [list(row)])[0]

    stream_compare(netlist, golden, stimulus)
    return True


def run_baselines_and_t1(
    net: LogicNetwork,
    n_phases: int = 4,
    verify: str = "none",
    sweeps: int = 4,
    library: Optional[CellLibrary] = None,
) -> Dict[str, FlowResult]:
    """The paper's three columns: 1φ, nφ, and nφ + T1."""
    out: Dict[str, FlowResult] = {}
    out["1phi"] = run_flow(
        net,
        FlowConfig(
            n_phases=1, use_t1=False, verify=verify, sweeps=sweeps, library=library
        ),
    )
    out["nphi"] = run_flow(
        net,
        FlowConfig(
            n_phases=n_phases,
            use_t1=False,
            verify=verify,
            sweeps=sweeps,
            library=library,
        ),
    )
    out["t1"] = run_flow(
        net,
        FlowConfig(
            n_phases=n_phases,
            use_t1=True,
            verify=verify,
            sweeps=sweeps,
            library=library,
        ),
    )
    return out
