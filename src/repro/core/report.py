"""Table-I style reporting: rows, ratios, averages, pretty printing.

The paper's table columns, per benchmark:

* T1 cells found / used;
* #DFF for 1φ / 4φ / T1, plus T1-vs-1φ and T1-vs-4φ ratios;
* area (JJ) for 1φ / 4φ / T1, plus ratios;
* depth (cycles) for 1φ / 4φ / T1, plus ratios;
* geometric-free arithmetic averages of the ratio columns (as in the
  paper's "Average" row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.flow import FlowResult


def fmt_thousands(value: int) -> str:
    """The paper's 32'768-style thousands separator."""
    return f"{value:,}".replace(",", "'")


@dataclass
class TableRow:
    """One benchmark's results across the three flows."""

    name: str
    t1_found: int
    t1_used: int
    dff_1phi: int
    dff_nphi: int
    dff_t1: int
    area_1phi: int
    area_nphi: int
    area_t1: int
    depth_1phi: int
    depth_nphi: int
    depth_t1: int

    # -- ratio columns ------------------------------------------------------

    @property
    def dff_ratio_1phi(self) -> float:
        return self.dff_t1 / self.dff_1phi if self.dff_1phi else float("nan")

    @property
    def dff_ratio_nphi(self) -> float:
        return self.dff_t1 / self.dff_nphi if self.dff_nphi else float("nan")

    @property
    def area_ratio_1phi(self) -> float:
        return self.area_t1 / self.area_1phi if self.area_1phi else float("nan")

    @property
    def area_ratio_nphi(self) -> float:
        return self.area_t1 / self.area_nphi if self.area_nphi else float("nan")

    @property
    def depth_ratio_1phi(self) -> float:
        return self.depth_t1 / self.depth_1phi if self.depth_1phi else float("nan")

    @property
    def depth_ratio_nphi(self) -> float:
        return self.depth_t1 / self.depth_nphi if self.depth_nphi else float("nan")

    @staticmethod
    def from_results(name: str, results: Dict[str, FlowResult]) -> "TableRow":
        one, multi, t1 = results["1phi"], results["nphi"], results["t1"]
        return TableRow(
            name=name,
            t1_found=t1.t1_found,
            t1_used=t1.t1_used,
            dff_1phi=one.num_dffs,
            dff_nphi=multi.num_dffs,
            dff_t1=t1.num_dffs,
            area_1phi=one.area_jj,
            area_nphi=multi.area_jj,
            area_t1=t1.area_jj,
            depth_1phi=one.depth_cycles,
            depth_nphi=multi.depth_cycles,
            depth_t1=t1.depth_cycles,
        )


@dataclass
class Table:
    """The full Table-I reproduction."""

    rows: List[TableRow]
    n_phases: int = 4

    def averages(self) -> Dict[str, float]:
        def avg(values: Sequence[float]) -> float:
            vals = [v for v in values if v == v]  # drop NaN
            return sum(vals) / len(vals) if vals else float("nan")

        return {
            "dff_ratio_1phi": avg([r.dff_ratio_1phi for r in self.rows]),
            "dff_ratio_nphi": avg([r.dff_ratio_nphi for r in self.rows]),
            "area_ratio_1phi": avg([r.area_ratio_1phi for r in self.rows]),
            "area_ratio_nphi": avg([r.area_ratio_nphi for r in self.rows]),
            "depth_ratio_1phi": avg([r.depth_ratio_1phi for r in self.rows]),
            "depth_ratio_nphi": avg([r.depth_ratio_nphi for r in self.rows]),
        }

    def format(self) -> str:
        n = self.n_phases
        header = (
            f"{'benchmark':<12} {'T1 found':>8} {'used':>6} "
            f"{'#DFF 1φ':>10} {f'#DFF {n}φ':>9} {'#DFF T1':>9} "
            f"{'r/1φ':>6} {f'r/{n}φ':>6} "
            f"{'Area 1φ':>10} {f'Area {n}φ':>10} {'Area T1':>10} "
            f"{'r/1φ':>6} {f'r/{n}φ':>6} "
            f"{'D 1φ':>6} {f'D {n}φ':>6} {'D T1':>6} "
            f"{'r/1φ':>6} {f'r/{n}φ':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.name:<12} {r.t1_found:>8} {r.t1_used:>6} "
                f"{fmt_thousands(r.dff_1phi):>10} {fmt_thousands(r.dff_nphi):>9} "
                f"{fmt_thousands(r.dff_t1):>9} "
                f"{r.dff_ratio_1phi:>6.2f} {r.dff_ratio_nphi:>6.2f} "
                f"{fmt_thousands(r.area_1phi):>10} {fmt_thousands(r.area_nphi):>10} "
                f"{fmt_thousands(r.area_t1):>10} "
                f"{r.area_ratio_1phi:>6.2f} {r.area_ratio_nphi:>6.2f} "
                f"{r.depth_1phi:>6} {r.depth_nphi:>6} {r.depth_t1:>6} "
                f"{r.depth_ratio_1phi:>6.2f} {r.depth_ratio_nphi:>6.2f}"
            )
        a = self.averages()
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<12} {'':>8} {'':>6} {'':>10} {'':>9} {'':>9} "
            f"{a['dff_ratio_1phi']:>6.2f} {a['dff_ratio_nphi']:>6.2f} "
            f"{'':>10} {'':>10} {'':>10} "
            f"{a['area_ratio_1phi']:>6.2f} {a['area_ratio_nphi']:>6.2f} "
            f"{'':>6} {'':>6} {'':>6} "
            f"{a['depth_ratio_1phi']:>6.2f} {a['depth_ratio_nphi']:>6.2f}"
        )
        return "\n".join(lines)

    def as_dicts(self) -> List[Dict[str, object]]:
        out = []
        for r in self.rows:
            out.append(
                {
                    "benchmark": r.name,
                    "t1_found": r.t1_found,
                    "t1_used": r.t1_used,
                    "dff": (r.dff_1phi, r.dff_nphi, r.dff_t1),
                    "area": (r.area_1phi, r.area_nphi, r.area_t1),
                    "depth": (r.depth_1phi, r.depth_nphi, r.depth_t1),
                    "dff_ratio_nphi": r.dff_ratio_nphi,
                    "area_ratio_nphi": r.area_ratio_nphi,
                    "depth_ratio_nphi": r.depth_ratio_nphi,
                }
            )
        return out


#: the paper's Table I, used by EXPERIMENTS.md comparisons and tests
PAPER_TABLE1: Dict[str, Dict[str, object]] = {
    "adder": {
        "found": 127, "used": 127,
        "dff": (32768, 7963, 5958), "dff_r": (0.18, 0.75),
        "area": (238419, 64784, 48844), "area_r": (0.20, 0.75),
        "depth": (128, 32, 33), "depth_r": (0.26, 1.03),
    },
    "c7552": {
        "found": 17, "used": 9,
        "dff": (2489, 713, 765), "dff_r": (0.31, 1.07),
        "area": (32038, 19606, 19907), "area_r": (0.62, 1.02),
        "depth": (16, 4, 5), "depth_r": (0.31, 1.25),
    },
    "c6288": {
        "found": 142, "used": 142,
        "dff": (2625, 1431, 1349), "dff_r": (0.51, 0.94),
        "area": (47198, 38840, 35386), "area_r": (0.75, 0.91),
        "depth": (29, 8, 10), "depth_r": (0.34, 1.25),
    },
    "sin": {
        "found": 81, "used": 77,
        "dff": (13416, 4631, 4714), "dff_r": (0.35, 1.02),
        "area": (164938, 103443, 102806), "area_r": (0.62, 0.99),
        "depth": (88, 22, 25), "depth_r": (0.28, 1.14),
    },
    "voter": {
        "found": 252, "used": 252,
        "dff": (10651, 5779, 5584), "dff_r": (0.52, 0.97),
        "area": (222101, 187997, 182972), "area_r": (0.82, 0.97),
        "depth": (38, 10, 11), "depth_r": (0.29, 1.10),
    },
    "square": {
        "found": 861, "used": 806,
        "dff": (44675, 16645, 14304), "dff_r": (0.32, 0.86),
        "area": (525311, 329101, 301287), "area_r": (0.57, 0.92),
        "depth": (126, 32, 32), "depth_r": (0.25, 1.00),
    },
    "multiplier": {
        "found": 824, "used": 769,
        "dff": (58717, 14641, 13745), "dff_r": (0.23, 0.94),
        "area": (682792, 374260, 356984), "area_r": (0.52, 0.95),
        "depth": (136, 33, 36), "depth_r": (0.26, 1.09),
    },
    "log2": {
        "found": 644, "used": 593,
        "dff": (86985, 33790, 33946), "dff_r": (0.39, 1.00),
        "area": (978178, 605813, 598292), "area_r": (0.61, 0.99),
        "depth": (160, 40, 47), "depth_r": (0.29, 1.18),
    },
}

#: the paper's Average row
PAPER_AVERAGES = {
    "dff_ratio_1phi": 0.35,
    "dff_ratio_nphi": 0.94,
    "area_ratio_1phi": 0.59,
    "area_ratio_nphi": 0.94,
    "depth_ratio_1phi": 0.29,
    "depth_ratio_nphi": 1.13,
}
