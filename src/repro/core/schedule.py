"""Incremental schedule kernel (§II-B): delta-evaluated stage moves.

The coordinate-descent heuristic of :mod:`repro.core.phase_assignment`
optimises the *true* insertion cost

    Σ_nets  max_v ⌈(σ_v − σ_d)/n⌉ − 1    (shared per-net chains, eq. 5)
  + Σ_T1    c_T1(σ_T1, fanin stages)     (staggering cost, eq. 4)
  + PO balancing against the boundary σ_max + 1.

The seed implementation re-summed every incident term from scratch for
every candidate stage of every cell.  :class:`StageSchedule` maintains
the cost terms instead, exploiting two structural facts:

* a net's chain cost is **monotone in its consumer stages** —
  ``max_v edge_dffs(σ_v − σ_d, n) == edge_dffs(max_v σ_v − σ_d, n)`` and
  feasibility only needs ``min_v σ_v − σ_d ≥ 1`` — so one min/max
  multiset of consumer stages per net prices a *driver* move in O(1) and
  a *consumer* move in amortised O(1);
* the PO boundary is ``max stage + 1``, so a maintained stage histogram
  keeps it current across moves instead of once per sweep (the seed's
  per-sweep snapshot let `local_cost` price PO balancing against a stale
  boundary).

:meth:`cost_if_moved` prices a candidate without mutating anything;
:meth:`apply_move` commits it.  Both touch only the terms incident to
the moved cell (plus the PO terms when the boundary itself shifts), so a
sweep costs O(moves × changed terms) instead of
O(moves × candidates × incident-edges).

The T1 staggering cost is memoised *per kernel instance* (the memo dies
with the schedule), unlike the seed's unbounded module-global cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TimingError
from repro.sfq.multiphase import edge_dffs_unchecked
from repro.sfq.netlist import CellKind, NetlistStructure, SFQNetlist, Signal

INF = float("inf")


def t1_lower_bound(fanin_stages: Sequence[int]) -> int:
    """Eq. 3: σ(T1) ≥ max(σ(i1)+3, σ(i2)+2, σ(i3)+1), fanins sorted."""
    s = sorted(fanin_stages)
    return max(s[0] + 3, s[1] + 2, s[2] + 1)


def asap_stages(structure: NetlistStructure) -> List[Optional[int]]:
    """Earliest feasible stage per cell (PIs at 0)."""
    nl = structure.netlist
    stages: List[Optional[int]] = [None] * len(nl.cells)
    for idx in structure.order:
        cell = nl.cells[idx]
        if cell.kind is CellKind.PI:
            stages[idx] = 0
            continue
        if not cell.clocked:
            continue
        fin = [stages[d] for d in structure.fanin_drivers[idx]]
        if any(f is None for f in fin):
            raise TimingError(f"cell {idx} depends on an unstaged cell")
        if structure.is_t1[idx]:
            stages[idx] = t1_lower_bound(fin)  # type: ignore[arg-type]
        else:
            stages[idx] = (max(fin) + 1) if fin else 1  # type: ignore[arg-type]
    return stages


def _t1_eval(gaps: Tuple[int, ...], n: int, head: int) -> float:
    """Staggering cost for (sorted gaps, clamped window head).

    ``head = min(σ_T1, n)``: when the T1 sits closer than n stages to
    stage 0 the freshness window is clipped, which changes feasibility;
    beyond that the cost only depends on the gaps.
    """
    from repro.core.dff_insertion import t1_input_cost

    fanins = [head - g for g in gaps]
    if any(f < 0 for f in fanins):
        return INF
    return t1_input_cost(head, fanins, n)


class _StageBag:
    """Multiset of consumer stages with maintained min/max.

    ``add``/``remove`` are O(1) except when an extreme value drains,
    which rescans the (few) distinct stage values; ``peek_moved`` prices
    a move without mutating.
    """

    __slots__ = ("counts", "mn", "mx")

    def __init__(self, stages: Sequence[int] = ()):
        self.counts: Dict[int, int] = {}
        self.mn: Optional[int] = None
        self.mx: Optional[int] = None
        for s in stages:
            self.add(s)

    def add(self, s: int, k: int = 1) -> None:
        c = self.counts
        c[s] = c.get(s, 0) + k
        if self.mx is None or s > self.mx:
            self.mx = s
        if self.mn is None or s < self.mn:
            self.mn = s

    def remove(self, s: int, k: int = 1) -> None:
        c = self.counts
        left = c[s] - k
        if left:
            c[s] = left
            return
        del c[s]
        if not c:
            self.mn = self.mx = None
            return
        if s == self.mx:
            self.mx = max(c)
        if s == self.mn:
            self.mn = min(c)

    def peek_moved(self, old: int, new: int, k: int = 1) -> Tuple[int, int]:
        """(min, max) after moving *k* occurrences of *old* to *new*."""
        c = self.counts
        drained = c.get(old, 0) == k
        mx = self.mx
        if new >= mx:  # type: ignore[operator]
            mx = new
        elif old == mx and drained:
            mx = new
            for v in c:
                if v != old and v > mx:
                    mx = v
        mn = self.mn
        if new <= mn:  # type: ignore[operator]
            mn = new
        elif old == mn and drained:
            mn = new
            for v in c:
                if v != old and v < mn:
                    mn = v
        return mn, mx  # type: ignore[return-value]


def _net_term_cost(
    ds: int, mn: Optional[int], mx: Optional[int], boundary: Optional[int], n: int
) -> float:
    """Shared-chain DFFs of one net from its consumer-stage extremes.

    INF when any consumer is not strictly later than the driver; the PO
    boundary contributes only when it lies past the driver (matching the
    seed's `_net_cost`).
    """
    worst = 0
    if mx is not None:
        if mn - ds < 1:  # type: ignore[operator]
            return INF
        worst = edge_dffs_unchecked(mx - ds, n)
    if boundary is not None:
        gap = boundary - ds
        if gap >= 1:
            w = edge_dffs_unchecked(gap, n)
            if w > worst:
                worst = w
    return float(worst)


class StageSchedule:
    """Maintained stage vector + per-net / per-T1 cost terms.

    Owns ``stages`` (read it freely, mutate only through
    :meth:`apply_move`), the running total cost, and — when
    ``include_po_balancing`` — the PO boundary, kept current across
    every move.
    """

    def __init__(
        self,
        netlist: SFQNetlist,
        *,
        include_po_balancing: bool = True,
        stages: Optional[Sequence[Optional[int]]] = None,
        structure: Optional[NetlistStructure] = None,
    ):
        st = structure if structure is not None else netlist.structure()
        self.netlist = netlist
        self.st = st
        self.n = st.n
        self.include_po = include_po_balancing
        self.stages: List[Optional[int]] = (
            list(stages) if stages is not None else asap_stages(st)
        )
        self.moves_evaluated = 0
        self.moves_applied = 0
        self._t1_memo: Dict[Tuple[Tuple[int, ...], int], float] = {}

        cells = netlist.cells
        # consumer-stage multiset per net + consumer multiplicity per net
        self._bags: Dict[Signal, _StageBag] = {}
        self._net_mult: Dict[Signal, Dict[int, int]] = {}
        for sig, cons in st.nets.items():
            mult: Dict[int, int] = {}
            for c in cons:
                mult[c] = mult.get(c, 0) + 1
            self._net_mult[sig] = mult
            self._bags[sig] = _StageBag(
                [self.stages[c] for c in cons]  # type: ignore[list-item]
            )
        # per-cell: nets consumed as an ordinary consumer, with multiplicity
        self._consumed: List[Dict[Signal, int]] = [{} for _ in cells]
        for sig, mult in self._net_mult.items():
            for c, k in mult.items():
                self._consumed[c][sig] = k
        # stage histogram of the clocked cells -> live PO boundary
        self._stage_counts: Dict[int, int] = {}
        self._max_clocked = 0
        if include_po_balancing:
            counts = self._stage_counts
            for i, c in enumerate(cells):
                s = self.stages[i]
                if st.clocked[i] and s is not None:
                    counts[s] = counts.get(s, 0) + 1
            if counts:
                self._max_clocked = max(counts)
        # cost terms and running total
        self._net_cost: Dict[Signal, float] = {}
        self._t1_cost: Dict[int, float] = {}
        self._inf_terms = 0
        self._finite = 0.0
        b = self.boundary()
        for sig, bag in self._bags.items():
            ds = self.stages[sig[0]]
            if ds is None:
                raise TimingError(f"net driver {sig[0]} has no stage")
            cost = _net_term_cost(
                ds, bag.mn, bag.mx, b if sig in st.po_signals else None, self.n
            )
            self._net_cost[sig] = cost
            if cost == INF:
                self._inf_terms += 1
            else:
                self._finite += cost
        for i, is_t1 in enumerate(st.is_t1):
            if not is_t1:
                continue
            cost = self._t1(
                self.stages[i],  # type: ignore[arg-type]
                [self.stages[d] for d in st.fanin_drivers[i]],  # type: ignore[misc]
            )
            self._t1_cost[i] = cost
            if cost == INF:
                self._inf_terms += 1
            else:
                self._finite += cost

    # -- cost primitives ----------------------------------------------------

    def _t1(self, t_stage: int, fanin_stages: Sequence[int]) -> float:
        """Memoised staggering cost of one T1 term (eq. 4)."""
        gaps = tuple(sorted(t_stage - s for s in fanin_stages))
        if gaps[0] < 1:
            return INF
        key = (gaps, min(t_stage, self.n))
        memo = self._t1_memo
        cost = memo.get(key)
        if cost is None:
            cost = _t1_eval(gaps, self.n, key[1])
            memo[key] = cost
        return cost

    def total(self) -> float:
        """The maintained schedule cost (INF while any term is infeasible)."""
        return INF if self._inf_terms else self._finite

    def state(self) -> Tuple[int, float]:
        """(infeasible term count, finite cost sum) — the move-comparison key.

        Comparing states lexicographically reproduces the seed's local
        comparison: a move that improves its incident terms is accepted
        even while some *other* term is still infeasible (the collapsed
        :meth:`total` is INF on both sides of such a comparison and could
        never accept it).
        """
        return self._inf_terms, self._finite

    def boundary(self) -> Optional[int]:
        """The live PO-balancing boundary (max clocked stage + 1)."""
        if not self.include_po:
            return None
        return self._max_clocked + 1

    def incident_inf(self, x: int) -> int:
        """Infeasible terms among everything incident to cell *x*.

        The incident set matches the seed heuristic's "affected" set: the
        nets *x* drives, the nets behind its fanins (even when *x* is a
        T1 and its own fanins are not part of those nets), and the T1
        terms touching *x*.  Combined with the global delta of
        :meth:`state_if_moved` this reconstructs the seed's local
        comparison key exactly: only incident terms can change on a move,
        so ``incident_inf(x) + (inf' - inf)`` is the candidate's incident
        infeasibility count.
        """
        st = self.st
        net_cost = self._net_cost
        cnt = 0
        seen: Set[Signal] = set()
        for sig in st.signals_of_cell[x]:
            seen.add(sig)
            if net_cost[sig] == INF:
                cnt += 1
        for sig in st.fanin_signals[x]:
            if sig in seen:
                continue
            seen.add(sig)
            if net_cost.get(sig) == INF:
                cnt += 1
        for t in st.t1_consumers[x]:
            if self._t1_cost[t] == INF:
                cnt += 1
        if st.is_t1[x] and self._t1_cost[x] == INF:
            cnt += 1
        return cnt

    def _peek_max_clocked(self, s0: int, s: int) -> int:
        """Max clocked stage after moving one clocked cell s0 -> s."""
        mx = self._max_clocked
        if s >= mx:
            return s
        counts = self._stage_counts
        if s0 == mx and counts[s0] == 1:
            m = s
            for v in counts:
                if v != s0 and v > m:
                    m = v
            return m
        return mx

    # -- move evaluation ----------------------------------------------------

    def cost_if_moved(self, x: int, s: int) -> float:
        """Total schedule cost if cell *x* moved to stage *s* (no mutation)."""
        inf, fin = self.state_if_moved(x, s)
        return INF if inf else fin

    def state_if_moved(self, x: int, s: int) -> Tuple[int, float]:
        """:meth:`state` if cell *x* moved to stage *s* (no mutation).

        O(terms incident to x); O(+ #PO nets) only when the move shifts
        the PO boundary itself.
        """
        s0 = self.stages[x]
        if s == s0:
            return self.state()
        self.moves_evaluated += 1
        st = self.st
        stages = self.stages
        n = self.n
        inf = self._inf_terms
        fin = self._finite
        b0 = self.boundary()
        b1 = b0
        if self.include_po and st.clocked[x]:
            b1 = self._peek_max_clocked(s0, s) + 1  # type: ignore[arg-type]
        po_signals = st.po_signals
        seen: Set[Signal] = set()
        # nets driven by x: only the driver stage changes
        for sig in st.signals_of_cell[x]:
            seen.add(sig)
            bag = self._bags[sig]
            new = _net_term_cost(
                s, bag.mn, bag.mx, b1 if sig in po_signals else None, n
            )
            old = self._net_cost[sig]
            if old != new:
                if old == INF:
                    inf -= 1
                else:
                    fin -= old
                if new == INF:
                    inf += 1
                else:
                    fin += new
        # nets x consumes: one consumer entry moves in the stage multiset
        for sig, k in self._consumed[x].items():
            seen.add(sig)
            bag = self._bags[sig]
            mn, mx = bag.peek_moved(s0, s, k)  # type: ignore[arg-type]
            new = _net_term_cost(
                stages[sig[0]],  # type: ignore[arg-type]
                mn,
                mx,
                b1 if sig in po_signals else None,
                n,
            )
            old = self._net_cost[sig]
            if old != new:
                if old == INF:
                    inf -= 1
                else:
                    fin -= old
                if new == INF:
                    inf += 1
                else:
                    fin += new
        # T1 terms fed by x (and x's own term when x is a T1)
        for t in st.t1_consumers[x]:
            fins = [s if d == x else stages[d] for d in st.fanin_drivers[t]]
            new = self._t1(stages[t], fins)  # type: ignore[arg-type]
            old = self._t1_cost[t]
            if old != new:
                if old == INF:
                    inf -= 1
                else:
                    fin -= old
                if new == INF:
                    inf += 1
                else:
                    fin += new
        if st.is_t1[x]:
            fins = [stages[d] for d in st.fanin_drivers[x]]
            new = self._t1(s, fins)  # type: ignore[arg-type]
            old = self._t1_cost[x]
            if old != new:
                if old == INF:
                    inf -= 1
                else:
                    fin -= old
                if new == INF:
                    inf += 1
                else:
                    fin += new
        # boundary shift reprices every remaining PO net
        if b1 != b0:
            for sig in po_signals:
                if sig in seen:
                    continue
                bag = self._bags[sig]
                new = _net_term_cost(
                    stages[sig[0]], bag.mn, bag.mx, b1, n  # type: ignore[arg-type]
                )
                old = self._net_cost[sig]
                if old != new:
                    if old == INF:
                        inf -= 1
                    else:
                        fin -= old
                    if new == INF:
                        inf += 1
                    else:
                        fin += new
        return inf, fin

    def apply_move(self, x: int, s: int) -> None:
        """Commit the move of cell *x* to stage *s*, updating every term."""
        s0 = self.stages[x]
        if s == s0:
            return
        self.moves_applied += 1
        st = self.st
        n = self.n
        b0 = self.boundary()
        if self.include_po and st.clocked[x]:
            counts = self._stage_counts
            counts[s] = counts.get(s, 0) + 1
            left = counts[s0] - 1  # type: ignore[index]
            if left:
                counts[s0] = left  # type: ignore[index]
            else:
                del counts[s0]  # type: ignore[arg-type]
            if s > self._max_clocked:
                self._max_clocked = s
            elif s0 == self._max_clocked and s0 not in counts:
                self._max_clocked = max(counts)
        b1 = self.boundary()
        self.stages[x] = s
        stages = self.stages
        po_signals = st.po_signals
        seen: Set[Signal] = set()
        for sig in st.signals_of_cell[x]:
            seen.add(sig)
            bag = self._bags[sig]
            self._set_net_cost(
                sig,
                _net_term_cost(
                    s, bag.mn, bag.mx, b1 if sig in po_signals else None, n
                ),
            )
        for sig, k in self._consumed[x].items():
            seen.add(sig)
            bag = self._bags[sig]
            bag.remove(s0, k)  # type: ignore[arg-type]
            bag.add(s, k)
            self._set_net_cost(
                sig,
                _net_term_cost(
                    stages[sig[0]],  # type: ignore[arg-type]
                    bag.mn,
                    bag.mx,
                    b1 if sig in po_signals else None,
                    n,
                ),
            )
        for t in st.t1_consumers[x]:
            fins = [stages[d] for d in st.fanin_drivers[t]]
            self._set_t1_cost(t, self._t1(stages[t], fins))  # type: ignore[arg-type]
        if st.is_t1[x]:
            fins = [stages[d] for d in st.fanin_drivers[x]]
            self._set_t1_cost(x, self._t1(s, fins))  # type: ignore[arg-type]
        if b1 != b0:
            for sig in po_signals:
                if sig in seen:
                    continue
                bag = self._bags[sig]
                self._set_net_cost(
                    sig,
                    _net_term_cost(
                        stages[sig[0]], bag.mn, bag.mx, b1, n  # type: ignore[arg-type]
                    ),
                )

    def _set_term_cost(self, store: Dict, key, new: float) -> None:
        """Replace one cost term in *store*, adjusting the running totals.

        The same inf-count/finite-sum adjustment is inlined (on local
        accumulators) in :meth:`state_if_moved`'s probe loops — keep the
        two in lockstep or the maintained total diverges from
        :meth:`recompute_total`.
        """
        old = store[key]
        if old == new:
            return
        if old == INF:
            self._inf_terms -= 1
        else:
            self._finite -= old
        if new == INF:
            self._inf_terms += 1
        else:
            self._finite += new
        store[key] = new

    def _set_net_cost(self, sig: Signal, new: float) -> None:
        self._set_term_cost(self._net_cost, sig, new)

    def _set_t1_cost(self, t: int, new: float) -> None:
        self._set_term_cost(self._t1_cost, t, new)

    # -- verification / finalisation ----------------------------------------

    def recompute_total(self) -> float:
        """From-scratch recomputation of the schedule cost (test oracle)."""
        st = self.st
        stages = self.stages
        b = None
        if self.include_po:
            mx = max(
                (
                    stages[i]
                    for i in range(len(self.netlist.cells))
                    if st.clocked[i] and stages[i] is not None
                ),
                default=0,
            )
            b = mx + 1
        inf = 0
        fin = 0.0
        for sig, cons in st.nets.items():
            ds = stages[sig[0]]
            cs = [stages[c] for c in cons]
            cost = _net_term_cost(
                ds,  # type: ignore[arg-type]
                min(cs) if cs else None,  # type: ignore[type-var]
                max(cs) if cs else None,  # type: ignore[type-var]
                b if sig in st.po_signals else None,
                self.n,
            )
            if cost == INF:
                inf += 1
            else:
                fin += cost
        for i, is_t1 in enumerate(st.is_t1):
            if not is_t1:
                continue
            cost = self._t1(
                stages[i],  # type: ignore[arg-type]
                [stages[d] for d in st.fanin_drivers[i]],  # type: ignore[misc]
            )
            if cost == INF:
                inf += 1
            else:
                fin += cost
        return INF if inf else fin

    def check_invariants(self) -> None:
        """Raise TimingError when a maintained value diverged from scratch.

        Compares the running total, every net/T1 term, the stage
        histogram and the boundary against a from-scratch recomputation.
        """
        st = self.st
        stages = self.stages
        b = self.boundary()
        if self.include_po:
            mx = max(
                (
                    stages[i]
                    for i in range(len(self.netlist.cells))
                    if st.clocked[i] and stages[i] is not None
                ),
                default=0,
            )
            if b != mx + 1:
                raise TimingError(f"stale boundary: kept {b}, actual {mx + 1}")
        for sig, cons in st.nets.items():
            cs = [stages[c] for c in cons]
            want = _net_term_cost(
                stages[sig[0]],  # type: ignore[arg-type]
                min(cs) if cs else None,  # type: ignore[type-var]
                max(cs) if cs else None,  # type: ignore[type-var]
                b if sig in st.po_signals else None,
                self.n,
            )
            if self._net_cost[sig] != want:
                raise TimingError(
                    f"net {sig}: kept cost {self._net_cost[sig]}, actual {want}"
                )
        for i, is_t1 in enumerate(st.is_t1):
            if is_t1:
                want = self._t1(
                    stages[i],  # type: ignore[arg-type]
                    [stages[d] for d in st.fanin_drivers[i]],  # type: ignore[misc]
                )
                if self._t1_cost[i] != want:
                    raise TimingError(
                        f"T1 {i}: kept cost {self._t1_cost[i]}, actual {want}"
                    )
        want_total = self.recompute_total()
        if self.total() != want_total:
            raise TimingError(
                f"running total {self.total()} != recomputed {want_total}"
            )

    def write_stages(self) -> None:
        """Write the stage vector back onto the netlist's clocked cells."""
        for cell in self.netlist.cells:
            if cell.clocked or cell.kind is CellKind.PI:
                cell.stage = self.stages[cell.index]
