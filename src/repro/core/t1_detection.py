"""T1-FF detection and substitution (§II-A of the paper).

Pipeline:

1. enumerate 3-feasible priority cuts (ref. [8]);
2. group cuts by their leaf triple; inside a group, Boolean-match every
   node's cut function against the five T1 outputs for each of the eight
   shared input polarities;
3. for each group pick the polarity with the best area gain

       ΔA = Σ A(MFFC(u_i))  −  A_T1(C)            (eq. 2)

   where the MFFC union is computed jointly (no double counting of shared
   cone nodes) with the leaves as boundary, and A_T1 adds a clocked
   inverter per negated input;
4. greedy conflict resolution by descending ΔA: a group is *used* when
   its cone is disjoint from every previously applied cone and its leaves
   are still alive — this yields the paper's "found" vs "used" columns;
5. substitution: a T1 block (cell + taps, negated taps for C*/Q*) replaces
   the matched nodes; dead cones are swept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.cuts import CutDatabase, cached_cut_database
from repro.network.gates import (
    CODE_BY_GATE,
    Gate,
    SOURCE_CODES,
    T1_TAP_CODES,
    is_t1_tap,
)
from repro.network.logic_network import LogicNetwork, flat_arrays
from repro.network.mffc import MffcComputer
from repro.network.nodemap import NodeMap
from repro.sfq.cell_library import CellLibrary, default_library
from repro.core.t1_matching import OutputMatch, polarity_bits, t1_match_table


@dataclass
class T1Candidate:
    """One replaceable group: a leaf triple plus matched nodes."""

    leaves: Tuple[int, int, int]
    polarity: int
    matches: Tuple[Tuple[int, OutputMatch], ...]  # (node, match)
    cone: Set[int]
    gain: int

    @property
    def roots(self) -> Tuple[int, ...]:
        return tuple(node for node, _m in self.matches)


@dataclass
class DetectionResult:
    """Outcome of a detection pass."""

    network: LogicNetwork
    found: int
    used: int
    candidates: List[T1Candidate] = field(default_factory=list)
    applied: List[T1Candidate] = field(default_factory=list)


def node_area(net: LogicNetwork, node: int, library: CellLibrary) -> int:
    """Library area of one logic node (0 for PIs, constants, taps, BUFs).

    Gates wider than any library cell (possible when detection runs on an
    undecomposed network) are costed as the balanced tree the mapper would
    build: one widest cell per (max_arity − 1) inputs absorbed.
    """
    g = net.gates[node]
    if g in (Gate.CONST0, Gate.CONST1, Gate.PI, Gate.BUF):
        return 0
    if g is Gate.T1_CELL:
        return library.t1.jj_count
    if is_t1_tap(g):
        return 0
    arity = len(net.fanins[node])
    if library.has_cell(g, arity):
        return library.gate_area(g, arity)
    import math

    base = {Gate.NAND: Gate.AND, Gate.NOR: Gate.OR, Gate.XNOR: Gate.XOR}.get(g, g)
    widest = library.max_arity(base)
    cells = math.ceil((arity - 1) / (widest - 1))
    est = cells * library.gate_area(base, widest)
    if g is not base:
        est += library.gate_area(Gate.NOT, 1)
    return est


def _t1_area(polarity: int, matches: Sequence[Tuple[int, OutputMatch]],
             library: CellLibrary) -> int:
    """A_T1(C): cell + input inverters + output inverters (eq. 2)."""
    area = library.t1.jj_count
    not_area = library.gate_area(Gate.NOT, 1)
    area += sum(polarity_bits(polarity)) * not_area
    area += sum(1 for _n, m in matches if m.negated) * not_area
    return area


#: nodes the matcher never scans: sources, T1 cells, taps
_SKIP_MATCH_CODES = frozenset(
    SOURCE_CODES | {CODE_BY_GATE[Gate.T1_CELL]} | T1_TAP_CODES
)


def find_candidates(
    net: LogicNetwork,
    library: Optional[CellLibrary] = None,
    cuts_per_node: int = 8,
    min_outputs: int = 2,
    max_outputs: int = 5,
    cut_db: Optional[CutDatabase] = None,
) -> List[T1Candidate]:
    """All positive-gain candidate groups (the paper's "found" set).

    When *cut_db* is omitted the enumeration is shared through
    :func:`~repro.network.cuts.cached_cut_database`: repeated detection
    over the same (unmutated) network reuses one database.
    """
    library = library or default_library()
    if cut_db is None:
        cut_db = cached_cut_database(net, k=3, cuts_per_node=cuts_per_node)

    # group matchable (node, matches) rows by leaf triple.  The complete
    # inverse table maps a cut function to every (polarity, output) match
    # in one lookup, so unmatchable cuts cost one dict miss and the
    # 8-polarity probe loop of the seed is gone.  Parallel arrays avoid
    # rebuilding a dict-of-lists per group.
    match_table = t1_match_table()
    group_of: Dict[Tuple[int, int, int], int] = {}
    group_leaves: List[Tuple[int, int, int]] = []
    # per group, per member: (node, ((polarity, match), ...))
    group_members: List[List[Tuple[int, Tuple[Tuple[int, OutputMatch], ...]]]] = []
    codes = flat_arrays(net)[0]
    skip_codes = _SKIP_MATCH_CODES
    row_leaves, row_bits = cut_db.raw_rows()
    for node in net.nodes():
        if codes[node] in skip_codes:
            continue
        # kernel-enumerated databases hold distinct leaf tuples per node,
        # but hand-built ones may not — a node must join a group once
        seen_leaves: Set[Tuple[int, ...]] = set()
        for ri in cut_db.node_rows(node):
            leaves = row_leaves[ri]
            if len(leaves) != 3 or node in leaves:
                continue
            if leaves in seen_leaves:
                continue
            seen_leaves.add(leaves)
            pms = match_table.get(row_bits[ri])
            if pms is None:
                continue
            gi = group_of.get(leaves)
            if gi is None:
                gi = len(group_leaves)
                group_of[leaves] = gi
                group_leaves.append(leaves)
                group_members.append([])
            group_members[gi].append((node, pms))

    # one MFFC engine and one area memo serve every group (the network
    # is frozen during detection, so per-node areas never change)
    mffc = MffcComputer(net)
    area_memo: Dict[int, int] = {}

    def area_of(x: int) -> int:
        a = area_memo.get(x)
        if a is None:
            a = node_area(net, x, library)
            area_memo[x] = a
        return a

    candidates: List[T1Candidate] = []
    for gi, leaves in enumerate(group_leaves):
        members = group_members[gi]
        # bucket the precomputed matches by polarity (member order is
        # node order, as in the seed's per-polarity scan)
        per_polarity: List[List[Tuple[int, OutputMatch]]] = [
            [] for _ in range(8)
        ]
        for node, pms in members:
            for polarity, m in pms:
                per_polarity[polarity].append((node, m))
        best: Optional[T1Candidate] = None
        indiv_area: Dict[int, int] = {}
        cone_memo: Dict[Tuple[int, ...], Tuple[Set[int], int]] = {}
        for polarity in range(8):
            matched = per_polarity[polarity]
            if len(matched) < min_outputs:
                continue
            if len(matched) > max_outputs:
                # keep the most valuable roots (largest individual MFFC)
                for node, _m in matched:
                    if node not in indiv_area:
                        indiv_area[node] = sum(
                            area_of(x) for x in mffc.mffc(node, leaves)
                        )
                matched = sorted(matched, key=lambda nm: -indiv_area[nm[0]])
                matched = matched[:max_outputs]
            roots = tuple(n for n, _m in matched)
            cached = cone_memo.get(roots)
            if cached is None:
                cone = mffc.mffc_union(roots, boundary=leaves)
                saved = sum(area_of(x) for x in cone)
                cone_memo[roots] = (cone, saved)
            else:
                cone, saved = cached
            cost = _t1_area(polarity, matched, library)
            gain = saved - cost
            if gain <= 0:
                continue
            if best is None or gain > best.gain:
                best = T1Candidate(
                    leaves=leaves,
                    polarity=polarity,
                    matches=tuple(matched),
                    cone=cone,
                    gain=gain,
                )
        if best is not None:
            candidates.append(best)
    candidates.sort(key=lambda c: (-c.gain, c.leaves))
    return candidates


def find_candidates_reference(
    net: LogicNetwork,
    library: Optional[CellLibrary] = None,
    cuts_per_node: int = 8,
    min_outputs: int = 2,
    max_outputs: int = 5,
    cut_db: Optional[CutDatabase] = None,
) -> List[T1Candidate]:
    """The seed candidate search — retained as the differential oracle.

    Rebuilds a dict-of-lists per group, probes all eight polarities per
    node through :func:`match_t1_output` and recomputes MFFC areas from
    scratch; results are bit-identical to :func:`find_candidates`.
    """
    from repro.core.t1_matching import match_t1_output
    from repro.network.cuts import enumerate_cuts_reference
    from repro.network.truth_table import TruthTable

    library = library or default_library()
    if cut_db is None:
        cut_db = enumerate_cuts_reference(net, k=3, cuts_per_node=cuts_per_node)

    groups: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
    for node in net.nodes():
        if not net.is_logic(node):
            continue
        g = net.gates[node]
        if g is Gate.T1_CELL or is_t1_tap(g):
            continue
        for cut in cut_db[node]:
            if len(cut.leaves) != 3 or node in cut.leaves:
                continue
            groups.setdefault(tuple(cut.leaves), []).append(
                (node, cut.table.bits)
            )

    mffc = MffcComputer(net)
    candidates: List[T1Candidate] = []
    for leaves, members in groups.items():
        seen_nodes: Set[int] = set()
        uniq: List[Tuple[int, int]] = []
        for node, bits in members:
            if node not in seen_nodes:
                seen_nodes.add(node)
                uniq.append((node, bits))
        best: Optional[T1Candidate] = None
        for polarity in range(8):
            matched: List[Tuple[int, OutputMatch]] = []
            for node, bits in uniq:
                m = match_t1_output(TruthTable(bits, 3), polarity)
                if m is not None:
                    matched.append((node, m))
            if len(matched) < min_outputs:
                continue
            if len(matched) > max_outputs:
                matched.sort(
                    key=lambda nm: -sum(
                        node_area(net, x, library)
                        for x in mffc.mffc(nm[0], leaves)
                    )
                )
                matched = matched[:max_outputs]
            roots = [n for n, _m in matched]
            cone = mffc.mffc_union(roots, boundary=leaves)
            saved = sum(node_area(net, x, library) for x in cone)
            cost = _t1_area(polarity, matched, library)
            gain = saved - cost
            if gain <= 0:
                continue
            cand = T1Candidate(
                leaves=leaves,
                polarity=polarity,
                matches=tuple(matched),
                cone=cone,
                gain=gain,
            )
            if best is None or cand.gain > best.gain:
                best = cand
        if best is not None:
            candidates.append(best)
    candidates.sort(key=lambda c: (-c.gain, c.leaves))
    return candidates


def select_candidates(candidates: Sequence[T1Candidate]) -> List[T1Candidate]:
    """Greedy conflict resolution (the paper's "used" set).

    A candidate is applied when (a) no node of its cone was claimed by an
    earlier (higher-gain) candidate and (b) none of its leaves is an
    *interior* node of an earlier cone (roots are fine — they get taps).

    The claimed / removed-interior state is maintained incrementally
    across the scan and probed with early-exit disjointness tests — no
    per-candidate rescan of previously applied cones, no intermediate
    intersection sets.
    """
    claimed: Set[int] = set()
    removed_interior: Set[int] = set()
    out: List[T1Candidate] = []
    for cand in candidates:
        if not claimed.isdisjoint(cand.cone):
            continue
        if not removed_interior.isdisjoint(cand.leaves):
            continue
        out.append(cand)
        claimed.update(cand.cone)
        removed_interior.update(cand.cone.difference(cand.roots))
    return out


def apply_candidates(
    net: LogicNetwork, selected: Sequence[T1Candidate]
) -> Tuple[LogicNetwork, NodeMap]:
    """Substitute every selected group by a T1 block and compact in place.

    Each ``substitute`` costs O(fanout) via the kernel's maintained fanout
    index, and the dead cones are removed by one in-place ``compact`` that
    emits the ``old_to_new`` id remap.  Returns ``(new_network, remap)``.
    """
    work = net.clone()
    # a root replaced by an earlier group may serve as a leaf of a later
    # one; route such leaves to the live tap instead of the dead node
    repl: Dict[int, int] = {}

    def resolve(node: int) -> int:
        while node in repl:
            node = repl[node]
        return node

    for cand in selected:
        a, b, c = (resolve(leaf) for leaf in cand.leaves)
        na, nb, nc = polarity_bits(cand.polarity)
        ia = work.add_not(a) if na else a
        ib = work.add_not(b) if nb else b
        ic = work.add_not(c) if nc else c
        cell = work.add_t1_cell(ia, ib, ic)
        taps: Dict[Gate, int] = {}
        for node, match in cand.matches:
            tap = taps.get(match.tap_gate)
            if tap is None:
                tap = work.add_t1_tap(cell, match.tap_gate)
                taps[match.tap_gate] = tap
            work.substitute(node, tap)
            repl[node] = tap
    remap = work.compact()
    return work, remap


def detect_and_replace(
    net: LogicNetwork,
    library: Optional[CellLibrary] = None,
    cuts_per_node: int = 8,
    min_outputs: int = 2,
) -> DetectionResult:
    """Full §II-A pass: find, select, substitute."""
    library = library or default_library()
    candidates = find_candidates(
        net, library=library, cuts_per_node=cuts_per_node, min_outputs=min_outputs
    )
    selected = select_candidates(candidates)
    new_net, _mapping = apply_candidates(net, selected)
    return DetectionResult(
        network=new_net,
        found=len(candidates),
        used=len(selected),
        candidates=list(candidates),
        applied=selected,
    )
