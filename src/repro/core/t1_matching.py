"""Boolean matching against the T1 cell's output functions (§II-A).

The extended T1 cell offers up to five synchronous outputs over its input
triple (a, b, c):

========= ================= =========================
port       function          realisation
========= ================= =========================
S          XOR3              readout by the clock (R)
C          MAJ3              carry port
C* + NOT   NOT MAJ3          raw carry + clocked inverter
Q          OR3               or port
Q* + NOT   NOT OR3           raw or + clocked inverter
========= ================= =========================

The cell's inputs may additionally be negated by inserting clocked
inverters in front of the T input (a shared *input polarity* for all
outputs of the cell).  Note the paper's asymmetry: S cannot be inverted
at the cell (no raw S* port) — but ¬XOR3 under polarity p equals XOR3
under a polarity differing in one bit, so no expressiveness is lost
across the polarity search.

A *match* of a candidate node is therefore (input polarity p, output
port, output negation) such that the node's cut function equals the port
function composed with p.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.network.gates import Gate
from repro.network.truth_table import TruthTable, maj3_tt, or3_tt, xor3_tt

#: output descriptors: (port name, negated?, tap gate used at replacement)
T1_OUTPUTS: Tuple[Tuple[str, bool, Gate], ...] = (
    ("S", False, Gate.T1_S),
    ("C", False, Gate.T1_C),
    ("C", True, Gate.T1_CN),
    ("Q", False, Gate.T1_Q),
    ("Q", True, Gate.T1_QN),
)


@dataclass(frozen=True)
class OutputMatch:
    """How one candidate function maps onto a T1 output."""

    port: str  # "S", "C" or "Q"
    negated: bool
    tap_gate: Gate


@lru_cache(maxsize=None)
def _tables_for_polarity(polarity: int) -> Dict[int, OutputMatch]:
    """tt bits -> output match, for a fixed input polarity.

    When two descriptors would produce the same table (cannot happen for
    the five T1 outputs, which are pairwise distinct functions), the first
    in `T1_OUTPUTS` order would win.
    """
    base = {
        "S": xor3_tt(),
        "C": maj3_tt(),
        "Q": or3_tt(),
    }
    out: Dict[int, OutputMatch] = {}
    for port, negated, tap in T1_OUTPUTS:
        tt = base[port].negate_vars(polarity)
        if negated:
            tt = ~tt
        out.setdefault(tt.bits, OutputMatch(port, negated, tap))
    return out


@lru_cache(maxsize=None)
def t1_match_table() -> Dict[int, Tuple[Tuple[int, OutputMatch], ...]]:
    """The complete inverse matching table: tt bits -> ((polarity, match), ...).

    Covers every 3-input function that is *any* T1 output under *any*
    input polarity (the union of the five outputs' orbits under input
    negation — 40 distinct functions).  One dict lookup replaces the
    8-polarity probe loop; functions absent from the table are not
    T1-implementable.  Entries are ordered by ascending polarity, so
    iterating an entry reproduces the seed's polarity scan order.
    """
    out: Dict[int, List[Tuple[int, OutputMatch]]] = {}
    for polarity in range(8):
        for bits, match in _tables_for_polarity(polarity).items():
            out.setdefault(bits, []).append((polarity, match))
    return {bits: tuple(pms) for bits, pms in out.items()}


def t1_npn_classes() -> Dict[str, Tuple[int, frozenset]]:
    """NPN class of each T1 output: port/polarity name -> (canon bits, members).

    The member sets are read off the precomputed k=3 NPN table
    (:func:`repro.network.npn.npn_class_members`); they bound what the
    polarity search can ever reach — every matchable function in
    :func:`t1_match_table` lies in one of these classes.
    """
    from repro.network.npn import npn_canon, npn_class_members

    out: Dict[str, Tuple[int, frozenset]] = {}
    base = {"S": xor3_tt(), "C": maj3_tt(), "Q": or3_tt()}
    for port, negated, _tap in T1_OUTPUTS:
        tt = ~base[port] if negated else base[port]
        name = port + ("*" if negated else "")
        out[name] = (npn_canon(tt)[0].bits, npn_class_members(tt))
    return out


def match_t1_output(
    table: TruthTable, polarity: int
) -> Optional[OutputMatch]:
    """Match one 3-input function against the T1 outputs under *polarity*."""
    if table.num_vars != 3:
        return None
    return _tables_for_polarity(polarity).get(table.bits)


def polarities_matching(table: TruthTable) -> List[Tuple[int, OutputMatch]]:
    """All (polarity, match) pairs under which *table* is T1-implementable."""
    if table.num_vars != 3:
        return []
    return list(t1_match_table().get(table.bits, ()))


def is_t1_implementable(table: TruthTable) -> bool:
    """True if the function is some T1 output under some input polarity."""
    return bool(polarities_matching(table))


def polarity_bits(polarity: int) -> Tuple[bool, bool, bool]:
    """Which of the three inputs are negated under *polarity*."""
    return bool(polarity & 1), bool(polarity & 2), bool(polarity & 4)
