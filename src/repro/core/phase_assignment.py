"""Phase assignment (§II-B of the paper): give every clocked cell a stage.

Two engines over the same constraint system:

* :func:`assign_stages_ilp` — the paper's ILP, built once on the
  :class:`~repro.solvers.model.SolverModel` IR and solved on the MILP
  backend (per-edge DFF counters ``k_e`` with ``n·k_e ≥ σ_v − σ_u``,
  objective ``Σ (k_e − 1)``; the T1 constraint (eq. 3) is encoded with a
  permutation of the offsets {1, 2, 3} over the three fanins).  Exact but
  exponential in the worst case — used for small netlists and as the
  reference in tests.
* :func:`assign_stages_heuristic` — scalable coordinate descent on the
  :class:`~repro.core.schedule.StageSchedule` kernel, which prices the
  *true* insertion cost (shared per-net chains + the exact T1 staggering
  cost of eq. 4, via the same planner DFF insertion uses) with
  delta-evaluated moves and a live PO boundary, starting from an ASAP
  schedule.  This is what the flow runs on paper-scale circuits.

``assign_stages(..., method="auto")`` routes between the two by netlist
size: small netlists get the exact ILP, everything else the heuristic.

Constraints (both engines):

* PIs are fixed at stage 0;
* ordinary consumer:  σ(v) ≥ σ(u) + 1;
* T1 consumer:        σ(T1) ≥ max(σ(i1)+3, σ(i2)+2, σ(i3)+1)   (eq. 3)
  for its fanins sorted by stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.schedule import (
    INF,
    StageSchedule,
    asap_stages,
    t1_lower_bound,
    _t1_eval,
)
from repro import faults
from repro.errors import FaultInjected, SolverError, SolverLimitError
from repro.sfq.multiphase import edge_dffs
from repro.sfq.netlist import CellKind, NetlistStructure, SFQNetlist, Signal


def _Structure(netlist: SFQNetlist) -> NetlistStructure:
    """Deprecated alias: the structure view now lives on the netlist.

    The per-call fanin/fanout extraction this class performed is replaced
    by the epoch-cached :meth:`repro.sfq.netlist.SFQNetlist.structure`.
    """
    return netlist.structure()


# ---------------------------------------------------------------------------
# true-cost evaluation (matches what DFF insertion will materialise)
# ---------------------------------------------------------------------------

#: Bound on the module-level staggering-cost memo.  The scheduling kernel
#: uses its own per-instance memo (scoped to one netlist's lifetime); this
#: module-global cache only serves ad-hoc `t1_stagger_cost` calls, so it is
#: kept deliberately small for long batch runs over many netlists.
T1_COST_CACHE_SIZE = 16_384


@lru_cache(maxsize=T1_COST_CACHE_SIZE)
def _t1_cost_cached(gaps: Tuple[int, int, int], n: int, head: int) -> float:
    """Staggering cost keyed by (sorted gaps, n, clamped window head).

    ``head`` is min(t1_stage, n): when the T1 sits closer than n stages to
    stage 0 the freshness window is clipped, which changes feasibility.
    """
    return _t1_eval(gaps, n, head)


def clear_t1_cost_cache() -> None:
    """Drop the module-level staggering-cost memo (batch-runner hygiene)."""
    _t1_cost_cached.cache_clear()


def t1_stagger_cost(t1_stage: int, fanin_stages: Sequence[int], n: int) -> float:
    gaps = tuple(sorted(t1_stage - s for s in fanin_stages))
    if any(g < 1 for g in gaps):
        return INF
    return _t1_cost_cached(gaps, n, min(t1_stage, n))


def _net_cost(
    driver_stage: int,
    consumer_stages: Sequence[int],
    n: int,
    po_boundary: Optional[int],
) -> float:
    """Shared-chain DFFs of one net (ordinary consumers + PO boundary)."""
    worst = 0
    for cs in consumer_stages:
        gap = cs - driver_stage
        if gap < 1:
            return INF
        worst = max(worst, edge_dffs(gap, n))
    if po_boundary is not None:
        gap = po_boundary - driver_stage
        if gap >= 1:
            worst = max(worst, edge_dffs(gap, n))
    return float(worst)


# ---------------------------------------------------------------------------
# heuristic: coordinate descent on the schedule kernel
# ---------------------------------------------------------------------------

@dataclass
class HeuristicReport:
    """Statistics of one coordinate-descent run (for benchmarks/tests)."""

    sweeps_run: int = 0
    moves_evaluated: int = 0
    moves_applied: int = 0
    final_cost: float = 0.0


def _candidate_stages(
    st: NetlistStructure,
    stages: Sequence[Optional[int]],
    x: int,
    lb: int,
    ub: int,
    is_pi: bool,
    n: int,
    max_candidates: int,
) -> Set[int]:
    """Candidate stages for cell *x*: window ends, fine offsets near the
    current position (T1 staggering moves in ±1 steps), and the
    ceil-breakpoints of all incident edges."""
    cands: Set[int] = {lb, ub, stages[x]}  # type: ignore[arg-type]
    for delta in (-2, -1, 1, 2):
        for base in (stages[x], lb, ub):
            s = base + delta  # type: ignore[operator]
            if lb <= s <= ub:
                cands.add(s)
    if is_pi:
        cands.update(range(lb, ub + 1))
    for d in st.fanin_drivers[x]:
        base = stages[d]
        k = 0
        while True:
            s = base + k * n + 1  # type: ignore[operator]
            if s > ub:
                break
            if s >= lb:
                cands.add(s)
                if s + n - 1 <= ub:
                    cands.add(s + n - 1)
            k += 1
            if len(cands) > max_candidates:
                break
    for c in list(st.net_consumers[x]) + list(st.t1_consumers[x]):
        base = stages[c]
        k = 1
        while True:
            s = base - k * n  # type: ignore[operator]
            if s < lb:
                break
            if s <= ub:
                cands.add(s)
            k += 1
            if len(cands) > max_candidates:
                break
    return cands


def _move_window(
    st: NetlistStructure,
    stages: Sequence[Optional[int]],
    x: int,
    is_pi: bool,
    boundary: Optional[int],
    n: int,
) -> Tuple[int, int]:
    """Feasible [lb, ub] stage window of cell *x* given its neighbours."""
    if is_pi:
        lb = 0
    else:
        fins = [stages[d] for d in st.fanin_drivers[x]]
        if st.is_t1[x]:
            lb = t1_lower_bound(fins)  # type: ignore[arg-type]
        else:
            lb = (max(fins) + 1) if fins else 1  # type: ignore[arg-type]
    ubs = [stages[c] - 1 for c in st.net_consumers[x]]  # type: ignore[operator]
    ubs += [stages[t] - 1 for t in st.t1_consumers[x]]  # type: ignore[operator]
    ub = min(ubs) if ubs else (boundary if boundary is not None else lb)
    if is_pi:
        ub = min(ub, n - 1)
    return lb, ub


def assign_stages_heuristic(
    netlist: SFQNetlist,
    sweeps: int = 4,
    include_po_balancing: bool = True,
    max_candidates: int = 160,
    free_pi_phases: bool = True,
) -> HeuristicReport:
    """ASAP + iterative per-cell improvement; sets ``cell.stage`` in place.

    Runs on the :class:`~repro.core.schedule.StageSchedule` kernel: every
    candidate stage is priced by delta evaluation against the maintained
    cost terms, and the PO boundary stays current across moves instead of
    being snapshotted once per sweep (the seed implementation's stale
    boundary could misprice moves near the schedule's deep end).

    ``free_pi_phases`` lets a primary input arrive at any phase of epoch 0
    (stage 0..n−1) instead of pinning it to phase 0 — the environment can
    deliver each input pulse on whichever clock phase suits the schedule,
    which is what makes T1 staggering "free" for input-fed cells.
    """
    st = netlist.structure()
    kernel = StageSchedule(
        netlist, include_po_balancing=include_po_balancing, structure=st
    )
    n = kernel.n
    stages = kernel.stages  # shared view; mutated only via apply_move
    report = HeuristicReport()

    for _sweep in range(sweeps):
        report.sweeps_run = _sweep + 1
        improved = False
        # alternate direction each sweep
        order = st.order if _sweep % 2 == 0 else list(reversed(st.order))
        for x in order:
            is_pi = netlist.cells[x].kind is CellKind.PI
            if not st.clocked[x] and not (is_pi and free_pi_phases):
                continue
            boundary = kernel.boundary()
            lb, ub = _move_window(st, stages, x, is_pi, boundary, n)
            if ub < lb:
                continue
            cands = _candidate_stages(
                st, stages, x, lb, ub, is_pi, n, max_candidates
            )
            current = stages[x]
            best_stage = current
            g_inf, g_fin = kernel.state()
            inc_inf = kernel.incident_inf(x) if g_inf else 0
            # the seed's local comparison key: INF while any term incident
            # to x is infeasible, the finite cost sum otherwise
            best_cost = INF if inc_inf else g_fin
            for cand in sorted(cands):
                if cand == current:
                    continue
                c_inf, c_fin = kernel.state_if_moved(x, cand)
                cost = INF if inc_inf + (c_inf - g_inf) else c_fin
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_stage = cand
            if best_stage != current:
                kernel.apply_move(x, best_stage)  # type: ignore[arg-type]
                improved = True
        if not improved:
            break

    kernel.write_stages()
    report.moves_evaluated = kernel.moves_evaluated
    report.moves_applied = kernel.moves_applied
    report.final_cost = kernel.total()
    return report


def assign_stages_rescan_reference(
    netlist: SFQNetlist,
    sweeps: int = 4,
    include_po_balancing: bool = True,
    max_candidates: int = 160,
    free_pi_phases: bool = True,
) -> HeuristicReport:
    """The seed scan-and-rebuild heuristic, kept verbatim as an oracle.

    Re-sums every incident net/T1 term from scratch for every candidate
    and snapshots the PO boundary once per sweep (including its stale-
    boundary mispricing — see the kernel regression tests).  Used by the
    differential tests and :mod:`benchmarks.bench_schedule` to measure
    the delta-evaluation speedup in the same run; the flow itself always
    runs the kernel-based :func:`assign_stages_heuristic`.
    """
    st = netlist.structure()
    n = st.n
    stages = asap_stages(st)
    nl = netlist.cells
    report = HeuristicReport()

    def po_boundary() -> Optional[int]:
        if not include_po_balancing:
            return None
        mx = max(
            (stages[i] for i in range(len(nl)) if st.clocked[i] and stages[i] is not None),
            default=0,
        )
        return mx + 1

    def local_cost(x: int, boundary: Optional[int]) -> float:
        """Cost of every net/T1 term affected by cell x's stage."""
        total = 0.0
        affected_signals: Set[Signal] = set(st.signals_of_cell[x])
        affected_signals.update(st.fanin_signals[x])
        affected_t1: Set[int] = set(st.t1_consumers[x])
        if st.is_t1[x]:
            affected_t1.add(x)
        for sig in affected_signals:
            cons = st.nets.get(sig)
            if cons is None:
                continue  # signal feeds only T1 cells
            d = sig[0]
            cons_stages = [stages[c] for c in cons]
            b = boundary if sig in st.po_signals else None
            cost = _net_cost(stages[d], cons_stages, n, b)  # type: ignore[arg-type]
            if cost == INF:
                return INF
            total += cost
        for t in affected_t1:
            fins = [stages[d] for d in st.fanin_drivers[t]]
            cost = t1_stagger_cost(stages[t], fins, n)  # type: ignore[arg-type]
            if cost == INF:
                return INF
            total += cost
        return total

    for _sweep in range(sweeps):
        report.sweeps_run = _sweep + 1
        boundary = po_boundary()
        improved = False
        order = st.order if _sweep % 2 == 0 else list(reversed(st.order))
        for x in order:
            is_pi = netlist.cells[x].kind is CellKind.PI
            if not st.clocked[x] and not (is_pi and free_pi_phases):
                continue
            lb, ub = _move_window(st, stages, x, is_pi, boundary, n)
            if ub < lb:
                continue
            cands = _candidate_stages(
                st, stages, x, lb, ub, is_pi, n, max_candidates
            )
            current = stages[x]
            best_stage = current
            best_cost = local_cost(x, boundary)
            for cand in sorted(cands):
                if cand == current:
                    continue
                stages[x] = cand
                report.moves_evaluated += 1
                cost = local_cost(x, boundary)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_stage = cand
            stages[x] = best_stage
            if best_stage != current:
                report.moves_applied += 1
                improved = True
        if not improved:
            break

    for cell in netlist.cells:
        if cell.clocked or cell.kind is CellKind.PI:
            cell.stage = stages[cell.index]
    report.final_cost = StageSchedule(
        netlist,
        include_po_balancing=include_po_balancing,
        stages=stages,
        structure=st,
    ).total()
    return report


# ---------------------------------------------------------------------------
# exact ILP (the paper's formulation, on the solver-model IR)
# ---------------------------------------------------------------------------

def build_ilp_model(
    netlist: SFQNetlist,
    horizon: Optional[int] = None,
):
    """Build the paper's phase-assignment ILP on the solver-model IR.

    Returns ``(model, sigma, k_vars)`` where *sigma* maps clocked cell
    indices to their stage variables.  The model carries no
    ``AllDifferent``, so ``solve(backend="auto")`` routes it to MILP.
    """
    from repro.solvers import SolverModel

    st = netlist.structure()
    n = st.n
    asap = asap_stages(st)
    max_asap = max(
        (s for i, s in enumerate(asap) if st.clocked[i] and s is not None),
        default=0,
    )
    if horizon is None:
        horizon = max_asap + 2 * n
    model = SolverModel()
    sigma: Dict[int, object] = {}
    for cell in netlist.cells:
        if cell.clocked:
            sigma[cell.index] = model.add_var(
                1, horizon, name=f"sigma{cell.index}"
            )

    k_vars = []
    for cell in netlist.cells:
        if not cell.clocked:
            continue
        v = cell.index
        if st.is_t1[v]:
            # offset permutation z[i][o]: fanin i gets offset o in {1, 2, 3}
            zs = [
                [model.add_var(0, 1, name=f"z{v}_{i}_{o}") for o in (1, 2, 3)]
                for i in range(3)
            ]
            for i in range(3):
                model.add_linear(
                    {zs[i][0]: 1, zs[i][1]: 1, zs[i][2]: 1}, "==", 1
                )
            for o in range(3):
                model.add_linear(
                    {zs[0][o]: 1, zs[1][o]: 1, zs[2][o]: 1}, "==", 1
                )
            for i, d in enumerate(st.fanin_drivers[v]):
                coeffs = {sigma[v]: 1}
                const = 0
                if netlist.cells[d].kind is CellKind.PI:
                    pass  # sigma_d == 0
                else:
                    coeffs[sigma[d]] = -1
                # sigma_v - sigma_d >= 1*z1 + 2*z2 + 3*z3
                coeffs[zs[i][0]] = coeffs.get(zs[i][0], 0) - 1
                coeffs[zs[i][1]] = coeffs.get(zs[i][1], 0) - 2
                coeffs[zs[i][2]] = coeffs.get(zs[i][2], 0) - 3
                model.add_linear(coeffs, ">=", const)
        # per-edge DFF counters for every fanin edge
        for d in st.fanin_drivers[v]:
            k = model.add_var(1, horizon, name=f"k_{d}_{v}")
            k_vars.append(k)
            coeffs = {k: n, sigma[v]: -1}
            if netlist.cells[d].kind is not CellKind.PI:
                coeffs[sigma[d]] = 1
            model.add_linear(coeffs, ">=", 0)
            # plain precedence for non-T1 consumers
            if not st.is_t1[v]:
                pc = {sigma[v]: 1}
                if netlist.cells[d].kind is not CellKind.PI:
                    pc[sigma[d]] = -1
                model.add_linear(pc, ">=", 1)

    model.minimize({k: 1 for k in k_vars})
    return model, sigma, k_vars


def assign_stages_ilp(
    netlist: SFQNetlist,
    horizon: Optional[int] = None,
    node_limit: int = 50_000,
    time_budget_s: Optional[float] = None,
) -> None:
    """Exact phase assignment on the MILP backend; small netlists only.

    Objective: per-edge DFF proxy Σ(k_e − 1) with n·k_e ≥ σ_v − σ_u — the
    formulation of ref. [10] extended with the T1 offset permutation of
    eq. 3.  Sets ``cell.stage`` in place.  *time_budget_s* caps the
    wall-clock spent in the search (see :meth:`SolverModel.solve`).
    """
    model, sigma, _ = build_ilp_model(netlist, horizon=horizon)
    sol = model.solve(
        backend="auto", node_limit=node_limit, time_budget_s=time_budget_s
    )
    for cell in netlist.cells:
        if cell.clocked:
            cell.stage = sol.int_value(sigma[cell.index])


#: method="auto" runs the exact ILP when the netlist is at most this many
#: clocked cells (and at most AUTO_ILP_MAX_T1 T1 blocks — each T1 adds a
#: 3x3 permutation sub-model), falling back to the heuristic above that.
AUTO_ILP_MAX_CELLS = 24
AUTO_ILP_MAX_T1 = 4

#: wall-clock budget for the exact branch of method="auto": a search
#: that runs past this falls back to the heuristic (degraded result)
#: instead of stalling the flow.
AUTO_TIME_BUDGET_S = 10.0


def assign_stages(
    netlist: SFQNetlist,
    method: str = "heuristic",
    **kwargs,
) -> Dict[str, object]:
    """Dispatch on *method* ("heuristic", "ilp" or "auto").

    ``method="auto"`` picks exact-vs-heuristic by size: netlists with at
    most :data:`AUTO_ILP_MAX_CELLS` clocked cells (and at most
    :data:`AUTO_ILP_MAX_T1` T1 blocks) get the exact ILP; larger ones the
    kernel heuristic.  The exact search runs under a node budget and a
    wall-clock budget (``time_budget_s``, default
    :data:`AUTO_TIME_BUDGET_S`); exhausting either — with or without an
    incumbent — degrades to the heuristic instead of failing or
    committing an unproven solution.

    Returns an info dict: ``method`` ("heuristic" or "ilp") is the
    engine that produced the committed stages, ``degraded`` is True only
    when the exact engine was attempted and fell back, and ``reason``
    says why.  The ``solver.exact`` fault point (see
    :mod:`repro.faults`) forces that fallback deterministically.

    Note that the two engines optimise different objectives: the ILP is
    exact on the per-edge proxy Σ(k_e − 1) with PIs pinned at stage 0,
    so the heuristic-only knobs (``sweeps``, ``include_po_balancing``,
    ``free_pi_phases``) do not apply on the exact branch.
    """
    if method == "heuristic":
        assign_stages_heuristic(netlist, **kwargs)
        return {"method": "heuristic", "degraded": False, "reason": None}
    elif method == "ilp":
        assign_stages_ilp(netlist, **kwargs)
        return {"method": "ilp", "degraded": False, "reason": None}
    elif method == "auto":
        ilp_kwargs = {
            k: kwargs[k]
            for k in ("horizon", "node_limit", "time_budget_s")
            if k in kwargs
        }
        heur_kwargs = {k: v for k, v in kwargs.items() if k not in ilp_kwargs}
        clocked = sum(1 for c in netlist.cells if c.clocked)
        n_t1 = sum(1 for c in netlist.cells if c.kind is CellKind.T1)
        if clocked <= AUTO_ILP_MAX_CELLS and n_t1 <= AUTO_ILP_MAX_T1:
            reason: Optional[str] = None
            try:
                faults.fire(
                    "solver.exact", "simulated exact-solver failure"
                )
                model, sigma, _ = build_ilp_model(
                    netlist, horizon=ilp_kwargs.get("horizon")
                )
                sol = model.solve(
                    backend="auto",
                    node_limit=ilp_kwargs.get("node_limit", 50_000),
                    time_budget_s=ilp_kwargs.get(
                        "time_budget_s", AUTO_TIME_BUDGET_S
                    ),
                )
            except FaultInjected as exc:
                sol = None
                reason = str(exc)
            except SolverLimitError as exc:
                sol = None  # no incumbent within the budgets
                reason = f"exact search budget exhausted: {exc}"
            if sol is not None and sol.optimal:
                for cell in netlist.cells:
                    if cell.clocked:
                        cell.stage = sol.int_value(sigma[cell.index])
                return {"method": "ilp", "degraded": False, "reason": None}
            if sol is not None:
                reason = (
                    "exact search budget exhausted with unproven incumbent"
                )
            # budget exhausted (unproven incumbent or none) -> heuristic
            assign_stages_heuristic(netlist, **heur_kwargs)
            return {"method": "heuristic", "degraded": True, "reason": reason}
        assign_stages_heuristic(netlist, **heur_kwargs)
        return {"method": "heuristic", "degraded": False, "reason": None}
    else:
        raise SolverError(f"unknown phase-assignment method {method!r}")
