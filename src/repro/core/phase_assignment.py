"""Phase assignment (§II-B of the paper): give every clocked cell a stage.

Two engines over the same constraint system:

* :func:`assign_stages_ilp` — the paper's ILP, encoded 1:1 on our MILP
  solver (per-edge DFF counters ``k_e`` with ``n·k_e ≥ σ_v − σ_u``,
  objective ``Σ (k_e − 1)``; the T1 constraint (eq. 3) is encoded with a
  permutation of the offsets {1, 2, 3} over the three fanins).  Exact but
  exponential in the worst case — used for small netlists and as the
  reference in tests.
* :func:`assign_stages_heuristic` — scalable coordinate descent that
  optimises the *true* insertion cost (shared per-net chains + the exact
  T1 staggering cost of eq. 4, via the same planner DFF insertion uses),
  starting from an ASAP schedule.  This is what the flow runs on
  paper-scale circuits.

Constraints (both engines):

* PIs are fixed at stage 0;
* ordinary consumer:  σ(v) ≥ σ(u) + 1;
* T1 consumer:        σ(T1) ≥ max(σ(i1)+3, σ(i2)+2, σ(i3)+1)   (eq. 3)
  for its fanins sorted by stage.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SolverError, TimingError
from repro.sfq.multiphase import edge_dffs
from repro.sfq.netlist import CellKind, SFQNetlist, Signal

INF = float("inf")


# ---------------------------------------------------------------------------
# shared structure extraction
# ---------------------------------------------------------------------------

class _Structure:
    """Cached fanin/fanout structure of the clocked cells."""

    def __init__(self, netlist: SFQNetlist):
        self.netlist = netlist
        self.n = netlist.n_phases
        cells = netlist.cells
        self.is_t1 = [c.kind is CellKind.T1 for c in cells]
        self.clocked = [c.clocked for c in cells]
        self.fanin_drivers: List[List[int]] = [
            [sig[0] for sig in c.fanins] for c in cells
        ]
        self.fanin_signals: List[Tuple[Signal, ...]] = [c.fanins for c in cells]
        # one net per driven signal (a T1 cell drives up to three nets)
        self.nets: Dict[Signal, List[int]] = {}
        # T1 cells fed by each driver cell
        self.t1_consumers: List[Set[int]] = [set() for _ in cells]
        for c in cells:
            for sig in c.fanins:
                if c.kind is CellKind.T1:
                    self.t1_consumers[sig[0]].add(c.index)
                else:
                    self.nets.setdefault(sig, []).append(c.index)
        # ordinary (non-T1) consumers per driver cell, by signal
        self.signals_of_cell: List[List[Signal]] = [[] for _ in cells]
        for sig in self.nets:
            self.signals_of_cell[sig[0]].append(sig)
        const_kinds = (CellKind.CONST0, CellKind.CONST1)
        self.po_signals: Set[Signal] = {
            sig
            for sig, _name in netlist.pos
            if cells[sig[0]].kind not in const_kinds
        }
        for sig in self.po_signals:
            self.nets.setdefault(sig, [])
            if sig not in self.signals_of_cell[sig[0]]:
                self.signals_of_cell[sig[0]].append(sig)
        # flat ordinary-consumer list per driver cell (for window bounds)
        self.net_consumers: List[List[int]] = [[] for _ in cells]
        for sig, cons in self.nets.items():
            self.net_consumers[sig[0]].extend(cons)
        self.order = netlist.topological_cells()


def t1_lower_bound(fanin_stages: Sequence[int]) -> int:
    """Eq. 3: σ(T1) ≥ max(σ(i1)+3, σ(i2)+2, σ(i3)+1), fanins sorted."""
    s = sorted(fanin_stages)
    return max(s[0] + 3, s[1] + 2, s[2] + 1)


def asap_stages(structure: _Structure) -> List[Optional[int]]:
    """Earliest feasible stage per cell (PIs at 0)."""
    nl = structure.netlist
    stages: List[Optional[int]] = [None] * len(nl.cells)
    for idx in structure.order:
        cell = nl.cells[idx]
        if cell.kind is CellKind.PI:
            stages[idx] = 0
            continue
        if not cell.clocked:
            continue
        fin = [stages[d] for d in structure.fanin_drivers[idx]]
        if any(f is None for f in fin):
            raise TimingError(f"cell {idx} depends on an unstaged cell")
        if structure.is_t1[idx]:
            stages[idx] = t1_lower_bound(fin)  # type: ignore[arg-type]
        else:
            stages[idx] = (max(fin) + 1) if fin else 1  # type: ignore[arg-type]
    return stages


# ---------------------------------------------------------------------------
# true-cost evaluation (matches what DFF insertion will materialise)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=200_000)
def _t1_cost_cached(gaps: Tuple[int, int, int], n: int, head: int) -> float:
    """Staggering cost keyed by (sorted gaps, n, clamped window head).

    ``head`` is min(t1_stage, n): when the T1 sits closer than n stages to
    stage 0 the freshness window is clipped, which changes feasibility.
    """
    from repro.core.dff_insertion import t1_input_cost

    t1_stage = max(n, head) if head >= n else head
    # reconstruct representative stages: t1 at `t1_stage`, fanins below it
    fanins = [t1_stage - g for g in gaps]
    if any(f < 0 for f in fanins):
        return INF
    return t1_input_cost(t1_stage, fanins, n)


def t1_stagger_cost(t1_stage: int, fanin_stages: Sequence[int], n: int) -> float:
    gaps = tuple(sorted(t1_stage - s for s in fanin_stages))
    if any(g < 1 for g in gaps):
        return INF
    return _t1_cost_cached(gaps, n, min(t1_stage, n))


def _net_cost(
    driver_stage: int,
    consumer_stages: Sequence[int],
    n: int,
    po_boundary: Optional[int],
) -> float:
    """Shared-chain DFFs of one net (ordinary consumers + PO boundary)."""
    worst = 0
    for cs in consumer_stages:
        gap = cs - driver_stage
        if gap < 1:
            return INF
        worst = max(worst, edge_dffs(gap, n))
    if po_boundary is not None:
        gap = po_boundary - driver_stage
        if gap >= 1:
            worst = max(worst, edge_dffs(gap, n))
    return float(worst)


# ---------------------------------------------------------------------------
# heuristic: coordinate descent on the true cost
# ---------------------------------------------------------------------------

def assign_stages_heuristic(
    netlist: SFQNetlist,
    sweeps: int = 4,
    include_po_balancing: bool = True,
    max_candidates: int = 160,
    free_pi_phases: bool = True,
) -> None:
    """ASAP + iterative per-cell improvement; sets ``cell.stage`` in place.

    ``free_pi_phases`` lets a primary input arrive at any phase of epoch 0
    (stage 0..n−1) instead of pinning it to phase 0 — the environment can
    deliver each input pulse on whichever clock phase suits the schedule,
    which is what makes T1 staggering "free" for input-fed cells.
    """
    st = _Structure(netlist)
    n = st.n
    stages = asap_stages(st)
    nl = netlist.cells

    def po_boundary() -> Optional[int]:
        if not include_po_balancing:
            return None
        mx = max(
            (stages[i] for i in range(len(nl)) if st.clocked[i] and stages[i] is not None),
            default=0,
        )
        return mx + 1

    def local_cost(x: int, boundary: Optional[int]) -> float:
        """Cost of every net/T1 term affected by cell x's stage."""
        total = 0.0
        affected_signals: Set[Signal] = set(st.signals_of_cell[x])
        affected_signals.update(st.fanin_signals[x])
        affected_t1: Set[int] = set(st.t1_consumers[x])
        if st.is_t1[x]:
            affected_t1.add(x)
        for sig in affected_signals:
            cons = st.nets.get(sig)
            if cons is None:
                continue  # signal feeds only T1 cells
            d = sig[0]
            cons_stages = [stages[c] for c in cons]
            b = boundary if sig in st.po_signals else None
            cost = _net_cost(stages[d], cons_stages, n, b)  # type: ignore[arg-type]
            if cost == INF:
                return INF
            total += cost
        for t in affected_t1:
            fins = [stages[d] for d in st.fanin_drivers[t]]
            cost = t1_stagger_cost(stages[t], fins, n)  # type: ignore[arg-type]
            if cost == INF:
                return INF
            total += cost
        return total

    for _sweep in range(sweeps):
        boundary = po_boundary()
        improved = False
        # alternate direction each sweep
        order = st.order if _sweep % 2 == 0 else list(reversed(st.order))
        for x in order:
            is_pi = netlist.cells[x].kind is CellKind.PI
            if not st.clocked[x] and not (is_pi and free_pi_phases):
                continue
            # feasible window
            if is_pi:
                lb = 0
            else:
                fins = [stages[d] for d in st.fanin_drivers[x]]
                if st.is_t1[x]:
                    lb = t1_lower_bound(fins)  # type: ignore[arg-type]
                else:
                    lb = (max(fins) + 1) if fins else 1  # type: ignore[arg-type]
            ubs = [stages[c] - 1 for c in st.net_consumers[x]]
            ubs += [stages[t] - 1 for t in st.t1_consumers[x]]
            ub = min(ubs) if ubs else (boundary if boundary is not None else lb)
            if is_pi:
                ub = min(ub, n - 1)
            if ub < lb:
                continue
            # candidate stages: window ends, fine offsets near the current
            # position (T1 staggering moves in ±1 steps), and the
            # ceil-breakpoints of all incident edges
            cands: Set[int] = {lb, ub, stages[x]}  # type: ignore[arg-type]
            for delta in (-2, -1, 1, 2):
                for base in (stages[x], lb, ub):
                    s = base + delta
                    if lb <= s <= ub:
                        cands.add(s)
            if is_pi:
                cands.update(range(lb, ub + 1))
            for d in st.fanin_drivers[x]:
                base = stages[d]
                k = 0
                while True:
                    s = base + k * n + 1
                    if s > ub:
                        break
                    if s >= lb:
                        cands.add(s)
                        if s + n - 1 <= ub:
                            cands.add(s + n - 1)
                    k += 1
                    if len(cands) > max_candidates:
                        break
            for c in list(st.net_consumers[x]) + list(st.t1_consumers[x]):
                base = stages[c]
                k = 1
                while True:
                    s = base - k * n
                    if s < lb:
                        break
                    if s <= ub:
                        cands.add(s)
                    k += 1
                    if len(cands) > max_candidates:
                        break
            current = stages[x]
            best_stage = current
            best_cost = local_cost(x, boundary)
            for cand in sorted(cands):
                if cand == current:
                    continue
                stages[x] = cand
                cost = local_cost(x, boundary)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_stage = cand
            stages[x] = best_stage
            if best_stage != current:
                improved = True
        if not improved:
            break

    for cell in netlist.cells:
        if cell.clocked or cell.kind is CellKind.PI:
            cell.stage = stages[cell.index]


# ---------------------------------------------------------------------------
# exact ILP (the paper's formulation)
# ---------------------------------------------------------------------------

def assign_stages_ilp(
    netlist: SFQNetlist,
    horizon: Optional[int] = None,
    node_limit: int = 50_000,
) -> None:
    """Exact phase assignment on the MILP solver; small netlists only.

    Objective: per-edge DFF proxy Σ(k_e − 1) with n·k_e ≥ σ_v − σ_u — the
    formulation of ref. [10] extended with the T1 offset permutation of
    eq. 3.  Sets ``cell.stage`` in place.
    """
    from repro.solvers import MilpModel

    st = _Structure(netlist)
    n = st.n
    asap = asap_stages(st)
    max_asap = max(
        (s for i, s in enumerate(asap) if st.clocked[i] and s is not None),
        default=0,
    )
    if horizon is None:
        horizon = max_asap + 2 * n
    model = MilpModel()
    sigma: Dict[int, object] = {}
    for cell in netlist.cells:
        if cell.clocked:
            sigma[cell.index] = model.add_var(
                1, horizon, name=f"sigma{cell.index}"
            )

    def stage_term(idx: int):
        """(coeff dict contribution, constant) for a driver stage."""
        if netlist.cells[idx].kind is CellKind.PI:
            return None, 0  # PIs pinned at 0
        return sigma[idx], None

    k_vars = []
    for cell in netlist.cells:
        if not cell.clocked:
            continue
        v = cell.index
        if st.is_t1[v]:
            # offset permutation z[i][o]: fanin i gets offset o in {1,2,3}
            zs = [
                [model.add_var(0, 1, name=f"z{v}_{i}_{o}") for o in (1, 2, 3)]
                for i in range(3)
            ]
            for i in range(3):
                model.add_constraint(
                    {zs[i][0]: 1, zs[i][1]: 1, zs[i][2]: 1}, "==", 1
                )
            for o in range(3):
                model.add_constraint(
                    {zs[0][o]: 1, zs[1][o]: 1, zs[2][o]: 1}, "==", 1
                )
            for i, d in enumerate(st.fanin_drivers[v]):
                coeffs = {sigma[v]: 1}
                const = 0
                if netlist.cells[d].kind is CellKind.PI:
                    pass  # sigma_d == 0
                else:
                    coeffs[sigma[d]] = -1
                # sigma_v - sigma_d >= 1*z1 + 2*z2 + 3*z3
                coeffs[zs[i][0]] = coeffs.get(zs[i][0], 0) - 1
                coeffs[zs[i][1]] = coeffs.get(zs[i][1], 0) - 2
                coeffs[zs[i][2]] = coeffs.get(zs[i][2], 0) - 3
                model.add_constraint(coeffs, ">=", const)
        # per-edge DFF counters for every fanin edge
        for d in st.fanin_drivers[v]:
            k = model.add_var(1, horizon, name=f"k_{d}_{v}")
            k_vars.append(k)
            coeffs = {k: n, sigma[v]: -1}
            if netlist.cells[d].kind is not CellKind.PI:
                coeffs[sigma[d]] = 1
            model.add_constraint(coeffs, ">=", 0)
            # plain precedence for non-T1 consumers
            if not st.is_t1[v]:
                pc = {sigma[v]: 1}
                if netlist.cells[d].kind is not CellKind.PI:
                    pc[sigma[d]] = -1
                model.add_constraint(pc, ">=", 1)

    model.minimize({k: 1 for k in k_vars})
    sol = model.solve(node_limit=node_limit)
    for cell in netlist.cells:
        if cell.clocked:
            cell.stage = sol.int_value(sigma[cell.index])


def assign_stages(
    netlist: SFQNetlist,
    method: str = "heuristic",
    **kwargs,
) -> None:
    """Dispatch on *method* ("heuristic" or "ilp")."""
    if method == "heuristic":
        assign_stages_heuristic(netlist, **kwargs)
    elif method == "ilp":
        assign_stages_ilp(netlist, **kwargs)
    else:
        raise SolverError(f"unknown phase-assignment method {method!r}")
