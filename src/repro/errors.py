"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class NetworkError(ReproError):
    """Malformed or inconsistently used logic network."""


class GateArityError(NetworkError):
    """A gate was created with an unsupported number of fanins."""


class CycleError(NetworkError):
    """The network contains a combinational cycle."""


class SimulationError(ReproError):
    """Invalid simulation request (wrong vector width, unknown node...)."""


class TruthTableError(ReproError):
    """Invalid truth-table construction or operation."""


class ParseError(ReproError):
    """A netlist file could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SolverError(ReproError):
    """Base class for optimisation-solver errors."""


class InfeasibleError(SolverError):
    """The model has no feasible solution."""


class UnboundedError(SolverError):
    """The LP relaxation is unbounded."""


class SolverLimitError(SolverError):
    """A solver hit its node/conflict/iteration limit before finishing."""


class MappingError(ReproError):
    """Technology mapping failed (unsupported gate, missing cell...)."""


class PipelineError(ReproError):
    """Invalid pipeline composition or use (unknown pass name, duplicate
    pass, artefact read before the pass that produces it has run...)."""


class TimingError(ReproError):
    """A multiphase timing rule is violated (stage gaps, freshness...)."""


class HazardError(TimingError):
    """The pulse-level simulator detected a data hazard.

    Raised when two pulses overlap on one input within a clock window or a
    cell consumes a pulse belonging to the wrong wave.
    """


class ServiceError(ReproError):
    """A flow-service request failed (bad job spec, unknown job, worker
    crash/timeout, backpressure rejection, transport failure...).

    ``status`` carries the HTTP status code when the error crossed the
    wire (0 for purely local failures).
    """

    def __init__(self, message: str, status: int = 0):
        self.status = status
        super().__init__(message)


class FaultPlanError(ReproError):
    """A ``repro.faults`` plan string could not be parsed."""


class FaultInjected(ReproError):
    """An injected fault fired at a named fault point.

    Raised by fault points whose failure mode is "this operation
    errors" (cache access, batch collection, solver search...).  The
    resilience layers are expected to handle it exactly like the real
    failure it stands in for; seeing it escape to a caller means a
    recovery path is missing.
    """

    def __init__(self, point: str, detail: str = ""):
        self.point = point
        message = f"injected fault at {point!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class EquivalenceError(ReproError):
    """Two networks that must be equivalent are not (includes witness)."""

    def __init__(self, message: str, counterexample: dict | None = None):
        self.counterexample = counterexample
        super().__init__(message)
