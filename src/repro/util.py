"""Small shared runtime utilities: optional-dependency capability probes.

The kernels are pure-python by contract; numpy is an *optional*
accelerator lane (simulation buckets, wide cut-signature merges) that
must fall back bit-identically when absent.  All numpy gating goes
through :func:`have_numpy` / :func:`numpy_or_none` so the fallback path
stays testable on machines where numpy *is* installed: setting the
``REPRO_NO_NUMPY`` environment variable (to anything non-empty) makes
both probes report "absent" — the CI matrix leg uses exactly this to
exercise and ratchet the pure-python path.
"""

from __future__ import annotations

import os
from typing import Optional

#: env var that force-disables the numpy lanes (any non-empty value)
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

_numpy_mod = None
_probed = False


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when unavailable or disabled.

    The import probe runs once per process; the ``REPRO_NO_NUMPY``
    override is honoured on every call (tests flip it at runtime).
    """
    global _numpy_mod, _probed
    if os.environ.get(NO_NUMPY_ENV):
        return None
    if not _probed:
        try:
            import numpy  # noqa: PLC0415 - optional capability probe

            _numpy_mod = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _numpy_mod = None
        _probed = True
    return _numpy_mod


def have_numpy() -> bool:
    """True when the optional numpy lanes may be used."""
    return numpy_or_none() is not None


def reset_numpy_probe() -> None:
    """Forget the cached import probe (test helper)."""
    global _numpy_mod, _probed
    _numpy_mod = None
    _probed = False


def getsizeof_deep_rows(containers, items) -> int:
    """Byte size of flat row storage: container overhead + per-item size.

    Helper for ``nbytes()``-style reporting: sums ``sys.getsizeof`` over
    the given top-level *containers* and over every element of the
    *items* iterables (tuples/ints of flat parallel-array stores).
    Shared leaf integers inside tuples are intentionally not counted —
    they are interned node ids shared across rows.
    """
    import sys

    gs = sys.getsizeof
    total = sum(gs(c) for c in containers)
    for it in items:
        for x in it:
            total += gs(x)
    return total


__all__ = [
    "NO_NUMPY_ENV",
    "have_numpy",
    "numpy_or_none",
    "reset_numpy_probe",
    "getsizeof_deep_rows",
]
