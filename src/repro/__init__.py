"""repro — reproduction of "Unleashing the Power of T1-Cells in SFQ
Arithmetic Circuits" (DATE 2024).

Top-level convenience re-exports; see subpackages for the full API:

* :mod:`repro.pipeline` — **primary API**: composable Pass/Pipeline
  flows and the ``run_many`` batch executor
* :mod:`repro.network` — logic-network kernel (mockturtle replacement)
* :mod:`repro.sat`, :mod:`repro.solvers` — SAT / LP / MILP / CP engines
* :mod:`repro.sfq` — SFQ technology substrate and pulse-level simulator
* :mod:`repro.core` — T1 detection / phase assignment / DFF insertion
  algorithms and the legacy ``run_flow`` shim
* :mod:`repro.circuits` — benchmark circuit generators
* :mod:`repro.io` — BLIF / bench / dot
"""

from repro.network import Gate, LogicNetwork, TruthTable

__version__ = "1.1.0"

__all__ = ["Gate", "LogicNetwork", "TruthTable", "__version__"]


def __getattr__(name):
    if name in ("run_flow", "FlowConfig", "FlowResult"):
        from repro import core

        return getattr(core, name)
    if name in ("Pipeline", "FlowContext", "run_many", "run_table"):
        from repro import pipeline

        return getattr(pipeline, name)
    if name == "benchmark_registry":
        from repro.circuits import registry

        return registry.benchmark_registry
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
