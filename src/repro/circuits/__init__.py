"""Benchmark circuit generators (EPFL / ISCAS arithmetic suite stand-ins)."""

from repro.circuits.arithmetic import (
    Bus,
    add_sub_bus,
    compare_ge_bus,
    constant_bus,
    full_adder,
    ge_const,
    kogge_stone_adder,
    kogge_stone_adder_bus,
    parity_tree,
    ripple_carry_adder,
    ripple_carry_adder_bus,
    shift_right_arith,
)
from repro.circuits.cordic import (
    cordic_sin_network,
    cordic_sin_reference,
    sin_float_of_output,
)
from repro.circuits.fir import fir_filter, fir_reference
from repro.circuits.iscas import c6288_like, c7552_like
from repro.circuits.log2 import log2_network, log2_reference
from repro.circuits.multiplier import braun_multiplier, squarer
from repro.circuits.registry import (
    TABLE1_ORDER,
    BenchmarkSpec,
    benchmark_registry,
    build,
    names,
)
from repro.circuits.synthetic import (
    SYNTHETIC_BENCHMARKS,
    build_synthetic,
    lut_cascade,
    random_datapath,
    synthetic_names,
)
from repro.circuits.voter import majority_voter, popcount_bus

__all__ = [
    "BenchmarkSpec",
    "Bus",
    "SYNTHETIC_BENCHMARKS",
    "TABLE1_ORDER",
    "add_sub_bus",
    "benchmark_registry",
    "braun_multiplier",
    "build",
    "build_synthetic",
    "c6288_like",
    "c7552_like",
    "compare_ge_bus",
    "constant_bus",
    "cordic_sin_network",
    "cordic_sin_reference",
    "fir_filter",
    "fir_reference",
    "full_adder",
    "ge_const",
    "kogge_stone_adder",
    "kogge_stone_adder_bus",
    "log2_network",
    "log2_reference",
    "lut_cascade",
    "majority_voter",
    "names",
    "random_datapath",
    "parity_tree",
    "popcount_bus",
    "ripple_carry_adder",
    "ripple_carry_adder_bus",
    "shift_right_arith",
    "sin_float_of_output",
    "squarer",
    "synthetic_names",
]
