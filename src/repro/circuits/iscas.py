"""ISCAS-85 benchmark stand-ins: c6288 and c7552.

The original netlists are not redistributable here; these generators
rebuild the circuits' documented functions (Hansen et al., "Unveiling the
ISCAS-85 Benchmarks", ref. [13] of the paper):

* **c6288** is a 16×16 array multiplier built from half/full adders —
  regenerated directly as the Braun array.
* **c7552** is a 34-bit adder/comparator with input parity checking —
  regenerated as a 32-bit Kogge-Stone adder (shallow, like the original's
  ~16 logic levels), a magnitude comparator, parity trees and a small
  amount of glue control logic.
"""

from __future__ import annotations

from typing import List

from repro.circuits.arithmetic import (
    Bus,
    compare_ge_bus,
    kogge_stone_adder_bus,
    parity_tree,
    ripple_carry_adder_bus,
)
from repro.circuits.multiplier import braun_multiplier
from repro.network.logic_network import LogicNetwork


def c6288_like(bits: int = 16, name: str = "c6288") -> LogicNetwork:
    """16×16 array multiplier (the function of ISCAS-85 c6288)."""
    return braun_multiplier(bits=bits, name=name)


def c7552_like(width: int = 32, name: str = "c7552") -> LogicNetwork:
    """Adder/comparator/parity block in the spirit of ISCAS-85 c7552.

    The adder core is carry-select: a ripple low half (full-adder chain —
    modest T1 material, like the handful of cells the paper finds in
    c7552) and a muxed ripple high half, keeping the logic depth near the
    original's ~16 levels for 32-bit operands.
    """
    net = LogicNetwork(name)
    a: Bus = [net.add_pi(f"a{i}") for i in range(width)]
    b: Bus = [net.add_pi(f"b{i}") for i in range(width)]
    sel = net.add_pi("sel")
    en = net.add_pi("en")

    # carry-select adder core
    half = max(1, width // 2)
    lo_sum, lo_carry = ripple_carry_adder_bus(net, a[:half], b[:half])
    from repro.network.logic_network import CONST0, CONST1

    hi0, c0 = ripple_carry_adder_bus(net, a[half:], b[half:], cin=CONST0)
    hi1, c1 = ripple_carry_adder_bus(net, a[half:], b[half:], cin=CONST1)
    hi_sum = [net.add_mux(lo_carry, s0, s1) for s0, s1 in zip(hi0, hi1)]
    carry = net.add_mux(lo_carry, c0, c1)
    sums = lo_sum + hi_sum
    # comparator (a >= b), equality
    ge = compare_ge_bus(net, a, b)
    xor_bits = [net.add_xor(ai, bi) for ai, bi in zip(a, b)]
    neq_tree = xor_bits[0]
    for x in xor_bits[1:]:
        neq_tree = net.add_or(neq_tree, x)
    eq = net.add_not(neq_tree)
    # parity of both operands
    par_a = parity_tree(net, a)
    par_b = parity_tree(net, b)
    # glue control: select between sum and bitwise ops, gate with enable
    for i in range(width):
        bitwise = net.add_mux(sel, net.add_and(a[i], b[i]), xor_bits[i])
        out = net.add_mux(en, bitwise, sums[i])
        net.add_po(out, f"y{i}")
    net.add_po(net.add_and(en, carry), "cout")
    net.add_po(ge, "a_ge_b")
    net.add_po(eq, "a_eq_b")
    net.add_po(net.add_xor(par_a, par_b, sel), "parity")
    return net
