"""Majority voter benchmark (EPFL ``voter`` stand-in).

The EPFL voter decides the majority of 1001 inputs.  The natural
arithmetic structure is a population count built from full-adder (3:2)
compressors followed by a constant comparison against ⌈N/2⌉ — again a
full-adder fabric that T1 detection feasts on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.arithmetic import Bus, full_adder, ge_const
from repro.network.logic_network import LogicNetwork


def popcount_bus(net: LogicNetwork, inputs: List[int]) -> Bus:
    """Population count via carry-save 3:2 compression.

    Maintains buckets of equal-weight wires; repeatedly compresses triples
    (full adder) and pairs (half adder) until one wire per weight remains.
    """
    buckets: Dict[int, List[int]] = {0: list(inputs)}
    changed = True
    while changed:
        changed = False
        # round-based (Wallace-style) compression: consume the current
        # layer breadth-first so the tree stays balanced in depth
        next_buckets: Dict[int, List[int]] = {}
        for w in sorted(buckets):
            wires = buckets[w]
            i = 0
            while len(wires) - i >= 3:
                s, cy = full_adder(net, wires[i], wires[i + 1], wires[i + 2])
                next_buckets.setdefault(w, []).append(s)
                next_buckets.setdefault(w + 1, []).append(cy)
                i += 3
                changed = True
            if len(wires) - i == 2 and len(wires) > 2:
                s, cy = full_adder(net, wires[i], wires[i + 1])
                next_buckets.setdefault(w, []).append(s)
                next_buckets.setdefault(w + 1, []).append(cy)
                i += 2
                changed = True
            while i < len(wires):
                next_buckets.setdefault(w, []).append(wires[i])
                i += 1
        buckets = next_buckets
        # finish residual pairs once nothing has >= 3 wires
        if not changed:
            for w in sorted(buckets):
                if len(buckets[w]) >= 2:
                    wires = buckets[w]
                    s, cy = full_adder(net, wires[0], wires[1])
                    buckets[w] = [s] + wires[2:]
                    buckets.setdefault(w + 1, []).append(cy)
                    changed = True
                    break
    width = max(buckets) + 1
    out: Bus = []
    for w in range(width):
        wires = buckets.get(w, [])
        assert len(wires) <= 1
        if wires:
            out.append(wires[0])
        else:  # weight absent (can happen for the top weight only)
            from repro.network.logic_network import CONST0

            out.append(CONST0)
    return out


def majority_voter(num_inputs: int = 1001, name: str = "voter") -> LogicNetwork:
    """Single-output majority of *num_inputs* (strict: ones > N/2)."""
    net = LogicNetwork(name)
    inputs = [net.add_pi(f"x{i}") for i in range(num_inputs)]
    count = popcount_bus(net, inputs)
    threshold = num_inputs // 2 + 1
    net.add_po(ge_const(net, count, threshold), "majority")
    return net
