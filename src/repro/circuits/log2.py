"""Base-2 logarithm benchmark (EPFL ``log2`` stand-in).

Computes log2 of an unsigned input by the classic iterative-squaring
digit recurrence:

1. the integer part is the index of the leading one (priority encoder);
2. the input is normalised into m ∈ [1, 2) by a barrel shifter;
3. each fraction bit comes from one squaring step: m ← m²; if m ≥ 2
   the bit is 1 and m is halved.

Every fraction step embeds a small array multiplier, so the circuit mixes
multiplier fabric (full adders — T1 material) with mux/priority logic,
similar in flavour to the EPFL ``log2`` network.

The bit-exact reference model is :func:`log2_reference`.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.circuits.arithmetic import Bus, full_adder, ripple_carry_adder_bus
from repro.network.logic_network import CONST0, CONST1, LogicNetwork


def _mux_bus(net: LogicNetwork, sel: int, d0: Bus, d1: Bus) -> Bus:
    return [net.add_mux(sel, a, b) for a, b in zip(d0, d1)]


def _square_bus(net: LogicNetwork, m: Bus, keep: int) -> Bus:
    """m² truncated to the top ``keep`` bits of the 2·len(m) result.

    m is an unsigned fixed-point word with the binary point after bit
    len(m)−2 (i.e. m ∈ [1, 4) representable, actual values in [1, 2)).
    """
    width = len(m)
    full = 2 * width
    # folded squarer columns: diagonal a_i at weight 2i, each pair (i, j),
    # i < j, once at weight i+j+1
    columns: List[List[int]] = [[] for _ in range(full)]
    for i in range(width):
        columns[2 * i].append(m[i])
        for j in range(i + 1, width):
            columns[i + j + 1].append(net.add_and(m[i], m[j]))
    while any(len(col) > 2 for col in columns):
        nxt: List[List[int]] = [[] for _ in range(full)]
        for w, col in enumerate(columns):
            i = 0
            while len(col) - i >= 3:
                s, c = full_adder(net, col[i], col[i + 1], col[i + 2])
                nxt[w].append(s)
                if w + 1 < full:
                    nxt[w + 1].append(c)
                i += 3
            if len(col) - i == 2:
                s, c = full_adder(net, col[i], col[i + 1])
                nxt[w].append(s)
                if w + 1 < full:
                    nxt[w + 1].append(c)
                i += 2
            while i < len(col):
                nxt[w].append(col[i])
                i += 1
        columns = nxt
    a: Bus = [col[0] if col else CONST0 for col in columns]
    b: Bus = [col[1] if len(col) > 1 else CONST0 for col in columns]
    sums, _ = ripple_carry_adder_bus(net, a, b)
    return sums[full - keep :]


def log2_network(
    width: int = 16,
    frac_bits: int = 8,
    name: str = "log2",
) -> LogicNetwork:
    """log2 of a ``width``-bit unsigned input.

    ``width`` must be a power of two so the normalising shift
    ``width − 1 − e`` is the bitwise complement of e.  Output:
    ``log2(width)`` integer bits ‖ ``frac_bits`` fraction bits, LSB first;
    log2(0) is defined as 0 (all-zero output), matching the reference.
    """
    if width & (width - 1):
        raise ValueError("log2_network width must be a power of two")
    net = LogicNetwork(name)
    x: Bus = [net.add_pi(f"x{i}") for i in range(width)]
    int_bits = max(1, math.ceil(math.log2(width)))

    # 1. leading-one position e: priority encode from the MSB
    seen: int = CONST0  # any higher bit set
    e_bus: Bus = [CONST0] * int_bits
    # is_leading[i] = x[i] & !(any higher set)
    leading: List[int] = [CONST0] * width
    seen = CONST0
    for i in reversed(range(width)):
        if seen == CONST0:
            leading[i] = x[i]
            seen = x[i]
        else:
            leading[i] = net.add_and(x[i], net.add_not(seen))
            seen = net.add_or(seen, x[i])
    for bit in range(int_bits):
        ones = [leading[i] for i in range(width) if (i >> bit) & 1]
        if len(ones) == 1:
            e_bus[bit] = ones[0]
        elif ones:
            acc = ones[0]
            for o in ones[1:]:
                acc = net.add_or(acc, o)
            e_bus[bit] = acc

    # 2. normalise: m = x << (width - 1 - e), so the leading one lands at
    #    the MSB; barrel shifter over the bits of e
    m: Bus = list(x)
    for bit in range(int_bits):
        shift = 1 << bit
        # if e-bit is 0, shift left by `shift` (we shift by (width-1-e))
        shifted = ([CONST0] * shift + m)[:width]
        inv = net.add_not(e_bus[bit]) if e_bus[bit] != CONST0 else CONST1
        m = _mux_bus(net, inv, m, shifted)
    # handle the MSB alignment: with e encoded, after the loop the
    # leading one is at position width-1 (for x != 0)

    # 3. fraction bits by iterative squaring of the normalised mantissa
    frac_out: List[int] = []
    mant: Bus = list(m)  # binary point right below the MSB
    for _ in range(frac_bits):
        sq = _square_bus(net, mant, keep=len(mant) + 1)
        # sq has one extra integer bit: value in [1, 4)
        ge2 = sq[-1]  # >= 2 when the extra top bit is set
        frac_out.append(ge2)
        # if >= 2 take the top `width` bits (halving), else drop the top bit
        hi = sq[1:]  # divided by 2
        lo = sq[:-1]
        mant = _mux_bus(net, ge2, lo, hi)

    for i, bit in enumerate(frac_out[::-1]):
        net.add_po(bit, f"f{i}")
    for i, bit in enumerate(e_bus):
        net.add_po(bit, f"e{i}")
    return net


def log2_reference(
    value: int, width: int = 16, frac_bits: int = 8
) -> Tuple[int, int]:
    """Bit-exact model of :func:`log2_network`.

    Returns ``(integer_part, fraction_bits_word)`` where the fraction word
    has its first computed bit as MSB (matching PO order f0..f{frac-1}
    LSB-first of the reversed list).
    """
    if value <= 0:
        return 0, 0
    e = value.bit_length() - 1
    m = value << (width - 1 - e)  # leading one at bit width-1
    frac_bits_list: List[int] = []
    for _ in range(frac_bits):
        sq = m * m  # 2*width bits, point below bit 2*width-2
        keep = width + 1
        sq_trunc = sq >> (2 * width - keep)
        ge2 = (sq_trunc >> width) & 1
        frac_bits_list.append(ge2)
        if ge2:
            m = sq_trunc >> 1
        else:
            m = sq_trunc & ((1 << width) - 1)
    frac_word = 0
    for bit in frac_bits_list:
        frac_word = (frac_word << 1) | bit
    return e, frac_word
