"""CORDIC sine benchmark (EPFL ``sin`` stand-in).

Rotation-mode CORDIC in fixed point: starting from (x, y) = (K⁻¹·1, 0)
and the input angle z, each iteration rotates by ±arctan(2⁻ⁱ) choosing
the sign that drives z towards 0:

    d_i = sign(z_i)
    x_{i+1} = x_i − d_i · (y_i >> i)
    y_{i+1} = y_i + d_i · (x_i >> i)
    z_{i+1} = z_i − d_i · arctan(2⁻ⁱ)

After N iterations y ≈ sin(z), x ≈ cos(z).  The circuit is a cascade of
add/subtract stages (Kogge-Stone cores) — an arithmetic pipeline of
moderate depth like the EPFL ``sin`` network.

The matching bit-exact software model lives in
:func:`cordic_sin_reference`; tests assert (a) circuit ≡ reference
bit-for-bit and (b) reference ≈ ``math.sin`` within the fixed-point
tolerance.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.circuits.arithmetic import (
    Bus,
    add_sub_bus,
    constant_bus,
    shift_right_arith,
)
from repro.network.logic_network import LogicNetwork

#: fixed-point fraction bits used by both circuit and reference
def _atan_table(iterations: int, frac_bits: int) -> List[int]:
    return [
        int(round(math.atan(2.0 ** -i) * (1 << frac_bits)))
        for i in range(iterations)
    ]


def _cordic_gain(iterations: int) -> float:
    k = 1.0
    for i in range(iterations):
        k *= math.sqrt(1 + 2.0 ** (-2 * i))
    return k


def cordic_sin_network(
    width: int = 16,
    iterations: int = 12,
    name: str = "sin",
) -> LogicNetwork:
    """Build the CORDIC sine circuit.

    The input is the angle z in two's-complement fixed point with
    ``width − 3`` fraction bits (range comfortably covers ±π/2); the
    output is sin(z) with the same format.
    """
    net = LogicNetwork(name)
    frac = width - 3
    z: Bus = [net.add_pi(f"z{i}") for i in range(width)]
    inv_gain = int(round((1.0 / _cordic_gain(iterations)) * (1 << frac)))
    x: Bus = constant_bus(inv_gain, width)
    y: Bus = constant_bus(0, width)
    atans = _atan_table(iterations, frac)
    for i in range(iterations):
        sign = z[-1]  # MSB: 1 when z < 0 -> rotate the other way
        xs = shift_right_arith(net, x, i)
        ys = shift_right_arith(net, y, i)
        # d = +1 when z >= 0: x -= ys, y += xs, z -= atan
        # d = -1 when z <  0: x += ys, y -= xs, z += atan
        not_sign = net.add_not(sign)
        new_x, _ = add_sub_bus(net, x, ys, not_sign)
        new_y, _ = add_sub_bus(net, y, xs, sign)
        new_z, _ = add_sub_bus(net, z, constant_bus(atans[i], width), not_sign)
        x, y, z = new_x, new_y, new_z
    for i, bit in enumerate(y):
        net.add_po(bit, f"sin{i}")
    return net


def cordic_sin_reference(
    angle_fixed: int, width: int = 16, iterations: int = 12
) -> int:
    """Bit-exact software model of :func:`cordic_sin_network`.

    *angle_fixed* is the two's-complement input word; returns the output
    word (also two's complement, ``width`` bits).
    """
    frac = width - 3
    mask = (1 << width) - 1

    def to_signed(v: int) -> int:
        v &= mask
        return v - (1 << width) if v >> (width - 1) else v

    def asr(v: int, k: int) -> int:
        return to_signed(v) >> k

    inv_gain = int(round((1.0 / _cordic_gain(iterations)) * (1 << frac)))
    atans = _atan_table(iterations, frac)
    x, y, z = inv_gain, 0, to_signed(angle_fixed)
    for i in range(iterations):
        if z >= 0:
            x, y, z = x - asr(y, i), y + asr(x, i), z - atans[i]
        else:
            x, y, z = x + asr(y, i), y - asr(x, i), z + atans[i]
        x, y, z = to_signed(x & mask), to_signed(y & mask), to_signed(z & mask)
    return y & mask


def sin_float_of_output(word: int, width: int = 16) -> float:
    """Decode a circuit output word into a float."""
    frac = width - 3
    if word >> (width - 1):
        word -= 1 << width
    return word / (1 << frac)
