"""Feed-forward FIR filter datapath — an application-style workload.

The paper's introduction motivates RSFQ for "large-scale stationary
computing, space electronics and interface circuitry for quantum
computing" — streaming DSP kernels are the canonical shape of such
workloads, and a gate-level-pipelined SFQ implementation computes one
output sample per clock cycle with no extra control.

``fir_filter`` builds the combinational datapath of an N-tap FIR with
constant coefficients:

    y = Σ_k  c_k · x_k

where x_0..x_{N-1} are the delayed input samples (presented as separate
input buses; the delay line itself is the pipeline's job) and the c_k are
compile-time constants.  Constant multiplication is realised as a
shift-and-add tree of full adders — prime T1 detection material, like the
multiplier benchmarks.

``fir_reference`` is the bit-exact software model used by the tests.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.arithmetic import Bus
from repro.circuits.multiplier import _carry_save_rows
from repro.errors import ReproError
from repro.network.logic_network import CONST0, LogicNetwork


def _const_mult_rows(x: Bus, coeff: int, width: int) -> List[Bus]:
    """Partial-product rows of x * coeff (coeff a non-negative constant)."""
    rows: List[Bus] = []
    shift = 0
    while coeff:
        if coeff & 1:
            rows.append([CONST0] * shift + list(x[: max(0, width - shift)]))
        coeff >>= 1
        shift += 1
    return rows


def fir_filter(
    coefficients: Sequence[int],
    sample_bits: int = 8,
    name: str = "fir",
) -> LogicNetwork:
    """Build the FIR datapath network.

    Inputs: one ``sample_bits``-wide bus per tap (x0 = newest sample).
    Output: the accumulated sum, wide enough to never overflow.
    """
    if not coefficients:
        raise ReproError("FIR needs at least one coefficient")
    if any(c < 0 for c in coefficients):
        raise ReproError("negative coefficients not supported (use unsigned)")
    total = sum(coefficients) * ((1 << sample_bits) - 1)
    out_bits = max(1, total.bit_length())

    net = LogicNetwork(name)
    taps: List[Bus] = []
    for k in range(len(coefficients)):
        taps.append([net.add_pi(f"x{k}_{i}") for i in range(sample_bits)])
    rows: List[Bus] = []
    for x, c in zip(taps, coefficients):
        rows.extend(_const_mult_rows(x, c, out_bits))
    if not rows:
        rows = [[CONST0]]
    acc = _carry_save_rows(net, rows, out_bits)
    for i, bit in enumerate(acc):
        net.add_po(bit, f"y{i}")
    return net


def fir_reference(
    samples: Sequence[int], coefficients: Sequence[int], sample_bits: int = 8
) -> int:
    """Bit-exact model of :func:`fir_filter` for one set of tap values."""
    mask = (1 << sample_bits) - 1
    return sum((s & mask) * c for s, c in zip(samples, coefficients))
