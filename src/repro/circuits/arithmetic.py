"""Arithmetic building blocks and adder benchmark generators.

All builders follow the same convention: they extend an existing
:class:`LogicNetwork` and take/return *buses* — lists of node ids, least
significant bit first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.logic_network import CONST0, CONST1, LogicNetwork

Bus = List[int]


def full_adder(
    net: LogicNetwork, a: int, b: int, cin: Optional[int] = None
) -> Tuple[int, int]:
    """One full adder as XOR3 + MAJ3 (the structure T1 detection targets).

    Without *cin* this degenerates to a half adder (XOR2 + AND2).
    Returns ``(sum, carry)``.
    """
    if cin is None:
        return net.add_xor(a, b), net.add_and(a, b)
    return net.add_xor(a, b, cin), net.add_maj3(a, b, cin)


def ripple_carry_adder_bus(
    net: LogicNetwork, a: Bus, b: Bus, cin: Optional[int] = None
) -> Tuple[Bus, int]:
    """Bus-level RCA; returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise NetworkError("operand width mismatch")
    sums: Bus = []
    carry = cin
    for ai, bi in zip(a, b):
        s, carry = full_adder(net, ai, bi, carry)
        sums.append(s)
    assert carry is not None
    return sums, carry


def kogge_stone_adder_bus(
    net: LogicNetwork, a: Bus, b: Bus, cin: Optional[int] = None
) -> Tuple[Bus, int]:
    """Logarithmic-depth parallel-prefix adder (used inside sin / log2).

    Classic Kogge-Stone: generate/propagate pairs combined over
    power-of-two spans; depth ≈ 2 + log2(width).
    """
    if len(a) != len(b):
        raise NetworkError("operand width mismatch")
    width = len(a)
    g: Bus = [net.add_and(ai, bi) for ai, bi in zip(a, b)]
    p: Bus = [net.add_xor(ai, bi) for ai, bi in zip(a, b)]
    p_orig = list(p)
    if cin is not None:
        # absorb carry-in into the bit-0 generate
        g[0] = net.add_or(g[0], net.add_and(p[0], cin))
    dist = 1
    while dist < width:
        new_g = list(g)
        new_p = list(p)
        for i in range(dist, width):
            new_g[i] = net.add_or(g[i], net.add_and(p[i], g[i - dist]))
            new_p[i] = net.add_and(p[i], p[i - dist])
        g, p = new_g, new_p
        dist *= 2
    sums: Bus = [p_orig[0] if cin is None else net.add_xor(p_orig[0], cin)]
    for i in range(1, width):
        sums.append(net.add_xor(p_orig[i], g[i - 1]))
    return sums, g[width - 1]


def add_sub_bus(
    net: LogicNetwork, a: Bus, b: Bus, subtract: int
) -> Tuple[Bus, int]:
    """a ± b selected by the *subtract* signal (two's complement).

    Uses a Kogge-Stone core: b is conditionally inverted and *subtract*
    feeds the carry-in.
    """
    b_sel = [net.add_xor(bi, subtract) for bi in b]
    return kogge_stone_adder_bus(net, a, b_sel, cin=subtract)


def shift_right_arith(net: LogicNetwork, bus: Bus, amount: int) -> Bus:
    """Static arithmetic right shift (sign extension by the MSB)."""
    if amount <= 0:
        return list(bus)
    msb = bus[-1]
    return list(bus[amount:]) + [msb] * min(amount, len(bus))


def constant_bus(value: int, width: int) -> Bus:
    """A bus of constant nodes encoding *value*."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def ge_const(net: LogicNetwork, bus: Bus, threshold: int) -> int:
    """Unsigned comparison ``bus >= threshold`` against a constant.

    Ripple from the MSB: at each bit, if the constant bit is 0 a set input
    bit decides *greater*; if 1, a clear input bit decides *less*.
    """
    if threshold <= 0:
        return CONST1
    if threshold >= (1 << len(bus)):
        return CONST0
    ge: Optional[int] = None  # result considering bits above current
    # process from MSB down; maintain "greater" and "equal so far"
    greater: Optional[int] = None
    equal: Optional[int] = None
    for i in reversed(range(len(bus))):
        tbit = (threshold >> i) & 1
        x = bus[i]
        if tbit == 0:
            gt_here = x  # input 1 > constant 0
            eq_here = net.add_not(x)
        else:
            gt_here = CONST0
            eq_here = x
        if greater is None:
            greater = gt_here
            equal = eq_here
        else:
            if gt_here != CONST0:
                greater = net.add_or(greater, net.add_and(equal, gt_here))
            if eq_here != CONST0:
                equal = net.add_and(equal, eq_here)
            else:  # pragma: no cover - defensive; eq_here is never const0
                equal = CONST0
    assert greater is not None and equal is not None
    return net.add_or(greater, equal)


def compare_ge_bus(net: LogicNetwork, a: Bus, b: Bus) -> int:
    """Unsigned ``a >= b`` between two buses (ripple borrow from subtract)."""
    # a >= b  <=>  a - b does not borrow  <=>  carry out of a + ~b + 1
    nb = [net.add_not(bi) for bi in b]
    _, carry = ripple_carry_adder_bus(net, a, nb, cin=CONST1)
    return carry


def parity_tree(net: LogicNetwork, bus: Bus) -> int:
    """Balanced XOR tree (odd parity)."""
    layer = list(bus)
    if not layer:
        return CONST0
    while len(layer) > 1:
        nxt: Bus = []
        for i in range(0, len(layer) - 2, 3):
            nxt.append(net.add_xor(layer[i], layer[i + 1], layer[i + 2]))
        rem = len(layer) % 3
        if rem == 1:
            nxt.append(layer[-1])
        elif rem == 2:
            nxt.append(net.add_xor(layer[-2], layer[-1]))
        layer = nxt
    return layer[0]


def ripple_carry_adder(bits: int = 128, name: str = "adder") -> LogicNetwork:
    """The paper's ``adder`` benchmark: an n-bit ripple-carry adder.

    A chain of bits − 1 full adders behind one half adder — the circuit
    where the T1 flow replaces "almost the entire circuit".
    """
    net = LogicNetwork(name)
    a = [net.add_pi(f"a{i}") for i in range(bits)]
    b = [net.add_pi(f"b{i}") for i in range(bits)]
    sums, carry = ripple_carry_adder_bus(net, a, b)
    for i, s in enumerate(sums):
        net.add_po(s, f"s{i}")
    net.add_po(carry, "cout")
    return net


def kogge_stone_adder(bits: int = 32, name: str = "ks_adder") -> LogicNetwork:
    """Stand-alone Kogge-Stone adder (shallow baseline / examples)."""
    net = LogicNetwork(name)
    a = [net.add_pi(f"a{i}") for i in range(bits)]
    b = [net.add_pi(f"b{i}") for i in range(bits)]
    sums, carry = kogge_stone_adder_bus(net, a, b)
    for i, s in enumerate(sums):
        net.add_po(s, f"s{i}")
    net.add_po(carry, "cout")
    return net
