"""Scalable synthetic benchmark generators (the ``--scale`` family).

The 8-circuit :mod:`repro.circuits.registry` is the pinned oracle set —
bit-identical across kernel migrations and deliberately capped at a few
thousand nodes.  These generators are the complement: seeded,
size-parameterised netlists for exercising the flat-array network core
and the bulk construction/simulation paths at 100k–1M nodes.  They are
*not* registered in ``benchmark_registry``; the CLI exposes them behind
``--scale`` and the scale benchmark (``benchmarks/bench_scale.py``)
builds them directly.

Both generators drive :meth:`LogicNetwork.add_gates_bulk` with
batch-relative fanin ids, so constructing a million-node circuit is one
bulk call, and both are deterministic functions of ``(size, seed)``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.network.gates import Gate
from repro.network.logic_network import LogicNetwork

#: weighted gate mix of the random datapath: heavy on 2-input gates with
#: a tail of 3-input and variadic shapes so every grouped-simulation lane
#: (2/3/variadic x and/or/xor/maj x plain/inverted, plus NOT) gets work
_DATAPATH_MIX: Tuple[Tuple[Gate, int, int], ...] = (
    (Gate.AND, 2, 18),
    (Gate.OR, 2, 14),
    (Gate.XOR, 2, 14),
    (Gate.NAND, 2, 8),
    (Gate.NOR, 2, 6),
    (Gate.XNOR, 2, 6),
    (Gate.NOT, 1, 8),
    (Gate.MAJ3, 3, 8),
    (Gate.AND, 3, 4),
    (Gate.OR, 3, 4),
    (Gate.XOR, 3, 4),
    (Gate.AND, 4, 2),
    (Gate.OR, 4, 2),
    (Gate.XOR, 5, 1),
    (Gate.NAND, 6, 1),
)


def _bind_sink_pos(net: LogicNetwork) -> None:
    """Bind every zero-fanout logic node as a PO (keeps the net live)."""
    for node in range(2, net.num_nodes()):
        if net.is_logic(node) and net.fanout_count(node) == 0:
            net.add_po(node, f"po{len(net.pos)}")


def random_datapath(
    n_nodes: int = 100_000,
    n_pis: int = 64,
    seed: int = 0,
    window: int = 512,
) -> LogicNetwork:
    """Seeded random datapath-like network of roughly *n_nodes* nodes.

    Gate kinds follow :data:`_DATAPATH_MIX`; fanins are drawn from a
    sliding locality *window* of recently created nodes (with the PIs
    always reachable), which mimics the short-wire locality of real
    datapaths and keeps logic depth growing with size.  Every sink node
    becomes a PO, so the whole network is live (``sweep`` is a no-op).
    """
    if n_pis < 4:
        raise ReproError("random_datapath needs at least 4 PIs")
    n_gates = n_nodes - 2 - n_pis
    if n_gates < 1:
        raise ReproError(f"n_nodes={n_nodes} leaves no room for gates")
    rng = random.Random(f"datapath:{n_pis}:{seed}")
    net = LogicNetwork(f"datapath_{n_nodes}_s{seed}")
    pi_ids = [net.add_pi(f"pi{i}") for i in range(n_pis)]
    base = net.num_nodes()
    mix: List[Tuple[Gate, int]] = []
    for gate, arity, weight in _DATAPATH_MIX:
        mix.extend([(gate, arity)] * weight)
    avail: List[int] = list(pi_ids)
    items: List[Tuple[Gate, Tuple[int, ...]]] = []
    for j in range(n_gates):
        gate, arity = mix[rng.randrange(len(mix))]
        candidates = avail[-window:] if len(avail) > window else avail
        if arity > len(candidates):
            arity = len(candidates)
            if arity < 2:
                gate, arity = Gate.NOT, 1
        fins = tuple(rng.sample(candidates, arity))
        items.append((gate, fins))
        avail.append(base + j)
    net.add_gates_bulk(items)
    _bind_sink_pos(net)
    return net


def lut_cascade(
    width: int = 256,
    depth: int = 400,
    k: int = 4,
    seed: int = 0,
) -> LogicNetwork:
    """Layered k-input cascade: *depth* layers of *width* random gates.

    Each node draws ``k`` distinct fanins from the previous layer (three
    for MAJ3), with an occasional skip connection two layers back, so
    the network has the rigid level structure of a k-LUT cascade —
    the stress shape for the per-level grouped simulation lanes.  The
    last layer's nodes are the POs.
    """
    if width < max(k, 4):
        raise ReproError(f"width {width} too small for k={k}")
    rng = random.Random(f"cascade:{width}:{k}:{seed}")
    net = LogicNetwork(f"cascade_{width}x{depth}_k{k}_s{seed}")
    prev = [net.add_pi(f"pi{i}") for i in range(width)]
    before = list(prev)
    base = net.num_nodes()
    items: List[Tuple[Gate, Tuple[int, ...]]] = []
    families = (
        Gate.AND, Gate.OR, Gate.XOR, Gate.NAND,
        Gate.NOR, Gate.XNOR, Gate.MAJ3,
    )
    pseudo = base
    for _layer in range(depth):
        layer_ids: List[int] = []
        for _ in range(width):
            gate = families[rng.randrange(len(families))]
            arity = 3 if gate is Gate.MAJ3 else k
            fins = rng.sample(prev, arity)
            if before is not prev and rng.randrange(8) == 0:
                fins[rng.randrange(arity)] = before[rng.randrange(width)]
            items.append((gate, tuple(fins)))
            layer_ids.append(pseudo)
            pseudo += 1
        before = prev
        prev = layer_ids
    out = net.add_gates_bulk(items)
    id_of = {base + j: node for j, node in enumerate(out)}
    for i, p in enumerate(prev):
        net.add_po(id_of[p], f"po{i}")
    # mid-layer nodes the sampling never consumed become POs as well,
    # so the cascade is fully live (sweep is a no-op)
    _bind_sink_pos(net)
    return net


def _sized_cascade(scale: int, seed: int) -> LogicNetwork:
    width = 256
    depth = max(1, round((scale - 2 - width) / width))
    return lut_cascade(width=width, depth=depth, seed=seed)


#: name -> builder(scale, seed); the --scale generator family
SYNTHETIC_BENCHMARKS: Dict[str, Callable[[int, int], LogicNetwork]] = {
    "datapath": lambda scale, seed: random_datapath(n_nodes=scale, seed=seed),
    "cascade": _sized_cascade,
}

SYNTHETIC_DESCRIPTIONS: Dict[str, str] = {
    "datapath": "seeded random datapath (locality-windowed gate mix)",
    "cascade": "layered k-input cascade (256-wide, depth from --scale)",
}


def synthetic_names() -> List[str]:
    """Names of the --scale synthetic generators, sorted."""
    return sorted(SYNTHETIC_BENCHMARKS)


def build_synthetic(name: str, scale: int, seed: int = 0) -> LogicNetwork:
    """Instantiate one synthetic generator at roughly *scale* nodes."""
    builder = SYNTHETIC_BENCHMARKS.get(name)
    if builder is None:
        raise ReproError(
            f"unknown synthetic benchmark {name!r}; known: {synthetic_names()}"
        )
    if scale < 16:
        raise ReproError(f"--scale {scale} is too small (minimum 16)")
    return builder(scale, seed)
