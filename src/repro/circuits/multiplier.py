"""Array multiplier and squarer benchmark generators.

``braun_multiplier`` is the classic carry-save array of AND partial
products and full-adder cells — the same structure as the ISCAS-85 c6288
(16×16) and a stand-in for the EPFL ``multiplier`` (64×64).  The EPFL
``square`` benchmark is reproduced by the folded array squarer.

These are exactly the full-adder-dominated fabrics where the paper finds
hundreds of T1 cells.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuits.arithmetic import Bus, full_adder, ripple_carry_adder_bus
from repro.network.logic_network import CONST0, LogicNetwork


def _carry_save_rows(
    net: LogicNetwork, rows: List[Bus], width: int
) -> Bus:
    """Accumulate weighted partial-product rows with a carry-save array.

    ``rows[j]`` holds bits of weight ``j + position``; all rows are given
    already aligned: ``rows[j][i]`` has absolute weight ``i``.  Returns the
    final sum bus of ``width`` bits (extra weight truncated, as in c6288's
    modulo behaviour when widths are clipped).
    """
    # columns[w] = list of nodes of weight w
    columns: List[List[int]] = [[] for _ in range(width)]
    for row in rows:
        for w, bit in enumerate(row):
            if w < width and bit != CONST0:
                columns[w].append(bit)
    # reduce columns with full adders until every column has <= 2 entries
    while any(len(col) > 2 for col in columns):
        new_columns: List[List[int]] = [[] for _ in range(width)]
        for w, col in enumerate(columns):
            i = 0
            while len(col) - i >= 3:
                s, c = full_adder(net, col[i], col[i + 1], col[i + 2])
                new_columns[w].append(s)
                if w + 1 < width:
                    new_columns[w + 1].append(c)
                i += 3
            if len(col) - i == 2:
                s, c = full_adder(net, col[i], col[i + 1])
                new_columns[w].append(s)
                if w + 1 < width:
                    new_columns[w + 1].append(c)
                i += 2
            while i < len(col):
                new_columns[w].append(col[i])
                i += 1
        columns = new_columns
    # final carry-propagate addition of the two remaining operands
    a: Bus = []
    b: Bus = []
    for w in range(width):
        col = columns[w]
        a.append(col[0] if len(col) >= 1 else CONST0)
        b.append(col[1] if len(col) >= 2 else CONST0)
    sums, carry = ripple_carry_adder_bus(net, a, b)
    del carry  # truncated at `width`
    return sums


def braun_multiplier(
    bits: int = 64, name: str = "multiplier", out_bits: Optional[int] = None
) -> LogicNetwork:
    """n×n array multiplier (AND partial products + FA reduction array)."""
    net = LogicNetwork(name)
    a = [net.add_pi(f"a{i}") for i in range(bits)]
    b = [net.add_pi(f"b{i}") for i in range(bits)]
    width = out_bits if out_bits is not None else 2 * bits
    rows: List[Bus] = []
    for j in range(bits):
        row: Bus = [CONST0] * j
        for i in range(bits):
            if i + j < width:
                row.append(net.add_and(a[i], b[j]))
        rows.append(row)
    product = _carry_save_rows(net, rows, width)
    for i, bit in enumerate(product):
        net.add_po(bit, f"p{i}")
    return net


def squarer(bits: int = 32, name: str = "square") -> LogicNetwork:
    """Folded array squarer: p = a².

    Uses the identity a_i·a_j + a_j·a_i = 2·(a_i·a_j): off-diagonal
    partial products are generated once at weight i+j+1, the diagonal
    contributes a_i (a_i·a_i = a_i) at weight 2i — roughly half the
    partial products of a generic multiplier, like the EPFL ``square``.
    """
    net = LogicNetwork(name)
    a = [net.add_pi(f"a{i}") for i in range(bits)]
    width = 2 * bits
    rows: List[Bus] = []
    for i in range(bits):
        diag: Bus = [CONST0] * (2 * i) + [a[i]]
        rows.append(diag)
        row: Bus = []
        pending: List[Tuple[int, int]] = []
        for j in range(i + 1, bits):
            pending.append((i + j + 1, net.add_and(a[i], a[j])))
        if pending:
            base = pending[0][0]
            row = [CONST0] * base
            for w, node in pending:
                while len(row) < w:
                    row.append(CONST0)
                row.append(node)
            rows.append(row)
    product = _carry_save_rows(net, rows, width)
    for i, bit in enumerate(product):
        net.add_po(bit, f"p{i}")
    return net
