"""Benchmark registry: the paper's Table-I circuit suite.

Two size presets per benchmark:

* ``paper`` — the scale evaluated in the paper (or the closest our
  generators express: the EPFL/ISCAS functions at their original widths);
* ``ci`` — down-scaled variants used by the test-suite and the default
  pytest-benchmark runs so they finish in seconds.

``build(name, preset="paper")`` returns a fresh
:class:`~repro.network.logic_network.LogicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.circuits.arithmetic import ripple_carry_adder
from repro.circuits.cordic import cordic_sin_network
from repro.circuits.iscas import c6288_like, c7552_like
from repro.circuits.log2 import log2_network
from repro.circuits.multiplier import braun_multiplier, squarer
from repro.circuits.voter import majority_voter
from repro.errors import ReproError
from repro.network.logic_network import LogicNetwork


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark with its two size presets."""

    name: str
    description: str
    paper: Callable[[], LogicNetwork]
    ci: Callable[[], LogicNetwork]


#: Table-I order
TABLE1_ORDER: Tuple[str, ...] = (
    "adder",
    "c7552",
    "c6288",
    "sin",
    "voter",
    "square",
    "multiplier",
    "log2",
)

benchmark_registry: Dict[str, BenchmarkSpec] = {
    "adder": BenchmarkSpec(
        "adder",
        "128-bit ripple-carry adder (EPFL adder)",
        paper=lambda: ripple_carry_adder(128),
        ci=lambda: ripple_carry_adder(16),
    ),
    "c7552": BenchmarkSpec(
        "c7552",
        "32-bit adder/comparator/parity block (ISCAS-85 c7552)",
        paper=lambda: c7552_like(32),
        ci=lambda: c7552_like(8),
    ),
    "c6288": BenchmarkSpec(
        "c6288",
        "16x16 array multiplier (ISCAS-85 c6288)",
        paper=lambda: c6288_like(16),
        ci=lambda: c6288_like(6),
    ),
    "sin": BenchmarkSpec(
        "sin",
        "CORDIC fixed-point sine (EPFL sin)",
        paper=lambda: cordic_sin_network(width=16, iterations=12),
        ci=lambda: cordic_sin_network(width=8, iterations=5),
    ),
    "voter": BenchmarkSpec(
        "voter",
        "1001-input majority voter (EPFL voter)",
        paper=lambda: majority_voter(1001),
        ci=lambda: majority_voter(99),
    ),
    "square": BenchmarkSpec(
        "square",
        "folded array squarer (EPFL square)",
        paper=lambda: squarer(48),
        ci=lambda: squarer(10),
    ),
    "multiplier": BenchmarkSpec(
        "multiplier",
        "Braun array multiplier (EPFL multiplier)",
        paper=lambda: braun_multiplier(48),
        ci=lambda: braun_multiplier(8),
    ),
    "log2": BenchmarkSpec(
        "log2",
        "iterative-squaring base-2 logarithm (EPFL log2)",
        paper=lambda: log2_network(width=16, frac_bits=8),
        ci=lambda: log2_network(width=8, frac_bits=4),
    ),
}


def build(name: str, preset: str = "paper") -> LogicNetwork:
    """Instantiate a registered benchmark."""
    spec = benchmark_registry.get(name)
    if spec is None:
        raise ReproError(
            f"unknown benchmark {name!r}; known: {sorted(benchmark_registry)}"
        )
    if preset == "paper":
        return spec.paper()
    if preset == "ci":
        return spec.ci()
    raise ReproError(f"unknown preset {preset!r} (use 'paper' or 'ci')")


def names() -> List[str]:
    """Benchmark names in the paper's Table-I order."""
    return list(TABLE1_ORDER)
