"""BLIF (Berkeley Logic Interchange Format) reader / writer.

Supports the combinational subset: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (PLA-style cover) and ``.end``.  Covers are converted to AND/OR
/NOT structures on read; on write, every gate is emitted as its canonical
cover.  T1 blocks are expanded functionally on write (BLIF has no
multi-output cells), so a written-then-read network is logically — not
structurally — equivalent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.errors import ParseError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.traversal import topological_order


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------

_COVERS: Dict[Gate, str] = {}


def _cover_lines(gate: Gate, arity: int) -> List[str]:
    """PLA cover of one gate (input rows + output value)."""
    if gate is Gate.BUF:
        return ["1 1"]
    if gate is Gate.NOT:
        return ["0 1"]
    if gate is Gate.AND:
        return ["1" * arity + " 1"]
    if gate is Gate.NAND:
        return [
            "-" * i + "0" + "-" * (arity - i - 1) + " 1" for i in range(arity)
        ]
    if gate is Gate.OR:
        return [
            "-" * i + "1" + "-" * (arity - i - 1) + " 1" for i in range(arity)
        ]
    if gate is Gate.NOR:
        return ["0" * arity + " 1"]
    if gate in (Gate.XOR, Gate.XNOR):
        rows = []
        want = 1 if gate is Gate.XOR else 0
        for bits in range(1 << arity):
            ones = bin(bits).count("1")
            if ones % 2 == want:
                row = "".join(
                    "1" if (bits >> i) & 1 else "0" for i in range(arity)
                )
                rows.append(row + " 1")
        return rows
    if gate is Gate.MAJ3:
        return ["11- 1", "1-1 1", "-11 1"]
    raise ParseError(f"gate {gate.name} has no BLIF cover")


def write_blif(net: LogicNetwork, fh: TextIO) -> None:
    """Write the network as combinational BLIF."""
    def name_of(node: int) -> str:
        n = net.get_name(node)
        if n and node in net.pis:
            return n
        return f"n{node}"

    fh.write(f".model {net.name}\n")
    fh.write(".inputs " + " ".join(name_of(pi) for pi in net.pis) + "\n")
    po_names = [
        po_name or f"po{idx}" for idx, po_name in enumerate(net.po_names)
    ]
    fh.write(".outputs " + " ".join(po_names) + "\n")

    live = set(topological_order(net))
    emitted_consts: List[int] = []

    def const_line(node: int) -> None:
        if node in emitted_consts:
            return
        emitted_consts.append(node)
        if node == CONST1:
            fh.write(f".names n{CONST1}\n1\n")
        else:
            fh.write(f".names n{CONST0}\n")

    used = set()
    for node in live:
        used.update(net.fanins[node])
    used.update(net.pos)
    for c in (CONST0, CONST1):
        if c in used:
            const_line(c)

    for node in topological_order(net):
        g = net.gates[node]
        if g in (Gate.PI, Gate.CONST0, Gate.CONST1):
            continue
        if g is Gate.T1_CELL:
            continue  # taps carry the functions
        if is_t1_tap(g):
            cell = net.fanins[node][0]
            a, b, c = (name_of(f) for f in net.fanins[cell])
            out = name_of(node)
            if g is Gate.T1_S:
                rows = _cover_lines(Gate.XOR, 3)
            elif g is Gate.T1_C:
                rows = _cover_lines(Gate.MAJ3, 3)
            elif g is Gate.T1_CN:
                rows = ["00- 1", "0-0 1", "-00 1"]
            elif g is Gate.T1_Q:
                rows = _cover_lines(Gate.OR, 3)
            else:  # T1_QN
                rows = _cover_lines(Gate.NOR, 3)
            fh.write(f".names {a} {b} {c} {out}\n")
            for row in rows:
                fh.write(row + "\n")
            continue
        fins = " ".join(name_of(f) for f in net.fanins[node])
        fh.write(f".names {fins} {name_of(node)}\n")
        for row in _cover_lines(g, len(net.fanins[node])):
            fh.write(row + "\n")

    # alias POs onto their driver names
    for po, po_name in zip(net.pos, po_names):
        fh.write(f".names {name_of(po)} {po_name}\n1 1\n")
    fh.write(".end\n")


def dumps_blif(net: LogicNetwork) -> str:
    """:func:`write_blif` into a string."""
    import io

    buf = io.StringIO()
    write_blif(net, buf)
    return buf.getvalue()


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

def _tokens(fh: TextIO) -> Iterable[Tuple[int, List[str]]]:
    """Logical lines (backslash continuation, comments stripped)."""
    pending = ""
    for lineno, raw in enumerate(fh, start=1):
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        if line.strip():
            yield lineno, line.split()
    if pending.strip():
        yield -1, pending.split()


def read_blif(fh: TextIO) -> LogicNetwork:
    """Parse combinational BLIF into a :class:`LogicNetwork`."""
    model_name = "top"
    inputs: List[str] = []
    outputs: List[str] = []
    covers: List[Tuple[int, List[str], str, List[str]]] = []
    state_rows: Optional[Tuple[List[str], str, List[str], int]] = None

    def flush_cover() -> None:
        nonlocal state_rows
        if state_rows is not None:
            ins, out, rows, lineno = state_rows
            covers.append((lineno, ins, out, rows))
            state_rows = None

    for lineno, toks in _tokens(fh):
        head = toks[0]
        if head.startswith("."):
            if head != ".names":
                flush_cover()
            if head == ".model":
                model_name = toks[1] if len(toks) > 1 else "top"
            elif head == ".inputs":
                inputs.extend(toks[1:])
            elif head == ".outputs":
                outputs.extend(toks[1:])
            elif head == ".names":
                flush_cover()
                if len(toks) < 2:
                    raise ParseError(".names needs at least an output", lineno)
                state_rows = (toks[1:-1], toks[-1], [], lineno)
            elif head == ".end":
                flush_cover()
                break
            elif head in (".latch", ".subckt", ".gate"):
                raise ParseError(f"{head} is not supported (combinational only)", lineno)
            # silently ignore other dot-directives
        else:
            if state_rows is None:
                raise ParseError(f"unexpected token {head!r}", lineno)
            state_rows[2].append(" ".join(toks))
    flush_cover()

    net = LogicNetwork(model_name)
    signals: Dict[str, int] = {}
    for name in inputs:
        signals[name] = net.add_pi(name)

    def build_cover(
        lineno: int, ins: List[str], rows: List[str]
    ) -> int:
        if not ins:
            # constant: a single "1" row means const1, empty means const0
            if any(r.strip() == "1" for r in rows):
                return CONST1
            return CONST0
        terms: List[int] = []
        out_value = None
        for row in rows:
            parts = row.split()
            if len(parts) != 2:
                raise ParseError(f"malformed cover row {row!r}", lineno)
            pattern, value = parts
            if len(pattern) != len(ins):
                raise ParseError(
                    f"pattern width {len(pattern)} != {len(ins)} inputs", lineno
                )
            if out_value is None:
                out_value = value
            elif out_value != value:
                raise ParseError("mixed-polarity cover rows", lineno)
            lits: List[int] = []
            for ch, name in zip(pattern, ins):
                if name not in signals:
                    raise ParseError(f"undefined signal {name!r}", lineno)
                if ch == "1":
                    lits.append(signals[name])
                elif ch == "0":
                    lits.append(net.add_not(signals[name]))
                elif ch != "-":
                    raise ParseError(f"bad cover character {ch!r}", lineno)
            if not lits:
                terms.append(CONST1)
            elif len(lits) == 1:
                terms.append(lits[0])
            else:
                while len(lits) > 2:
                    merged = [
                        net.add_and(*lits[i : i + 2])
                        if len(lits[i : i + 2]) == 2
                        else lits[i]
                        for i in range(0, len(lits), 2)
                    ]
                    lits = merged
                terms.append(net.add_and(*lits) if len(lits) == 2 else lits[0])
        if not rows:
            return CONST0
        if len(terms) == 1:
            node = terms[0]
        else:
            while len(terms) > 2:
                terms = [
                    net.add_or(*terms[i : i + 2])
                    if len(terms[i : i + 2]) == 2
                    else terms[i]
                    for i in range(0, len(terms), 2)
                ]
            node = net.add_or(*terms)
        if out_value == "0":
            node = net.add_not(node)
        return node

    # covers may be out of order: resolve iteratively
    remaining = list(covers)
    progress = True
    while remaining and progress:
        progress = False
        still: List[Tuple[int, List[str], str, List[str]]] = []
        for lineno, ins, out, rows in remaining:
            if all(name in signals for name in ins):
                signals[out] = build_cover(lineno, ins, rows)
                progress = True
            else:
                still.append((lineno, ins, out, rows))
        remaining = still
    if remaining:
        missing = sorted(
            {n for _l, ins, _o, _r in remaining for n in ins if n not in signals}
        )
        raise ParseError(
            f"undefined signals (or combinational loop): {missing[:5]}"
        )

    for name in outputs:
        if name not in signals:
            raise ParseError(f"undefined output {name!r}")
        net.add_po(signals[name], name)
    return net


def loads_blif(text: str) -> LogicNetwork:
    """:func:`read_blif` from a string."""
    import io

    return read_blif(io.StringIO(text))
