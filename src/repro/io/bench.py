"""ISCAS ``.bench`` format reader / writer.

The format of the ISCAS-85/89 benchmark distributions::

    INPUT(a)
    OUTPUT(y)
    y = AND(a, b)

Combinational subset only (no DFF on read).  T1 blocks are expanded
functionally on write, like the BLIF writer.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple

from repro.errors import ParseError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.traversal import topological_order

_GATE_BY_NAME = {
    "AND": Gate.AND,
    "NAND": Gate.NAND,
    "OR": Gate.OR,
    "NOR": Gate.NOR,
    "XOR": Gate.XOR,
    "XNOR": Gate.XNOR,
    "NOT": Gate.NOT,
    "BUF": Gate.BUF,
    "BUFF": Gate.BUF,
    "MAJ": Gate.MAJ3,
    "MAJ3": Gate.MAJ3,
}

_NAME_BY_GATE = {
    Gate.AND: "AND",
    Gate.NAND: "NAND",
    Gate.OR: "OR",
    Gate.NOR: "NOR",
    Gate.XOR: "XOR",
    Gate.XNOR: "XNOR",
    Gate.NOT: "NOT",
    Gate.BUF: "BUFF",
    Gate.MAJ3: "MAJ3",
}

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]]+)\s*=\s*(?P<op>\w+)\s*\((?P<ins>[^)]*)\)\s*$"
)


def write_bench(net: LogicNetwork, fh: TextIO) -> None:
    """Write the network in ISCAS .bench syntax (T1 expanded)."""

    def name_of(node: int) -> str:
        n = net.get_name(node)
        if n and node in net.pis:
            return n
        if node == CONST0:
            return "GND"
        if node == CONST1:
            return "VDD"
        return f"n{node}"

    fh.write(f"# {net.name}\n")
    for pi in net.pis:
        fh.write(f"INPUT({name_of(pi)})\n")
    po_names = [n or f"po{i}" for i, n in enumerate(net.po_names)]
    for name in po_names:
        fh.write(f"OUTPUT({name})\n")

    used = set()
    for node in net.nodes():
        used.update(net.fanins[node])
    used.update(net.pos)
    if CONST0 in used or CONST1 in used:
        raise ParseError(
            "networks with constant references cannot be written to .bench; "
            "run strash() first"
        )

    for node in topological_order(net):
        g = net.gates[node]
        if g in (Gate.PI, Gate.CONST0, Gate.CONST1, Gate.T1_CELL):
            continue
        out = name_of(node)
        if is_t1_tap(g):
            cell = net.fanins[node][0]
            a, b, c = (name_of(f) for f in net.fanins[cell])
            if g is Gate.T1_S:
                fh.write(f"{out} = XOR({a}, {b}, {c})\n")
            elif g is Gate.T1_C:
                fh.write(f"{out} = MAJ3({a}, {b}, {c})\n")
            elif g is Gate.T1_CN:
                fh.write(f"{out}_m = MAJ3({a}, {b}, {c})\n")
                fh.write(f"{out} = NOT({out}_m)\n")
            elif g is Gate.T1_Q:
                fh.write(f"{out} = OR({a}, {b}, {c})\n")
            else:
                fh.write(f"{out} = NOR({a}, {b}, {c})\n")
            continue
        ins = ", ".join(name_of(f) for f in net.fanins[node])
        fh.write(f"{out} = {_NAME_BY_GATE[g]}({ins})\n")
    for po, name in zip(net.pos, po_names):
        fh.write(f"{name} = BUFF({name_of(po)})\n")


def dumps_bench(net: LogicNetwork) -> str:
    """:func:`write_bench` into a string."""
    import io

    buf = io.StringIO()
    write_bench(net, buf)
    return buf.getvalue()


def read_bench(fh: TextIO) -> LogicNetwork:
    """Parse a combinational .bench file."""
    net = LogicNetwork("bench")
    signals: Dict[str, int] = {}
    pending: List[Tuple[int, str, Gate, List[str]]] = []
    outputs: List[str] = []

    for lineno, raw in enumerate(fh, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT(") and line.endswith(")"):
            name = line[line.index("(") + 1 : -1].strip()
            signals[name] = net.add_pi(name)
            continue
        if upper.startswith("OUTPUT(") and line.endswith(")"):
            outputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise ParseError(f"cannot parse line {line!r}", lineno)
        op = m.group("op").upper()
        if op == "DFF":
            raise ParseError("sequential .bench not supported", lineno)
        gate = _GATE_BY_NAME.get(op)
        if gate is None:
            raise ParseError(f"unknown gate {op!r}", lineno)
        ins = [t.strip() for t in m.group("ins").split(",") if t.strip()]
        pending.append((lineno, m.group("out"), gate, ins))

    # resolve in dependency order, one bulk append per pass; signals
    # defined earlier in the same pass are referenced by their pending
    # batch id (base + index), so node order matches a per-call loop
    remaining = pending
    while remaining:
        base = net.num_nodes()
        batch: List[Tuple[Gate, List[int]]] = []
        batch_outs: List[str] = []
        local: Dict[str, int] = {}
        still = []
        for lineno, out, gate, ins in remaining:
            if all(i in local or i in signals for i in ins):
                fins = [local[i] if i in local else signals[i] for i in ins]
                local[out] = base + len(batch)
                batch.append((gate, fins))
                batch_outs.append(out)
            else:
                still.append((lineno, out, gate, ins))
        if not batch:
            break
        for out, node in zip(batch_outs, net.add_gates_bulk(batch)):
            signals[out] = node
        remaining = still
    if remaining:
        missing = sorted(
            {i for _l, _o, _g, ins in remaining for i in ins if i not in signals}
        )
        raise ParseError(f"undefined signals or loop: {missing[:5]}")

    for name in outputs:
        if name not in signals:
            raise ParseError(f"undefined output {name!r}")
        net.add_po(signals[name], name)
    return net


def loads_bench(text: str) -> LogicNetwork:
    """:func:`read_bench` from a string."""
    import io

    return read_bench(io.StringIO(text))
