"""Strict-JSON report serialization for the benchmark writers.

Python's ``json`` module emits ``Infinity`` / ``-Infinity`` / ``NaN`` by
default — tokens the JSON grammar does not contain, which
``json.loads`` only accepts by accident and strict parsers (and most
non-Python consumers) reject.  ``BENCH_*.json`` reports must stay
consumable by anything, so every writer routes through
:func:`dump_json_report`:

* non-finite floats become ``null``;
* a dict entry ``"cost": inf`` additionally gains a sibling
  ``"cost_finite": false`` flag, so consumers can distinguish "absent"
  from "infinite" without sniffing;
* the final ``json.dumps`` runs with ``allow_nan=False`` — if a
  non-finite value ever slips past the sanitizer, writing fails loudly
  instead of producing a non-standard file.

:func:`strict_loads` is the matching reader: it rejects the non-standard
tokens instead of silently accepting them (the round-trip contract the
test-suite pins for every committed ``BENCH_*.json``).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

FINITE_FLAG_SUFFIX = "_finite"


def _is_nonfinite(value: Any) -> bool:
    return isinstance(value, float) and not math.isfinite(value)


def sanitize_report(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (+ flags).

    Inside dicts, a non-finite value under ``key`` is emitted as
    ``key: None`` plus ``key + "_finite": False`` (inserted right after
    the key, preserving the surrounding order).  Inside lists only the
    value itself is replaced.  Everything else passes through unchanged.
    """
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if _is_nonfinite(value):
                out[key] = None
                flag = str(key) + FINITE_FLAG_SUFFIX
                if flag not in obj:
                    out[flag] = False
            else:
                out[key] = sanitize_report(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [
            None if _is_nonfinite(v) else sanitize_report(v) for v in obj
        ]
    return obj


def dumps_json_report(obj: Any, indent: int = 1) -> str:
    """Sanitize and serialize a report; guaranteed strict JSON."""
    return json.dumps(sanitize_report(obj), indent=indent, allow_nan=False) + "\n"


def dump_json_report(
    path: Union[str, Path], obj: Any, indent: int = 1
) -> None:
    """Write a benchmark report as strict JSON."""
    Path(path).write_text(dumps_json_report(obj, indent=indent))


def canonical_dumps(obj: Any) -> str:
    """Deterministic, compact, strict JSON: sorted keys, no whitespace.

    This is the canonical serialization the service layer hashes into
    content-addressed cache keys — two semantically equal configs must
    produce byte-identical encodings regardless of dict insertion order.
    """
    return json.dumps(
        sanitize_report(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def _reject_constant(token: str) -> Any:
    raise ValueError(f"non-standard JSON token {token!r}")


def strict_loads(text: str) -> Any:
    """``json.loads`` that rejects ``Infinity`` / ``-Infinity`` / ``NaN``."""
    return json.loads(text, parse_constant=_reject_constant)
