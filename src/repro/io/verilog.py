"""Structural Verilog writer for logic networks and mapped SFQ netlists.

Write-only (parsing Verilog is out of scope): produces synthesisable
gate-level modules using primitive gates for logic networks, and an
instantiation-style netlist (one cell instance per clocked element, with
stage annotations as comments) for mapped SFQ netlists — the artefact a
physical-design flow would consume.
"""

from __future__ import annotations

import re
from typing import Dict, TextIO

from repro.errors import ParseError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.traversal import live_nodes, topological_order
from repro.sfq.netlist import CellKind, SFQNetlist

_PRIMITIVE = {
    Gate.AND: "and",
    Gate.NAND: "nand",
    Gate.OR: "or",
    Gate.NOR: "nor",
    Gate.XOR: "xor",
    Gate.XNOR: "xnor",
    Gate.NOT: "not",
    Gate.BUF: "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _sanitize(name: str) -> str:
    if _ID_RE.match(name):
        return name
    return "\\" + name + " "


def write_verilog(net: LogicNetwork, fh: TextIO) -> None:
    """Write a logic network as a gate-primitive Verilog module."""
    live = live_nodes(net)

    def wire(node: int) -> str:
        if node == CONST0:
            return "1'b0"
        if node == CONST1:
            return "1'b1"
        n = net.get_name(node)
        if n and node in net.pis:
            return _sanitize(n)
        return f"n{node}"

    pi_names = [wire(pi) for pi in net.pis]
    po_names = [
        _sanitize(nm) if nm else f"po{i}"
        for i, nm in enumerate(net.po_names)
    ]
    fh.write(f"module {_sanitize(net.name)} (\n")
    ports = ", ".join(pi_names + po_names)
    fh.write(f"  {ports}\n);\n")
    if pi_names:
        fh.write("  input " + ", ".join(pi_names) + ";\n")
    fh.write("  output " + ", ".join(po_names) + ";\n")

    internal = [
        n
        for n in sorted(live)
        if net.is_logic(n) and net.gates[n] is not Gate.T1_CELL
    ]
    if internal:
        fh.write("  wire " + ", ".join(wire(n) for n in internal) + ";\n")

    idx = 0
    for node in topological_order(net):
        if node not in live:
            continue
        g = net.gates[node]
        if g in (Gate.PI, Gate.CONST0, Gate.CONST1, Gate.T1_CELL):
            continue
        idx += 1
        if is_t1_tap(g):
            cell = net.fanins[node][0]
            a, b, c = (wire(f) for f in net.fanins[cell])
            out = wire(node)
            if g is Gate.T1_S:
                fh.write(f"  xor g{idx} ({out}, {a}, {b}, {c});\n")
            elif g in (Gate.T1_C, Gate.T1_CN):
                maj = f"{out}_maj"
                fh.write(f"  wire {maj};\n")
                fh.write(
                    f"  assign {maj} = ({a} & {b}) | ({a} & {c}) | ({b} & {c});\n"
                )
                if g is Gate.T1_C:
                    fh.write(f"  buf g{idx} ({out}, {maj});\n")
                else:
                    fh.write(f"  not g{idx} ({out}, {maj});\n")
            elif g is Gate.T1_Q:
                fh.write(f"  or g{idx} ({out}, {a}, {b}, {c});\n")
            else:
                fh.write(f"  nor g{idx} ({out}, {a}, {b}, {c});\n")
            continue
        if g is Gate.MAJ3:
            a, b, c = (wire(f) for f in net.fanins[node])
            fh.write(
                f"  assign {wire(node)} = ({a} & {b}) | ({a} & {c}) | "
                f"({b} & {c});\n"
            )
            continue
        prim = _PRIMITIVE.get(g)
        if prim is None:
            raise ParseError(f"gate {g.name} has no Verilog primitive")
        ins = ", ".join(wire(f) for f in net.fanins[node])
        fh.write(f"  {prim} g{idx} ({wire(node)}, {ins});\n")

    for po, po_name in zip(net.pos, po_names):
        fh.write(f"  assign {po_name} = {wire(po)};\n")
    fh.write("endmodule\n")


def write_sfq_verilog(netlist: SFQNetlist, fh: TextIO) -> None:
    """Write a mapped SFQ netlist as a cell-instance module.

    Cell types reference an SFQ standard-cell library (SFQ_AND2, SFQ_DFF,
    SFQ_T1, ...); stage assignments are emitted as per-instance comments
    for the clock-tree generator downstream.
    """
    def wire(sig) -> str:
        cell_id, port = sig
        return f"w{cell_id}_{port}"

    pi_names = []
    for pi in netlist.pis:
        name = netlist.cells[pi].name or f"pi{pi}"
        pi_names.append(_sanitize(name))
    po_names = [
        _sanitize(nm) if nm else f"po{i}" for i, (s, nm) in enumerate(netlist.pos)
    ]
    fh.write(f"module {_sanitize(netlist.name)} (clk, ")
    fh.write(", ".join(pi_names + po_names))
    fh.write(");\n  input clk;\n")
    if pi_names:
        fh.write("  input " + ", ".join(pi_names) + ";\n")
    fh.write("  output " + ", ".join(po_names) + ";\n")

    for cell in netlist.cells:
        if cell.kind is CellKind.PI:
            fh.write(f"  wire w{cell.index}_out;\n")
            fh.write(
                f"  assign w{cell.index}_out = "
                f"{_sanitize(cell.name or f'pi{cell.index}')};"
                f"  // PI @ stage {cell.stage}\n"
            )
            continue
        if cell.kind in (CellKind.CONST0, CellKind.CONST1):
            value = "1'b1" if cell.kind is CellKind.CONST1 else "1'b0"
            fh.write(f"  wire w{cell.index}_out = {value};\n")
            continue
        if cell.kind is CellKind.SPLITTER:
            src = wire(cell.fanins[0])
            fh.write(
                f"  wire w{cell.index}_o0, w{cell.index}_o1;\n"
                f"  SFQ_SPLIT s{cell.index} (.a({src}), "
                f".o0(w{cell.index}_o0), .o1(w{cell.index}_o1));\n"
            )
            continue
        if cell.kind is CellKind.DFF:
            src = wire(cell.fanins[0])
            fh.write(
                f"  wire w{cell.index}_out;\n"
                f"  SFQ_DFF d{cell.index} (.clk(clk), .d({src}), "
                f".q(w{cell.index}_out));  // stage {cell.stage}\n"
            )
            continue
        if cell.kind is CellKind.T1:
            a, b, c = (wire(s) for s in cell.fanins)
            fh.write(
                f"  wire w{cell.index}_S, w{cell.index}_C, w{cell.index}_Q;\n"
                f"  SFQ_T1 t{cell.index} (.clk(clk), .a({a}), .b({b}), "
                f".c({c}), .s(w{cell.index}_S), .carry(w{cell.index}_C), "
                f".q(w{cell.index}_Q));  // stage {cell.stage}\n"
            )
            continue
        assert cell.kind is CellKind.GATE and cell.op is not None
        ins = ", ".join(
            f".i{i}({wire(s)})" for i, s in enumerate(cell.fanins)
        )
        ctype = f"SFQ_{cell.op.name}{len(cell.fanins)}"
        if cell.op is Gate.NOT:
            ctype = "SFQ_NOT"
        fh.write(
            f"  wire w{cell.index}_out;\n"
            f"  {ctype} g{cell.index} (.clk(clk), {ins}, "
            f".o(w{cell.index}_out));  // stage {cell.stage}\n"
        )

    for (sig, _nm), po_name in zip(netlist.pos, po_names):
        fh.write(f"  assign {po_name} = {wire(sig)};\n")
    fh.write("endmodule\n")


def dumps_verilog(net: LogicNetwork) -> str:
    """:func:`write_verilog` into a string."""
    import io

    buf = io.StringIO()
    write_verilog(net, buf)
    return buf.getvalue()


def dumps_sfq_verilog(netlist: SFQNetlist) -> str:
    """:func:`write_sfq_verilog` into a string."""
    import io

    buf = io.StringIO()
    write_sfq_verilog(netlist, buf)
    return buf.getvalue()
