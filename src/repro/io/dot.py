"""Graphviz DOT export for logic networks and staged SFQ netlists."""

from __future__ import annotations

from typing import Optional, TextIO

from repro.network.gates import GATE_SYMBOLS, Gate, is_t1_tap
from repro.network.logic_network import LogicNetwork
from repro.network.traversal import live_nodes
from repro.sfq.netlist import CellKind, SFQNetlist

_KIND_STYLE = {
    CellKind.PI: ('shape=invtriangle, style=filled, fillcolor="#cde7ff"'),
    CellKind.GATE: ('shape=box, style=rounded'),
    CellKind.T1: ('shape=box3d, style=filled, fillcolor="#ffe2b3"'),
    CellKind.DFF: ('shape=square, style=filled, fillcolor="#e4e4e4"'),
    CellKind.CONST0: ("shape=plaintext"),
    CellKind.CONST1: ("shape=plaintext"),
    CellKind.SPLITTER: ('shape=point, width=0.12'),
}


def network_to_dot(net: LogicNetwork, fh: TextIO) -> None:
    """Write a logic network as a DOT digraph (dead nodes omitted)."""
    live = live_nodes(net)
    fh.write(f'digraph "{net.name}" {{\n  rankdir=LR;\n')
    for node in sorted(live):
        g = net.gates[node]
        if g in (Gate.CONST0, Gate.CONST1) and not any(
            node in net.fanins[u] for u in live
        ):
            continue
        label = GATE_SYMBOLS.get(g, g.name)
        name = net.get_name(node)
        if name:
            label = f"{name}\\n{label}"
        shape = "invtriangle" if g is Gate.PI else "box"
        if g is Gate.T1_CELL:
            shape = "box3d"
        fh.write(f'  n{node} [label="{label}", shape={shape}];\n')
    for node in sorted(live):
        for f in net.fanins[node]:
            fh.write(f"  n{f} -> n{node};\n")
    for i, po in enumerate(net.pos):
        po_name = net.po_names[i] or f"po{i}"
        fh.write(
            f'  o{i} [label="{po_name}", shape=triangle];\n  n{po} -> o{i};\n'
        )
    fh.write("}\n")


def netlist_to_dot(netlist: SFQNetlist, fh: TextIO) -> None:
    """Write a staged SFQ netlist; clocked cells are ranked by stage."""
    fh.write(f'digraph "{netlist.name}" {{\n  rankdir=LR;\n')
    by_stage = {}
    for cell in netlist.cells:
        label = cell.kind.name
        if cell.kind is CellKind.GATE and cell.op is not None:
            label = cell.op.name
        if cell.stage is not None:
            label += f"\\nσ={cell.stage}"
            by_stage.setdefault(cell.stage, []).append(cell.index)
        style = _KIND_STYLE[cell.kind]
        fh.write(f'  c{cell.index} [label="{label}", {style}];\n')
    for cell in netlist.cells:
        for sig in cell.fanins:
            fh.write(f'  c{sig[0]} -> c{cell.index} [label="{sig[1]}"];\n')
    for i, (sig, name) in enumerate(netlist.pos):
        fh.write(
            f'  p{i} [label="{name or f"po{i}"}", shape=triangle];\n'
            f"  c{sig[0]} -> p{i};\n"
        )
    for stage, cells in sorted(by_stage.items()):
        members = "; ".join(f"c{c}" for c in cells)
        fh.write(f"  {{ rank=same; {members}; }}\n")
    fh.write("}\n")


def dumps_network_dot(net: LogicNetwork) -> str:
    """:func:`network_to_dot` into a string."""
    import io

    buf = io.StringIO()
    network_to_dot(net, buf)
    return buf.getvalue()


def dumps_netlist_dot(netlist: SFQNetlist) -> str:
    """:func:`netlist_to_dot` into a string."""
    import io

    buf = io.StringIO()
    netlist_to_dot(netlist, buf)
    return buf.getvalue()
