"""Netlist I/O: BLIF, ISCAS .bench, Graphviz DOT — plus strict-JSON reports."""

from repro.io.bench import dumps_bench, loads_bench, read_bench, write_bench
from repro.io.json_report import (
    canonical_dumps,
    dump_json_report,
    dumps_json_report,
    sanitize_report,
    strict_loads,
)
from repro.io.blif import dumps_blif, loads_blif, read_blif, write_blif
from repro.io.dot import (
    dumps_netlist_dot,
    dumps_network_dot,
    netlist_to_dot,
    network_to_dot,
)
from repro.io.verilog import (
    dumps_sfq_verilog,
    dumps_verilog,
    write_sfq_verilog,
    write_verilog,
)

__all__ = [
    "canonical_dumps",
    "dump_json_report",
    "dumps_bench",
    "dumps_json_report",
    "sanitize_report",
    "strict_loads",
    "dumps_blif",
    "dumps_netlist_dot",
    "dumps_network_dot",
    "dumps_sfq_verilog",
    "dumps_verilog",
    "write_sfq_verilog",
    "write_verilog",
    "loads_bench",
    "loads_blif",
    "netlist_to_dot",
    "network_to_dot",
    "read_bench",
    "read_blif",
    "write_bench",
    "write_blif",
]
