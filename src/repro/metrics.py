"""Cost metrics of mapped SFQ netlists: the three columns of Table I.

* ``#DFF``  — number of inserted path-balancing / staggering DFFs;
* ``area``  — total JJ count: gate cells + T1 cells + DFFs + splitters
  (a net with f consumers costs f − 1 splitters: every chain DFF re-drives
  the pulse, so chain length does not change the splitter count);
* ``depth`` — pipeline depth in clock cycles, ⌈σ_max / n⌉.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import MappingError
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.multiphase import depth_cycles
from repro.sfq.netlist import CellKind, SFQNetlist


@dataclass(frozen=True)
class NetlistMetrics:
    """Cost summary of one mapped netlist."""

    name: str
    n_phases: int
    num_gates: int
    num_t1: int
    num_dffs: int
    num_splitters: int
    area_jj: int
    depth_cycles: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "gates": self.num_gates,
            "t1": self.num_t1,
            "dffs": self.num_dffs,
            "splitters": self.num_splitters,
            "area_jj": self.area_jj,
            "depth_cycles": self.depth_cycles,
        }


def count_splitters(netlist: SFQNetlist) -> int:
    """f − 1 splitters per net with f consumers (POs count as consumers)."""
    total = 0
    for _sig, users in netlist.consumers().items():
        if len(users) > 1:
            total += len(users) - 1
    return total


def area_jj(
    netlist: SFQNetlist, library: Optional[CellLibrary] = None
) -> int:
    """Total JJ count of the netlist under the given cost model."""
    library = library or default_library()
    total = 0
    for cell in netlist.cells:
        if cell.kind in (CellKind.PI, CellKind.CONST0, CellKind.CONST1):
            continue
        if cell.kind is CellKind.DFF:
            total += library.dff.jj_count
        elif cell.kind is CellKind.T1:
            total += library.t1.jj_count
        elif cell.kind is CellKind.SPLITTER:
            total += library.splitter.jj_count
        elif cell.kind is CellKind.GATE:
            assert cell.op is not None
            total += library.gate_area(cell.op, len(cell.fanins))
        else:  # pragma: no cover - exhaustive
            raise MappingError(f"unknown cell kind {cell.kind}")
    # nets not yet materialised still need their combinatorial f-1 count
    # (after materialize_splitters every net has one consumer -> adds 0)
    total += count_splitters(netlist) * library.splitter.jj_count
    return total


def measure(
    netlist: SFQNetlist, library: Optional[CellLibrary] = None
) -> NetlistMetrics:
    """All Table-I metrics for one netlist."""
    library = library or default_library()
    num_gates = sum(1 for _ in netlist.gate_cells())
    num_t1 = sum(1 for _ in netlist.t1_cells())
    num_dffs = netlist.num_dffs()
    physical = sum(1 for c in netlist.cells if c.kind is CellKind.SPLITTER)
    splitters = physical + count_splitters(netlist)
    return NetlistMetrics(
        name=netlist.name,
        n_phases=netlist.n_phases,
        num_gates=num_gates,
        num_t1=num_t1,
        num_dffs=num_dffs,
        num_splitters=splitters,
        area_jj=area_jj(netlist, library),
        depth_cycles=depth_cycles(netlist.max_stage(), netlist.n_phases),
    )
