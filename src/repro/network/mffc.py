"""Maximum fanout-free cone (MFFC) computation.

The MFFC of a node *u* is the set of nodes that are used exclusively
(transitively) by *u*: removing *u* makes the whole cone dead.  Its total
cell area is the area recovered when *u* is replaced — the ΔA term of
eq. (2) in the paper.

Implementation: classic reference-counting walk.  Dereference the fanins
of *u*; every fanin whose count drops to zero joins the cone and is
dereferenced recursively; then all counts are restored.

Single-root cones are memoised per ``(root, boundary)`` — the rewrite
kernel scores the same (node, cut) pairs repeatedly — and
:meth:`MffcComputer.carry_over` translates the memo across an id remap,
dropping only the entries whose result could have changed (the caller
supplies the dirty region, typically from
:func:`~repro.network.traversal.structural_diff`): a cone is a function
of the root's transitive-fanin structure and fanout counts only, so
entries rooted outside the dirty region stay exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.network.gates import (
    CODE_BY_GATE,
    Gate,
    SOURCE_CODES,
    T1_TAP_CODES,
)
from repro.network.logic_network import LogicNetwork, flat_arrays

#: gate codes a cone walk may absorb: plain logic only — sources
#: (const/PI) always stop it, T1 cells and taps are the result of a
#: previous mapping decision and are treated as atomic
_ABSORBABLE = frozenset(
    c
    for c in range(len(CODE_BY_GATE))
    if c not in SOURCE_CODES
    and c not in T1_TAP_CODES
    and c != CODE_BY_GATE[Gate.T1_CELL]
)


class MffcComputer:
    """Reusable MFFC engine over a frozen network snapshot.

    Walks gates and fanins straight off the flat struct-of-arrays core
    (gate-code bytearray + CSR fanin pool) — no tuple views on the hot
    path.
    """

    def __init__(self, net: LogicNetwork):
        self.net = net
        # a private mutable copy seeded from the kernel's maintained
        # reference counts (no edge rescan); the walk below mutates and
        # restores it
        self.refs = net.compute_fanout_counts()
        self._codes, self._off, self._deg, self._pool = flat_arrays(net)
        # (root, sorted boundary tuple) -> frozen cone
        self._cone_cache: Dict[Tuple[int, Tuple[int, ...]], FrozenSet[int]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.carried_entries = 0

    def _stoppable(self, node: int) -> bool:
        """Nodes at which the cone always stops (never absorbed)."""
        return self._codes[node] in SOURCE_CODES

    def mffc(self, root: int, boundary: Iterable[int] = ()) -> Set[int]:
        """MFFC of *root*; *boundary* nodes are never absorbed.

        Returns the set of cone nodes (root included).  T1 blocks are
        treated as atomic: taps and cells are never absorbed (they are the
        result of a previous mapping decision).  Results are memoised per
        ``(root, boundary)``; the returned set is a fresh copy.
        """
        key = (root, tuple(sorted(boundary)))
        cached = self._cone_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return set(cached)
        self.cache_misses += 1
        cone = self.mffc_union([root], key[1])
        self._cone_cache[key] = frozenset(cone)
        return cone

    def mffc_union(
        self, roots: Sequence[int], boundary: Iterable[int] = ()
    ) -> Set[int]:
        """Union MFFC of several roots, counted jointly.

        The nodes of the union become dead when *all* roots are removed,
        which is exactly the situation when a T1 cell replaces a group of
        matched nodes.  Computed by dereferencing all roots together, so
        shared internal nodes are absorbed once (no double counting).
        """
        refs = self.refs
        codes = self._codes
        off = self._off
        deg = self._deg
        pool = self._pool
        absorbable = _ABSORBABLE
        stop = set(boundary)
        roots = [r for r in roots if codes[r] in absorbable]
        cone: Set[int] = set(roots)
        touched: List[int] = []
        worklist = list(roots)

        while worklist:
            u = worklist.pop()
            o = off[u]
            for j in range(o, o + deg[u]):
                f = pool[j]
                refs[f] -= 1
                touched.append(f)
                if (
                    refs[f] == 0
                    and f not in stop
                    and f not in cone
                    and codes[f] in absorbable
                ):
                    cone.add(f)
                    worklist.append(f)
        for f in touched:
            refs[f] += 1
        return cone

    def carry_over(
        self,
        new_net: LogicNetwork,
        node_map: Mapping,
        dirty: Set[int],
    ) -> "MffcComputer":
        """A computer for *new_net* that inherits still-valid cones.

        ``node_map`` is the old-id -> new-id event that turned this
        computer's network into *new_net*; ``dirty`` is the set of
        new-net nodes whose transitive-fanin structure or fanout counts
        may differ from their preimage's (compute it with
        :func:`~repro.network.traversal.structural_diff` — it must be
        closed under transitive fanout of every changed node).  Cached
        cones are id-translated and kept only when the translated root
        is clean: a cone depends only on the root's TFI structure and
        the fanout counts of TFI nodes, so clean roots reproduce the
        walk isomorphically.
        """
        out = MffcComputer(new_net)
        get = node_map.get
        carried = out._cone_cache
        for (root, boundary), cone in self._cone_cache.items():
            new_root = get(root)
            if new_root is None or new_root in dirty:
                continue
            new_boundary = []
            ok = True
            for b in boundary:
                nb = get(b)
                if nb is None:
                    ok = False
                    break
                new_boundary.append(nb)
            if not ok:
                continue
            new_cone = set()
            for c in cone:
                nc = get(c)
                if nc is None:
                    ok = False
                    break
                new_cone.add(nc)
            if not ok:
                continue
            new_boundary.sort()
            carried[(new_root, tuple(new_boundary))] = frozenset(new_cone)
        out.carried_entries = len(carried)
        return out


def mffc(net: LogicNetwork, root: int, boundary: Iterable[int] = ()) -> Set[int]:
    """One-shot MFFC (builds a fresh reference count)."""
    return MffcComputer(net).mffc(root, boundary)
