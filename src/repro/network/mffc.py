"""Maximum fanout-free cone (MFFC) computation.

The MFFC of a node *u* is the set of nodes that are used exclusively
(transitively) by *u*: removing *u* makes the whole cone dead.  Its total
cell area is the area recovered when *u* is replaced — the ΔA term of
eq. (2) in the paper.

Implementation: classic reference-counting walk.  Dereference the fanins
of *u*; every fanin whose count drops to zero joins the cone and is
dereferenced recursively; then all counts are restored.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import LogicNetwork


class MffcComputer:
    """Reusable MFFC engine over a frozen network snapshot."""

    def __init__(self, net: LogicNetwork):
        self.net = net
        # a private mutable copy seeded from the kernel's maintained
        # reference counts (no edge rescan); the walk below mutates and
        # restores it
        self.refs = net.compute_fanout_counts()

    def _stoppable(self, node: int) -> bool:
        """Nodes at which the cone always stops (never absorbed)."""
        g = self.net.gates[node]
        return g in (Gate.CONST0, Gate.CONST1, Gate.PI)

    def mffc(self, root: int, boundary: Iterable[int] = ()) -> Set[int]:
        """MFFC of *root*; *boundary* nodes are never absorbed.

        Returns the set of cone nodes (root included).  T1 blocks are
        treated as atomic: taps and cells are never absorbed (they are the
        result of a previous mapping decision).
        """
        return self.mffc_union([root], boundary)

    def mffc_union(
        self, roots: Sequence[int], boundary: Iterable[int] = ()
    ) -> Set[int]:
        """Union MFFC of several roots, counted jointly.

        The nodes of the union become dead when *all* roots are removed,
        which is exactly the situation when a T1 cell replaces a group of
        matched nodes.  Computed by dereferencing all roots together, so
        shared internal nodes are absorbed once (no double counting).
        """
        net = self.net
        refs = self.refs
        stop = set(boundary)
        roots = [
            r
            for r in roots
            if not self._stoppable(r)
            and net.gates[r] is not Gate.T1_CELL
            and not is_t1_tap(net.gates[r])
        ]
        root_set = set(roots)
        cone: Set[int] = set(roots)
        touched: List[int] = []
        worklist = list(roots)

        while worklist:
            u = worklist.pop()
            for f in net.fanins[u]:
                refs[f] -= 1
                touched.append(f)
                if (
                    refs[f] == 0
                    and f not in stop
                    and f not in cone
                    and not self._stoppable(f)
                    and net.gates[f] is not Gate.T1_CELL
                    and not is_t1_tap(net.gates[f])
                ):
                    cone.add(f)
                    worklist.append(f)
        for f in touched:
            refs[f] += 1
        return cone


def mffc(net: LogicNetwork, root: int, boundary: Iterable[int] = ()) -> Set[int]:
    """One-shot MFFC (builds a fresh reference count)."""
    return MffcComputer(net).mffc(root, boundary)
