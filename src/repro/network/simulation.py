"""Bit-parallel simulation of logic networks.

Each node value is a Python integer used as a *W*-bit vector: bit ``j`` is
the node's value under input pattern ``j``.  Python's big integers make
this both simple and fast (a single ``&`` simulates W patterns at once),
and exhaustive simulation of a k-input network is just ``W = 2**k``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import SimulationError
from repro.network.gates import Gate, eval_gate, is_t1_tap
from repro.network.logic_network import LogicNetwork
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable


def simulate(
    net: LogicNetwork,
    pi_values: Sequence[int],
    width: int,
    order: Optional[Sequence[int]] = None,
) -> List[int]:
    """Simulate the whole network.

    Parameters
    ----------
    pi_values:
        One W-bit integer per primary input, in ``net.pis`` order.
    width:
        Number of patterns W (defines the bit mask).

    Returns the list of node values (indexed by node id).
    """
    if len(pi_values) != len(net.pis):
        raise SimulationError(
            f"expected {len(net.pis)} PI vectors, got {len(pi_values)}"
        )
    if width <= 0:
        raise SimulationError("width must be positive")
    mask = (1 << width) - 1
    values: List[int] = [0] * net.num_nodes()
    values[1] = mask
    for pi, v in zip(net.pis, pi_values):
        values[pi] = v & mask
    if order is None:
        # cached per mutation epoch — repeated simulation rounds on the
        # same network (the CEC loop) reuse one traversal
        order = net.topological_order()
    gates = net.gates
    fanins = net.fanins
    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1, Gate.PI):
            continue
        if g is Gate.T1_CELL:
            continue  # multi-output block; taps read its fanins directly
        if is_t1_tap(g):
            cell = fanins[node][0]
            fin_vals = [values[f] for f in fanins[cell]]
        else:
            fin_vals = [values[f] for f in fanins[node]]
        values[node] = eval_gate(g, fin_vals, mask)
    return values


def simulate_pos(
    net: LogicNetwork,
    pi_values: Sequence[int],
    width: int,
) -> List[int]:
    """Like :func:`simulate` but returns only the PO vectors."""
    values = simulate(net, pi_values, width)
    return [values[po] for po in net.pos]


def exhaustive_pi_patterns(num_pis: int) -> List[int]:
    """The canonical exhaustive stimulus: PI i carries its projection table."""
    width = 1 << num_pis
    mask = (1 << width) - 1
    out = []
    for i in range(num_pis):
        block = 1 << i
        pattern = ((1 << block) - 1) << block
        word = 0
        shift = 0
        while shift < width:
            word |= pattern << shift
            shift += 2 * block
        out.append(word & mask)
    return out


def exhaustive_pi_patterns_chunk(
    num_pis: int, chunk_pis: int, chunk_index: int
) -> List[int]:
    """One chunk of the exhaustive stimulus: rows
    ``[chunk_index * 2**chunk_pis, (chunk_index + 1) * 2**chunk_pis)``.

    Splitting the ``2**num_pis`` exhaustive patterns into ``2**chunk_pis``
    -wide chunks bounds the peak big-int width at ``2**chunk_pis`` bits:
    within a chunk, PI ``i < chunk_pis`` carries its ordinary projection
    word and PI ``i >= chunk_pis`` is constant (bit ``i`` of the chunk's
    starting row).  Chunk 0 of a single-chunk split reproduces
    :func:`exhaustive_pi_patterns` exactly.
    """
    if chunk_pis > num_pis:
        chunk_pis = num_pis
    num_chunks = 1 << (num_pis - chunk_pis)
    if not 0 <= chunk_index < num_chunks:
        raise SimulationError(
            f"chunk {chunk_index} out of range for {num_chunks} chunks"
        )
    width = 1 << chunk_pis
    mask = (1 << width) - 1
    start = chunk_index << chunk_pis
    low = exhaustive_pi_patterns(chunk_pis)
    out = list(low)
    for i in range(chunk_pis, num_pis):
        out.append(mask if (start >> i) & 1 else 0)
    return out


def simulate_exhaustive(net: LogicNetwork) -> List[TruthTable]:
    """Truth table of every PO over all PIs (only for small PI counts)."""
    k = len(net.pis)
    if k > 20:
        raise SimulationError(f"{k} inputs is too many for exhaustive simulation")
    pos = simulate_pos(net, exhaustive_pi_patterns(k), 1 << k)
    return [TruthTable(v, k) for v in pos]


def random_patterns(num_pis: int, width: int, seed: int = 0) -> List[int]:
    """Deterministic random W-bit stimulus, one word per PI."""
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(num_pis)]


def simulate_words(
    net: LogicNetwork, words: Iterable[Sequence[int]]
) -> List[List[int]]:
    """Simulate integer input rows (one assignment per row).

    Each row assigns one bit per PI; rows are packed into a single
    bit-parallel run.  Returns, per row, the list of PO bits.
    """
    rows = [tuple(r) for r in words]
    if not rows:
        return []
    npi = len(net.pis)
    for r in rows:
        if len(r) != npi:
            raise SimulationError("row width does not match PI count")
    width = len(rows)
    pi_vecs = [0] * npi
    for j, row in enumerate(rows):
        for i, bit in enumerate(row):
            if bit:
                pi_vecs[i] |= 1 << j
    po_vecs = simulate_pos(net, pi_vecs, width)
    return [
        [(v >> j) & 1 for v in po_vecs]
        for j in range(width)
    ]


def eval_int(
    net: LogicNetwork,
    assignment: Dict[int, int] | Sequence[int],
) -> Dict[int, int]:
    """Single-pattern evaluation; returns {po_node: bit}.

    ``assignment`` is either a dict {pi_node: bit} or a sequence aligned
    with ``net.pis``.
    """
    if isinstance(assignment, dict):
        row = [assignment[pi] for pi in net.pis]
    else:
        row = list(assignment)
    bits = simulate_words(net, [row])[0]
    return {po: bits[i] for i, po in enumerate(net.pos)}


def node_function_on_leaves(
    net: LogicNetwork,
    root: int,
    leaves: Sequence[int],
    values_cache: Optional[Dict[int, int]] = None,
) -> TruthTable:
    """Truth table of *root* as a function of the given *leaves*.

    Simulates the cone between the leaves and the root; the cone must not
    reach a source node (PI/const) that is not listed as a leaf — constants
    are fine and keep their value.
    """
    k = len(leaves)
    width = 1 << k
    mask = (1 << width) - 1
    values: Dict[int, int] = {} if values_cache is None else values_cache
    patterns = exhaustive_pi_patterns(k)
    for i, leaf in enumerate(leaves):
        values[leaf] = patterns[i]
    values[0] = 0
    values[1] = mask

    gates = net.gates
    fanins = net.fanins

    def value_of(u: int) -> int:
        if u in values:
            return values[u]
        g = gates[u]
        if g is Gate.PI:
            raise SimulationError(
                f"cone of node {root} escapes leaves {tuple(leaves)} at PI {u}"
            )
        if is_t1_tap(g):
            cell = fanins[u][0]
            fins = fanins[cell]
        else:
            fins = fanins[u]
        # iterative DFS to avoid recursion limits on deep cones
        stack = [(u, g, fins, 0)]
        while stack:
            node, gate, nf, idx = stack[-1]
            advanced = False
            for j in range(idx, len(nf)):
                f = nf[j]
                if f not in values:
                    fg = gates[f]
                    if fg is Gate.PI:
                        raise SimulationError(
                            f"cone of node {root} escapes leaves at PI {f}"
                        )
                    if is_t1_tap(fg):
                        stack[-1] = (node, gate, nf, j)
                        stack.append((f, fg, fanins[fanins[f][0]], 0))
                    else:
                        stack[-1] = (node, gate, nf, j)
                        stack.append((f, fg, fanins[f], 0))
                    advanced = True
                    break
            if advanced:
                continue
            values[node] = eval_gate(gate, [values[f] for f in nf], mask)
            stack.pop()
        return values[u]

    return TruthTable(value_of(root) & mask, k)
