"""Bit-parallel simulation of logic networks.

Each node value is a Python integer used as a *W*-bit vector: bit ``j`` is
the node's value under input pattern ``j``.  Python's big integers make
this both simple and fast (a single ``&`` simulates W patterns at once),
and exhaustive simulation of a k-input network is just ``W = 2**k``.

Two evaluation engines share one contract (bit-identical results):

* :func:`simulate_nodewise` — the per-node reference loop: one
  :func:`~repro.network.gates.eval_gate` dispatch per node in
  topological order.
* :func:`simulate` (default path) — the **gate-grouped kernel**: nodes
  are bucketed by (topological level, gate kind) into a schedule of
  flat ``array('q')`` lanes, and each bucket runs one tight zip loop of
  a single Boolean operation over the big-int value list.  Within a
  level every node depends only on strictly lower levels (T1 taps read
  their *cell's* fanins, which sit below the cell's level), so buckets
  at the same level are order-independent.  The schedule is cached on
  the network per mutation epoch, so the multi-round CEC and signature
  engines pay the grouping once and then run dispatch-free rounds.

When numpy is available (:func:`repro.util.have_numpy`) and the word
width fits 64 bits, :func:`simulate` can additionally run the grouped
schedule as vectorised uint64 gather/scatter buckets
(``engine="numpy"`` — an explicit opt-in; ``"auto"`` resolves to the
python kernel, which measures faster at every practical width).
Within a bucket every target is at the bucket's level and every source
strictly below it, so the gather-then-scatter is safe; values are
exact uint64 words and convert back to Python ints, keeping the lane
bit-identical to the pure-python engines (``REPRO_NO_NUMPY`` forces
the fallback).
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.network.gates import (
    CODE_BY_GATE,
    GATES_BY_CODE,
    Gate,
    eval_gate,
    is_t1_tap,
)
from repro.network.logic_network import LogicNetwork, flat_arrays
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable
from repro.util import numpy_or_none

# -- gate-grouped schedule ---------------------------------------------------
#
# Every single-output node kind reduces to a (family, inverted) pair over
# its evaluation fanins; T1 taps evaluate their family over the *cell's*
# three fanins.  CONST*/PI/T1_CELL produce no lane (sources are seeded,
# the cell is a multi-output block whose taps carry the values).

_FAMILY_BY_GATE: Dict[Gate, Tuple[str, bool]] = {
    Gate.BUF: ("copy", False),
    Gate.NOT: ("copy", True),
    Gate.AND: ("and", False),
    Gate.NAND: ("and", True),
    Gate.OR: ("or", False),
    Gate.NOR: ("or", True),
    Gate.XOR: ("xor", False),
    Gate.XNOR: ("xor", True),
    Gate.MAJ3: ("maj", False),
    Gate.T1_S: ("xor", False),
    Gate.T1_C: ("maj", False),
    Gate.T1_Q: ("or", False),
    Gate.T1_CN: ("maj", True),
    Gate.T1_QN: ("or", True),
}
_FAMILY_BY_CODE = tuple(_FAMILY_BY_GATE.get(g) for g in GATES_BY_CODE)
_TAP_CODES = frozenset(CODE_BY_GATE[g] for g in _FAMILY_BY_GATE if is_t1_tap(g))


def _r_copy(values, mask, tg, a):
    for t, x in zip(tg, a):
        values[t] = values[x]


def _r_not(values, mask, tg, a):
    for t, x in zip(tg, a):
        values[t] = values[x] ^ mask


def _r_and2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = values[x] & values[y]


def _r_nand2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = (values[x] & values[y]) ^ mask


def _r_or2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = values[x] | values[y]


def _r_nor2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = (values[x] | values[y]) ^ mask


def _r_xor2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = values[x] ^ values[y]


def _r_xnor2(values, mask, tg, a, b):
    for t, x, y in zip(tg, a, b):
        values[t] = values[x] ^ values[y] ^ mask


def _r_and3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = values[x] & values[y] & values[z]


def _r_nand3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = (values[x] & values[y] & values[z]) ^ mask


def _r_or3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = values[x] | values[y] | values[z]


def _r_nor3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = (values[x] | values[y] | values[z]) ^ mask


def _r_xor3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = values[x] ^ values[y] ^ values[z]


def _r_xnor3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        values[t] = values[x] ^ values[y] ^ values[z] ^ mask


def _r_maj3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        va = values[x]
        vb = values[y]
        vc = values[z]
        values[t] = (va & vb) | (va & vc) | (vb & vc)


def _r_nmaj3(values, mask, tg, a, b, c):
    for t, x, y, z in zip(tg, a, b, c):
        va = values[x]
        vb = values[y]
        vc = values[z]
        values[t] = ((va & vb) | (va & vc) | (vb & vc)) ^ mask


def _r_andv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc &= values[f]
        values[t] = acc


def _r_nandv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc &= values[f]
        values[t] = acc ^ mask


def _r_orv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc |= values[f]
        values[t] = acc


def _r_norv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc |= values[f]
        values[t] = acc ^ mask


def _r_xorv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc ^= values[f]
        values[t] = acc


def _r_xnorv(values, mask, tg, fins):
    for t, nf in zip(tg, fins):
        acc = values[nf[0]]
        for f in nf[1:]:
            acc ^= values[f]
        values[t] = acc ^ mask


#: (family, inverted, arity class) -> lane runner; arity class 0 = variadic
_RUNNERS = {
    ("copy", False, 1): _r_copy,
    ("copy", True, 1): _r_not,
    ("and", False, 2): _r_and2,
    ("and", True, 2): _r_nand2,
    ("or", False, 2): _r_or2,
    ("or", True, 2): _r_nor2,
    ("xor", False, 2): _r_xor2,
    ("xor", True, 2): _r_xnor2,
    ("and", False, 3): _r_and3,
    ("and", True, 3): _r_nand3,
    ("or", False, 3): _r_or3,
    ("or", True, 3): _r_nor3,
    ("xor", False, 3): _r_xor3,
    ("xor", True, 3): _r_xnor3,
    ("maj", False, 3): _r_maj3,
    ("maj", True, 3): _r_nmaj3,
    ("and", False, 0): _r_andv,
    ("and", True, 0): _r_nandv,
    ("or", False, 0): _r_orv,
    ("or", True, 0): _r_norv,
    ("xor", False, 0): _r_xorv,
    ("xor", True, 0): _r_xnorv,
}


def _build_schedule(net: LogicNetwork) -> List[tuple]:
    """Bucket all evaluable nodes into (level, gate-kind) lanes.

    Returns a list of ``(runner, columns)`` pairs in ascending level
    order; each runner performs one Boolean operation over flat
    ``array('q')`` target/fanin columns.  Works on any network exposing
    the ``gates``/``fanins`` sequence protocol; uses the flat-core raw
    arrays when available.
    """
    order = net.topological_order()
    lvl = net.levels()
    codes, off, deg, pool = flat_arrays(net)
    family_by_code = _FAMILY_BY_CODE
    tap_codes = _TAP_CODES
    groups: Dict[tuple, tuple] = {}
    for node in order:
        c = codes[node]
        fam = family_by_code[c]
        if fam is None:
            continue  # const/PI (seeded) or T1_CELL (taps carry values)
        family, inverted = fam
        o = off[node]
        d = deg[node]
        if c in tap_codes:  # taps evaluate over the cell's fanins
            o = off[pool[o]]
            d = 3
        aclass = d if d <= 3 else 0
        key = (lvl[node], family, inverted, aclass)
        entry = groups.get(key)
        if entry is None:
            entry = groups[key] = tuple([] for _ in range((aclass or 1) + 1))
        entry[0].append(node)
        if aclass:
            for i in range(d):
                entry[i + 1].append(pool[o + i])
        else:
            entry[1].append(tuple(pool[o : o + d]))
    schedule: List[tuple] = []
    for key in sorted(groups):
        _level, family, inverted, aclass = key
        entry = groups[key]
        if aclass:
            cols = tuple(array("q", col) for col in entry)
        else:
            cols = (array("q", entry[0]), entry[1])
        schedule.append((_RUNNERS[(family, inverted, aclass)], cols))
    return schedule


def _sim_schedule(net: LogicNetwork) -> List[tuple]:
    """The network's grouped schedule, cached per mutation epoch."""
    if (
        getattr(net, "_sim_schedule", None) is not None
        and getattr(net, "_sim_schedule_epoch", -1) == net.epoch
    ):
        return net._sim_schedule
    schedule = _build_schedule(net)
    net._sim_schedule = schedule
    net._sim_schedule_epoch = net.epoch
    return schedule


#: inverse of _RUNNERS — recover (family, inverted, aclass) per lane when
#: deriving the numpy schedule from the cached python one
_KEY_BY_RUNNER = {fn: key for key, fn in _RUNNERS.items()}


def _np_schedule(net: LogicNetwork) -> List[tuple]:
    """uint64 gather/scatter buckets, derived from the grouped schedule.

    Fixed-arity lanes view the cached ``array('q')`` columns zero-copy
    (``np.frombuffer``); variadic lanes are regrouped by exact arity so
    every bucket is ``(family, inverted, targets, fanin columns)`` with
    rectangular columns.  Cached per mutation epoch alongside the python
    schedule.
    """
    if (
        getattr(net, "_np_sim_schedule", None) is not None
        and getattr(net, "_np_sim_schedule_epoch", -1) == net.epoch
    ):
        return net._np_sim_schedule
    np = numpy_or_none()
    out: List[tuple] = []
    for runner, cols in _sim_schedule(net):
        family, inverted, aclass = _KEY_BY_RUNNER[runner]
        if aclass:
            tg = np.frombuffer(cols[0], dtype=np.int64)
            fincols = tuple(np.frombuffer(c, dtype=np.int64) for c in cols[1:])
            out.append((family, inverted, tg, fincols))
        else:
            by_arity: Dict[int, List[tuple]] = {}
            for t, nf in zip(cols[0], cols[1]):
                by_arity.setdefault(len(nf), []).append((t, nf))
            for d in sorted(by_arity):
                rows = by_arity[d]
                tg = np.array([t for t, _nf in rows], dtype=np.int64)
                fincols = tuple(
                    np.array([nf[i] for _t, nf in rows], dtype=np.int64)
                    for i in range(d)
                )
                out.append((family, inverted, tg, fincols))
    net._np_sim_schedule = out
    net._np_sim_schedule_epoch = net.epoch
    return out


def _simulate_numpy(
    net: LogicNetwork, pi_values: Sequence[int], width: int
) -> List[int]:
    """Vectorised engine: run the grouped schedule over a uint64 array.

    Within a bucket all targets sit at the bucket's level and all
    sources strictly below it, so gathering every source before
    scattering the results is exact.  Words are at most 64 bits wide, so
    uint64 holds them losslessly; ``tolist()`` hands back plain Python
    ints — bit-identical to :func:`simulate_nodewise`.
    """
    np = numpy_or_none()
    if np is None:
        raise SimulationError("numpy engine requested but numpy is unavailable")
    if width > 64:
        raise SimulationError(
            f"numpy engine supports width <= 64, got {width}"
        )
    seeded, mask = _seed_values(net, pi_values, width)
    values = np.array(seeded, dtype=np.uint64)
    m = np.uint64(mask)
    for family, inverted, tg, fincols in _np_schedule(net):
        if family == "copy":
            res = values[fincols[0]]
        elif family == "maj":
            a = values[fincols[0]]
            b = values[fincols[1]]
            c = values[fincols[2]]
            res = (a & b) | (a & c) | (b & c)
        else:
            res = values[fincols[0]]
            if family == "and":
                for fc in fincols[1:]:
                    res = res & values[fc]
            elif family == "or":
                for fc in fincols[1:]:
                    res = res | values[fc]
            else:  # xor
                for fc in fincols[1:]:
                    res = res ^ values[fc]
        if inverted:
            res = res ^ m
        values[tg] = res
    return values.tolist()


def _seed_values(
    net: LogicNetwork, pi_values: Sequence[int], width: int
) -> Tuple[List[int], int]:
    if len(pi_values) != len(net.pis):
        raise SimulationError(
            f"expected {len(net.pis)} PI vectors, got {len(pi_values)}"
        )
    if width <= 0:
        raise SimulationError("width must be positive")
    mask = (1 << width) - 1
    values: List[int] = [0] * net.num_nodes()
    values[1] = mask
    for pi, v in zip(net.pis, pi_values):
        values[pi] = v & mask
    return values, mask


def simulate(
    net: LogicNetwork,
    pi_values: Sequence[int],
    width: int,
    order: Optional[Sequence[int]] = None,
    engine: str = "auto",
) -> List[int]:
    """Simulate the whole network.

    Parameters
    ----------
    pi_values:
        One W-bit integer per primary input, in ``net.pis`` order.
    width:
        Number of patterns W (defines the bit mask).
    order:
        Optional explicit topological order.  When given, evaluation
        falls back to the per-node loop over exactly those nodes; the
        default runs the gate-grouped kernel over the whole network.
    engine:
        ``"python"`` runs the big-int gate-grouped kernel and
        ``"numpy"`` forces the vectorised uint64 lane (raises when
        numpy is unavailable or ``width > 64``); both are
        bit-identical.  ``"auto"`` (default) resolves to the python
        kernel: measured on the 100k--1M-node synthetics, the big-int
        zip loops beat the numpy gather/scatter at every practical
        width (the level-partitioned buckets are too fine-grained for
        numpy's per-call overhead), so the numpy lane is an explicit
        opt-in — bench_scale reports the live ratio.

    Returns the list of node values (indexed by node id).
    """
    if engine not in ("auto", "python", "numpy"):
        raise SimulationError(f"unknown simulation engine: {engine!r}")
    if order is not None:
        return simulate_nodewise(net, pi_values, width, order)
    if engine == "numpy":
        return _simulate_numpy(net, pi_values, width)
    values, mask = _seed_values(net, pi_values, width)
    for runner, cols in _sim_schedule(net):
        runner(values, mask, *cols)
    return values


def simulate_nodewise(
    net: LogicNetwork,
    pi_values: Sequence[int],
    width: int,
    order: Optional[Sequence[int]] = None,
) -> List[int]:
    """Per-node reference engine: one ``eval_gate`` dispatch per node.

    Bit-identical to :func:`simulate`; retained as the oracle the
    grouped kernel is fuzzed against and as the path for evaluating an
    explicit partial ``order``.
    """
    values, mask = _seed_values(net, pi_values, width)
    if order is None:
        # cached per mutation epoch — repeated simulation rounds on the
        # same network (the CEC loop) reuse one traversal
        order = net.topological_order()
    gates = net.gates
    fanins = net.fanins
    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1, Gate.PI):
            continue
        if g is Gate.T1_CELL:
            continue  # multi-output block; taps read its fanins directly
        if is_t1_tap(g):
            cell = fanins[node][0]
            fin_vals = [values[f] for f in fanins[cell]]
        else:
            fin_vals = [values[f] for f in fanins[node]]
        values[node] = eval_gate(g, fin_vals, mask)
    return values


def simulate_pos(
    net: LogicNetwork,
    pi_values: Sequence[int],
    width: int,
) -> List[int]:
    """Like :func:`simulate` but returns only the PO vectors."""
    values = simulate(net, pi_values, width)
    return [values[po] for po in net.pos]


def exhaustive_pi_patterns(num_pis: int) -> List[int]:
    """The canonical exhaustive stimulus: PI i carries its projection table."""
    width = 1 << num_pis
    mask = (1 << width) - 1
    out = []
    for i in range(num_pis):
        block = 1 << i
        pattern = ((1 << block) - 1) << block
        word = 0
        shift = 0
        while shift < width:
            word |= pattern << shift
            shift += 2 * block
        out.append(word & mask)
    return out


def exhaustive_pi_patterns_chunk(
    num_pis: int, chunk_pis: int, chunk_index: int
) -> List[int]:
    """One chunk of the exhaustive stimulus: rows
    ``[chunk_index * 2**chunk_pis, (chunk_index + 1) * 2**chunk_pis)``.

    Splitting the ``2**num_pis`` exhaustive patterns into ``2**chunk_pis``
    -wide chunks bounds the peak big-int width at ``2**chunk_pis`` bits:
    within a chunk, PI ``i < chunk_pis`` carries its ordinary projection
    word and PI ``i >= chunk_pis`` is constant (bit ``i`` of the chunk's
    starting row).  Chunk 0 of a single-chunk split reproduces
    :func:`exhaustive_pi_patterns` exactly.
    """
    if chunk_pis > num_pis:
        chunk_pis = num_pis
    num_chunks = 1 << (num_pis - chunk_pis)
    if not 0 <= chunk_index < num_chunks:
        raise SimulationError(
            f"chunk {chunk_index} out of range for {num_chunks} chunks"
        )
    width = 1 << chunk_pis
    mask = (1 << width) - 1
    start = chunk_index << chunk_pis
    low = exhaustive_pi_patterns(chunk_pis)
    out = list(low)
    for i in range(chunk_pis, num_pis):
        out.append(mask if (start >> i) & 1 else 0)
    return out


def simulate_exhaustive(net: LogicNetwork) -> List[TruthTable]:
    """Truth table of every PO over all PIs (only for small PI counts)."""
    k = len(net.pis)
    if k > 20:
        raise SimulationError(f"{k} inputs is too many for exhaustive simulation")
    pos = simulate_pos(net, exhaustive_pi_patterns(k), 1 << k)
    return [TruthTable(v, k) for v in pos]


def random_patterns(num_pis: int, width: int, seed: int = 0) -> List[int]:
    """Deterministic random W-bit stimulus, one word per PI."""
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(num_pis)]


def simulate_words(
    net: LogicNetwork, words: Iterable[Sequence[int]]
) -> List[List[int]]:
    """Simulate integer input rows (one assignment per row).

    Each row assigns one bit per PI; rows are packed into a single
    bit-parallel run.  Returns, per row, the list of PO bits.
    """
    rows = [tuple(r) for r in words]
    if not rows:
        return []
    npi = len(net.pis)
    for r in rows:
        if len(r) != npi:
            raise SimulationError("row width does not match PI count")
    width = len(rows)
    pi_vecs = [0] * npi
    for j, row in enumerate(rows):
        for i, bit in enumerate(row):
            if bit:
                pi_vecs[i] |= 1 << j
    po_vecs = simulate_pos(net, pi_vecs, width)
    return [
        [(v >> j) & 1 for v in po_vecs]
        for j in range(width)
    ]


def eval_int(
    net: LogicNetwork,
    assignment: Dict[int, int] | Sequence[int],
) -> Dict[int, int]:
    """Single-pattern evaluation; returns {po_node: bit}.

    ``assignment`` is either a dict {pi_node: bit} or a sequence aligned
    with ``net.pis``.
    """
    if isinstance(assignment, dict):
        row = [assignment[pi] for pi in net.pis]
    else:
        row = list(assignment)
    bits = simulate_words(net, [row])[0]
    return {po: bits[i] for i, po in enumerate(net.pos)}


def node_function_on_leaves(
    net: LogicNetwork,
    root: int,
    leaves: Sequence[int],
    values_cache: Optional[Dict[int, int]] = None,
) -> TruthTable:
    """Truth table of *root* as a function of the given *leaves*.

    Simulates the cone between the leaves and the root; the cone must not
    reach a source node (PI/const) that is not listed as a leaf — constants
    are fine and keep their value.
    """
    k = len(leaves)
    width = 1 << k
    mask = (1 << width) - 1
    values: Dict[int, int] = {} if values_cache is None else values_cache
    patterns = exhaustive_pi_patterns(k)
    for i, leaf in enumerate(leaves):
        values[leaf] = patterns[i]
    values[0] = 0
    values[1] = mask

    gates = net.gates
    fanins = net.fanins

    def value_of(u: int) -> int:
        if u in values:
            return values[u]
        g = gates[u]
        if g is Gate.PI:
            raise SimulationError(
                f"cone of node {root} escapes leaves {tuple(leaves)} at PI {u}"
            )
        if is_t1_tap(g):
            cell = fanins[u][0]
            fins = fanins[cell]
        else:
            fins = fanins[u]
        # iterative DFS to avoid recursion limits on deep cones
        stack = [(u, g, fins, 0)]
        while stack:
            node, gate, nf, idx = stack[-1]
            advanced = False
            for j in range(idx, len(nf)):
                f = nf[j]
                if f not in values:
                    fg = gates[f]
                    if fg is Gate.PI:
                        raise SimulationError(
                            f"cone of node {root} escapes leaves at PI {f}"
                        )
                    if is_t1_tap(fg):
                        stack[-1] = (node, gate, nf, j)
                        stack.append((f, fg, fanins[fanins[f][0]], 0))
                    else:
                        stack[-1] = (node, gate, nf, j)
                        stack.append((f, fg, fanins[f], 0))
                    advanced = True
                    break
            if advanced:
                continue
            values[node] = eval_gate(gate, [values[f] for f in nf], mask)
            stack.pop()
        return values[u]

    return TruthTable(value_of(root) & mask, k)
