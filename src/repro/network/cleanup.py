"""Network cleanup: dead-node sweeping, structural hashing, simplification.

``sweep`` compacts a network after substitutions (e.g. T1 replacement)
into a fresh network containing only live nodes; ``strash`` additionally
merges structurally identical nodes and folds trivial gates (constant
fanins, single-fanin AND/OR/XOR, double negation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.traversal import live_nodes, topological_order


def sweep(net: LogicNetwork) -> Tuple[LogicNetwork, Dict[int, int]]:
    """Copy only live nodes into a fresh network.

    Returns ``(new_net, old_to_new)``.  PIs are preserved in order even if
    unused; POs keep their order and names.
    """
    live = live_nodes(net)
    order = topological_order(net)
    out = LogicNetwork(net.name)
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))
    for node in order:
        if node in mapping or node not in live:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue  # already added
        fins = tuple(mapping[f] for f in net.fanins[node])
        if g is Gate.T1_CELL:
            mapping[node] = out.add_t1_cell(*fins)
        elif is_t1_tap(g):
            mapping[node] = out.add_t1_tap(fins[0], g)
        else:
            mapping[node] = out.add_gate(g, fins)
        name = net.get_name(node)
        if name is not None:
            out.set_name(mapping[node], name)
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    return out, mapping


def _fold_constants(
    gate: Gate, fins: Tuple[int, ...]
) -> Optional[Tuple[str, object]]:
    """Constant folding / algebraic simplification of one node.

    Returns one of
      ("const", 0/1)   -- node is a constant
      ("alias", node)  -- node equals an existing node
      ("gate", (gate, fins)) -- simplified gate
      None             -- keep unchanged
    """
    if gate in (Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR, Gate.XNOR):
        base = {
            Gate.AND: Gate.AND,
            Gate.NAND: Gate.AND,
            Gate.OR: Gate.OR,
            Gate.NOR: Gate.OR,
            Gate.XOR: Gate.XOR,
            Gate.XNOR: Gate.XOR,
        }[gate]
        inverted = gate in (Gate.NAND, Gate.NOR, Gate.XNOR)
        vals = list(fins)
        if base is Gate.AND:
            if CONST0 in vals:
                return ("const", 1 if inverted else 0)
            vals = [v for v in vals if v != CONST1]
            vals = list(dict.fromkeys(vals))  # idempotence
        elif base is Gate.OR:
            if CONST1 in vals:
                return ("const", 0 if inverted else 1)
            vals = [v for v in vals if v != CONST0]
            vals = list(dict.fromkeys(vals))  # idempotence
        else:  # XOR: drop const0, toggle on const1, cancel duplicate pairs
            flips = vals.count(CONST1)
            vals = [v for v in vals if v not in (CONST0, CONST1)]
            if flips % 2:
                inverted = not inverted
            counts: Dict[int, int] = {}
            for v in vals:
                counts[v] = counts.get(v, 0) + 1
            vals = [v for v, c in counts.items() if c % 2]
        if not vals:
            identity = 0 if base in (Gate.OR, Gate.XOR) else 1
            return ("const", identity ^ (1 if inverted else 0))
        if len(vals) == 1:
            if inverted:
                return ("gate", (Gate.NOT, (vals[0],)))
            return ("alias", vals[0])
        if base is Gate.AND and len(set(vals)) == 1:
            v = vals[0]
            return ("gate", (Gate.NOT, (v,))) if inverted else ("alias", v)
        if base is Gate.OR and len(set(vals)) == 1:
            v = vals[0]
            return ("gate", (Gate.NOT, (v,))) if inverted else ("alias", v)
        out_gate = {
            (Gate.AND, False): Gate.AND,
            (Gate.AND, True): Gate.NAND,
            (Gate.OR, False): Gate.OR,
            (Gate.OR, True): Gate.NOR,
            (Gate.XOR, False): Gate.XOR,
            (Gate.XOR, True): Gate.XNOR,
        }[(base, inverted)]
        new_fins = tuple(vals)
        if out_gate == gate and new_fins == fins:
            return None
        return ("gate", (out_gate, new_fins))
    if gate is Gate.NOT:
        if fins[0] == CONST0:
            return ("const", 1)
        if fins[0] == CONST1:
            return ("const", 0)
    if gate is Gate.BUF:
        return ("alias", fins[0])
    if gate is Gate.MAJ3:
        a, b, c = fins
        if a == b:
            return ("alias", a)
        if a == c:
            return ("alias", a)
        if b == c:
            return ("alias", b)
        consts = {CONST0, CONST1}
        if CONST0 in fins:
            rest = tuple(f for f in fins if f != CONST0)
            if len(rest) == 2:
                return ("gate", (Gate.AND, rest))
        if CONST1 in fins:
            rest = tuple(f for f in fins if f != CONST1)
            if len(rest) == 2:
                return ("gate", (Gate.OR, rest))
    return None


def strash(net: LogicNetwork) -> Tuple[LogicNetwork, Dict[int, int]]:
    """Structural hashing + local simplification + dead-node removal.

    Commutative gates sort their fanins so permuted duplicates merge.
    NOT(NOT(x)) collapses.  Runs a :func:`sweep` pass implicitly (the
    output contains only nodes reachable from POs).
    """
    order = topological_order(net)
    out = LogicNetwork(net.name)
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    hash_table: Dict[Tuple, int] = {}
    not_of: Dict[int, int] = {}
    live = live_nodes(net)

    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))

    def emit(gate: Gate, fins: Tuple[int, ...]) -> int:
        # simplify repeatedly until fixpoint
        while True:
            res = _fold_constants(gate, fins)
            if res is None:
                break
            kind, payload = res
            if kind == "const":
                return CONST1 if payload else CONST0
            if kind == "alias":
                return payload  # already a new-net id
            gate, fins = payload  # type: ignore[assignment]
        if gate is Gate.NOT and fins[0] in not_of:
            return not_of[fins[0]]
        if gate in (Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR, Gate.XNOR):
            fins = tuple(sorted(fins))
        elif gate is Gate.MAJ3:
            fins = tuple(sorted(fins))
        key = (gate, fins)
        if key in hash_table:
            return hash_table[key]
        node = out.add_gate(gate, fins)
        hash_table[key] = node
        if gate is Gate.NOT:
            not_of[node] = fins[0]
            # also remember inverse direction for double-negation collapse
            not_of.setdefault(fins[0], node)
        return node

    for node in order:
        if node in mapping or node not in live:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue
        fins = tuple(mapping[f] for f in net.fanins[node])
        if g is Gate.T1_CELL:
            key = (Gate.T1_CELL, fins)
            if key in hash_table:
                mapping[node] = hash_table[key]
            else:
                cell = out.add_t1_cell(*fins)
                hash_table[key] = cell
                mapping[node] = cell
        elif is_t1_tap(g):
            key = (g, fins)
            if key in hash_table:
                mapping[node] = hash_table[key]
            else:
                tap = out.add_t1_tap(fins[0], g)
                hash_table[key] = tap
                mapping[node] = tap
        else:
            mapping[node] = emit(g, fins)
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    final, final_map = sweep(out)
    return final, {k: final_map[v] for k, v in mapping.items() if v in final_map}
