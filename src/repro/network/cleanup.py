"""Network cleanup: dead-node sweeping, structural hashing, simplification.

``sweep`` compacts a network after substitutions (e.g. T1 replacement);
``strash`` additionally merges structurally identical nodes and folds
trivial gates (constant fanins, single-fanin AND/OR/XOR, double
negation).

Both are thin layers over the kernel since the incremental-network
refactor: ``sweep`` clones and calls
:meth:`~repro.network.logic_network.LogicNetwork.compact` (use
``compact`` directly for true in-place cleanup of a working copy), and
``strash`` replays the live nodes into a network constructed with
``hash_cons=True`` — the kernel's hash-consed ``add_gate`` performs the
folding and node merging that used to live here.  Id remaps are reported
as :class:`~repro.network.nodemap.NodeMap` events.
"""

from __future__ import annotations

from typing import Tuple

from repro.network.gates import (
    CODE_BY_GATE,
    GATES_BY_CODE,
    Gate,
    T1_TAP_CODES,
)
from repro.network.logic_network import (
    CONST0,
    CONST1,
    LogicNetwork,
    flat_arrays,
    fold_gate,
)
from repro.network.nodemap import NodeMap
from repro.network.traversal import live_nodes

_C_PI = CODE_BY_GATE[Gate.PI]
_C_T1_CELL = CODE_BY_GATE[Gate.T1_CELL]

#: backwards-compatible alias — the folding rules now live on the kernel
_fold_constants = fold_gate


def sweep(net: LogicNetwork) -> Tuple[LogicNetwork, NodeMap]:
    """Copy only live nodes into a fresh network.

    Returns ``(new_net, old_to_new)``.  PIs are preserved in order even if
    unused; POs keep their order and names.  The input is left untouched;
    to clean a working copy without the clone, call ``net.compact()``.
    """
    out = net.clone()
    remap = out.compact()
    return out, remap


def strash(net: LogicNetwork) -> Tuple[LogicNetwork, NodeMap]:
    """Structural hashing + local simplification + dead-node removal.

    Commutative gates sort their fanins so permuted duplicates merge.
    NOT(NOT(x)) collapses.  Runs a :func:`sweep` pass implicitly (the
    output contains only nodes reachable from POs).
    """
    order = net.topological_order()
    live = live_nodes(net)
    codes, off, deg, pool = flat_arrays(net)
    out = LogicNetwork(net.name, hash_cons=True)
    mapping = {CONST0: CONST0, CONST1: CONST1}

    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))

    # the replay loop reads gate codes and the CSR fanin pool directly —
    # no per-node tuple views on what is the inner loop of every
    # rewrite pass
    for node in order:
        if node in mapping or node not in live:
            continue
        c = codes[node]
        if c == _C_PI:
            continue
        o = off[node]
        fins = tuple(mapping[pool[j]] for j in range(o, o + deg[node]))
        if c == _C_T1_CELL:
            mapping[node] = out.add_t1_cell(*fins)
        elif c in T1_TAP_CODES:
            mapping[node] = out.add_t1_tap(fins[0], GATES_BY_CODE[c])
        else:
            mapping[node] = out.add_gate(GATES_BY_CODE[c], fins)
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    final_map = out.compact()
    # downstream passes mutate the result in place (T1 substitution,
    # balancing); they expect plain append semantics, so consing stays a
    # construction-time tool
    out.set_hash_cons(False)
    return out, NodeMap(
        {k: final_map[v] for k, v in mapping.items() if v in final_map}
    )
