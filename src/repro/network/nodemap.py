"""Id-remap events emitted by compacting/rebuilding passes.

Every pass that re-assigns node ids (``compact``/``sweep``/``strash``/
``balance``/T1 substitution) reports *how* ids moved through a single
:class:`NodeMap` instead of an ad-hoc ``Dict[int, int]``.  A ``NodeMap``
is an immutable mapping from old node ids to new ones; ids that did not
survive the pass (dead nodes) are simply absent.

``NodeMap`` implements the read-only :class:`collections.abc.Mapping`
protocol, so existing code that indexed the old dicts keeps working, and
adds the two operations passes actually chain:

* :meth:`compose` — follow two remap events (``old -> mid -> new``);
* :meth:`apply` / :meth:`apply_all` — translate ids, keeping survivors.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, Iterable, Iterator, List, Optional


class NodeMap(Mapping):
    """An old-id -> new-id remap emitted by one network-restructuring pass."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Dict[int, int]] = None):
        self._map: Dict[int, int] = dict(mapping) if mapping else {}

    # -- Mapping protocol ----------------------------------------------------

    def __getitem__(self, old: int) -> int:
        return self._map[old]

    def __iter__(self) -> Iterator[int]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeMap({len(self._map)} ids)"

    # -- construction helpers ------------------------------------------------

    @classmethod
    def identity(cls, ids: Iterable[int]) -> "NodeMap":
        """The no-op remap over *ids* (useful for passes that change nothing)."""
        return cls({i: i for i in ids})

    # -- event algebra -------------------------------------------------------

    def compose(self, later: Mapping) -> "NodeMap":
        """The remap equivalent to this event followed by *later*.

        Ids dropped by either event are absent from the result.
        """
        return NodeMap(
            {
                old: later[mid]
                for old, mid in self._map.items()
                if mid in later
            }
        )

    def apply(self, old: int, default: Optional[int] = None) -> Optional[int]:
        """New id of *old*, or *default* when it did not survive."""
        return self._map.get(old, default)

    def apply_all(self, olds: Iterable[int]) -> List[int]:
        """Translate every surviving id of *olds* (dead ids are dropped)."""
        return [self._map[o] for o in olds if o in self._map]

    def to_dict(self) -> Dict[int, int]:
        """A mutable copy of the underlying mapping."""
        return dict(self._map)
