"""Logic-network kernel: the mockturtle replacement.

Public surface:

* :class:`~repro.network.logic_network.LogicNetwork` — mutable DAG.
* :class:`~repro.network.gates.Gate` — gate alphabet (incl. T1 blocks).
* :class:`~repro.network.truth_table.TruthTable` — small function tables.
* cut enumeration, MFFC, NPN canonisation, simulation, CEC, cleanup.
"""

from repro.network.gates import CLOCKED_GATES, Gate, T1_TAPS, eval_gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork, fold_gate
from repro.network.nodemap import NodeMap
from repro.network.truth_table import (
    TruthTable,
    and3_tt,
    maj3_tt,
    or3_tt,
    xor3_tt,
)
from repro.network.traversal import (
    depth,
    levels,
    live_nodes,
    structural_diff,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)
from repro.network.simulation import (
    eval_int,
    exhaustive_pi_patterns,
    exhaustive_pi_patterns_chunk,
    node_function_on_leaves,
    random_patterns,
    simulate,
    simulate_exhaustive,
    simulate_nodewise,
    simulate_pos,
    simulate_words,
)
from repro.network.cuts import (
    Cut,
    CutDatabase,
    cached_cut_database,
    enumerate_cuts,
    enumerate_cuts_reference,
    install_cut_database,
)
from repro.network.mffc import MffcComputer, mffc
from repro.network.npn import (
    NpnTransform,
    match_against,
    match_against_enum,
    npn_canon,
    npn_canon_enum,
    npn_class_members,
    npn_equivalent,
    warm_tables,
)
from repro.network.balance import balance
from repro.network.cleanup import strash, sweep
from repro.network.isop import (
    Cube,
    cached_sop,
    clear_sop_cache,
    cover_table,
    isop,
    isop_interval,
    sop_cache_info,
    sop_gate_count,
    synthesize_sop,
)
from repro.network.transforms import refactor, refactor_reference, to_aig_form
from repro.network.equivalence import (
    CecResult,
    assert_equivalent,
    check_equivalence,
    exhaustive_equivalence,
    sat_equivalence,
    signature_equivalence,
    simulate_equivalence,
)

__all__ = [
    "CLOCKED_GATES",
    "CONST0",
    "CONST1",
    "CecResult",
    "Cube",
    "Cut",
    "balance",
    "cached_sop",
    "clear_sop_cache",
    "cover_table",
    "install_cut_database",
    "isop",
    "isop_interval",
    "refactor",
    "refactor_reference",
    "sop_cache_info",
    "sop_gate_count",
    "structural_diff",
    "synthesize_sop",
    "to_aig_form",
    "CutDatabase",
    "Gate",
    "LogicNetwork",
    "MffcComputer",
    "NodeMap",
    "NpnTransform",
    "T1_TAPS",
    "TruthTable",
    "and3_tt",
    "assert_equivalent",
    "check_equivalence",
    "depth",
    "enumerate_cuts",
    "eval_gate",
    "eval_int",
    "fold_gate",
    "cached_cut_database",
    "enumerate_cuts_reference",
    "exhaustive_equivalence",
    "exhaustive_pi_patterns",
    "exhaustive_pi_patterns_chunk",
    "is_t1_tap",
    "levels",
    "live_nodes",
    "maj3_tt",
    "match_against",
    "mffc",
    "node_function_on_leaves",
    "npn_canon",
    "npn_equivalent",
    "or3_tt",
    "random_patterns",
    "match_against_enum",
    "npn_canon_enum",
    "npn_class_members",
    "warm_tables",
    "sat_equivalence",
    "signature_equivalence",
    "simulate",
    "simulate_equivalence",
    "simulate_exhaustive",
    "simulate_nodewise",
    "simulate_pos",
    "simulate_words",
    "strash",
    "sweep",
    "topological_order",
    "transitive_fanin",
    "transitive_fanout",
    "xor3_tt",
]
