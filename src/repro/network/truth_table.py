"""Small truth tables packed into Python integers.

A :class:`TruthTable` over ``k`` variables stores the 2**k output bits in
an int; bit ``i`` is the function value on the input assignment whose
binary encoding is ``i`` (variable 0 is the least significant input).

Tables up to 6 variables are plenty for cut functions (the T1 flow uses
3-input cuts); the class nevertheless supports any small k.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.errors import TruthTableError

MAX_VARS = 16


def _mask(num_vars: int) -> int:
    return (1 << (1 << num_vars)) - 1


def var_mask(var: int, num_vars: int) -> int:
    """Truth table (as int) of projection onto variable *var*."""
    if not 0 <= var < num_vars:
        raise TruthTableError(f"variable {var} out of range for {num_vars} vars")
    block = 1 << var
    pattern = ((1 << block) - 1) << block  # 'block' zeros then 'block' ones
    width = 1 << num_vars
    out = 0
    shift = 0
    while shift < width:
        out |= pattern << shift
        shift += 2 * block
    return out & _mask(num_vars)


@dataclass(frozen=True)
class TruthTable:
    """Immutable truth table of a Boolean function of ``num_vars`` inputs."""

    bits: int
    num_vars: int

    def __post_init__(self) -> None:
        if not 0 <= self.num_vars <= MAX_VARS:
            raise TruthTableError(f"num_vars must be in [0, {MAX_VARS}]")
        if not 0 <= self.bits <= _mask(self.num_vars):
            raise TruthTableError("bits exceed table width")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: bool, num_vars: int = 0) -> "TruthTable":
        return TruthTable(_mask(num_vars) if value else 0, num_vars)

    @staticmethod
    def var(index: int, num_vars: int) -> "TruthTable":
        return TruthTable(var_mask(index, num_vars), num_vars)

    @staticmethod
    def from_function(
        fn: Callable[..., bool], num_vars: int
    ) -> "TruthTable":
        bits = 0
        for row in range(1 << num_vars):
            args = [(row >> v) & 1 for v in range(num_vars)]
            if fn(*args):
                bits |= 1 << row
        return TruthTable(bits, num_vars)

    @staticmethod
    def from_bits(bit_list: Sequence[int]) -> "TruthTable":
        n = len(bit_list)
        num_vars = n.bit_length() - 1
        if 1 << num_vars != n:
            raise TruthTableError("bit list length must be a power of two")
        bits = 0
        for i, b in enumerate(bit_list):
            if b:
                bits |= 1 << i
        return TruthTable(bits, num_vars)

    # -- queries -----------------------------------------------------------

    @property
    def width(self) -> int:
        return 1 << self.num_vars

    @property
    def mask(self) -> int:
        return _mask(self.num_vars)

    def value(self, assignment: int) -> int:
        """Function value on the input row *assignment* (an int < 2**k)."""
        if not 0 <= assignment < self.width:
            raise TruthTableError("assignment out of range")
        return (self.bits >> assignment) & 1

    def count_ones(self) -> int:
        return bin(self.bits).count("1")

    def is_const(self) -> bool:
        return self.bits in (0, self.mask)

    def depends_on(self, var: int) -> bool:
        """True if the function actually depends on variable *var*."""
        vm = var_mask(var, self.num_vars)
        block = 1 << var
        hi = (self.bits & vm) >> block
        lo = self.bits & (vm >> block)
        return hi != lo

    def support(self) -> Tuple[int, ...]:
        return tuple(v for v in range(self.num_vars) if self.depends_on(v))

    # -- operators ----------------------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise TruthTableError("mixing truth tables of different arity")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.bits ^ self.mask, self.num_vars)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits & other.bits, self.num_vars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits | other.bits, self.num_vars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.bits ^ other.bits, self.num_vars)

    # -- transforms ----------------------------------------------------------

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Relabel variables: new variable ``perm[i]`` <- old variable ``i``.

        ``perm`` must be a permutation of ``range(num_vars)``.  The result g
        satisfies ``g(x_{perm[0]}, ..)``... concretely
        ``g.value(row) == self.value(row')`` where bit ``i`` of ``row'`` is
        bit ``perm[i]`` of ``row``.
        """
        if sorted(perm) != list(range(self.num_vars)):
            raise TruthTableError("not a permutation")
        out = 0
        for row in range(self.width):
            src = 0
            for i in range(self.num_vars):
                if (row >> perm[i]) & 1:
                    src |= 1 << i
            if (self.bits >> src) & 1:
                out |= 1 << row
        return TruthTable(out, self.num_vars)

    def negate_var(self, var: int) -> "TruthTable":
        """Substitute ``x_var -> NOT x_var``."""
        block = 1 << var
        vm = var_mask(var, self.num_vars)
        hi = self.bits & vm
        lo = self.bits & ~vm & self.mask
        return TruthTable(((hi >> block) | (lo << block)) & self.mask, self.num_vars)

    def negate_vars(self, polarity: int) -> "TruthTable":
        """Negate every variable whose bit is set in *polarity*."""
        tt = self
        for v in range(self.num_vars):
            if (polarity >> v) & 1:
                tt = tt.negate_var(v)
        return tt

    def extend(self, num_vars: int) -> "TruthTable":
        """Pad with dummy trailing variables (function unchanged)."""
        if num_vars < self.num_vars:
            raise TruthTableError("cannot shrink; use shrink_to_support")
        bits = self.bits
        width = 1 << self.num_vars
        for _ in range(num_vars - self.num_vars):
            bits = bits | (bits << width)
            width *= 2
        return TruthTable(bits & _mask(num_vars), num_vars)

    def remap(self, positions: Sequence[int], num_vars: int) -> "TruthTable":
        """Re-express over a superset of variables.

        Old variable ``i`` becomes new variable ``positions[i]``; all other
        new variables are don't-care (function does not depend on them).
        """
        if len(positions) != self.num_vars:
            raise TruthTableError("positions length mismatch")
        out = 0
        for row in range(1 << num_vars):
            src = 0
            for i, p in enumerate(positions):
                if (row >> p) & 1:
                    src |= 1 << i
            if (self.bits >> src) & 1:
                out |= 1 << row
        return TruthTable(out, num_vars)

    def shrink_to_support(self) -> "TruthTable":
        """Drop variables the function does not depend on."""
        sup = self.support()
        if len(sup) == self.num_vars:
            return self
        out = 0
        for row in range(1 << len(sup)):
            src = 0
            for i, v in enumerate(sup):
                if (row >> i) & 1:
                    src |= 1 << v
            if (self.bits >> src) & 1:
                out |= 1 << row
        return TruthTable(out, len(sup))

    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor w.r.t. ``x_var = value`` (arity unchanged)."""
        vm = var_mask(var, self.num_vars)
        block = 1 << var
        if value:
            half = self.bits & vm
            return TruthTable(half | (half >> block), self.num_vars)
        half = self.bits & ~vm & self.mask
        return TruthTable(half | (half << block) & self.mask | half, self.num_vars)

    # -- misc ----------------------------------------------------------------

    def to_hex(self) -> str:
        digits = max(1, self.width // 4)
        return format(self.bits, f"0{digits}x")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"tt{self.num_vars}:0x{self.to_hex()}"


# -- common 3-input functions used by the T1 matcher ------------------------

def xor3_tt() -> TruthTable:
    """XOR3 (T1 sum output): 0x96."""
    return TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)


def maj3_tt() -> TruthTable:
    """MAJ3 (T1 carry output): 0xE8."""
    return TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)


def or3_tt() -> TruthTable:
    """OR3 (T1 Q output): 0xFE."""
    return TruthTable.from_function(lambda a, b, c: bool(a | b | c), 3)


def and3_tt() -> TruthTable:
    """AND3: 0x80 (== NOR3 of negated inputs)."""
    return TruthTable.from_function(lambda a, b, c: bool(a & b & c), 3)
