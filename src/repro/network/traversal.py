"""Topological traversal, levels and cone extraction.

The heavy analyses (topological order, levels, fanout lists) live on the
:class:`~repro.network.logic_network.LogicNetwork` kernel itself, which
caches them per mutation epoch.  The free functions here are thin,
API-stable wrappers: repeated calls on an unchanged network are O(1).
Treat returned lists as immutable — they are shared with the kernel
cache.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Set

from repro.network.gates import is_t1_tap
from repro.network.logic_network import LogicNetwork, flat_arrays


def topological_order(net: LogicNetwork) -> List[int]:
    """All nodes in a fanin-before-fanout order (Kahn's algorithm).

    Includes dead nodes; raises :class:`CycleError` on combinational loops.
    Cached on the network per mutation epoch.
    """
    return net.topological_order()


def levels(net: LogicNetwork, order: Sequence[int] | None = None) -> List[int]:
    """Logic level of every node.

    Constants and PIs are level 0.  T1 taps inherit the level of their cell
    (the cell is the clocked element; taps are free output ports).  With the
    default ``order=None`` the kernel's per-epoch cache is used.
    """
    if order is None:
        return net.levels()
    lvl = [0] * net.num_nodes()
    for node in order:
        fins = net.fanins[node]
        if not fins:
            lvl[node] = 0
        elif is_t1_tap(net.gates[node]):
            lvl[node] = lvl[fins[0]]
        else:
            lvl[node] = 1 + max(lvl[f] for f in fins)
    return lvl


def depth(net: LogicNetwork) -> int:
    """Maximum level over primary outputs."""
    return net.depth()


def transitive_fanin(net: LogicNetwork, roots: Iterable[int]) -> Set[int]:
    """All nodes in the cone of influence of *roots* (roots included)."""
    _codes, off, deg, pool = flat_arrays(net)
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        o = off[u]
        stack.extend(pool[o:o + deg[u]])
    return seen


def transitive_fanout(net: LogicNetwork, roots: Iterable[int]) -> Set[int]:
    """All nodes reachable from *roots* following fanout edges."""
    fanouts = net.compute_fanouts()
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(fanouts[u])
    return seen


def structural_diff(
    old_net: LogicNetwork, new_net: LogicNetwork, node_map: Mapping
) -> Set[int]:
    """New-net nodes whose fanin-side context differs from their preimage.

    ``node_map`` is the old-id -> new-id event that turned *old_net* into
    *new_net*.  A node is a *seed* when it is new (no preimage), merged
    (several preimages), its gate or id-translated fanin multiset
    changed, or its fanout count changed; the returned set is the
    transitive fanout of all seeds — the dirty region for analyses that
    depend on transitive-fanin structure and fanout counts (MFFC cones,
    cut sets).  Everything outside it is guaranteed to see, node for
    node, the exact structure and reference counts its preimage saw.
    """
    inv: dict = {}
    multi: Set[int] = set()
    for o, m in node_map.items():
        if m in inv:
            multi.add(m)
        else:
            inv[m] = o
    old_counts = old_net.compute_fanout_counts()
    new_counts = new_net.compute_fanout_counts()
    old_codes, old_off, old_deg, old_pool = flat_arrays(old_net)
    new_codes, new_off, new_deg, new_pool = flat_arrays(new_net)
    get_new = node_map.get
    seeds: List[int] = []
    for m in new_net.nodes():
        o = inv.get(m)
        if o is None or m in multi:
            seeds.append(m)
            continue
        if old_codes[o] != new_codes[m]:
            seeds.append(m)
            continue
        d = old_deg[o]
        if d != new_deg[m]:
            seeds.append(m)
            continue
        oo = old_off[o]
        mapped = [get_new(old_pool[j], -1) for j in range(oo, oo + d)]
        no = new_off[m]
        if -1 in mapped or sorted(mapped) != sorted(new_pool[no:no + d]):
            seeds.append(m)
            continue
        if old_counts[o] != new_counts[m]:
            seeds.append(m)
    return transitive_fanout(new_net, seeds)


def live_nodes(net: LogicNetwork) -> Set[int]:
    """Nodes reachable from the POs, plus constants, PIs and T1 siblings.

    A T1 cell is live if any of its taps is live; a live cell keeps all its
    fanins alive.  PIs are always retained (interface stability).
    """
    return net.live_nodes()


def cone_nodes(
    net: LogicNetwork, root: int, leaves: Set[int]
) -> List[int]:
    """Nodes strictly inside the cone of *root* bounded by *leaves*.

    The returned list contains the internal nodes (root included, leaves
    excluded) in reverse-DFS order.  Raises if the cone escapes the leaves
    (i.e. reaches a PI/const not listed as leaf).
    """
    out: List[int] = []
    seen: Set[int] = set()

    def visit(u: int) -> None:
        if u in leaves or u in seen:
            return
        seen.add(u)
        for f in net.fanins[u]:
            visit(f)
        out.append(u)

    visit(root)
    return out
