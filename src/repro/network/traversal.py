"""Topological traversal, levels and cone extraction."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.errors import CycleError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import LogicNetwork


def topological_order(net: LogicNetwork) -> List[int]:
    """All nodes in a fanin-before-fanout order (Kahn's algorithm).

    Includes dead nodes; raises :class:`CycleError` on combinational loops.
    """
    n = net.num_nodes()
    indeg = [0] * n
    fanouts = net.compute_fanouts()
    for node in range(n):
        indeg[node] = len(net.fanins[node])
    queue = [node for node in range(n) if indeg[node] == 0]
    order: List[int] = []
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        order.append(u)
        for v in fanouts[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != n:
        raise CycleError("network contains a combinational cycle")
    return order


def levels(net: LogicNetwork, order: Sequence[int] | None = None) -> List[int]:
    """Logic level of every node.

    Constants and PIs are level 0.  T1 taps inherit the level of their cell
    (the cell is the clocked element; taps are free output ports).
    """
    if order is None:
        order = topological_order(net)
    lvl = [0] * net.num_nodes()
    for node in order:
        fins = net.fanins[node]
        if not fins:
            lvl[node] = 0
        elif is_t1_tap(net.gates[node]):
            lvl[node] = lvl[fins[0]]
        else:
            lvl[node] = 1 + max(lvl[f] for f in fins)
    return lvl


def depth(net: LogicNetwork) -> int:
    """Maximum level over primary outputs."""
    if not net.pos:
        return 0
    lvl = levels(net)
    return max(lvl[po] for po in net.pos)


def transitive_fanin(net: LogicNetwork, roots: Iterable[int]) -> Set[int]:
    """All nodes in the cone of influence of *roots* (roots included)."""
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(net.fanins[u])
    return seen


def transitive_fanout(net: LogicNetwork, roots: Iterable[int]) -> Set[int]:
    """All nodes reachable from *roots* following fanout edges."""
    fanouts = net.compute_fanouts()
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(fanouts[u])
    return seen


def live_nodes(net: LogicNetwork) -> Set[int]:
    """Nodes reachable from the POs, plus constants, PIs and T1 siblings.

    A T1 cell is live if any of its taps is live; a live cell keeps all its
    fanins alive.  PIs are always retained (interface stability).
    """
    seen: Set[int] = set(transitive_fanin(net, net.pos))
    # taps keep their cell alive via fanin; a live cell does NOT by itself
    # keep dead sibling taps alive (they are simply unused output ports).
    seen.add(0)
    seen.add(1)
    seen.update(net.pis)
    return seen


def cone_nodes(
    net: LogicNetwork, root: int, leaves: Set[int]
) -> List[int]:
    """Nodes strictly inside the cone of *root* bounded by *leaves*.

    The returned list contains the internal nodes (root included, leaves
    excluded) in reverse-DFS order.  Raises if the cone escapes the leaves
    (i.e. reaches a PI/const not listed as leaf).
    """
    out: List[int] = []
    seen: Set[int] = set()

    def visit(u: int) -> None:
        if u in leaves or u in seen:
            return
        seen.add(u)
        for f in net.fanins[u]:
            visit(f)
        out.append(u)

    visit(root)
    return out
