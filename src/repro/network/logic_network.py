"""Mutable gate-level logic network (DAG of single-output nodes).

Design notes
------------
* Nodes are integer handles into parallel arrays (compact, fast in pure
  Python).  Node 0 is CONST0 and node 1 is CONST1; they always exist.
* Fanins are stored as tuples of node ids.  The network is append-only for
  nodes, but fanin tuples can be rewritten via :meth:`substitute`, and
  unreferenced nodes are removed lazily by :func:`repro.network.cleanup.sweep`
  (ids are then compacted into a fresh network).
* Creation order is *not* required to be topological after substitutions;
  use :func:`repro.network.traversal.topological_order`.
* The T1 cell is a multi-output block: a ``T1_CELL`` node plus tap nodes
  (see :mod:`repro.network.gates`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.gates import Gate, check_arity, is_t1_tap

CONST0 = 0
CONST1 = 1


class LogicNetwork:
    """A combinational logic network.

    Attributes
    ----------
    gates:
        ``gates[i]`` is the :class:`Gate` kind of node ``i``.
    fanins:
        ``fanins[i]`` is the tuple of fanin node ids of node ``i``.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.gates: List[Gate] = [Gate.CONST0, Gate.CONST1]
        self.fanins: List[Tuple[int, ...]] = [(), ()]
        self._pis: List[int] = []
        self._pos: List[int] = []
        self._po_names: List[Optional[str]] = []
        self._names: Dict[int, str] = {}

    # -- size / iteration ----------------------------------------------------

    def num_nodes(self) -> int:
        """Total node count including constants, PIs and taps."""
        return len(self.gates)

    def nodes(self) -> Iterator[int]:
        return iter(range(len(self.gates)))

    def num_gates(self) -> int:
        """Count of logic nodes (excludes constants, PIs and T1 taps)."""
        skip = (Gate.CONST0, Gate.CONST1, Gate.PI)
        return sum(
            1
            for g in self.gates
            if g not in skip and not is_t1_tap(g)
        )

    @property
    def pis(self) -> Tuple[int, ...]:
        return tuple(self._pis)

    @property
    def pos(self) -> Tuple[int, ...]:
        return tuple(self._pos)

    @property
    def po_names(self) -> Tuple[Optional[str], ...]:
        return tuple(self._po_names)

    # -- construction ----------------------------------------------------------

    def _new_node(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        check_arity(gate, len(fanins))
        for f in fanins:
            if not 0 <= f < len(self.gates):
                raise NetworkError(f"fanin {f} does not exist")
        self.gates.append(gate)
        self.fanins.append(fanins)
        return len(self.gates) - 1

    def add_pi(self, name: Optional[str] = None) -> int:
        node = self._new_node(Gate.PI, ())
        self._pis.append(node)
        if name is not None:
            self._names[node] = name
        return node

    def add_gate(self, gate: Gate, fanins: Sequence[int]) -> int:
        """Append a logic node; *gate* must not be PI/const."""
        if gate in (Gate.PI, Gate.CONST0, Gate.CONST1):
            raise NetworkError(f"use add_pi()/constants for {gate.name}")
        if gate is Gate.T1_CELL:
            raise NetworkError("use add_t1_cell() for T1 blocks")
        if is_t1_tap(gate):
            cell = fanins[0]
            if self.gates[cell] is not Gate.T1_CELL:
                raise NetworkError("T1 tap fanin must be a T1_CELL node")
        return self._new_node(gate, tuple(fanins))

    def add_t1_cell(self, a: int, b: int, c: int) -> int:
        """Append a T1 cell block over leaves (a, b, c); returns the cell id."""
        return self._new_node(Gate.T1_CELL, (a, b, c))

    def add_t1_tap(self, cell: int, tap: Gate) -> int:
        if not is_t1_tap(tap):
            raise NetworkError(f"{tap.name} is not a T1 tap")
        return self.add_gate(tap, (cell,))

    # convenience builders used heavily by circuit generators -----------------

    def add_not(self, a: int) -> int:
        return self.add_gate(Gate.NOT, (a,))

    def add_buf(self, a: int) -> int:
        return self.add_gate(Gate.BUF, (a,))

    def add_and(self, *fanins: int) -> int:
        return self.add_gate(Gate.AND, fanins)

    def add_or(self, *fanins: int) -> int:
        return self.add_gate(Gate.OR, fanins)

    def add_xor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XOR, fanins)

    def add_nand(self, *fanins: int) -> int:
        return self.add_gate(Gate.NAND, fanins)

    def add_nor(self, *fanins: int) -> int:
        return self.add_gate(Gate.NOR, fanins)

    def add_xnor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XNOR, fanins)

    def add_maj3(self, a: int, b: int, c: int) -> int:
        return self.add_gate(Gate.MAJ3, (a, b, c))

    def add_mux(self, sel: int, d0: int, d1: int) -> int:
        """2:1 multiplexer out = sel ? d1 : d0, built from basic gates."""
        ns = self.add_not(sel)
        t0 = self.add_and(ns, d0)
        t1 = self.add_and(sel, d1)
        return self.add_or(t0, t1)

    def add_po(self, node: int, name: Optional[str] = None) -> int:
        """Mark *node* as a primary output; returns the PO index."""
        if not 0 <= node < len(self.gates):
            raise NetworkError(f"PO target {node} does not exist")
        if self.gates[node] is Gate.T1_CELL:
            raise NetworkError("a T1_CELL has no single output; tap it first")
        self._pos.append(node)
        self._po_names.append(name)
        return len(self._pos) - 1

    # -- names ------------------------------------------------------------------

    def set_name(self, node: int, name: str) -> None:
        self._names[node] = name

    def get_name(self, node: int) -> Optional[str]:
        return self._names.get(node)

    # -- structure queries -------------------------------------------------------

    def gate(self, node: int) -> Gate:
        return self.gates[node]

    def fanin(self, node: int) -> Tuple[int, ...]:
        return self.fanins[node]

    def is_pi(self, node: int) -> bool:
        return self.gates[node] is Gate.PI

    def is_const(self, node: int) -> bool:
        return node in (CONST0, CONST1)

    def is_logic(self, node: int) -> bool:
        g = self.gates[node]
        return g not in (Gate.CONST0, Gate.CONST1, Gate.PI)

    def t1_cells(self) -> List[int]:
        return [n for n in self.nodes() if self.gates[n] is Gate.T1_CELL]

    def t1_taps_of(self, cell: int) -> List[int]:
        return [
            n
            for n in self.nodes()
            if is_t1_tap(self.gates[n]) and self.fanins[n][0] == cell
        ]

    def compute_fanouts(self) -> List[List[int]]:
        """``fanouts[u]`` = list of nodes having u as a fanin (with repeats)."""
        fanouts: List[List[int]] = [[] for _ in range(len(self.gates))]
        for node, fins in enumerate(self.fanins):
            for f in fins:
                fanouts[f].append(node)
        return fanouts

    def compute_fanout_counts(self) -> List[int]:
        counts = [0] * len(self.gates)
        for node, fins in enumerate(self.fanins):
            for f in fins:
                counts[f] += 1
        for po in self._pos:
            counts[po] += 1
        return counts

    # -- mutation ------------------------------------------------------------------

    def substitute(self, old: int, new: int) -> int:
        """Redirect every reference to *old* (fanins and POs) to *new*.

        Returns the number of rewritten references.  The *old* node stays in
        the arrays until a sweep; callers should not re-use it.
        """
        if old == new:
            return 0
        if not 0 <= new < len(self.gates):
            raise NetworkError(f"substitute target {new} does not exist")
        rewritten = 0
        for node in range(len(self.gates)):
            fins = self.fanins[node]
            if old in fins:
                self.fanins[node] = tuple(new if f == old else f for f in fins)
                rewritten += fins.count(old)
        for i, po in enumerate(self._pos):
            if po == old:
                self._pos[i] = new
                rewritten += 1
        return rewritten

    def replace_fanin(self, node: int, old: int, new: int) -> None:
        """Rewrite one node's fanin tuple only."""
        fins = self.fanins[node]
        if old not in fins:
            raise NetworkError(f"{old} is not a fanin of {node}")
        self.fanins[node] = tuple(new if f == old else f for f in fins)

    # -- misc -----------------------------------------------------------------------

    def clone(self) -> "LogicNetwork":
        out = LogicNetwork(self.name)
        out.gates = list(self.gates)
        out.fanins = list(self.fanins)
        out._pis = list(self._pis)
        out._pos = list(self._pos)
        out._po_names = list(self._po_names)
        out._names = dict(self._names)
        return out

    def stats(self) -> Dict[str, int]:
        from collections import Counter

        counter = Counter(g.name for g in self.gates)
        return {
            "nodes": self.num_nodes(),
            "gates": self.num_gates(),
            "pis": len(self._pis),
            "pos": len(self._pos),
            "t1_cells": counter.get("T1_CELL", 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"LogicNetwork(name={self.name!r}, gates={s['gates']}, "
            f"pis={s['pis']}, pos={s['pos']}, t1={s['t1_cells']})"
        )
