"""Mutable gate-level logic network (DAG of single-output nodes).

Design notes
------------
* Nodes are integer handles into **struct-of-arrays storage**: gate kinds
  live in one ``bytearray`` of :data:`~repro.network.gates.CODE_BY_GATE`
  codes, fanins in CSR form (one flat ``array('q')`` fanin pool plus
  per-node offset/degree arrays), and reference counts in a parallel
  ``array('q')``.  Node 0 is CONST0 and node 1 is CONST1; they always
  exist.  A 100k–1M-node netlist is a handful of arrays, not a million
  boxed objects.
* ``net.gates`` and ``net.fanins`` are **lazy compatibility views** over
  those arrays: ``net.gates[i]`` is still the :class:`Gate` enum member
  and ``net.fanins[i]`` is still a tuple of fanin ids (materialised on
  first access and cached until that node mutates), and both compare /
  iterate like the lists they used to be.  Code that only reads stays
  source-compatible; hot loops can bind the view once or go array-native.
* Fanin tuples are rewritten via :meth:`substitute` /
  :meth:`replace_fanin` (degree-preserving, in place in the pool);
  unreferenced nodes are removed by :meth:`compact` (pointer fix-up over
  the arrays, emitting a :class:`~repro.network.nodemap.NodeMap`) or by
  the :func:`repro.network.cleanup.sweep` wrapper.
* **Incrementally maintained indices**: the kernel keeps a fanout index
  (consumer -> multiplicity per node) and structural reference counts in
  sync across every mutation, so :meth:`substitute` costs O(fanout of the
  replaced node) instead of a full network scan, and fanout queries never
  rescan the edge list.  A maintained **free-list** (the exact set of
  zero-fanout non-source nodes) seeds :meth:`compact`'s liveness cascade,
  so dead-node removal is refcount propagation over int arrays rather
  than a reachability set walk plus list rebuilds.
* **Mutation epoch + cached analyses**: every structural mutation bumps
  ``epoch``; topological order, levels and materialised fanout lists are
  cached per epoch, so repeated :meth:`topological_order` /
  :meth:`levels` / :meth:`depth` calls on an unchanged network are O(1).
  Both run array-native (iterative Kahn over the CSR arrays).  Treat the
  returned lists as immutable — they are shared with the cache.
* **Bulk construction**: :meth:`add_gates_bulk` appends (and with
  ``hash_cons=True`` hash-conses) a whole netlist in one call — one epoch
  bump, no per-call dispatch — and is what the scalable circuit
  generators and the ``.bench``/``.blif`` readers feed.
* **Hash-consed construction** (``hash_cons=True``): ``add_gate`` folds
  constants/aliases (same rules as ``strash``), collapses double
  negation, canonicalises commutative fanins and returns the existing id
  for a duplicate ``(gate, fanins)`` pair.  This subsumes the node-merge
  half of :func:`repro.network.cleanup.strash` at creation time.  The
  default is off so structural generators reproduce networks node for
  node.
* Creation order is *not* required to be topological after substitutions;
  use :meth:`topological_order`.
* The T1 cell is a multi-output block: a ``T1_CELL`` node plus tap nodes
  (see :mod:`repro.network.gates`).

The pre-flat tuple-layout kernel is retained verbatim as
:class:`repro.network.logic_network_reference.ReferenceLogicNetwork` and
pinned against this implementation by randomized differential fuzz.
"""

from __future__ import annotations

import hashlib
from array import array
from itertools import accumulate
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CycleError, NetworkError
from repro.network.gates import (
    CODE_BY_GATE,
    GATES_BY_CODE,
    Gate,
    SOURCE_CODES,
    T1_TAP_CODES,
    check_arity,
    is_t1_tap,
)
from repro.network.nodemap import NodeMap

CONST0 = 0
CONST1 = 1

#: gates whose fanin order is irrelevant (canonically sorted when hashing)
_COMMUTATIVE = frozenset(
    {Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR, Gate.XNOR, Gate.MAJ3}
)
_COMMUTATIVE_CODES = frozenset(CODE_BY_GATE[g] for g in _COMMUTATIVE)

_C_CONST0 = CODE_BY_GATE[Gate.CONST0]
_C_CONST1 = CODE_BY_GATE[Gate.CONST1]
_C_PI = CODE_BY_GATE[Gate.PI]
_C_NOT = CODE_BY_GATE[Gate.NOT]
_C_T1_CELL = CODE_BY_GATE[Gate.T1_CELL]
#: codes excluded from num_gates (sources and zero-area taps)
_NONGATE_CODES = SOURCE_CODES | T1_TAP_CODES


def fold_gate(gate: Gate, fins: Tuple[int, ...]) -> Optional[Tuple[str, object]]:
    """Constant folding / algebraic simplification of one node.

    Returns one of
      ("const", 0/1)   -- node is a constant
      ("alias", node)  -- node equals an existing node
      ("gate", (gate, fins)) -- simplified gate
      None             -- keep unchanged
    """
    if gate in (Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR, Gate.XNOR):
        base = {
            Gate.AND: Gate.AND,
            Gate.NAND: Gate.AND,
            Gate.OR: Gate.OR,
            Gate.NOR: Gate.OR,
            Gate.XOR: Gate.XOR,
            Gate.XNOR: Gate.XOR,
        }[gate]
        inverted = gate in (Gate.NAND, Gate.NOR, Gate.XNOR)
        vals = list(fins)
        if base is Gate.AND:
            if CONST0 in vals:
                return ("const", 1 if inverted else 0)
            vals = [v for v in vals if v != CONST1]
            vals = list(dict.fromkeys(vals))  # idempotence
        elif base is Gate.OR:
            if CONST1 in vals:
                return ("const", 0 if inverted else 1)
            vals = [v for v in vals if v != CONST0]
            vals = list(dict.fromkeys(vals))  # idempotence
        else:  # XOR: drop const0, toggle on const1, cancel duplicate pairs
            flips = vals.count(CONST1)
            vals = [v for v in vals if v not in (CONST0, CONST1)]
            if flips % 2:
                inverted = not inverted
            counts: Dict[int, int] = {}
            for v in vals:
                counts[v] = counts.get(v, 0) + 1
            vals = [v for v, c in counts.items() if c % 2]
        if not vals:
            identity = 0 if base in (Gate.OR, Gate.XOR) else 1
            return ("const", identity ^ (1 if inverted else 0))
        if len(vals) == 1:
            if inverted:
                return ("gate", (Gate.NOT, (vals[0],)))
            return ("alias", vals[0])
        if base is Gate.AND and len(set(vals)) == 1:
            v = vals[0]
            return ("gate", (Gate.NOT, (v,))) if inverted else ("alias", v)
        if base is Gate.OR and len(set(vals)) == 1:
            v = vals[0]
            return ("gate", (Gate.NOT, (v,))) if inverted else ("alias", v)
        out_gate = {
            (Gate.AND, False): Gate.AND,
            (Gate.AND, True): Gate.NAND,
            (Gate.OR, False): Gate.OR,
            (Gate.OR, True): Gate.NOR,
            (Gate.XOR, False): Gate.XOR,
            (Gate.XOR, True): Gate.XNOR,
        }[(base, inverted)]
        new_fins = tuple(vals)
        if out_gate == gate and new_fins == fins:
            return None
        return ("gate", (out_gate, new_fins))
    if gate is Gate.NOT:
        if fins[0] == CONST0:
            return ("const", 1)
        if fins[0] == CONST1:
            return ("const", 0)
    if gate is Gate.BUF:
        return ("alias", fins[0])
    if gate is Gate.MAJ3:
        a, b, c = fins
        if a == b:
            return ("alias", a)
        if a == c:
            return ("alias", a)
        if b == c:
            return ("alias", b)
        if CONST0 in fins:
            rest = tuple(f for f in fins if f != CONST0)
            if len(rest) == 2:
                return ("gate", (Gate.AND, rest))
        if CONST1 in fins:
            rest = tuple(f for f in fins if f != CONST1)
            if len(rest) == 2:
                return ("gate", (Gate.OR, rest))
    return None


class GateView:
    """Sequence view of the gate-code bytearray as :class:`Gate` members.

    Backed directly by the network's storage: always current, zero-copy.
    Supports indexing (int and slice), iteration, ``len`` and equality
    against any sequence of gates — the operations the old
    ``List[Gate]`` attribute supported for readers.  It is not a list:
    do not append to it or assign elements (mutate the network through
    its mutators instead).
    """

    __slots__ = ("_codes",)

    def __init__(self, codes: bytearray):
        self._codes = codes

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [GATES_BY_CODE[c] for c in self._codes[index]]
        return GATES_BY_CODE[self._codes[index]]

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[Gate]:
        return map(GATES_BY_CODE.__getitem__, self._codes)

    def __eq__(self, other) -> bool:
        if isinstance(other, GateView):
            return self._codes == other._codes
        try:
            if len(other) != len(self._codes):
                return False
            return all(a is b for a, b in zip(self, other))
        except TypeError:
            return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable view, like a list

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateView({list(self)!r})"


class FaninView:
    """Sequence view of the CSR fanin arrays as per-node id tuples.

    ``view[i]`` materialises node *i*'s fanin tuple from the flat pool on
    first access and caches it until that node's fanins mutate, so
    repeated reads cost one list index — large bulk-built networks never
    pay for tuples they do not touch.  Item assignment writes through to
    the pool (relocating the node's span when the arity changes) but, as
    before the flat core, bypasses the maintained fanout/refcount
    indices — it exists for tests that deliberately break the DAG;
    real mutations must go through the kernel mutators.
    """

    __slots__ = ("_off", "_deg", "_pool", "_tuples")

    def __init__(self, off: array, deg: array, pool: array, tuples: List):
        self._off = off
        self._deg = deg
        self._pool = pool
        self._tuples = tuples

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._tuples)))]
        t = self._tuples[index]
        if t is None:
            o = self._off[index]
            t = tuple(self._pool[o : o + self._deg[index]])
            self._tuples[index] = t
        return t

    def __setitem__(self, index: int, fins) -> None:
        fins = tuple(fins)
        if index < 0:
            index += len(self._tuples)
        d = self._deg[index]
        if len(fins) == d:
            o = self._off[index]
            self._pool[o : o + d] = array("q", fins)
        else:  # arity change: relocate the span to the end of the pool
            self._off[index] = len(self._pool)
            self._deg[index] = len(fins)
            self._pool.extend(fins)
        self._tuples[index] = fins

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self):
        for i in range(len(self._tuples)):
            yield self[i]

    def __eq__(self, other) -> bool:
        try:
            if len(other) != len(self._tuples):
                return False
            return all(a == b for a, b in zip(self, other))
        except TypeError:
            return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable view, like a list

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaninView({list(self)!r})"


class LogicNetwork:
    """A combinational logic network with maintained analysis indices.

    Attributes
    ----------
    gates:
        :class:`GateView`; ``gates[i]`` is the :class:`Gate` kind of node
        ``i`` (stored as one byte in the flat core).
    fanins:
        :class:`FaninView`; ``fanins[i]`` is the tuple of fanin node ids
        of node ``i`` (stored as a CSR span in the flat fanin pool).
    epoch:
        Mutation counter; bumped by every structural change.  Analyses
        cached against an epoch stay valid while it is unchanged.
    """

    def __init__(self, name: str = "top", *, hash_cons: bool = False):
        self.name = name
        # struct-of-arrays storage --------------------------------------------
        # NOTE: these containers are mutated in place and never rebound —
        # the gates/fanins views alias them for the network's lifetime.
        self._codes: bytearray = bytearray((_C_CONST0, _C_CONST1))
        self._off: array = array("q", (0, 0))
        self._deg: array = array("q", (0, 0))
        self._pool: array = array("q")
        self._tuples: List[Optional[Tuple[int, ...]]] = [(), ()]
        self._gate_view = GateView(self._codes)
        self._fanin_view = FaninView(self._off, self._deg, self._pool, self._tuples)
        self._pis: List[int] = []
        self._pos: List[int] = []
        self._po_names: List[Optional[str]] = []
        self._names: Dict[int, str] = {}
        # maintained indices ---------------------------------------------------
        self._fanout: List[Dict[int, int]] = [{}, {}]  # consumer -> multiplicity
        self._struct_refs: array = array("q", (0, 0))  # fanin refs (POs excluded)
        self._po_pos: Dict[int, List[int]] = {}  # node -> indices into _pos
        #: free-list: exact set of nodes with zero fanout_count that are
        #: not sources (constants/PIs are never collectable) — the seeds
        #: of compact()'s liveness cascade
        self._free: Set[int] = set()
        self._epoch: int = 0
        # per-epoch analysis caches -------------------------------------------
        self._topo_cache: Optional[List[int]] = None
        self._topo_epoch: int = -1
        self._levels_cache: Optional[List[int]] = None
        self._levels_epoch: int = -1
        self._fanout_lists_cache: Optional[List[List[int]]] = None
        self._fanout_lists_epoch: int = -1
        self._shash_cache: Optional[str] = None
        self._shash_key: Optional[Tuple] = None
        # gate-grouped simulation schedule (built by repro.network.simulation)
        self._sim_schedule: Optional[list] = None
        self._sim_schedule_epoch: int = -1
        # hash-consing ---------------------------------------------------------
        self._hash_cons: bool = hash_cons
        self._hash_table: Dict[Tuple, int] = {}

    # -- size / iteration ----------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter (structure only; names/POs excluded)."""
        return self._epoch

    @property
    def hash_cons(self) -> bool:
        """Whether ``add_gate`` deduplicates and folds at creation."""
        return self._hash_cons

    @property
    def gates(self) -> GateView:
        """Per-node gate kinds (live :class:`GateView` over the byte codes)."""
        return self._gate_view

    @property
    def fanins(self) -> FaninView:
        """Per-node fanin tuples (live :class:`FaninView` over the CSR pool)."""
        return self._fanin_view

    @property
    def gate_codes(self) -> bytearray:
        """Raw per-node gate codes (see :data:`repro.network.gates.GATES_BY_CODE`).

        Array-native consumers may read this directly; treat it as
        immutable.
        """
        return self._codes

    def fanin_arrays(self) -> Tuple[array, array, array]:
        """The raw CSR fanin storage ``(offsets, degrees, pool)``.

        Node ``i``'s fanins are ``pool[offsets[i] : offsets[i] + degrees[i]]``.
        Shared with the kernel — treat all three as immutable.
        """
        return self._off, self._deg, self._pool

    def set_hash_cons(self, enabled: bool) -> None:
        """Toggle hash-consed construction.

        Enabling (re)builds the structural hash table from the current
        nodes (first id wins for duplicates already present).
        """
        self._hash_cons = enabled
        if enabled:
            self._rebuild_hash_table()
        else:
            self._hash_table = {}

    def num_nodes(self) -> int:
        """Total node count including constants, PIs and taps."""
        return len(self._codes)

    def nodes(self) -> Iterator[int]:
        return iter(range(len(self._codes)))

    def num_gates(self) -> int:
        """Count of logic nodes (excludes constants, PIs and T1 taps)."""
        nongate = _NONGATE_CODES
        return sum(1 for c in self._codes if c not in nongate)

    @property
    def pis(self) -> Tuple[int, ...]:
        return tuple(self._pis)

    @property
    def pos(self) -> Tuple[int, ...]:
        return tuple(self._pos)

    @property
    def po_names(self) -> Tuple[Optional[str], ...]:
        return tuple(self._po_names)

    # -- construction ----------------------------------------------------------

    def _append_node(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        """Unconditionally append one node and maintain the indices."""
        code = CODE_BY_GATE[gate]
        node = len(self._codes)
        self._codes.append(code)
        self._off.append(len(self._pool))
        self._deg.append(len(fanins))
        self._pool.extend(fanins)
        self._tuples.append(fanins)
        self._fanout.append({})
        self._struct_refs.append(0)
        free = self._free
        if code != _C_PI:
            free.add(node)
        refs = self._struct_refs
        for f in fanins:
            out = self._fanout[f]
            out[node] = out.get(node, 0) + 1
            refs[f] += 1
            free.discard(f)
        self._epoch += 1
        return node

    def _new_node(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        check_arity(gate, len(fanins))
        n = len(self._codes)
        for f in fanins:
            if not 0 <= f < n:
                raise NetworkError(f"fanin {f} does not exist")
        return self._append_node(gate, fanins)

    def _emit_hashed(self, gate: Gate, fins: Tuple[int, ...]) -> int:
        """Fold/canonicalise/dedupe one gate (the strash ``emit`` rules)."""
        while True:
            res = fold_gate(gate, fins)
            if res is None:
                break
            kind, payload = res
            if kind == "const":
                return CONST1 if payload else CONST0
            if kind == "alias":
                return payload  # type: ignore[return-value]
            gate, fins = payload  # type: ignore[assignment]
        if gate is Gate.NOT and self._codes[fins[0]] == _C_NOT:
            return self._pool[self._off[fins[0]]]  # double negation
        if gate in _COMMUTATIVE:
            fins = tuple(sorted(fins))
        key = (gate, fins)
        existing = self._hash_table.get(key)
        if existing is not None:
            return existing
        node = self._append_node(gate, fins)
        self._hash_table[key] = node
        return node

    def add_pi(self, name: Optional[str] = None) -> int:
        node = self._new_node(Gate.PI, ())
        self._pis.append(node)
        if name is not None:
            self._names[node] = name
        return node

    def add_gate(self, gate: Gate, fanins: Sequence[int]) -> int:
        """Append a logic node; *gate* must not be PI/const.

        With ``hash_cons`` enabled this may instead return an existing
        node id (duplicate structure), an alias fanin (folded BUF /
        single-input gate / double negation) or a constant.
        """
        if gate in (Gate.PI, Gate.CONST0, Gate.CONST1):
            raise NetworkError(f"use add_pi()/constants for {gate.name}")
        if gate is Gate.T1_CELL:
            raise NetworkError("use add_t1_cell() for T1 blocks")
        fins = tuple(fanins)
        check_arity(gate, len(fins))
        n = len(self._codes)
        for f in fins:
            if not 0 <= f < n:
                raise NetworkError(f"fanin {f} does not exist")
        if is_t1_tap(gate):
            cell = fins[0]
            if self._codes[cell] != _C_T1_CELL:
                raise NetworkError("T1 tap fanin must be a T1_CELL node")
            if self._hash_cons:
                key = (gate, fins)
                existing = self._hash_table.get(key)
                if existing is not None:
                    return existing
                node = self._append_node(gate, fins)
                self._hash_table[key] = node
                return node
            return self._append_node(gate, fins)
        if self._hash_cons:
            return self._emit_hashed(gate, fins)
        return self._append_node(gate, fins)

    def add_gates_bulk(
        self, items: Iterable[Tuple[Gate, Sequence[int]]]
    ) -> List[int]:
        """Append a whole netlist of nodes in one call.

        ``items`` yields ``(gate, fanins)`` pairs; a fanin id ``>= the
        node count at entry`` refers to the *j*-th batch item's result
        (``j = id - base``), i.e. the id it would receive without
        hash-consing — so generators can precompute ids and the batch
        stays a plain data structure.  ``Gate.PI`` entries (empty
        fanins) and T1 cells/taps are allowed; POs are not (bind them
        after the call).

        Returns the resolved node id per item.  Without ``hash_cons``
        this is the flat fast path: the batch accumulates in local
        buffers and commits to the struct-of-arrays with a handful of
        bulk extends and one epoch bump, producing a network
        node-for-node identical to the equivalent ``add_gate``/
        ``add_pi`` loop — and the batch is atomic: a bad item leaves
        the network untouched.  With ``hash_cons`` items are folded/
        deduped exactly as ``add_gate`` would (per-item, not atomic),
        and the returned ids reflect the folding.
        """
        out_ids: List[int] = []
        base = len(self._codes)
        if self._hash_cons:
            for gate, fins in items:
                tfins = tuple(
                    out_ids[f - base] if f >= base else f for f in fins
                )
                if gate is Gate.PI:
                    if tfins:
                        raise NetworkError("PI takes no fanins")
                    out_ids.append(self.add_pi())
                elif gate is Gate.T1_CELL:
                    check_arity(gate, len(tfins))
                    out_ids.append(self.add_t1_cell(*tfins))
                else:
                    out_ids.append(self.add_gate(gate, tfins))
            return out_ids

        codes = self._codes
        fout = self._fanout
        refs = self._struct_refs
        code_by_gate = CODE_BY_GATE
        tap_codes = T1_TAP_CODES
        # batch accumulators — committed with bulk extends on success
        acc_codes = bytearray()
        acc_deg: List[int] = []
        acc_pool: List[int] = []
        new_fout: List[Dict[int, int]] = []
        new_pis: List[int] = []
        #: pre-batch fanin -> {consumer: multiplicity}; merged at commit
        #: so a failed batch leaves the maintained indices untouched
        pre_fout: Dict[int, Dict[int, int]] = {}
        #: batch index -> duplicate-edge surplus, so commit can compute
        #: refcounts with ``len(fanout_dict)`` instead of summing values
        dup_refs: Dict[int, int] = {}
        # per-enum memos: id() keys hash in C, Gate.__hash__ does not;
        # (gate, arity) validation shares the same int-keyed set
        code_memo: Dict[int, int] = {}
        arity_ok: Set[int] = set()
        put_code = acc_codes.append
        put_deg = acc_deg.append
        put_pool = acc_pool.extend
        put_fout = new_fout.append
        get_code = code_memo.get
        node = base
        try:
            for gate, fins in items:
                nf = len(fins)
                gkey = id(gate)
                code = get_code(gkey)
                if code is None:
                    code = code_memo[gkey] = code_by_gate[gate]
                akey = (gkey << 5) | nf  # arity <= MAX_VARIADIC_ARITY < 32
                if akey not in arity_ok:
                    check_arity(gate, nf)
                    arity_ok.add(akey)
                if code in tap_codes:
                    t = fins[0]
                    tcode = acc_codes[t - base] if t >= base else codes[t]
                    if tcode != _C_T1_CELL:
                        raise NetworkError(
                            "T1 tap fanin must be a T1_CELL node"
                        )
                # per-edge effects; out-of-range batch refs (forward or
                # self) surface as IndexError on the accumulator lists.
                # Refcounts and free status of batch nodes are derived
                # from the fanout dicts at commit, not tracked per edge.
                for f in fins:
                    if f >= base:
                        j = f - base
                        dj = new_fout[j]
                        if node in dj:
                            dj[node] += 1
                            dup_refs[j] = dup_refs.get(j, 0) + 1
                        else:
                            dj[node] = 1
                    elif f >= 0:
                        df = pre_fout.get(f)
                        if df is None:
                            df = pre_fout[f] = {}
                        df[node] = df.get(node, 0) + 1
                    else:
                        raise NetworkError(f"fanin {f} does not exist")
                put_code(code)
                put_deg(nf)
                put_pool(fins)
                put_fout({})
                if code == _C_PI:
                    new_pis.append(node)
                node += 1
        except IndexError:
            raise NetworkError(
                "batch fanin references this or a later batch item"
            ) from None
        if node == base:
            return out_ids
        out_ids = list(range(base, node))
        # commit
        codes.extend(acc_codes)
        acc_off = list(accumulate(acc_deg, initial=len(self._pool)))
        self._off.extend(acc_off[:-1])
        self._deg.extend(acc_deg)
        self._pool.extend(acc_pool)
        self._tuples.extend([None] * len(out_ids))
        fout.extend(new_fout)
        refs.extend(map(len, new_fout))
        for j, extra in dup_refs.items():
            refs[base + j] += extra
        for f, edges in pre_fout.items():
            df = fout[f]
            total = 0
            for consumer, mult in edges.items():
                df[consumer] = df.get(consumer, 0) + mult
                total += mult
            refs[f] += total
        self._pis.extend(new_pis)
        free = self._free
        free.difference_update(pre_fout)
        pi_code = _C_PI
        free.update(
            base + j
            for j, d in enumerate(new_fout)
            if not d and acc_codes[j] != pi_code
        )
        self._epoch += 1
        return out_ids

    def add_t1_cell(self, a: int, b: int, c: int) -> int:
        """Append a T1 cell block over leaves (a, b, c); returns the cell id."""
        fins = (a, b, c)
        n = len(self._codes)
        for f in fins:
            if not 0 <= f < n:
                raise NetworkError(f"fanin {f} does not exist")
        if self._hash_cons:
            key = (Gate.T1_CELL, fins)
            existing = self._hash_table.get(key)
            if existing is not None:
                return existing
            node = self._append_node(Gate.T1_CELL, fins)
            self._hash_table[key] = node
            return node
        return self._new_node(Gate.T1_CELL, fins)

    def add_t1_tap(self, cell: int, tap: Gate) -> int:
        if not is_t1_tap(tap):
            raise NetworkError(f"{tap.name} is not a T1 tap")
        return self.add_gate(tap, (cell,))

    # convenience builders used heavily by circuit generators -----------------

    def add_not(self, a: int) -> int:
        return self.add_gate(Gate.NOT, (a,))

    def add_buf(self, a: int) -> int:
        return self.add_gate(Gate.BUF, (a,))

    def add_and(self, *fanins: int) -> int:
        return self.add_gate(Gate.AND, fanins)

    def add_or(self, *fanins: int) -> int:
        return self.add_gate(Gate.OR, fanins)

    def add_xor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XOR, fanins)

    def add_nand(self, *fanins: int) -> int:
        return self.add_gate(Gate.NAND, fanins)

    def add_nor(self, *fanins: int) -> int:
        return self.add_gate(Gate.NOR, fanins)

    def add_xnor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XNOR, fanins)

    def add_maj3(self, a: int, b: int, c: int) -> int:
        return self.add_gate(Gate.MAJ3, (a, b, c))

    def add_mux(self, sel: int, d0: int, d1: int) -> int:
        """2:1 multiplexer out = sel ? d1 : d0, built from basic gates."""
        ns = self.add_not(sel)
        t0 = self.add_and(ns, d0)
        t1 = self.add_and(sel, d1)
        return self.add_or(t0, t1)

    def add_po(self, node: int, name: Optional[str] = None) -> int:
        """Mark *node* as a primary output; returns the PO index."""
        if not 0 <= node < len(self._codes):
            raise NetworkError(f"PO target {node} does not exist")
        if self._codes[node] == _C_T1_CELL:
            raise NetworkError("a T1_CELL has no single output; tap it first")
        self._pos.append(node)
        self._po_names.append(name)
        index = len(self._pos) - 1
        self._po_pos.setdefault(node, []).append(index)
        self._free.discard(node)
        return index

    # -- names ------------------------------------------------------------------

    def set_name(self, node: int, name: str) -> None:
        self._names[node] = name

    def get_name(self, node: int) -> Optional[str]:
        return self._names.get(node)

    # -- structure queries -------------------------------------------------------

    def gate(self, node: int) -> Gate:
        return GATES_BY_CODE[self._codes[node]]

    def fanin(self, node: int) -> Tuple[int, ...]:
        return self._fanin_view[node]

    def is_pi(self, node: int) -> bool:
        return self._codes[node] == _C_PI

    def is_const(self, node: int) -> bool:
        return node in (CONST0, CONST1)

    def is_logic(self, node: int) -> bool:
        return self._codes[node] not in SOURCE_CODES

    def t1_cells(self) -> List[int]:
        cell = _C_T1_CELL
        return [n for n, c in enumerate(self._codes) if c == cell]

    def t1_taps_of(self, cell: int) -> List[int]:
        codes = self._codes
        off = self._off
        pool = self._pool
        tap_codes = T1_TAP_CODES
        return sorted(
            n
            for n in self._fanout[cell]
            if codes[n] in tap_codes and pool[off[n]] == cell
        )

    # -- maintained fanout index ------------------------------------------------

    def fanout(self, node: int) -> Tuple[int, ...]:
        """Consumers of *node* (each repeated per fanin multiplicity)."""
        out: List[int] = []
        for consumer in sorted(self._fanout[node]):
            out.extend([consumer] * self._fanout[node][consumer])
        return tuple(out)

    def fanout_count(self, node: int) -> int:
        """Reference count of *node*: fanin references plus PO references."""
        return self._struct_refs[node] + len(self._po_pos.get(node, ()))

    def compute_fanouts(self) -> List[List[int]]:
        """``fanouts[u]`` = list of nodes having u as a fanin (with repeats).

        Materialised from the CSR arrays and cached per epoch — treat
        the result as immutable.
        """
        if (
            self._fanout_lists_cache is not None
            and self._fanout_lists_epoch == self._epoch
        ):
            return self._fanout_lists_cache
        n = len(self._codes)
        off = self._off
        deg = self._deg
        pool = self._pool
        fanouts: List[List[int]] = [[] for _ in range(n)]
        for node in range(n):
            o = off[node]
            for j in range(o, o + deg[node]):
                fanouts[pool[j]].append(node)
        self._fanout_lists_cache = fanouts
        self._fanout_lists_epoch = self._epoch
        return fanouts

    def compute_fanout_counts(self) -> List[int]:
        """Per-node reference counts (fanins + POs); a fresh mutable list."""
        counts = list(self._struct_refs)
        for po in self._pos:
            counts[po] += 1
        return counts

    # -- cached analyses ---------------------------------------------------------

    def topological_order(self) -> List[int]:
        """All nodes in a fanin-before-fanout order (Kahn's algorithm).

        Runs array-native over the CSR storage (counting-sort fanout CSR
        + int-array worklist).  Includes dead nodes; raises
        :class:`CycleError` on combinational loops.  Cached per mutation
        epoch — treat the result as immutable.
        """
        if self._topo_cache is not None and self._topo_epoch == self._epoch:
            return self._topo_cache
        n = len(self._codes)
        off = self._off
        deg = self._deg
        pool = self._pool
        # reverse (fanout) CSR by counting sort — consumer ids ascending
        # per driver, multiplicities adjacent, same order the fanout-list
        # materialisation produces
        counts = [0] * n
        for v in range(n):
            o = off[v]
            for j in range(o, o + deg[v]):
                counts[pool[j]] += 1
        starts = [0] * (n + 1)
        s = 0
        for i in range(n):
            starts[i] = s
            s += counts[i]
        starts[n] = s
        fo = [0] * s
        ptr = starts[:n]
        for v in range(n):
            o = off[v]
            for j in range(o, o + deg[v]):
                f = pool[j]
                fo[ptr[f]] = v
                ptr[f] += 1
        indeg = list(deg)
        order = [i for i in range(n) if indeg[i] == 0]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for j in range(starts[u], starts[u + 1]):
                v = fo[j]
                indeg[v] -= 1
                if indeg[v] == 0:
                    order.append(v)
        if len(order) != n:
            raise CycleError("network contains a combinational cycle")
        self._topo_cache = order
        self._topo_epoch = self._epoch
        return order

    def levels(self) -> List[int]:
        """Logic level of every node (constants/PIs are 0; taps inherit).

        Cached per mutation epoch — treat the result as immutable.
        """
        if self._levels_cache is not None and self._levels_epoch == self._epoch:
            return self._levels_cache
        order = self.topological_order()
        lvl = [0] * len(self._codes)
        codes = self._codes
        off = self._off
        deg = self._deg
        pool = self._pool
        tap_codes = T1_TAP_CODES
        for node in order:
            d = deg[node]
            if not d:
                continue  # lvl already 0
            o = off[node]
            if codes[node] in tap_codes:
                lvl[node] = lvl[pool[o]]
            else:
                best = 0
                for j in range(o, o + d):
                    v = lvl[pool[j]]
                    if v > best:
                        best = v
                lvl[node] = best + 1
        self._levels_cache = lvl
        self._levels_epoch = self._epoch
        return lvl

    def depth(self) -> int:
        """Maximum level over primary outputs."""
        if not self._pos:
            return 0
        lvl = self.levels()
        return max(lvl[po] for po in self._pos)

    def structural_hash(self) -> str:
        """Canonical content hash of the live network (64-hex SHA-256).

        The hash covers exactly the semantic content of the network as a
        function of its interface: gate kinds, fanin *structure*
        (commutative fanins contribute as an unordered multiset), the PI
        interface (count and positional identity) and the PO bindings in
        slot order.  It deliberately excludes node ids, node/PO names,
        dead nodes and construction order, so it is invariant under
        :meth:`clone` and the id renumbering of :meth:`compact` /
        ``sweep``, while any semantic edit (gate change, rewiring, PO
        re-binding or re-ordering, added output) produces a different
        hash.  Two networks with equal hashes compute the same functions
        through the same live structure.

        Built from SHA-256, not Python's ``hash()``, so the value is
        stable across processes and interpreter runs — it is the
        content-address the service layer keys its cross-run result
        cache on.  Cached per (mutation epoch, PO bindings); repeated
        calls on an unchanged network are O(1).
        """
        key = (self._epoch, tuple(self._pos), tuple(self._pis))
        if self._shash_cache is not None and self._shash_key == key:
            return self._shash_cache
        digests: List[Optional[bytes]] = [None] * len(self._codes)
        digests[CONST0] = hashlib.sha256(b"CONST0").digest()
        digests[CONST1] = hashlib.sha256(b"CONST1").digest()
        for index, pi in enumerate(self._pis):
            digests[pi] = hashlib.sha256(b"PI:%d" % index).digest()
        codes = self._codes
        off = self._off
        deg = self._deg
        pool = self._pool
        commutative = _COMMUTATIVE_CODES
        gates_by_code = GATES_BY_CODE
        sha256 = hashlib.sha256
        for node in self.topological_order():
            if digests[node] is not None:
                continue
            c = codes[node]
            o = off[node]
            fins = [digests[pool[j]] for j in range(o, o + deg[node])]
            if c in commutative:
                fins.sort()
            digests[node] = sha256(
                gates_by_code[c].name.encode() + b"(" + b"".join(fins) + b")"
            ).digest()
        h = sha256(b"NET:%d:%d|" % (len(self._pis), len(self._pos)))
        for po in self._pos:
            h.update(digests[po])
        result = h.hexdigest()
        self._shash_cache = result
        self._shash_key = key
        return result

    # -- mutation ------------------------------------------------------------------

    def _write_fanins(self, node: int, new_fins: Tuple[int, ...]) -> None:
        """Degree-preserving CSR rewrite of one node's fanin span."""
        o = self._off[node]
        self._pool[o : o + len(new_fins)] = array("q", new_fins)
        self._tuples[node] = new_fins

    def _update_free(self, node: int) -> None:
        """Re-derive one node's free-list membership from its counts."""
        if (
            self._struct_refs[node] == 0
            and not self._po_pos.get(node)
            and self._codes[node] not in SOURCE_CODES
        ):
            self._free.add(node)
        else:
            self._free.discard(node)

    def substitute(self, old: int, new: int) -> int:
        """Redirect every reference to *old* (fanins and POs) to *new*.

        O(fanout of *old*) via the maintained index.  Returns the number
        of rewritten references.  The *old* node stays in the arrays until
        a :meth:`compact`; callers should not re-use it.
        """
        if old == new:
            return 0
        n = len(self._codes)
        if not 0 <= new < n:
            raise NetworkError(f"substitute target {new} does not exist")
        if not 0 <= old < n:
            return 0
        rewritten = 0
        consumers = self._fanout[old]
        view = self._fanin_view
        if consumers:
            moved = 0
            new_out = self._fanout[new]
            for node, mult in list(consumers.items()):
                fins = view[node]
                new_fins = tuple(new if f == old else f for f in fins)
                self._hash_retable(node, fins, new_fins)
                self._write_fanins(node, new_fins)
                new_out[node] = new_out.get(node, 0) + mult
                rewritten += mult
                moved += mult
            self._fanout[old] = {}
            self._struct_refs[old] -= moved
            self._struct_refs[new] += moved
            self._epoch += 1
        po_slots = self._po_pos.pop(old, None)
        if po_slots:
            for i in po_slots:
                self._pos[i] = new
            self._po_pos.setdefault(new, []).extend(po_slots)
            rewritten += len(po_slots)
        if rewritten:
            self._update_free(old)
            self._update_free(new)
        return rewritten

    def replace_fanin(self, node: int, old: int, new: int) -> None:
        """Rewrite one node's fanin tuple only (every occurrence of *old*)."""
        fins = self._fanin_view[node]
        if old not in fins:
            raise NetworkError(f"{old} is not a fanin of {node}")
        if not 0 <= new < len(self._codes):
            raise NetworkError(f"fanin {new} does not exist")
        if old == new:
            return
        mult = fins.count(old)
        new_fins = tuple(new if f == old else f for f in fins)
        self._hash_retable(node, fins, new_fins)
        self._write_fanins(node, new_fins)
        out = self._fanout[old]
        out[node] -= mult
        if out[node] == 0:
            del out[node]
        new_out = self._fanout[new]
        new_out[node] = new_out.get(node, 0) + mult
        self._struct_refs[old] -= mult
        self._struct_refs[new] += mult
        self._update_free(old)
        self._update_free(new)
        self._epoch += 1

    def _hash_retable(
        self, node: int, old_fins: Tuple[int, ...], new_fins: Tuple[int, ...]
    ) -> None:
        """Keep the structural hash table consistent across a fanin rewrite.

        The stale key is dropped (only if it still points at *node*) and
        the new key inserted unless another node already claims it — the
        first node keeps the slot, so lookups stay deterministic.
        """
        if not self._hash_cons:
            return
        gate = GATES_BY_CODE[self._codes[node]]
        old_key = (gate, tuple(sorted(old_fins)) if gate in _COMMUTATIVE else old_fins)
        if self._hash_table.get(old_key) == node:
            del self._hash_table[old_key]
        new_key = (gate, tuple(sorted(new_fins)) if gate in _COMMUTATIVE else new_fins)
        self._hash_table.setdefault(new_key, node)

    def _rebuild_hash_table(self) -> None:
        table: Dict[Tuple, int] = {}
        view = self._fanin_view
        source = SOURCE_CODES
        for node, c in enumerate(self._codes):
            if c in source:
                continue
            gate = GATES_BY_CODE[c]
            fins = view[node]
            key = (gate, tuple(sorted(fins)) if gate in _COMMUTATIVE else fins)
            table.setdefault(key, node)
        self._hash_table = table

    # -- compaction -----------------------------------------------------------------

    def live_nodes(self) -> set:
        """Nodes reachable from the POs, plus constants and PIs.

        A T1 cell is live if any of its taps is live (the tap's fanin
        keeps it reachable); a live cell does not by itself keep dead
        sibling taps alive.  PIs are always retained (interface
        stability).
        """
        seen: set = set()
        stack = list(self._pos)
        off = self._off
        deg = self._deg
        pool = self._pool
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            o = off[u]
            stack.extend(pool[o : o + deg[u]])
        seen.add(CONST0)
        seen.add(CONST1)
        seen.update(self._pis)
        return seen

    def _dead_nodes(self) -> bytearray:
        """Per-node dead flags by refcount cascade from the free-list.

        Seeds are the maintained free set (the exact zero-fanout
        non-source nodes); each death propagates fanin-reference
        decrements, so the result equals the complement of
        :meth:`live_nodes` on any DAG — pure int-array work, no
        reachability set.
        """
        n = len(self._codes)
        dead = bytearray(n)
        counts = self.compute_fanout_counts()
        codes = self._codes
        off = self._off
        deg = self._deg
        pool = self._pool
        source = SOURCE_CODES
        stack = list(self._free)
        while stack:
            u = stack.pop()
            if dead[u]:
                continue
            dead[u] = 1
            o = off[u]
            for j in range(o, o + deg[u]):
                f = pool[j]
                counts[f] -= 1
                if counts[f] == 0 and not dead[f] and codes[f] not in source:
                    stack.append(f)
        return dead

    def compact(self) -> NodeMap:
        """Remove dead nodes in place; returns the old-id -> new-id remap.

        Live node ids are re-assigned as constants, then PIs in interface
        order, then the remaining live nodes in topological order (the
        same id discipline as a from-scratch ``sweep`` rebuild, so the two
        are interchangeable).  Dead nodes are found by the free-list
        refcount cascade and squeezed out by pointer fix-up over the flat
        arrays; they are absent from the returned
        :class:`~repro.network.nodemap.NodeMap` and their names are
        dropped.
        """
        order = self.topological_order()
        n = len(self._codes)
        dead = self._dead_nodes()
        remap: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
        seq: List[int] = [CONST0, CONST1]
        for pi in self._pis:
            remap[pi] = len(seq)
            seq.append(pi)
        for node in order:
            if node in remap or dead[node]:
                continue
            remap[node] = len(seq)
            seq.append(node)
        remap_arr = array("q", bytes(8 * n))
        for old, new in remap.items():
            remap_arr[old] = new
        # pointer fix-up: rewrite the arrays in place (the views alias them)
        old_off = self._off[:]
        old_deg = self._deg[:]
        old_pool = self._pool[:]
        new_n = len(seq)
        new_codes = bytearray(new_n)
        new_off = array("q", bytes(8 * new_n))
        new_deg = array("q", bytes(8 * new_n))
        new_pool = array("q")
        codes = self._codes
        for new_id, old_id in enumerate(seq):
            new_codes[new_id] = codes[old_id]
            o = old_off[old_id]
            d = old_deg[old_id]
            new_off[new_id] = len(new_pool)
            new_deg[new_id] = d
            for j in range(o, o + d):
                new_pool.append(remap_arr[old_pool[j]])
        self._codes[:] = new_codes
        self._off[:] = new_off
        self._deg[:] = new_deg
        self._pool[:] = new_pool
        self._tuples[:] = [None] * new_n
        self._pis = [remap[pi] for pi in self._pis]
        self._pos = [remap[po] for po in self._pos]
        self._po_pos = {}
        for i, po in enumerate(self._pos):
            self._po_pos.setdefault(po, []).append(i)
        self._names = {
            remap[u]: name for u, name in self._names.items() if u in remap
        }
        # rebuild the maintained indices from the compacted arrays
        self._fanout[:] = [dict() for _ in range(new_n)]
        self._struct_refs[:] = array("q", bytes(8 * new_n))
        fout = self._fanout
        refs = self._struct_refs
        pool = self._pool
        off = self._off
        deg = self._deg
        for node in range(new_n):
            o = off[node]
            for j in range(o, o + deg[node]):
                f = pool[j]
                out = fout[f]
                out[node] = out.get(node, 0) + 1
                refs[f] += 1
        # every surviving non-source node is referenced (that is what
        # liveness means), so the free-list empties
        self._free.clear()
        self._epoch += 1
        if self._hash_cons:
            self._rebuild_hash_table()
        return NodeMap(remap)

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the maintained indices match a from-scratch recomputation.

        Used by the differential tests and the benchmark harness; raises
        :class:`~repro.errors.NetworkError` on any divergence.
        """
        n = len(self._codes)
        if not (
            len(self._off)
            == len(self._deg)
            == len(self._tuples)
            == len(self._fanout)
            == len(self._struct_refs)
            == n
        ):
            raise NetworkError("kernel arrays out of sync")
        if len(self._pos) != len(self._po_names):
            raise NetworkError("PO name list out of sync")
        pool_len = len(self._pool)
        for node in range(n):
            o = self._off[node]
            d = self._deg[node]
            if o < 0 or d < 0 or o + d > pool_len:
                raise NetworkError(f"CSR span of node {node} out of bounds")
            cached = self._tuples[node]
            if cached is not None and cached != tuple(self._pool[o : o + d]):
                raise NetworkError(f"fanin tuple cache stale at node {node}")
        fresh_fanout: List[Dict[int, int]] = [{} for _ in range(n)]
        fresh_refs = [0] * n
        for node in range(n):
            o = self._off[node]
            for j in range(o, o + self._deg[node]):
                f = self._pool[j]
                if not 0 <= f < n:
                    raise NetworkError(f"fanin {f} of node {node} out of range")
                d = fresh_fanout[f]
                d[node] = d.get(node, 0) + 1
                fresh_refs[f] += 1
        for node in range(n):
            if fresh_fanout[node] != self._fanout[node]:
                raise NetworkError(
                    f"fanout index stale at node {node}: "
                    f"{self._fanout[node]} != {fresh_fanout[node]}"
                )
        if fresh_refs != list(self._struct_refs):
            raise NetworkError("reference counts stale")
        fresh_po_pos: Dict[int, List[int]] = {}
        for i, po in enumerate(self._pos):
            fresh_po_pos.setdefault(po, []).append(i)
        mine = {k: sorted(v) for k, v in self._po_pos.items() if v}
        if mine != fresh_po_pos:
            raise NetworkError("PO index stale")
        fresh_free = {
            node
            for node in range(n)
            if fresh_refs[node] == 0
            and not fresh_po_pos.get(node)
            and self._codes[node] not in SOURCE_CODES
        }
        if fresh_free != self._free:
            raise NetworkError(
                f"free-list stale: {sorted(self._free)} != {sorted(fresh_free)}"
            )
        if (
            self._fanout_lists_cache is not None
            and self._fanout_lists_epoch == self._epoch
        ):
            cached_lists = self._fanout_lists_cache
            self._fanout_lists_cache = None
            if self.compute_fanouts() != cached_lists:
                raise NetworkError("cached fanout lists stale or mutated")
        if self._topo_cache is not None and self._topo_epoch == self._epoch:
            cached = self._topo_cache
            self._topo_cache = None
            fresh = self.topological_order()
            if fresh != cached:
                raise NetworkError("cached topological order stale")
        if self._levels_cache is not None and self._levels_epoch == self._epoch:
            cached_lvl = self._levels_cache
            self._levels_cache = None
            fresh_lvl = self.levels()
            if fresh_lvl != cached_lvl:
                raise NetworkError("cached levels stale")
        try:
            dead = self._dead_nodes()
        except Exception:  # cyclic out-of-band edits: liveness undefined
            dead = None
        if dead is not None:
            live = self.live_nodes()
            cascade_live = {node for node in range(n) if not dead[node]}
            if cascade_live != live:
                raise NetworkError(
                    "free-list liveness cascade diverges from PO reachability"
                )
        if self._hash_cons:
            view = self._fanin_view
            for key, node in self._hash_table.items():
                gate, fins = key
                if self._codes[node] != CODE_BY_GATE[gate]:
                    raise NetworkError(f"hash table gate mismatch at {node}")
                actual = view[node]
                canon = (
                    tuple(sorted(actual)) if gate in _COMMUTATIVE else actual
                )
                if canon != fins:
                    raise NetworkError(f"hash table fanin mismatch at {node}")

    # -- misc -----------------------------------------------------------------------

    def clone(self) -> "LogicNetwork":
        out = LogicNetwork(self.name)
        # in-place copies: the clone's views alias the clone's containers
        out._codes[:] = self._codes
        out._off[:] = self._off
        out._deg[:] = self._deg
        out._pool[:] = self._pool
        out._tuples[:] = self._tuples
        out._pis = list(self._pis)
        out._pos = list(self._pos)
        out._po_names = list(self._po_names)
        out._names = dict(self._names)
        out._fanout[:] = [dict(d) for d in self._fanout]
        out._struct_refs[:] = self._struct_refs
        out._po_pos = {k: list(v) for k, v in self._po_pos.items()}
        out._free = set(self._free)
        out._epoch = self._epoch
        # analysis caches are immutable-by-convention: share them
        out._topo_cache = self._topo_cache
        out._topo_epoch = self._topo_epoch
        out._levels_cache = self._levels_cache
        out._levels_epoch = self._levels_epoch
        out._fanout_lists_cache = self._fanout_lists_cache
        out._fanout_lists_epoch = self._fanout_lists_epoch
        out._shash_cache = self._shash_cache
        out._shash_key = self._shash_key
        out._sim_schedule = self._sim_schedule
        out._sim_schedule_epoch = self._sim_schedule_epoch
        out._hash_cons = self._hash_cons
        out._hash_table = dict(self._hash_table)
        return out

    def stats(self) -> Dict[str, int]:
        from collections import Counter

        counter = Counter(GATES_BY_CODE[c].name for c in self._codes)
        return {
            "nodes": self.num_nodes(),
            "gates": self.num_gates(),
            "pis": len(self._pis),
            "pos": len(self._pos),
            "t1_cells": counter.get("T1_CELL", 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"LogicNetwork(name={self.name!r}, gates={s['gates']}, "
            f"pis={s['pis']}, pos={s['pos']}, t1={s['t1_cells']})"
        )


def flat_arrays(net) -> Tuple[bytearray, array, array, array]:
    """``(gate codes, fanin offsets, degrees, pool)`` of any network.

    On the flat kernel this returns the live raw containers (zero-copy;
    they alias the network, so snapshot them before mutating if you need
    stability).  On a tuple-layout network (e.g. the retained
    ``ReferenceLogicNetwork`` oracle) it builds an equivalent one-shot
    snapshot — the shared fallback for every array-native consumer
    (simulation schedule, cut enumeration, MFFC, balance, diff).
    """
    try:
        return net.gate_codes, *net.fanin_arrays()
    except AttributeError:
        codes = bytearray(CODE_BY_GATE[g] for g in net.gates)
        off = array("q")
        deg = array("q")
        pool = array("q")
        for fins in net.fanins:
            off.append(len(pool))
            deg.append(len(fins))
            pool.extend(fins)
        return codes, off, deg, pool
