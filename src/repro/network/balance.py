"""Associative tree balancing — a depth-optimisation pass.

In gate-level-pipelined SFQ, logic depth is not just latency: every level
of depth difference between reconvergent paths turns into path-balancing
DFFs.  Rebalancing associative chains (AND/OR/XOR trees built as linear
chains) therefore reduces *area*, not only delay.

The pass collects maximal single-fanout chains of one associative gate
kind and rebuilds them as depth-minimal trees whose arity matches the
target library (3-input AND/OR/XOR cells exist, so the trees are
ternary).  Leaf arrival levels are respected: a Huffman-style merge
always combines the currently-shallowest subtrees, which is optimal for
max-depth.

This is an *extension* beyond the paper (its flow maps the networks as
given); the ``bench_ablation_balance`` harness measures the interaction
with T1 detection.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.network.gates import CODE_BY_GATE, GATES_BY_CODE, Gate
from repro.network.logic_network import LogicNetwork, flat_arrays
from repro.network.nodemap import NodeMap

_ASSOCIATIVE = (Gate.AND, Gate.OR, Gate.XOR)
_ASSOC_CODES = frozenset(CODE_BY_GATE[g] for g in _ASSOCIATIVE)


def _collect_chain(
    codes: bytearray,
    off,
    deg,
    pool,
    root: int,
    code: int,
    fanout_counts: List[int],
) -> Tuple[List[int], List[int]]:
    """Maximal operator tree under *root*; returns (leaves, absorbed).

    Walks the CSR fanin pool directly (codes/off/deg/pool are the flat
    struct-of-arrays core of the network)."""
    leaves: List[int] = []
    absorbed: List[int] = []
    stack = [root]
    while stack:
        u = stack.pop()
        o = off[u]
        for j in range(o, o + deg[u]):
            f = pool[j]
            if codes[f] == code and fanout_counts[f] == 1:
                absorbed.append(f)
                stack.append(f)
            else:
                leaves.append(f)
    return leaves, absorbed


def balance(
    net: LogicNetwork, max_arity: int = 3
) -> Tuple[LogicNetwork, NodeMap]:
    """Rebalance associative chains into depth-minimal trees.

    Returns ``(new_network, old_to_new map)``; the result is functionally
    equivalent (same PO functions) with depth less than or equal to the
    input's.
    """
    # all four analyses come from the kernel's maintained/cached indices —
    # no per-pass rescans
    order = net.topological_order()
    lvl = net.levels()
    fanout_counts = net.compute_fanout_counts()
    fanouts = net.compute_fanouts()
    codes, off, deg, pool = flat_arrays(net)
    assoc_codes = _ASSOC_CODES
    out = net.clone()
    replaced: Dict[int, int] = {}

    for node in order:
        code = codes[node]
        if code not in assoc_codes:
            continue
        gate = GATES_BY_CODE[code]
        # only rebalance tree roots (their fanout is not absorbed upward)
        parent_absorbs = fanout_counts[node] == 1 and any(
            codes[p] == code for p in fanouts[node]
        )
        if parent_absorbs:
            continue
        leaves, absorbed = _collect_chain(
            codes, off, deg, pool, node, code, fanout_counts
        )
        if len(absorbed) < 1 or len(leaves) <= max_arity:
            continue
        # Huffman-style arity-k merge on (level, node); pad so that the
        # final merge is full (standard k-ary Huffman padding)
        resolved = [replaced.get(leaf, leaf) for leaf in leaves]
        heap = [(lvl[leaf], resolved[i]) for i, leaf in enumerate(leaves)]
        heapq.heapify(heap)
        k = max_arity
        while (len(heap) - 1) % (k - 1) != 0:
            k_eff = (len(heap) - 1) % (k - 1) + 1
            if k_eff < 2:
                break
            parts = [heapq.heappop(heap) for _ in range(k_eff)]
            merged = out.add_gate(gate, tuple(p[1] for p in parts))
            heapq.heappush(heap, (max(p[0] for p in parts) + 1, merged))
        while len(heap) > 1:
            take = min(k, len(heap))
            parts = [heapq.heappop(heap) for _ in range(take)]
            merged = out.add_gate(gate, tuple(p[1] for p in parts))
            heapq.heappush(heap, (max(p[0] for p in parts) + 1, merged))
        new_root = heap[0][1]
        out.substitute(node, new_root)
        replaced[node] = new_root

    # `out` is our private working copy: compact it in place instead of
    # paying sweep's second full clone
    mapping = out.compact()
    final = {}
    for old in range(net.num_nodes()):
        tgt = replaced.get(old, old)
        if tgt in mapping:
            final[old] = mapping[tgt]
    return out, NodeMap(final)
