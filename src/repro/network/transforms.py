"""Network transforms: AIG normal form and cut-based refactoring.

Two passes that mimic what a logic-synthesis frontend (ABC / mockturtle)
does to a netlist before technology mapping:

* :func:`to_aig_form` — decompose every gate into 2-input ANDs and
  inverters (the And-Inverter-Graph normal form) with structural hashing.
  The EPFL/ISCAS benchmarks the paper evaluates are distributed and
  optimised in this form; converting our structural generators to it
  reproduces the paper's *starting point* (see ablation A5: T1 detection
  finds different group counts on AIG-form networks, which explains the
  found/used differences against the published table).
* :func:`refactor` — classic MFFC refactoring: for each node, compute the
  function of its largest ≤ k-leaf cut, resynthesise it as a
  Minato-Morreale ISOP (AND-OR-NOT), and accept when that is smaller
  than the cone it replaces.  Equivalence-preserving by construction;
  validated by CEC in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.cuts import cached_cut_database
from repro.network.cleanup import strash
from repro.network.gates import Gate, is_t1_tap
from repro.network.isop import isop, synthesize_sop
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.mffc import MffcComputer


def to_aig_form(net: LogicNetwork) -> LogicNetwork:
    """Decompose into 2-input AND + NOT (structural AIG) and strash."""
    out = LogicNetwork(net.name)
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))

    def aig_and(a: int, b: int) -> int:
        return out.add_and(a, b)

    def aig_or(a: int, b: int) -> int:
        return out.add_not(out.add_and(out.add_not(a), out.add_not(b)))

    def aig_xor(a: int, b: int) -> int:
        na, nb = out.add_not(a), out.add_not(b)
        return aig_or(out.add_and(a, nb), out.add_and(na, b))

    def reduce_pairs(fn, values: List[int]) -> int:
        acc = values[0]
        for v in values[1:]:
            acc = fn(acc, v)
        return acc

    for node in net.topological_order():
        if node in mapping:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue
        fins = [mapping[f] for f in net.fanins[node]]
        if g is Gate.T1_CELL:
            mapping[node] = out.add_t1_cell(*fins)
        elif is_t1_tap(g):
            mapping[node] = out.add_t1_tap(fins[0], g)
        elif g is Gate.BUF:
            mapping[node] = fins[0]
        elif g is Gate.NOT:
            mapping[node] = out.add_not(fins[0])
        elif g is Gate.AND:
            mapping[node] = reduce_pairs(aig_and, fins)
        elif g is Gate.NAND:
            mapping[node] = out.add_not(reduce_pairs(aig_and, fins))
        elif g is Gate.OR:
            mapping[node] = reduce_pairs(aig_or, fins)
        elif g is Gate.NOR:
            mapping[node] = out.add_not(reduce_pairs(aig_or, fins))
        elif g is Gate.XOR:
            mapping[node] = reduce_pairs(aig_xor, fins)
        elif g is Gate.XNOR:
            mapping[node] = out.add_not(reduce_pairs(aig_xor, fins))
        elif g is Gate.MAJ3:
            a, b, c = fins
            mapping[node] = aig_or(
                aig_or(out.add_and(a, b), out.add_and(a, c)),
                out.add_and(b, c),
            )
        else:  # pragma: no cover - exhaustive
            raise AssertionError(g)
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    hashed, _ = strash(out)
    return hashed


def _cone_cost(net: LogicNetwork, nodes) -> int:
    """Gate count of a cone (BUFs free)."""
    return sum(
        1
        for n in nodes
        if net.gates[n] not in (Gate.BUF, Gate.PI, Gate.CONST0, Gate.CONST1)
    )


def _sop_gate_count(cubes) -> int:
    if not cubes:
        return 0
    inv_vars = set()
    ands = 0
    for c in cubes:
        lits = c.literals()
        ands += max(0, lits - 1)
        for i in range(32):
            if (c.neg >> i) & 1:
                inv_vars.add(i)
    return ands + max(0, len(cubes) - 1) + len(inv_vars)


def refactor(
    net: LogicNetwork,
    cut_size: int = 4,
    cuts_per_node: int = 8,
) -> Tuple[LogicNetwork, int]:
    """One refactoring pass; returns ``(new_network, accepted_rewrites)``.

    Nodes are visited in topological order; for each, the largest
    available cut is resynthesised via ISOP and the rewrite is accepted
    when it strictly reduces the gate count of the node's MFFC.
    """
    work = net.clone()
    # all analysis (cuts, MFFC, costs) runs on the frozen original; the
    # claimed-set keeps rewrites disjoint so the analysis stays valid,
    # and the epoch-cached database is shared with any other pass that
    # enumerated the same (unmutated) network
    db = cached_cut_database(net, k=cut_size, cuts_per_node=cuts_per_node)
    mffc = MffcComputer(net)
    accepted = 0
    claimed: set = set()

    for node in net.topological_order():
        g = net.gates[node]
        if g in (Gate.PI, Gate.CONST0, Gate.CONST1, Gate.BUF):
            continue
        if g is Gate.T1_CELL or is_t1_tap(g):
            continue
        if node in claimed:
            continue
        best: Optional[Tuple[int, tuple, list, set]] = None
        for cut in db[node]:
            if len(cut.leaves) < 2 or node in cut.leaves:
                continue
            if any(leaf in claimed for leaf in cut.leaves):
                continue
            cone = mffc.mffc(node, boundary=cut.leaves)
            if claimed & cone:
                continue
            old_cost = _cone_cost(net, cone)
            cubes = isop(cut.table)
            new_cost = _sop_gate_count(cubes)
            gain = old_cost - new_cost
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, cut.leaves, cubes, cone)
        if best is None:
            continue
        _gain, leaves, cubes, cone = best
        new_root = synthesize_sop(work, list(leaves), cubes)
        work.substitute(node, new_root)
        claimed |= cone
        claimed.add(node)
        accepted += 1

    swept, _ = strash(work)
    return swept, accepted
