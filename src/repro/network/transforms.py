"""Network transforms: AIG normal form and cut-based refactoring.

Two passes that mimic what a logic-synthesis frontend (ABC / mockturtle)
does to a netlist before technology mapping:

* :func:`to_aig_form` — decompose every gate into 2-input ANDs and
  inverters (the And-Inverter-Graph normal form) with structural hashing.
  The EPFL/ISCAS benchmarks the paper evaluates are distributed and
  optimised in this form; converting our structural generators to it
  reproduces the paper's *starting point* (see ablation A5: T1 detection
  finds different group counts on AIG-form networks, which explains the
  found/used differences against the published table).
* :func:`refactor` — classic MFFC refactoring: for each node, compute the
  function of its largest ≤ k-leaf cut, resynthesise it as a
  Minato-Morreale ISOP (AND-OR-NOT), and accept when that is smaller
  than the cone it replaces.  Equivalence-preserving by construction;
  validated by CEC in the tests.

:func:`refactor` is the *rewrite kernel* (ABC/mockturtle-style
priority-ordered rewriting): every node's candidate rewrites are scored
up front — cut function, memoised ISOP cover
(:func:`~repro.network.isop.cached_sop`) and gain — and pushed into a
priority queue that is drained with lazy revalidation: entries whose
node was claimed by an earlier acceptance are dropped on pop, entries
whose best candidate got blocked fall back to their next-best unblocked
candidate, and (in max-gain order) entries whose attainable gain shrank
are re-keyed and re-queued instead of being applied stale.  With the
default ``priority="topo"`` the queue drains in topological order and
the kernel is **bit-identical** to :func:`refactor_reference` (the seed
single-sweep implementation, retained as the differential oracle):
identical accepted rewrites, identical strashed result.
``priority="gain"`` drains by descending gain — a different (still
equivalence-preserving, CEC-validated) acceptance order.

Multi-pass refactoring (``passes > 1``) is incremental: between passes
the cut database is carried through the strash id remap with
:meth:`~repro.network.cuts.CutDatabase.remap` and MFFC cones with
:meth:`~repro.network.mffc.MffcComputer.carry_over`, so analyses are
re-enumerated only inside the structural neighbourhood
(:func:`~repro.network.traversal.structural_diff`) of the accepted
rewrites instead of from scratch per pass.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.network.cleanup import strash
from repro.network.cuts import cached_cut_database, install_cut_database
from repro.network.gates import CODE_BY_GATE, Gate, T1_TAP_CODES, is_t1_tap
from repro.network.isop import cached_sop_bits, isop, sop_gate_count, synthesize_sop
from repro.network.logic_network import CONST0, CONST1, LogicNetwork, flat_arrays
from repro.network.mffc import MffcComputer
from repro.network.traversal import structural_diff


def to_aig_form(net: LogicNetwork) -> LogicNetwork:
    """Decompose into 2-input AND + NOT (structural AIG) and strash."""
    out = LogicNetwork(net.name)
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))

    def aig_and(a: int, b: int) -> int:
        return out.add_and(a, b)

    def aig_or(a: int, b: int) -> int:
        return out.add_not(out.add_and(out.add_not(a), out.add_not(b)))

    def aig_xor(a: int, b: int) -> int:
        na, nb = out.add_not(a), out.add_not(b)
        return aig_or(out.add_and(a, nb), out.add_and(na, b))

    def reduce_pairs(fn, values: List[int]) -> int:
        acc = values[0]
        for v in values[1:]:
            acc = fn(acc, v)
        return acc

    for node in net.topological_order():
        if node in mapping:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue
        fins = [mapping[f] for f in net.fanins[node]]
        if g is Gate.T1_CELL:
            mapping[node] = out.add_t1_cell(*fins)
        elif is_t1_tap(g):
            mapping[node] = out.add_t1_tap(fins[0], g)
        elif g is Gate.BUF:
            mapping[node] = fins[0]
        elif g is Gate.NOT:
            mapping[node] = out.add_not(fins[0])
        elif g is Gate.AND:
            mapping[node] = reduce_pairs(aig_and, fins)
        elif g is Gate.NAND:
            mapping[node] = out.add_not(reduce_pairs(aig_and, fins))
        elif g is Gate.OR:
            mapping[node] = reduce_pairs(aig_or, fins)
        elif g is Gate.NOR:
            mapping[node] = out.add_not(reduce_pairs(aig_or, fins))
        elif g is Gate.XOR:
            mapping[node] = reduce_pairs(aig_xor, fins)
        elif g is Gate.XNOR:
            mapping[node] = out.add_not(reduce_pairs(aig_xor, fins))
        elif g is Gate.MAJ3:
            a, b, c = fins
            mapping[node] = aig_or(
                aig_or(out.add_and(a, b), out.add_and(a, c)),
                out.add_and(b, c),
            )
        else:  # pragma: no cover - exhaustive
            raise AssertionError(g)
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    hashed, _ = strash(out)
    return hashed


def _cone_cost(net: LogicNetwork, nodes) -> int:
    """Gate count of a cone (BUFs free)."""
    return sum(
        1
        for n in nodes
        if net.gates[n] not in (Gate.BUF, Gate.PI, Gate.CONST0, Gate.CONST1)
    )


#: historical name — the fixed implementation lives in
#: :func:`repro.network.isop.sop_gate_count` (set-bit iteration via mask
#: union instead of a 32-position scan per cube)
_sop_gate_count = sop_gate_count

#: skip gates that are free, interface or already-mapped
_SKIP_GATES = (Gate.PI, Gate.CONST0, Gate.CONST1, Gate.BUF)

#: code-level twins for the array-native kernel: nodes the queue never
#: scores (free/interface/mapped) and nodes a cone counts as free
_SKIP_CODES = frozenset(
    {CODE_BY_GATE[g] for g in _SKIP_GATES} | {CODE_BY_GATE[Gate.T1_CELL]}
    | T1_TAP_CODES
)
_FREE_CODES = frozenset(
    CODE_BY_GATE[g] for g in (Gate.BUF, Gate.PI, Gate.CONST0, Gate.CONST1)
)


def refactor_reference(
    net: LogicNetwork,
    cut_size: int = 4,
    cuts_per_node: int = 8,
) -> Tuple[LogicNetwork, int]:
    """The seed single-sweep refactoring — the kernel's differential oracle.

    Visits nodes in topological order; for each, every cut is scored
    against the *current* claimed-set (unmemoised ISOP per candidate)
    and the best positive-gain rewrite is applied immediately.
    :func:`refactor` with ``priority="topo"`` is pinned bit-identical to
    this (same accepted count, same strashed result).
    """
    work = net.clone()
    # all analysis (cuts, MFFC, costs) runs on the frozen original; the
    # claimed-set keeps rewrites disjoint so the analysis stays valid,
    # and the epoch-cached database is shared with any other pass that
    # enumerated the same (unmutated) network
    db = cached_cut_database(net, k=cut_size, cuts_per_node=cuts_per_node)
    mffc = MffcComputer(net)
    accepted = 0
    claimed: set = set()

    for node in net.topological_order():
        g = net.gates[node]
        if g in _SKIP_GATES:
            continue
        if g is Gate.T1_CELL or is_t1_tap(g):
            continue
        if node in claimed:
            continue
        best: Optional[Tuple[int, tuple, list, set]] = None
        for cut in db[node]:
            if len(cut.leaves) < 2 or node in cut.leaves:
                continue
            if any(leaf in claimed for leaf in cut.leaves):
                continue
            cone = mffc.mffc(node, boundary=cut.leaves)
            if claimed & cone:
                continue
            old_cost = _cone_cost(net, cone)
            cubes = isop(cut.table)
            new_cost = _sop_gate_count(cubes)
            gain = old_cost - new_cost
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, cut.leaves, cubes, cone)
        if best is None:
            continue
        _gain, leaves, cubes, cone = best
        new_root = synthesize_sop(work, list(leaves), cubes)
        work.substitute(node, new_root)
        claimed |= cone
        claimed.add(node)
        accepted += 1

    swept, _ = strash(work)
    return swept, accepted


def _score_node(codes, row_leaves, row_bits, rows, mffc, node) -> List[tuple]:
    """All positive-gain candidates of *node*, in cut order.

    Each entry is ``(gain, cut_index, leaves, cubes, cone)``, scored
    against an empty claimed-set (the optimistic upper bound the queue
    keys on); the pop-time filter re-applies the live claimed-set.
    Reads the cut database's flat row storage (*rows* indexes into the
    shared *row_leaves*/*row_bits* stores) and the gate-code bytearray —
    no ``Cut``/``TruthTable`` boxes, SOP covers keyed by raw ints.
    """
    cands = []
    free = _FREE_CODES
    for idx, ri in enumerate(rows):
        leaves = row_leaves[ri]
        if len(leaves) < 2 or node in leaves:
            continue
        cone = mffc.mffc(node, boundary=leaves)
        old_cost = 0
        for n in cone:
            if codes[n] not in free:
                old_cost += 1
        cubes, new_cost = cached_sop_bits(row_bits[ri], len(leaves))
        gain = old_cost - new_cost
        if gain > 0:
            cands.append((gain, idx, leaves, cubes, cone))
    return cands


def _pick_unblocked(cands, claimed) -> Optional[tuple]:
    """Best candidate whose leaves and cone avoid *claimed*.

    First-max in cut order — the reference's tie-break (strict ``>``
    keeps the earliest cut achieving the maximum gain).
    """
    best = None
    for cand in cands:
        leaves = cand[2]
        blocked = False
        for leaf in leaves:
            if leaf in claimed:
                blocked = True
                break
        if blocked or claimed & cand[4]:
            continue
        if best is None or cand[0] > best[0]:
            best = cand
    return best


def _refactor_pass(
    net: LogicNetwork,
    db,
    mffc: MffcComputer,
    priority: str,
    stats: Dict[str, int],
) -> Tuple[LogicNetwork, int]:
    """One queue-driven rewrite pass; returns ``(mutated work copy, accepted)``."""
    work = net.clone()
    codes = flat_arrays(net)[0]
    row_leaves, row_bits = db.raw_rows()
    topo = net.topological_order()
    rank = {node: i for i, node in enumerate(topo)}
    heap: List[tuple] = []
    cands_of: Dict[int, List[tuple]] = {}

    for node in topo:
        if codes[node] in _SKIP_CODES:
            continue
        cands = _score_node(
            codes, row_leaves, row_bits, db.node_rows(node), mffc, node
        )
        if not cands:
            continue
        cands_of[node] = cands
        best_gain = max(c[0] for c in cands)
        if priority == "topo":
            key = (rank[node], 0)
        else:
            key = (-best_gain, rank[node])
        heap.append((key, node, best_gain))
    heapq.heapify(heap)
    stats["scored_nodes"] += len(cands_of)

    claimed: set = set()
    accepted = 0
    while heap:
        _key, node, queued_gain = heapq.heappop(heap)
        if node in claimed:
            stats["dropped_claimed"] += 1
            continue
        best = _pick_unblocked(cands_of[node], claimed)
        if best is None:
            stats["dropped_blocked"] += 1
            continue
        gain, _idx, leaves, cubes, cone = best
        if priority == "gain" and gain < queued_gain:
            # lazy revalidation: the optimistic key went stale (an
            # acceptance blocked the queued best) — re-key and re-queue
            # instead of applying out of priority order
            stats["requeued"] += 1
            heapq.heappush(heap, ((-gain, rank[node]), node, gain))
            continue
        new_root = synthesize_sop(work, list(leaves), cubes)
        work.substitute(node, new_root)
        claimed |= cone
        claimed.add(node)
        accepted += 1
    return work, accepted


_STAT_KEYS = (
    "passes_run",
    "accepted",
    "scored_nodes",
    "dropped_claimed",
    "dropped_blocked",
    "requeued",
    "cone_cache_hits",
    "cone_cache_misses",
    "cones_carried",
    "cuts_reused",
    "cuts_rebuilt",
)


def refactor(
    net: LogicNetwork,
    cut_size: int = 4,
    cuts_per_node: int = 8,
    passes: int = 1,
    priority: str = "topo",
    stats: Optional[Dict[str, int]] = None,
) -> Tuple[LogicNetwork, int]:
    """Priority-queue refactoring; returns ``(new_network, accepted_rewrites)``.

    ``priority="topo"`` (default) drains the queue in topological order
    and is bit-identical to :func:`refactor_reference`;
    ``priority="gain"`` drains by descending gain (equivalence-preserving
    but a different acceptance order).  ``passes`` runs up to that many
    rewrite passes, carrying cut/MFFC analyses incrementally across the
    inter-pass strash (stopping early once a pass accepts nothing).
    Pass a dict as ``stats`` to receive kernel counters (scored nodes,
    queue invalidations, analysis reuse).
    """
    if priority not in ("topo", "gain"):
        raise NetworkError(f"unknown refactor priority: {priority!r}")
    if passes < 1:
        raise NetworkError("refactor needs at least one pass")
    st: Dict[str, int] = stats if stats is not None else {}
    for key in _STAT_KEYS:
        st.setdefault(key, 0)

    current = net
    db = cached_cut_database(current, k=cut_size, cuts_per_node=cuts_per_node)
    mffc = MffcComputer(current)
    total_accepted = 0

    for p in range(passes):
        work, accepted = _refactor_pass(current, db, mffc, priority, st)
        st["passes_run"] += 1
        st["accepted"] += accepted
        st["cone_cache_hits"] += mffc.cache_hits
        st["cone_cache_misses"] += mffc.cache_misses
        total_accepted += accepted
        swept, nm = strash(work)
        if accepted == 0:
            return swept, total_accepted
        if p + 1 < passes:
            # restrict the remap event to the pass input's ids (the SOP
            # nodes appended to the work copy have no analysis to carry)
            limit = current.num_nodes()
            nm_dict = {o: m for o, m in nm.items() if o < limit}
            db = db.remap(current, swept, nm_dict)
            install_cut_database(swept, db)
            st["cuts_reused"] += db.remap_reused
            st["cuts_rebuilt"] += db.remap_rebuilt
            dirty = structural_diff(current, swept, nm_dict)
            mffc = mffc.carry_over(swept, nm_dict, dirty)
            st["cones_carried"] += mffc.carried_entries
        current = swept
    return current, total_accepted
