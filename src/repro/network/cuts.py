"""k-feasible priority cut enumeration with cut truth tables.

Follows Cong et al. (FPGA'99, ref. [8] of the paper): the cut set of a
node is built by merging the cut sets of its fanins, keeping only cuts
with at most *k* leaves, filtering dominated cuts, and pruning to the
``cuts_per_node`` best (smaller first) to bound the blow-up.

Each cut carries the truth table of the node over the cut leaves — this
is what Boolean matching consumes.  The enumeration kernel is
*array-native* end to end: it reads gates and fanins straight from the
flat struct-of-arrays core (``net.gate_codes`` / ``net.fanin_arrays()``)
and stores every node's cuts as **flat parallel row arrays** — one
offset/count span per node into a shared row-major ``(leaf tuple, table
bits)`` store — instead of per-node ``Cut`` lists.  ``Cut`` /
``TruthTable`` objects are materialised lazily, only for the nodes a
consumer actually touches; the hot consumers (T1 matching, the rewrite
scorer) read the raw rows directly.

The merge/dominance loop works on sorted leaf tuples with early
subsumption exits (``|A∪B| == |A|`` proves ``B ⊆ A`` without sorting),
dedups through a dict keyed by the merged tuple, and is memoised per
fanin tuple — it never depends on the gate, so e.g. the XOR/AND node
pairs of half-adders share one pass.  Table composition expands each
fanin table to the union leaf set through :func:`_spread_bits` (insert
irrelevant variables, lowest position first), memoised under a single
packed int key — no tuple hashing on the hot path.  When numpy is
available (:func:`repro.util.have_numpy`), large two-fanin merge
products take a vectorised mask lane (outer-or + popcount + unique over
a node-local dense universe); the result is bit-identical to the pure
loops, and ``REPRO_NO_NUMPY`` forces the fallback.

Whole databases are cached per network mutation epoch by
:func:`cached_cut_database`; :meth:`CutDatabase.remap` carries a
database across a ``strash``/``compact`` id remap, re-enumerating only
nodes whose structural neighbourhood changed (the incremental path the
rewrite kernel drives between passes).

The seed per-candidate implementation is retained as
:func:`enumerate_cuts_reference` — the differential oracle for the
kernel (and the baseline the mapping benchmarks measure against).
"""

from __future__ import annotations

import itertools
import sys
from array import array
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.gates import (
    CODE_BY_GATE,
    GATES_BY_CODE,
    Gate,
    T1_TAP_CODES,
    eval_gate,
    is_t1_tap,
)
from repro.network.logic_network import LogicNetwork, flat_arrays
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable
from repro.util import numpy_or_none

_C_CONST0 = CODE_BY_GATE[Gate.CONST0]
_C_CONST1 = CODE_BY_GATE[Gate.CONST1]
_C_PI = CODE_BY_GATE[Gate.PI]
_C_T1_CELL = CODE_BY_GATE[Gate.T1_CELL]
#: nodes that get only the trivial cut ``{node}``
_TRIVIAL_ONLY_CODES = frozenset({_C_PI, _C_T1_CELL} | T1_TAP_CODES)
#: table bits of the trivial cut's identity function (x0 over one var)
_TT_VAR0_BITS = TruthTable.var(0, 1).bits

#: two-fanin merge products at or above this take the numpy mask lane
#: (when numpy is importable and the node-local universe fits 63 bits).
#: At the default ``cuts_per_node=8`` a product is at most 9*9, where
#: the pure loops win — the lane engages only for generously configured
#: databases; module-level so tests can force it on small products
NUMPY_MERGE_MIN_PRODUCT = 4096


def leaf_signature(leaves: Tuple[int, ...]) -> int:
    """64-bit hashed bitmask of a leaf set (bit ``leaf % 64`` per leaf).

    ``sig(A) & ~sig(B) != 0`` proves A ⊄ B, so consumers (e.g. the T1
    matcher) can reject most non-subset pairs with two int ops and only
    fall back to an exact set comparison on a signature hit (the classic
    ABC filter).  Bounded at 64 bits on purpose: a ``1 << node_id`` exact
    mask would make every cut carry a multi-KB big int on 20k-node
    networks.  The enumeration kernel itself does not use hashed
    signatures — it merges sorted leaf tuples directly, which cannot
    collide.
    """
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


@dataclass(frozen=True)
class Cut:
    """A cut of some node: sorted leaf tuple + function over those leaves.

    ``signature`` is the precomputed :func:`leaf_signature` of the
    leaves, consumed by the dominance filter.
    """

    leaves: Tuple[int, ...]
    table: TruthTable
    signature: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.signature < 0:
            object.__setattr__(self, "signature", leaf_signature(self.leaves))

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        if self.signature & ~other.signature:
            return False
        return set(self.leaves) <= set(other.leaves)

    def __len__(self) -> int:
        return len(self.leaves)


class _CutsView(Sequence):
    """Read-only per-node view over a database's flat row storage.

    Backwards-compatible stand-in for the old ``List[List[Cut]]``
    attribute: ``len`` is the node count, ``view[node]`` materialises
    (and caches) that node's ``Cut`` list.
    """

    __slots__ = ("_db",)

    def __init__(self, db: "CutDatabase"):
        self._db = db

    def __len__(self) -> int:
        return len(self._db._rcount)

    def __getitem__(self, node: int) -> List[Cut]:
        return self._db._node_cuts(node)

    def __iter__(self) -> Iterator[List[Cut]]:
        mat = self._db._node_cuts
        return (mat(n) for n in range(len(self)))


class CutDatabase:
    """Cut sets for every node of a network, stored as flat row arrays.

    Internally each node owns a contiguous span (``offset`` + ``count``,
    ``array('q')``) of a row-major store holding one ``(sorted leaf
    tuple, table bits)`` pair per cut — no per-node list objects, no
    eager ``Cut``/``TruthTable`` boxes.  The object API is unchanged:
    ``db[node]`` (and the ``db.cuts`` view) materialises a node's
    ``Cut`` list on first touch and caches it, so repeated access keeps
    identity (``db[node][i] is db[node][i]``).  Raw-row consumers use
    :meth:`node_rows` / :meth:`raw_rows` and never allocate cut objects.

    ``epoch`` records the network mutation epoch the cuts were
    enumerated at (``-1`` for hand-built databases);
    :func:`cached_cut_database` uses it to decide reuse.
    ``full_counts`` (kernel-enumerated databases only) records, per
    node, the pre-truncation size of the dominance-filtered cut set —
    :meth:`remap` needs it to know which nodes were clipped by the
    ``cuts_per_node`` limit.
    """

    def __init__(
        self,
        cuts: List[List[Cut]],
        k: int,
        epoch: int = -1,
        cuts_per_node: int = 8,
        include_trivial: bool = True,
        full_counts: Optional[List[int]] = None,
    ):
        # compatibility constructor: flatten a hand-built list-of-lists
        # into row storage, keeping the given Cut objects as the
        # materialised cache so identities survive
        rstart = array("q")
        rcount = array("q")
        row_leaves: List[Tuple[int, ...]] = []
        row_bits: List[int] = []
        mat: Dict[int, List[Cut]] = {}
        for node, node_cuts in enumerate(cuts):
            rstart.append(len(row_bits))
            rcount.append(len(node_cuts))
            for c in node_cuts:
                row_leaves.append(c.leaves)
                row_bits.append(c.table.bits)
            mat[node] = node_cuts
        self._init_rows(
            rstart, rcount, row_leaves, row_bits,
            k, epoch, cuts_per_node, include_trivial, full_counts,
        )
        self._mat = mat

    def _init_rows(
        self, rstart, rcount, row_leaves, row_bits,
        k, epoch, cuts_per_node, include_trivial, full_counts,
    ) -> None:
        self._rstart = rstart
        self._rcount = rcount
        self._row_leaves = row_leaves
        self._row_bits = row_bits
        self.k = k
        self.epoch = epoch
        self.cuts_per_node = cuts_per_node
        self.include_trivial = include_trivial
        self.full_counts = full_counts
        #: filled in by :meth:`remap` on the database it returns
        self.remap_reused = 0
        self.remap_rebuilt = 0
        self.remap_index_carried = 0
        #: lazily materialised per-node Cut lists (identity-stable)
        self._mat: Dict[int, List[Cut]] = {}
        # lazy per-node {leaf tuple -> Cut} indices, stamped with the
        # epoch they were built at: a stale stamp (the database was
        # re-adopted at a different epoch) drops the whole index instead
        # of serving entries built against other ids
        self._leaf_index: Dict[int, Dict[Tuple[int, ...], Cut]] = {}
        self._leaf_index_epoch = epoch

    @classmethod
    def _from_rows(
        cls, rstart, rcount, row_leaves, row_bits,
        k, epoch, cuts_per_node, include_trivial, full_counts,
    ) -> "CutDatabase":
        """Kernel constructor: adopt flat row storage without boxing."""
        self = cls.__new__(cls)
        self._init_rows(
            array("q", rstart), array("q", rcount), row_leaves, row_bits,
            k, epoch, cuts_per_node, include_trivial, full_counts,
        )
        return self

    @property
    def cuts(self) -> _CutsView:
        """Per-node ``List[Cut]`` view (lazily materialised)."""
        return _CutsView(self)

    def _node_cuts(self, node: int) -> List[Cut]:
        got = self._mat.get(node)
        if got is None:
            lo = self._rstart[node]
            rl = self._row_leaves
            rb = self._row_bits
            got = [
                Cut(rl[i], TruthTable(rb[i], len(rl[i])))
                for i in range(lo, lo + self._rcount[node])
            ]
            self._mat[node] = got
        return got

    def __getitem__(self, node: int) -> List[Cut]:
        return self._node_cuts(node)

    def node_rows(self, node: int) -> range:
        """Row indices of *node*'s cuts (index into :meth:`raw_rows`)."""
        lo = self._rstart[node]
        return range(lo, lo + self._rcount[node])

    def raw_rows(self) -> Tuple[List[Tuple[int, ...]], List[int]]:
        """The shared ``(leaf tuples, table bits)`` row stores.

        Zero-copy access for kernel consumers (T1 matching, rewrite
        scoring); treat both lists as immutable.
        """
        return self._row_leaves, self._row_bits

    def nbytes(self) -> int:
        """Approximate byte size of the flat cut storage.

        Counts the span arrays, the two row containers, and every row's
        leaf tuple and table-bits int.  Shared leaf integers and lazily
        materialised ``Cut`` boxes are excluded — this reports the cost
        of the database itself, which bench_scale puts next to
        tracemalloc peaks.
        """
        gs = sys.getsizeof
        total = (
            gs(self._rstart) + gs(self._rcount)
            + gs(self._row_leaves) + gs(self._row_bits)
        )
        for t in self._row_leaves:
            total += gs(t)
        for b in self._row_bits:
            total += gs(b)
        return total

    def cut_with_leaves(self, node: int, leaves: Tuple[int, ...]) -> Optional[Cut]:
        """The cut of *node* with exactly these leaves, if enumerated.

        O(1) after the first lookup on a node: a per-node dict keyed by
        leaf tuple is built lazily, invalidated by epoch stamp (not per
        database object — :meth:`remap` carries entries of
        identity-mapped nodes to the database it returns).
        """
        if self._leaf_index_epoch != self.epoch:
            self._leaf_index.clear()
            self._leaf_index_epoch = self.epoch
        index = self._leaf_index.get(node)
        if index is None:
            index = {c.leaves: c for c in self._node_cuts(node)}
            self._leaf_index[node] = index
        return index.get(leaves)

    def _nontrivial_rows(self, node: int) -> List[Tuple[Tuple[int, ...], int]]:
        """``(leaves, bits)`` rows of *node* minus the trivial cut."""
        rl = self._row_leaves
        rb = self._row_bits
        trivial = (node,)
        return [
            (rl[i], rb[i])
            for i in self.node_rows(node)
            if rl[i] != trivial
        ]

    def remap(
        self,
        old_net: LogicNetwork,
        new_net: LogicNetwork,
        node_map: Mapping,
    ) -> "CutDatabase":
        """Carry this database across an id remap, re-enumerating only
        the changed neighbourhood.

        ``node_map`` is the old-id -> new-id event (a
        :class:`~repro.network.nodemap.NodeMap` or plain mapping) emitted
        by the pass that turned *old_net* (the network this database was
        enumerated on) into *new_net* — e.g. ``strash`` after a batch of
        rewrites.  The result is **bit-identical** to
        ``enumerate_cuts(new_net, ...)`` with the same parameters.

        A new node's cut set is *reused* (id-translated from its
        preimage, tables permuted when the remap reorders leaves) when
        the reuse is provably exact:

        * it has exactly one preimage, with the same gate and the
          id-translated multiset of fanins (structure matched);
        * every fanin's rebuilt cut list equals the translation of its
          preimage's list (*faithful* — so the merge inputs match);
        * ``node_map`` is injective on the preimage's fanin-cut leaves
          (a merge elsewhere could change feasibility/dominance);
        * the preimage's cut set was not clipped by ``cuts_per_node``
          (translation can reorder the keep-order at the clip boundary).

        Everything else — the transitive fanout of rewritten/merged
        regions — is re-enumerated from its (already final) fanin lists.
        Re-enumerated nodes that end up equal to their preimage's
        translation are still marked faithful, so dirtiness does not
        propagate past the region where results actually differ.
        Nodes whose reuse is the *identity* (same id, same leaf ids)
        additionally inherit the old database's materialised cuts and
        ``cut_with_leaves`` index entries.  ``remap_reused`` /
        ``remap_rebuilt`` on the returned database count the two paths.
        """
        k = self.k
        cap = self.cuts_per_node
        old_full = self.full_counts
        get_new = node_map.get

        old_codes, old_off, old_deg, old_pool = flat_arrays(old_net)
        new_codes, new_off, new_deg, new_pool = flat_arrays(new_net)

        inv: Dict[int, int] = {}
        multi = set()
        for o, m in node_map.items():
            if m in inv:
                multi.add(m)
            else:
                inv[m] = o

        n = new_net.num_nodes()
        rstart = [0] * n
        rcount = [0] * n
        row_leaves: List[Tuple[int, ...]] = []
        row_bits: List[int] = []
        full_counts = [0] * n
        faithful = [False] * n
        include_trivial = self.include_trivial
        merge_memo: Dict[Tuple[int, ...], tuple] = {}
        spread_memo: Dict[int, int] = {}
        evals = _EVAL_BY_CODE
        reused = rebuilt = 0
        carried_mat: Dict[int, List[Cut]] = {}
        carried_index: Dict[int, Dict[Tuple[int, ...], Cut]] = {}

        def translated_rows(o: int) -> Optional[List[Tuple[Tuple[int, ...], int]]]:
            """o's non-trivial cuts as new-id ``(leaves, bits)`` rows.

            Tables are permuted when the id translation reorders leaves;
            rows come back in the canonical ``(len, tuple)`` order.
            Returns None when a leaf did not survive the remap.
            """
            rows: List[Tuple[Tuple[int, ...], int]] = []
            for lv, bits in self._nontrivial_rows(o):
                new_lv = tuple(get_new(l, -1) for l in lv)
                if -1 in new_lv:
                    return None
                sorted_lv = tuple(sorted(new_lv))
                if sorted_lv == new_lv:
                    rows.append((new_lv, bits))
                else:
                    positions = tuple(sorted_lv.index(x) for x in new_lv)
                    rows.append(
                        (sorted_lv, _remap_bits(bits, positions, len(lv)))
                    )
            rows.sort(key=lambda r: (len(r[0]), r[0]))
            return rows

        def injective_on_fanin_leaves(o: int) -> bool:
            leaf_set = set()
            oo = old_off[o]
            rl = self._row_leaves
            for j in range(oo, oo + old_deg[o]):
                for i in self.node_rows(old_pool[j]):
                    leaf_set.update(rl[i])
            mapped = set()
            for l in leaf_set:
                ml = get_new(l)
                if ml is None:
                    return False
                mapped.add(ml)
            return len(mapped) == len(leaf_set)

        for node in topological_order(new_net):
            c = new_codes[node]
            o = inv.get(node) if node not in multi else None
            rstart[node] = len(row_bits)
            if c == _C_CONST0 or c == _C_CONST1:
                row_leaves.append(())
                row_bits.append(1 if c == _C_CONST1 else 0)
                rcount[node] = 1
                full_counts[node] = 1
                faithful[node] = o is not None and old_codes[o] == c
                continue
            if c in _TRIVIAL_ONLY_CODES:
                row_leaves.append((node,))
                row_bits.append(_TT_VAR0_BITS)
                rcount[node] = 1
                full_counts[node] = 1
                faithful[node] = o is not None and old_codes[o] == c
                continue

            no = new_off[node]
            nd = new_deg[node]
            fins = tuple(new_pool[no:no + nd])
            rows = None
            if (
                o is not None
                and old_full is not None
                and old_codes[o] == c
                and old_full[o] <= cap
                and all(faithful[f] for f in fins)
            ):
                oo = old_off[o]
                mapped_fins = [
                    get_new(old_pool[j], -1) for j in range(oo, oo + old_deg[o])
                ]
                if (
                    -1 not in mapped_fins
                    and sorted(mapped_fins) == sorted(fins)
                    and injective_on_fanin_leaves(o)
                ):
                    rows = translated_rows(o)
            if rows is not None:
                reused += 1
                faithful[node] = True
                full_counts[node] = old_full[o]
                if o == node and rows == self._nontrivial_rows(o):
                    # identity reuse: the materialised cuts and leaf
                    # index of the preimage stay valid verbatim
                    got = self._mat.get(o)
                    if got is not None:
                        carried_mat[node] = got
                    idx = self._leaf_index.get(o)
                    if idx is not None:
                        carried_index[node] = idx
            else:
                rebuilt += 1
                spans = [(rstart[f], rstart[f] + rcount[f]) for f in fins]
                kept, total = _merged_spans_memo(
                    fins, spans, row_leaves, k, cap, merge_memo
                )
                rows = _compose_kept(evals[c], kept, row_bits, spread_memo)
                full_counts[node] = total
                # stop dirtiness from propagating: a rebuilt node whose
                # result matches its preimage's translation is faithful
                if o is not None and old_codes[o] == c:
                    faithful[node] = translated_rows(o) == rows
            for key, bits in rows:
                row_leaves.append(key)
                row_bits.append(bits)
            if include_trivial:
                row_leaves.append((node,))
                row_bits.append(_TT_VAR0_BITS)
            rcount[node] = len(row_bits) - rstart[node]

        out = CutDatabase._from_rows(
            rstart, rcount, row_leaves, row_bits,
            k, new_net.epoch, cap, include_trivial, full_counts,
        )
        out.remap_reused = reused
        out.remap_rebuilt = rebuilt
        if self._leaf_index_epoch == self.epoch:
            out._leaf_index.update(carried_index)
            out.remap_index_carried = len(carried_index)
        out._mat.update(carried_mat)
        return out


@lru_cache(maxsize=1 << 16)
def _remap_bits(bits: int, positions: Tuple[int, ...], k: int) -> int:
    """Raw-int :meth:`TruthTable.remap`: re-express over ``k`` variables.

    Old variable ``i`` becomes new variable ``positions[i]``.  Used on
    the cold paths (remap leaf permutation); the enumeration hot path
    uses the ascending-subset special case :func:`_spread_bits`.
    """
    out = 0
    for row in range(1 << k):
        src = 0
        for i, p in enumerate(positions):
            if (row >> p) & 1:
                src |= 1 << i
        if (bits >> src) & 1:
            out |= 1 << row
    return out


def _spread_bits(bits: int, pmask: int, k: int) -> int:
    """Expand *bits* to a table over ``k`` variables.

    *bits* is a function of the variables at the set positions of
    *pmask* (taken in ascending order — leaf tuples are sorted, and a
    fanin cut's leaves are a subsequence of the union's, so the variable
    order never permutes).  Missing positions are inserted lowest-first:
    when position ``p`` is inserted every position below it is already
    present, so the insertion duplicates each block of ``2**p`` table
    rows in place.
    """
    miss = ((1 << k) - 1) & ~pmask
    n = pmask.bit_count()
    while miss:
        low = miss & -miss
        miss ^= low
        block = low  # == 1 << p, and 2**p rows per duplicated block
        width = 1 << n
        bmask = (1 << block) - 1
        out = 0
        src = 0
        dst = 0
        while src < width:
            piece = (bits >> src) & bmask
            out |= (piece | (piece << block)) << dst
            src += block
            dst += block << 1
        bits = out
        n += 1
    return bits


# -- gate evaluation over raw table ints, dispatched by gate code ------------

def _e_buf(v, m):
    return v[0]


def _e_not(v, m):
    return v[0] ^ m


def _e_and(v, m):
    if len(v) == 2:
        return v[0] & v[1]
    out = v[0]
    for x in v[1:]:
        out &= x
    return out


def _e_nand(v, m):
    return _e_and(v, m) ^ m


def _e_or(v, m):
    if len(v) == 2:
        return v[0] | v[1]
    out = v[0]
    for x in v[1:]:
        out |= x
    return out


def _e_nor(v, m):
    return _e_or(v, m) ^ m


def _e_xor(v, m):
    if len(v) == 2:
        return v[0] ^ v[1]
    out = v[0]
    for x in v[1:]:
        out ^= x
    return out


def _e_xnor(v, m):
    return _e_xor(v, m) ^ m


def _e_maj3(v, m):
    a, b, c = v
    return (a & b) | (a & c) | (b & c)


#: gate code -> table evaluator; None for gates cut composition never sees
_EVAL_BY_CODE = tuple(
    {
        Gate.BUF: _e_buf,
        Gate.NOT: _e_not,
        Gate.AND: _e_and,
        Gate.NAND: _e_nand,
        Gate.OR: _e_or,
        Gate.NOR: _e_nor,
        Gate.XOR: _e_xor,
        Gate.XNOR: _e_xnor,
        Gate.MAJ3: _e_maj3,
    }.get(g)
    for g in GATES_BY_CODE
)


def _compose_table(
    net: LogicNetwork,
    gate: Gate,
    fanin_cuts: Sequence[Cut],
    leaves: Tuple[int, ...],
) -> TruthTable:
    """Truth table of ``gate`` over *leaves* from its fanins' cut tables.

    The seed composition through :class:`TruthTable` methods — used by
    :func:`enumerate_cuts_reference` so the oracle exercises none of the
    kernel's int fast paths."""
    k = len(leaves)
    pos = {leaf: i for i, leaf in enumerate(leaves)}
    mask = (1 << (1 << k)) - 1
    fanin_tts = []
    for cut in fanin_cuts:
        positions = [pos[leaf] for leaf in cut.leaves]
        fanin_tts.append(cut.table.remap(positions, k).bits)
    return TruthTable(eval_gate(gate, fanin_tts, mask) & mask, k)


def _merge2_numpy(
    alo: int, ahi: int, blo: int, bhi: int,
    row_leaves: List[Tuple[int, ...]], k: int,
) -> Optional[Dict[Tuple[int, ...], Tuple[int, ...]]]:
    """Vectorised two-fanin merge over a node-local dense mask universe.

    Returns the same ``{merged leaf tuple: (row_a, row_b)}`` dict as the
    pure loops (first combo in (a, b) iteration order wins), or ``None``
    when numpy is unavailable or the leaf universe exceeds 63 bits.
    """
    np = numpy_or_none()
    if np is None or not hasattr(np, "bitwise_count"):
        return None
    universe = set()
    for i in range(alo, ahi):
        universe.update(row_leaves[i])
    for i in range(blo, bhi):
        universe.update(row_leaves[i])
    if len(universe) > 63:
        return None
    ordered = sorted(universe)
    index = {leaf: j for j, leaf in enumerate(ordered)}

    def mask_of(i: int) -> int:
        m = 0
        for leaf in row_leaves[i]:
            m |= 1 << index[leaf]
        return m

    na = ahi - alo
    nb = bhi - blo
    ma = np.fromiter((mask_of(i) for i in range(alo, ahi)),
                     dtype=np.uint64, count=na)
    mb = np.fromiter((mask_of(i) for i in range(blo, bhi)),
                     dtype=np.uint64, count=nb)
    union = np.bitwise_or.outer(ma, mb).ravel()
    feasible = np.flatnonzero(np.bitwise_count(union) <= k)
    uniq, first = np.unique(union[feasible], return_index=True)
    flat = feasible[first]
    chosen: Dict[Tuple[int, ...], Tuple[int, int]] = {}
    for mask, pos in zip(uniq.tolist(), flat.tolist()):
        key = []
        m = mask
        while m:
            low = m & -m
            key.append(ordered[low.bit_length() - 1])
            m ^= low
        chosen[tuple(key)] = (alo + pos // nb, blo + pos % nb)
    return chosen


def _merge_spans(
    spans: Sequence[Tuple[int, int]],
    row_leaves: List[Tuple[int, ...]],
    k: int,
    cap: int,
) -> Tuple[List[Tuple[Tuple[int, ...], int, Tuple[Tuple[int, int], ...]]], int]:
    """Merged, dominance-filtered, pruned leaf sets of one node.

    *spans* gives each fanin's ``(lo, hi)`` row range in the shared
    *row_leaves* store.  Returns ``(kept, total)``: *kept* holds at most
    *cap* entries ``(leaf tuple, len, parts)`` in canonical ``(len,
    tuple)`` order, where *parts* records per fanin the chosen row index
    and the dense position mask of that row's leaves within the merged
    tuple (what table composition spreads on); *total* is the
    pre-truncation size of the dominance-filtered set (the minimal
    antichain, which is canonical: a proper subset is strictly smaller,
    so membership does not depend on enumeration order).  Which combo
    wins a dedup tie does not matter for the composed table — the node
    function over a fixed leaf set is unique.

    All set work runs on sorted leaf tuples: ``|A∪B| == |A|`` proves
    ``B ⊆ A`` (the union is already canonical — no sort), dedup is a
    dict on tuples, dominance a subset probe against the kept antichain.
    """
    chosen: Dict[Tuple[int, ...], Tuple[int, ...]]
    if len(spans) == 2:
        # the dominant shape after decomposition: a hand-rolled double
        # loop, vectorised through numpy for large products
        (alo, ahi), (blo, bhi) = spans
        chosen = None
        if (ahi - alo) * (bhi - blo) >= NUMPY_MERGE_MIN_PRODUCT:
            chosen = _merge2_numpy(alo, ahi, blo, bhi, row_leaves, k)
        if chosen is None:
            chosen = {}
            for ria in range(alo, ahi):
                ta = row_leaves[ria]
                sa = set(ta)
                na = len(ta)
                for rib in range(blo, bhi):
                    tb = row_leaves[rib]
                    u = sa.union(tb)
                    lu = len(u)
                    if lu == na:
                        key = ta
                    elif lu == len(tb):
                        key = tb
                    elif lu > k:
                        continue
                    else:
                        key = tuple(sorted(u))
                    if key not in chosen:
                        chosen[key] = (ria, rib)
    else:
        # wider gates: fold the fanin lists pairwise, pruning and
        # deduping the intermediate unions.  Unions are associative and
        # monotone in size, so dropping an infeasible or duplicate
        # prefix never loses a feasible final leaf set — this turns the
        # full cut-set product (|cuts|^arity combos) into
        # |intermediates| * |cuts| work per level.
        lo0, hi0 = spans[0]
        acc: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
            (row_leaves[ri], (ri,)) for ri in range(lo0, hi0)
        ]
        for lo, hi in spans[1:]:
            seen = set()
            nxt: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
            for ta, combo in acc:
                sa = set(ta)
                na = len(ta)
                for ri in range(lo, hi):
                    tb = row_leaves[ri]
                    u = sa.union(tb)
                    lu = len(u)
                    if lu == na:
                        key = ta
                    elif lu == len(tb):
                        key = tb
                    elif lu > k:
                        continue
                    else:
                        key = tuple(sorted(u))
                    if key in seen:
                        continue
                    seen.add(key)
                    nxt.append((key, combo + (ri,)))
            acc = nxt
        chosen = dict(acc)

    # dominance filter over the canonical (len, tuple) order; kept
    # entries form the minimal antichain
    entries = sorted(chosen.items(), key=lambda e: (len(e[0]), e[0]))
    kept_raw: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    kept_sets: List[set] = []
    for key, combo in entries:
        ks = set(key)
        dominated = False
        for prev in kept_sets:
            if prev <= ks:
                dominated = True
                break
        if dominated:
            continue
        kept_raw.append((key, combo))
        kept_sets.append(ks)
    total = len(kept_raw)
    del kept_raw[cap:]

    # attach, per surviving row, the position mask of each fanin cut's
    # leaves inside the merged tuple (what _spread_bits expands on)
    kept: List[Tuple[Tuple[int, ...], int, Tuple[Tuple[int, int], ...]]] = []
    for key, combo in kept_raw:
        kk = len(key)
        full = (1 << kk) - 1
        idx = key.index
        parts = []
        for ri in combo:
            ta = row_leaves[ri]
            if len(ta) == kk:
                pm = full
            else:
                pm = 0
                for leaf in ta:
                    pm |= 1 << idx(leaf)
            parts.append((ri, pm))
        kept.append((key, kk, tuple(parts)))
    return kept, total


def _merged_spans_memo(
    fins: Tuple[int, ...],
    spans: Sequence[Tuple[int, int]],
    row_leaves: List[Tuple[int, ...]],
    k: int,
    cap: int,
    merge_memo: Dict[Tuple[int, ...], tuple],
) -> tuple:
    """Per-fanin-tuple memoised :func:`_merge_spans`.

    The merge + dominance work depends only on the fanin tuple (never on
    the gate), so nodes sharing fanins — e.g. the XOR/AND pairs of every
    half-adder — share one pass.
    """
    entry = merge_memo.get(fins)
    if entry is None:
        entry = _merge_spans(spans, row_leaves, k, cap)
        merge_memo[fins] = entry
    return entry


def _compose_kept(
    evalf,
    kept: Sequence[Tuple[Tuple[int, ...], int, Tuple[Tuple[int, int], ...]]],
    row_bits: List[int],
    spread_memo: Dict[int, int],
) -> List[Tuple[Tuple[int, ...], int]]:
    """``(leaves, table bits)`` rows from merged entries.

    Each fanin table is spread onto the union leaf set; the spread is
    memoised under a packed ``(bits, pmask, k)`` int key (the distinct
    combinations number a few thousand at k<=4, so nearly every lookup
    is a dict hit).
    """
    rows: List[Tuple[Tuple[int, ...], int]] = []
    for key, kk, parts in kept:
        full = (1 << kk) - 1
        tts = []
        for ri, pm in parts:
            bits = row_bits[ri]
            if pm == full:
                tts.append(bits)
            elif kk < 16:
                mkey = ((bits << kk) | pm) << 5 | kk
                t = spread_memo.get(mkey)
                if t is None:
                    t = _spread_bits(bits, pm, kk)
                    spread_memo[mkey] = t
                tts.append(t)
            else:  # huge cuts: skip the memo, keys would not pack
                tts.append(_spread_bits(bits, pm, kk))
        rows.append((key, evalf(tts, (1 << (1 << kk)) - 1)))
    return rows


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """Enumerate priority cuts for every node.

    Parameters
    ----------
    k:
        Maximum number of cut leaves.
    cuts_per_node:
        Priority-cut limit (smallest cuts kept); the trivial cut ``{node}``
        is always kept in addition so merges never starve.

    T1 blocks: the cell and its taps get only trivial cuts (they are
    already mapped; re-matching inside them is pointless).

    Reads gates and fanins from the flat struct-of-arrays core and
    stores results as flat row arrays; produces cut sets bit-identical
    to :func:`enumerate_cuts_reference` without allocating any ``Cut`` /
    ``TruthTable`` objects.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    codes, off, deg, pool = flat_arrays(net)
    n = net.num_nodes()
    rstart = [0] * n
    rcount = [0] * n
    row_leaves: List[Tuple[int, ...]] = []
    row_bits: List[int] = []
    full_counts = [0] * n
    merge_memo: Dict[Tuple[int, ...], tuple] = {}
    spread_memo: Dict[int, int] = {}
    evals = _EVAL_BY_CODE
    trivial_only = _TRIVIAL_ONLY_CODES
    c0 = _C_CONST0
    c1 = _C_CONST1
    var0 = _TT_VAR0_BITS
    append_leaves = row_leaves.append
    append_bits = row_bits.append

    for node in order:
        c = codes[node]
        start = len(row_bits)
        rstart[node] = start
        if c == c0 or c == c1:
            append_leaves(())
            append_bits(1 if c == c1 else 0)
            rcount[node] = 1
            full_counts[node] = 1
            continue
        if c in trivial_only:
            append_leaves((node,))
            append_bits(var0)
            rcount[node] = 1
            full_counts[node] = 1
            continue

        o = off[node]
        d = deg[node]
        if d == 2:
            fins = (pool[o], pool[o + 1])
        else:
            fins = tuple(pool[o:o + d])
        entry = merge_memo.get(fins)
        if entry is None:
            spans = [(rstart[f], rstart[f] + rcount[f]) for f in fins]
            entry = _merge_spans(spans, row_leaves, k, cuts_per_node)
            merge_memo[fins] = entry
        kept, total = entry
        full_counts[node] = total
        for key, bits in _compose_kept(evals[c], kept, row_bits, spread_memo):
            append_leaves(key)
            append_bits(bits)
        if include_trivial:
            append_leaves((node,))
            append_bits(var0)
        rcount[node] = len(row_bits) - start

    return CutDatabase._from_rows(
        rstart, rcount, row_leaves, row_bits,
        k, net.epoch, cuts_per_node, include_trivial, full_counts,
    )


def enumerate_cuts_reference(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """The seed per-candidate enumeration — the kernel's differential oracle.

    Allocates a frozen dataclass pair per candidate, walks the tuple
    views and composes tables through :class:`TruthTable` methods;
    results are bit-identical to :func:`enumerate_cuts`.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            db[node] = [Cut((), TruthTable.const(g is Gate.CONST1, 0))]
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            continue

        fins = fanins[node]
        fanin_cut_sets = [db[f] for f in fins]

        chosen: Dict[Tuple[int, ...], Tuple[Cut, ...]] = {}
        for combo in itertools.product(*fanin_cut_sets):
            leaves_set = set()
            ok = True
            for c in combo:
                leaves_set.update(c.leaves)
                if len(leaves_set) > k:
                    ok = False
                    break
            if not ok:
                continue
            key = tuple(sorted(leaves_set))
            if key not in chosen:
                chosen[key] = combo

        keys = sorted(chosen.keys(), key=lambda t: (len(t), t))
        kept: List[Tuple[Tuple[int, ...], set, int]] = []
        for key in keys:
            sig = leaf_signature(key)
            ks = None
            dominated = False
            for _prev_key, prev_set, prev_sig in kept:
                if prev_sig & ~sig:
                    continue
                if ks is None:
                    ks = set(key)
                if prev_set <= ks:
                    dominated = True
                    break
            if dominated:
                continue
            kept.append((key, set(key), sig))
        kept = kept[:cuts_per_node]

        result = [
            Cut(key, _compose_table(net, g, chosen[key], key), sig)
            for key, _ks, sig in kept
        ]
        if include_trivial:
            result.append(Cut((node,), tt_var0))
        db[node] = result

    return CutDatabase(
        db,
        k,
        epoch=net.epoch,
        cuts_per_node=cuts_per_node,
        include_trivial=include_trivial,
    )


def cached_cut_database(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
) -> CutDatabase:
    """Enumerate cuts once per ``(network epoch, parameters)``.

    The database is cached on the network object and reused while
    ``net.epoch`` is unchanged; any structural mutation (``substitute``,
    ``replace_fanin``, ``compact``, ``add_gate``, ...) bumps the epoch
    and invalidates it on the next call.  Treat the returned database as
    immutable — it is shared between callers.

    ``net.clone()`` does not carry the cache over (the clone starts
    cold), so caches never alias across network copies.
    """
    cache: Optional[Dict] = getattr(net, "_cut_db_cache", None)
    if cache is None:
        cache = {}
        net._cut_db_cache = cache  # type: ignore[attr-defined]
    key = (k, cuts_per_node, include_trivial)
    db = cache.get(key)
    if db is not None and db.epoch == net.epoch:
        return db
    db = enumerate_cuts(
        net, k=k, cuts_per_node=cuts_per_node, include_trivial=include_trivial
    )
    cache[key] = db
    return db


def install_cut_database(net: LogicNetwork, db: CutDatabase) -> CutDatabase:
    """Adopt *db* as the cached database of *net*.

    The entry point for incremental flows: after
    ``new_db = old_db.remap(old_net, new_net, node_map)``, installing
    ``new_db`` on ``new_net`` makes the next
    :func:`cached_cut_database` call with the same parameters hit it
    instead of re-enumerating.  The database epoch must match the
    network's current epoch.
    """
    if db.epoch != net.epoch:
        raise NetworkError(
            f"cut database epoch {db.epoch} != network epoch {net.epoch}"
        )
    cache: Optional[Dict] = getattr(net, "_cut_db_cache", None)
    if cache is None:
        cache = {}
        net._cut_db_cache = cache  # type: ignore[attr-defined]
    cache[(db.k, db.cuts_per_node, db.include_trivial)] = db
    return db
