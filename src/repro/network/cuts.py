"""k-feasible priority cut enumeration with cut truth tables.

Follows Cong et al. (FPGA'99, ref. [8] of the paper): the cut set of a
node is built by merging the cut sets of its fanins, keeping only cuts
with at most *k* leaves, filtering dominated cuts, and pruning to the
``cuts_per_node`` best (smaller first) to bound the blow-up.

Each cut carries the truth table of the node over the cut leaves — this is
what Boolean matching consumes.  The enumeration kernel is
*allocation-light*: the merge/dominance loop manipulates only raw leaf
tuples and table ints, and a :class:`Cut` (with its frozen
:class:`~repro.network.truth_table.TruthTable`) is only constructed for
the cuts that survive pruning.  The leaf-set work (merge + dominance) is
memoised per fanin tuple — it never depends on the gate, so e.g. the
XOR/AND node pairs of half-adders share one pass — and table composition
runs on ints through a memoised row-remap (:func:`_remap_bits`).

Whole databases are cached per network mutation epoch by
:func:`cached_cut_database`, so the T1 detection pass and any later
re-detection / rewriting pass over the same (unmutated) network share one
enumeration.

The seed per-candidate implementation is retained as
:func:`enumerate_cuts_reference` — the differential oracle for the kernel
(and the baseline the mapping benchmarks measure against).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.gates import Gate, eval_gate, is_t1_tap
from repro.network.logic_network import LogicNetwork
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable


def leaf_signature(leaves: Tuple[int, ...]) -> int:
    """64-bit hashed bitmask of a leaf set (bit ``leaf % 64`` per leaf).

    ``sig(A) & ~sig(B) != 0`` proves A ⊄ B, so the O(cuts²) dominance
    filter rejects almost every pair with two int ops and only falls back
    to an exact set comparison on a signature hit (the classic ABC
    filter).  Bounded at 64 bits on purpose: a ``1 << node_id`` exact
    mask would make every cut carry a multi-KB big int on 20k-node
    networks.
    """
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


@dataclass(frozen=True)
class Cut:
    """A cut of some node: sorted leaf tuple + function over those leaves.

    ``signature`` is the precomputed :func:`leaf_signature` of the
    leaves, consumed by the dominance filter.
    """

    leaves: Tuple[int, ...]
    table: TruthTable
    signature: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.signature < 0:
            object.__setattr__(self, "signature", leaf_signature(self.leaves))

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        if self.signature & ~other.signature:
            return False
        return set(self.leaves) <= set(other.leaves)

    def __len__(self) -> int:
        return len(self.leaves)


class CutDatabase:
    """Cut sets for every node of a network.

    ``epoch`` records the network mutation epoch the cuts were enumerated
    at (``-1`` for hand-built databases); :func:`cached_cut_database`
    uses it to decide reuse.
    """

    def __init__(self, cuts: List[List[Cut]], k: int, epoch: int = -1):
        self.cuts = cuts
        self.k = k
        self.epoch = epoch
        # lazy per-node {leaf tuple -> Cut} indices (satellite of the
        # mapping kernel: cut_with_leaves was an O(cuts) scan)
        self._leaf_index: Dict[int, Dict[Tuple[int, ...], Cut]] = {}

    def __getitem__(self, node: int) -> List[Cut]:
        return self.cuts[node]

    def cut_with_leaves(self, node: int, leaves: Tuple[int, ...]) -> Optional[Cut]:
        """The cut of *node* with exactly these leaves, if enumerated.

        O(1) after the first lookup on a node (a per-node dict keyed by
        leaf tuple is built lazily and reused)."""
        index = self._leaf_index.get(node)
        if index is None:
            index = {c.leaves: c for c in self.cuts[node]}
            self._leaf_index[node] = index
        return index.get(leaves)


@lru_cache(maxsize=1 << 16)
def _remap_bits(bits: int, positions: Tuple[int, ...], k: int) -> int:
    """Raw-int :meth:`TruthTable.remap`: re-express over ``k`` variables.

    Old variable ``i`` becomes new variable ``positions[i]``.  The domain
    is tiny for the k<=3 mapping front-end (bits < 256, a handful of
    position tuples), so the cache turns almost every composition into a
    dict hit.
    """
    out = 0
    for row in range(1 << k):
        src = 0
        for i, p in enumerate(positions):
            if (row >> p) & 1:
                src |= 1 << i
        if (bits >> src) & 1:
            out |= 1 << row
    return out


def _compose_bits(
    gate: Gate,
    fanin_cuts: Sequence[Tuple[Tuple[int, ...], int]],
    leaves: Tuple[int, ...],
) -> int:
    """Table (as an int) of ``gate`` over *leaves* from raw fanin cuts.

    ``fanin_cuts`` holds one ``(leaves, table bits)`` pair per fanin; all
    fanin leaf sets must be subsets of *leaves*.
    """
    k = len(leaves)
    index = leaves.index
    mask = (1 << (1 << k)) - 1
    fanin_tts = [
        _remap_bits(bits, tuple(map(index, cut_leaves)), k)
        for cut_leaves, bits in fanin_cuts
    ]
    return eval_gate(gate, fanin_tts, mask) & mask


def _compose_table(
    net: LogicNetwork,
    gate: Gate,
    fanin_cuts: Sequence[Cut],
    leaves: Tuple[int, ...],
) -> TruthTable:
    """Truth table of ``gate`` over *leaves* from its fanins' cut tables.

    The seed composition through :class:`TruthTable` methods — used by
    :func:`enumerate_cuts_reference` so the oracle exercises none of the
    kernel's int fast paths."""
    k = len(leaves)
    pos = {leaf: i for i, leaf in enumerate(leaves)}
    mask = (1 << (1 << k)) - 1
    fanin_tts = []
    for cut in fanin_cuts:
        positions = [pos[leaf] for leaf in cut.leaves]
        fanin_tts.append(cut.table.remap(positions, k).bits)
    return TruthTable(eval_gate(gate, fanin_tts, mask) & mask, k)


def _merge_leaf_sets(
    fanin_fset_lists: Sequence[Sequence[frozenset]],
    fanin_sig_lists: Sequence[Sequence[int]],
    k: int,
) -> Dict[frozenset, Tuple[int, ...]]:
    """Distinct feasible merged leaf sets -> first producing combo.

    Infeasible pairs are rejected by the 64-bit leaf signatures first:
    every leaf sets one bit, so ``popcount(sig_a | sig_b) > k`` proves
    ``|A ∪ B| > k`` with two int ops (collisions only under-count).
    Only the survivors build a real set union (C-speed frozenset ``|``);
    sorting into tuples is deferred to the distinct survivors.  The combo
    is recorded as one cut index per fanin (the composition step needs,
    for every fanin, *some* cut whose leaves are a subset of the merged
    set; the node function over a fixed leaf set is unique, so which
    combo wins does not matter for the table).
    """
    chosen: Dict[frozenset, Tuple[Tuple[int, ...], int]] = {}
    if len(fanin_fset_lists) == 2:
        # the dominant shape after decomposition: a hand-rolled double
        # loop avoids fold bookkeeping
        pairs_a = list(zip(fanin_fset_lists[0], fanin_sig_lists[0]))
        pairs_b = list(zip(fanin_fset_lists[1], fanin_sig_lists[1]))
        for ia, (fa, sa) in enumerate(pairs_a):
            for ib, (fb, sb) in enumerate(pairs_b):
                sig = sa | sb
                if sig.bit_count() > k:
                    continue
                merged = fa | fb
                if len(merged) > k or merged in chosen:
                    continue
                chosen[merged] = ((ia, ib), sig)
        return chosen
    # wider gates: fold the fanin lists pairwise, pruning and deduping
    # the intermediate unions.  Unions are associative and monotone in
    # size, so dropping an infeasible or duplicate prefix never loses a
    # feasible final leaf set — this turns the full cut-set product
    # (|cuts|^arity combos) into |intermediates| * |cuts| work per level.
    acc: List[Tuple[frozenset, int, Tuple[int, ...]]] = [
        (fs, fanin_sig_lists[0][i], (i,))
        for i, fs in enumerate(fanin_fset_lists[0])
    ]
    for fi in range(1, len(fanin_fset_lists)):
        lst = fanin_fset_lists[fi]
        sgs = fanin_sig_lists[fi]
        seen: Dict[frozenset, None] = {}
        nxt: List[Tuple[frozenset, int, Tuple[int, ...]]] = []
        for fa, sa, combo in acc:
            for ib, fb in enumerate(lst):
                sig = sa | sgs[ib]
                if sig.bit_count() > k:
                    continue
                merged = fa | fb
                if len(merged) > k or merged in seen:
                    continue
                seen[merged] = None
                nxt.append((merged, sig, combo + (ib,)))
        acc = nxt
    for merged, sig, combo in acc:
        chosen[merged] = (combo, sig)
    return chosen


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """Enumerate priority cuts for every node.

    Parameters
    ----------
    k:
        Maximum number of cut leaves.
    cuts_per_node:
        Priority-cut limit (smallest cuts kept); the trivial cut ``{node}``
        is always kept in addition so merges never starve.

    T1 blocks: the cell and its taps get only trivial cuts (they are
    already mapped; re-matching inside them is pointless).

    Produces cut sets bit-identical to
    :func:`enumerate_cuts_reference` while allocating ``Cut`` /
    ``TruthTable`` objects only for the survivors.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    # parallel raw views of db, avoiding attribute chasing in the merge
    leaves_of: List[List[Tuple[int, ...]]] = [[] for _ in range(n)]
    fsets_of: List[List[frozenset]] = [[] for _ in range(n)]
    sigs_of: List[List[int]] = [[] for _ in range(n)]
    bits_of: List[List[int]] = [[] for _ in range(n)]
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)
    # (chosen, kept) per fanin tuple — the leaf-set work is gate-blind
    merge_memo: Dict[Tuple[int, ...], Tuple[Dict, List]] = {}

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            const_tt = TruthTable.const(g is Gate.CONST1, 0)
            db[node] = [Cut((), const_tt)]
            leaves_of[node] = [()]
            fsets_of[node] = [frozenset()]
            sigs_of[node] = [0]
            bits_of[node] = [const_tt.bits]
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            leaves_of[node] = [(node,)]
            fsets_of[node] = [frozenset((node,))]
            sigs_of[node] = [1 << (node & 63)]
            bits_of[node] = [tt_var0.bits]
            continue

        fins = fanins[node]

        # steps 1+2 depend only on the fanin tuple (never on the gate),
        # so nodes sharing fanins — e.g. the XOR/AND pairs of every
        # half-adder — share one merge + dominance pass via the memo
        merged_entry = merge_memo.get(fins)
        if merged_entry is None:
            # 1) enumerate distinct feasible leaf sets (signature
            #    prefilter + C-speed set unions)
            chosen = _merge_leaf_sets(
                [fsets_of[f] for f in fins], [sigs_of[f] for f in fins], k
            )

            # 2) dominance filter: the 64-bit leaf signatures prove most
            #    non-subset pairs in two int ops; only signature hits pay
            #    for the exact set comparison
            keys = sorted(
                ((tuple(sorted(fs)), fs) for fs in chosen),
                key=lambda kf: (len(kf[0]), kf[0]),
            )
            kept: List[Tuple[Tuple[int, ...], frozenset, int]] = []
            for key, fs in keys:
                sig = chosen[fs][1]
                dominated = False
                for _prev_key, prev_set, prev_sig in kept:
                    if prev_sig & ~sig:
                        continue
                    if prev_set <= fs:
                        dominated = True
                        break
                if dominated:
                    continue
                kept.append((key, fs, sig))
            kept = kept[:cuts_per_node]
            merged_entry = (chosen, kept)
            merge_memo[fins] = merged_entry
        else:
            chosen, kept = merged_entry

        # 3) compose tables once per surviving leaf set, ints end to end;
        #    Cut/TruthTable objects exist only for survivors
        node_cuts: List[Cut] = []
        node_leaves: List[Tuple[int, ...]] = []
        node_fsets: List[frozenset] = []
        node_sigs: List[int] = []
        node_bits: List[int] = []
        for key, fs, sig in kept:
            combo = chosen[fs][0]
            raw = [
                (leaves_of[f][ci], bits_of[f][ci])
                for f, ci in zip(fins, combo)
            ]
            bits = _compose_bits(g, raw, key)
            node_cuts.append(Cut(key, TruthTable(bits, len(key)), sig))
            node_leaves.append(key)
            node_fsets.append(fs)
            node_sigs.append(sig)
            node_bits.append(bits)
        if include_trivial:
            node_cuts.append(Cut((node,), tt_var0))
            node_leaves.append((node,))
            node_fsets.append(frozenset((node,)))
            node_sigs.append(1 << (node & 63))
            node_bits.append(tt_var0.bits)
        db[node] = node_cuts
        leaves_of[node] = node_leaves
        fsets_of[node] = node_fsets
        sigs_of[node] = node_sigs
        bits_of[node] = node_bits

    return CutDatabase(db, k, epoch=net.epoch)


def enumerate_cuts_reference(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """The seed per-candidate enumeration — the kernel's differential oracle.

    Allocates a frozen dataclass pair per candidate and composes tables
    through :class:`TruthTable` methods; results are bit-identical to
    :func:`enumerate_cuts`.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            db[node] = [Cut((), TruthTable.const(g is Gate.CONST1, 0))]
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            continue

        fins = fanins[node]
        fanin_cut_sets = [db[f] for f in fins]

        chosen: Dict[Tuple[int, ...], Tuple[Cut, ...]] = {}
        for combo in itertools.product(*fanin_cut_sets):
            leaves_set = set()
            ok = True
            for c in combo:
                leaves_set.update(c.leaves)
                if len(leaves_set) > k:
                    ok = False
                    break
            if not ok:
                continue
            key = tuple(sorted(leaves_set))
            if key not in chosen:
                chosen[key] = combo

        keys = sorted(chosen.keys(), key=lambda t: (len(t), t))
        kept: List[Tuple[Tuple[int, ...], set, int]] = []
        for key in keys:
            sig = leaf_signature(key)
            ks = None
            dominated = False
            for _prev_key, prev_set, prev_sig in kept:
                if prev_sig & ~sig:
                    continue
                if ks is None:
                    ks = set(key)
                if prev_set <= ks:
                    dominated = True
                    break
            if dominated:
                continue
            kept.append((key, set(key), sig))
        kept = kept[:cuts_per_node]

        result = [
            Cut(key, _compose_table(net, g, chosen[key], key), sig)
            for key, _ks, sig in kept
        ]
        if include_trivial:
            result.append(Cut((node,), tt_var0))
        db[node] = result

    return CutDatabase(db, k, epoch=net.epoch)


def cached_cut_database(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
) -> CutDatabase:
    """Enumerate cuts once per ``(network epoch, parameters)``.

    The database is cached on the network object and reused while
    ``net.epoch`` is unchanged; any structural mutation (``substitute``,
    ``replace_fanin``, ``compact``, ``add_gate``, ...) bumps the epoch
    and invalidates it on the next call.  Treat the returned database as
    immutable — it is shared between callers.

    ``net.clone()`` does not carry the cache over (the clone starts
    cold), so caches never alias across network copies.
    """
    cache: Optional[Dict] = getattr(net, "_cut_db_cache", None)
    if cache is None:
        cache = {}
        net._cut_db_cache = cache  # type: ignore[attr-defined]
    key = (k, cuts_per_node, include_trivial)
    db = cache.get(key)
    if db is not None and db.epoch == net.epoch:
        return db
    db = enumerate_cuts(
        net, k=k, cuts_per_node=cuts_per_node, include_trivial=include_trivial
    )
    cache[key] = db
    return db
