"""k-feasible priority cut enumeration with cut truth tables.

Follows Cong et al. (FPGA'99, ref. [8] of the paper): the cut set of a
node is built by merging the cut sets of its fanins, keeping only cuts
with at most *k* leaves, filtering dominated cuts, and pruning to the
``cuts_per_node`` best (smaller first) to bound the blow-up.

Each cut carries the truth table of the node over the cut leaves — this is
what Boolean matching consumes.  The enumeration kernel is
*allocation-light*: the merge/dominance loop manipulates only raw leaf
tuples and small int bitmasks, and a :class:`Cut` (with its frozen
:class:`~repro.network.truth_table.TruthTable`) is only constructed for
the cuts that survive pruning.  Leaf sets are encoded as *exact dense
masks over the node-local leaf universe* (the distinct leaves appearing
in the fanin cut lists — a few dozen at most), so feasibility is one
``bit_count`` and dominance one ``and``/``not`` per probe, with no hash
collisions and no set objects.  The leaf-set work is memoised per fanin
tuple — it never depends on the gate, so e.g. the XOR/AND node pairs of
half-adders share one pass — and table composition runs on ints through
a memoised row-remap (:func:`_remap_bits`).

Whole databases are cached per network mutation epoch by
:func:`cached_cut_database`; :meth:`CutDatabase.remap` carries a
database across a ``strash``/``compact`` id remap, re-enumerating only
nodes whose structural neighbourhood changed (the incremental path the
rewrite kernel drives between passes).

The seed per-candidate implementation is retained as
:func:`enumerate_cuts_reference` — the differential oracle for the kernel
(and the baseline the mapping benchmarks measure against).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.gates import Gate, eval_gate, is_t1_tap
from repro.network.logic_network import LogicNetwork
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable


def leaf_signature(leaves: Tuple[int, ...]) -> int:
    """64-bit hashed bitmask of a leaf set (bit ``leaf % 64`` per leaf).

    ``sig(A) & ~sig(B) != 0`` proves A ⊄ B, so consumers (e.g. the T1
    matcher) can reject most non-subset pairs with two int ops and only
    fall back to an exact set comparison on a signature hit (the classic
    ABC filter).  Bounded at 64 bits on purpose: a ``1 << node_id`` exact
    mask would make every cut carry a multi-KB big int on 20k-node
    networks.  The enumeration kernel itself no longer uses hashed
    signatures — it works on exact dense masks over the node-local leaf
    universe, which cannot collide.
    """
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


@dataclass(frozen=True)
class Cut:
    """A cut of some node: sorted leaf tuple + function over those leaves.

    ``signature`` is the precomputed :func:`leaf_signature` of the
    leaves, consumed by the dominance filter.
    """

    leaves: Tuple[int, ...]
    table: TruthTable
    signature: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.signature < 0:
            object.__setattr__(self, "signature", leaf_signature(self.leaves))

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        if self.signature & ~other.signature:
            return False
        return set(self.leaves) <= set(other.leaves)

    def __len__(self) -> int:
        return len(self.leaves)


class CutDatabase:
    """Cut sets for every node of a network.

    ``epoch`` records the network mutation epoch the cuts were enumerated
    at (``-1`` for hand-built databases); :func:`cached_cut_database`
    uses it to decide reuse.  ``full_counts`` (kernel-enumerated
    databases only) records, per node, the pre-truncation size of the
    dominance-filtered cut set — :meth:`remap` needs it to know which
    nodes were clipped by the ``cuts_per_node`` limit.
    """

    def __init__(
        self,
        cuts: List[List[Cut]],
        k: int,
        epoch: int = -1,
        cuts_per_node: int = 8,
        include_trivial: bool = True,
        full_counts: Optional[List[int]] = None,
    ):
        self.cuts = cuts
        self.k = k
        self.epoch = epoch
        self.cuts_per_node = cuts_per_node
        self.include_trivial = include_trivial
        self.full_counts = full_counts
        #: filled in by :meth:`remap` on the database it returns
        self.remap_reused = 0
        self.remap_rebuilt = 0
        # lazy per-node {leaf tuple -> Cut} indices (satellite of the
        # mapping kernel: cut_with_leaves was an O(cuts) scan)
        self._leaf_index: Dict[int, Dict[Tuple[int, ...], Cut]] = {}

    def __getitem__(self, node: int) -> List[Cut]:
        return self.cuts[node]

    def cut_with_leaves(self, node: int, leaves: Tuple[int, ...]) -> Optional[Cut]:
        """The cut of *node* with exactly these leaves, if enumerated.

        O(1) after the first lookup on a node (a per-node dict keyed by
        leaf tuple is built lazily and reused)."""
        index = self._leaf_index.get(node)
        if index is None:
            index = {c.leaves: c for c in self.cuts[node]}
            self._leaf_index[node] = index
        return index.get(leaves)

    def remap(
        self,
        old_net: LogicNetwork,
        new_net: LogicNetwork,
        node_map: Mapping,
    ) -> "CutDatabase":
        """Carry this database across an id remap, re-enumerating only
        the changed neighbourhood.

        ``node_map`` is the old-id -> new-id event (a
        :class:`~repro.network.nodemap.NodeMap` or plain mapping) emitted
        by the pass that turned *old_net* (the network this database was
        enumerated on) into *new_net* — e.g. ``strash`` after a batch of
        rewrites.  The result is **bit-identical** to
        ``enumerate_cuts(new_net, ...)`` with the same parameters.

        A new node's cut set is *reused* (id-translated from its
        preimage, tables permuted when the remap reorders leaves) when
        the reuse is provably exact:

        * it has exactly one preimage, with the same gate and the
          id-translated multiset of fanins (structure matched);
        * every fanin's rebuilt cut list equals the translation of its
          preimage's list (*faithful* — so the merge inputs match);
        * ``node_map`` is injective on the preimage's fanin-cut leaves
          (a merge elsewhere could change feasibility/dominance);
        * the preimage's cut set was not clipped by ``cuts_per_node``
          (translation can reorder the keep-order at the clip boundary).

        Everything else — the transitive fanout of rewritten/merged
        regions — is re-enumerated from its (already final) fanin lists.
        Re-enumerated nodes that end up equal to their preimage's
        translation are still marked faithful, so dirtiness does not
        propagate past the region where results actually differ.
        ``remap_reused`` / ``remap_rebuilt`` on the returned database
        count the two paths.
        """
        k = self.k
        cap = self.cuts_per_node
        old_cuts = self.cuts
        old_full = self.full_counts
        old_gates = old_net.gates
        old_fanins = old_net.fanins
        get_new = node_map.get

        inv: Dict[int, int] = {}
        multi = set()
        for o, m in node_map.items():
            if m in inv:
                multi.add(m)
            else:
                inv[m] = o

        n = new_net.num_nodes()
        db: List[List[Cut]] = [[] for _ in range(n)]
        leaves_of: List[List[Tuple[int, ...]]] = [[] for _ in range(n)]
        bits_of: List[List[int]] = [[] for _ in range(n)]
        full_counts = [0] * n
        faithful = [False] * n
        gates = new_net.gates
        fanins = new_net.fanins
        tt_var0 = TruthTable.var(0, 1)
        merge_memo: Dict[Tuple[int, ...], Tuple[list, int]] = {}
        reused = rebuilt = 0

        def translated_rows(o: int) -> Optional[List[Tuple[Tuple[int, ...], int]]]:
            """o's non-trivial cuts as new-id ``(leaves, bits)`` rows.

            Tables are permuted when the id translation reorders leaves;
            rows come back in the canonical ``(len, tuple)`` order.
            Returns None when a leaf did not survive the remap.
            """
            rows: List[Tuple[Tuple[int, ...], int]] = []
            for c in old_cuts[o]:
                lv = c.leaves
                if lv == (o,):
                    continue
                new_lv = tuple(get_new(l, -1) for l in lv)
                if -1 in new_lv:
                    return None
                sorted_lv = tuple(sorted(new_lv))
                if sorted_lv == new_lv:
                    rows.append((new_lv, c.table.bits))
                else:
                    positions = tuple(sorted_lv.index(x) for x in new_lv)
                    rows.append(
                        (sorted_lv, _remap_bits(c.table.bits, positions, len(lv)))
                    )
            rows.sort(key=lambda r: (len(r[0]), r[0]))
            return rows

        def injective_on_fanin_leaves(o: int) -> bool:
            leaf_set = set()
            for f in old_fanins[o]:
                for c in old_cuts[f]:
                    leaf_set.update(c.leaves)
            mapped = set()
            for l in leaf_set:
                ml = get_new(l)
                if ml is None:
                    return False
                mapped.add(ml)
            return len(mapped) == len(leaf_set)

        for node in topological_order(new_net):
            g = gates[node]
            o = inv.get(node) if node not in multi else None
            if g in (Gate.CONST0, Gate.CONST1):
                const_tt = TruthTable.const(g is Gate.CONST1, 0)
                db[node] = [Cut((), const_tt)]
                leaves_of[node] = [()]
                bits_of[node] = [const_tt.bits]
                full_counts[node] = 1
                faithful[node] = o is not None and old_gates[o] is g
                continue
            if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
                db[node] = [Cut((node,), tt_var0)]
                leaves_of[node] = [(node,)]
                bits_of[node] = [tt_var0.bits]
                full_counts[node] = 1
                faithful[node] = o is not None and old_gates[o] is g
                continue

            fins = fanins[node]
            rows = None
            if (
                o is not None
                and old_full is not None
                and old_gates[o] is g
                and old_full[o] <= cap
                and all(faithful[f] for f in fins)
            ):
                mapped_fins = [get_new(f, -1) for f in old_fanins[o]]
                if (
                    -1 not in mapped_fins
                    and sorted(mapped_fins) == sorted(fins)
                    and injective_on_fanin_leaves(o)
                ):
                    rows = translated_rows(o)
            if rows is not None:
                reused += 1
                faithful[node] = True
                full_counts[node] = old_full[o]
            else:
                rebuilt += 1
                rows, total = _node_cut_rows(
                    g, fins, leaves_of, bits_of, k, cap, merge_memo
                )
                full_counts[node] = total
                # stop dirtiness from propagating: a rebuilt node whose
                # result matches its preimage's translation is faithful
                if o is not None and old_gates[o] is g:
                    faithful[node] = translated_rows(o) == rows

            node_cuts = [Cut(key, TruthTable(bits, len(key))) for key, bits in rows]
            node_leaves = [key for key, _bits in rows]
            node_bits = [bits for _key, bits in rows]
            if self.include_trivial:
                node_cuts.append(Cut((node,), tt_var0))
                node_leaves.append((node,))
                node_bits.append(tt_var0.bits)
            db[node] = node_cuts
            leaves_of[node] = node_leaves
            bits_of[node] = node_bits

        out = CutDatabase(
            db,
            k,
            epoch=new_net.epoch,
            cuts_per_node=cap,
            include_trivial=self.include_trivial,
            full_counts=full_counts,
        )
        out.remap_reused = reused
        out.remap_rebuilt = rebuilt
        return out


@lru_cache(maxsize=1 << 16)
def _remap_bits(bits: int, positions: Tuple[int, ...], k: int) -> int:
    """Raw-int :meth:`TruthTable.remap`: re-express over ``k`` variables.

    Old variable ``i`` becomes new variable ``positions[i]``.  The domain
    is tiny for the k<=3 mapping front-end (bits < 256, a handful of
    position tuples), so the cache turns almost every composition into a
    dict hit.
    """
    out = 0
    for row in range(1 << k):
        src = 0
        for i, p in enumerate(positions):
            if (row >> p) & 1:
                src |= 1 << i
        if (bits >> src) & 1:
            out |= 1 << row
    return out


def _compose_bits(
    gate: Gate,
    fanin_cuts: Sequence[Tuple[Tuple[int, ...], int]],
    leaves: Tuple[int, ...],
) -> int:
    """Table (as an int) of ``gate`` over *leaves* from raw fanin cuts.

    ``fanin_cuts`` holds one ``(leaves, table bits)`` pair per fanin; all
    fanin leaf sets must be subsets of *leaves*.
    """
    k = len(leaves)
    index = leaves.index
    mask = (1 << (1 << k)) - 1
    fanin_tts = [
        _remap_bits(bits, tuple(map(index, cut_leaves)), k)
        for cut_leaves, bits in fanin_cuts
    ]
    return eval_gate(gate, fanin_tts, mask) & mask


def _compose_table(
    net: LogicNetwork,
    gate: Gate,
    fanin_cuts: Sequence[Cut],
    leaves: Tuple[int, ...],
) -> TruthTable:
    """Truth table of ``gate`` over *leaves* from its fanins' cut tables.

    The seed composition through :class:`TruthTable` methods — used by
    :func:`enumerate_cuts_reference` so the oracle exercises none of the
    kernel's int fast paths."""
    k = len(leaves)
    pos = {leaf: i for i, leaf in enumerate(leaves)}
    mask = (1 << (1 << k)) - 1
    fanin_tts = []
    for cut in fanin_cuts:
        positions = [pos[leaf] for leaf in cut.leaves]
        fanin_tts.append(cut.table.remap(positions, k).bits)
    return TruthTable(eval_gate(gate, fanin_tts, mask) & mask, k)


def _mask_tuple(mask: int, ordered: Sequence[int]) -> Tuple[int, ...]:
    """Decode a local dense mask back to the sorted global leaf tuple."""
    out = []
    while mask:
        low = mask & -mask
        out.append(ordered[low.bit_length() - 1])
        mask ^= low
    return tuple(out)


def _merge_and_filter(
    fanin_leaf_lists: Sequence[Sequence[Tuple[int, ...]]],
    k: int,
    cap: int,
) -> Tuple[List[Tuple[Tuple[int, ...], Tuple[int, ...]]], int]:
    """Merged, dominance-filtered, pruned leaf sets of one node.

    Returns ``(kept, total)``: *kept* is the canonical cut list as
    ``(sorted leaf tuple, combo)`` pairs — at most *cap* of them, sorted
    by ``(len, tuple)`` — and *total* the pre-truncation size of the
    dominance-filtered set (the minimal antichain, which is canonical:
    a proper subset is strictly smaller, so membership does not depend
    on enumeration order).  The combo records one cut index per fanin
    (the composition step needs, for every fanin, *some* cut whose
    leaves are a subset of the merged set; the node function over a
    fixed leaf set is unique, so which combo wins does not matter for
    the table).

    All set work runs on exact dense masks over the node-local leaf
    universe: feasibility is ``bit_count() <= k`` (with a free early
    exit when one side subsumes the other — the seed's exact-size
    pre-check, which the old 64-bit hashed signatures lost on wide-fanin
    cones), dedup is a dict on ints, dominance is ``prev & ~cur == 0``
    — exact, no collision fallback path.
    """
    universe = set()
    for lst in fanin_leaf_lists:
        for leaves in lst:
            universe.update(leaves)
    ordered = sorted(universe)
    index = {leaf: i for i, leaf in enumerate(ordered)}
    mask_lists: List[List[int]] = []
    for lst in fanin_leaf_lists:
        masks = []
        for leaves in lst:
            m = 0
            for leaf in leaves:
                m |= 1 << index[leaf]
            masks.append(m)
        mask_lists.append(masks)

    chosen: Dict[int, Tuple[int, ...]]
    if len(mask_lists) == 2:
        # the dominant shape after decomposition: a hand-rolled double
        # loop avoids fold bookkeeping
        chosen = {}
        masks_b = mask_lists[1]
        for ia, ma in enumerate(mask_lists[0]):
            for ib, mb in enumerate(masks_b):
                u = ma | mb
                if u in chosen:
                    continue
                if u != ma and u != mb and u.bit_count() > k:
                    continue
                chosen[u] = (ia, ib)
    else:
        # wider gates: fold the fanin lists pairwise, pruning and
        # deduping the intermediate unions.  Unions are associative and
        # monotone in size, so dropping an infeasible or duplicate
        # prefix never loses a feasible final leaf set — this turns the
        # full cut-set product (|cuts|^arity combos) into
        # |intermediates| * |cuts| work per level.
        acc: List[Tuple[int, Tuple[int, ...]]] = [
            (m, (i,)) for i, m in enumerate(mask_lists[0])
        ]
        for masks in mask_lists[1:]:
            seen = set()
            nxt: List[Tuple[int, Tuple[int, ...]]] = []
            for ma, combo in acc:
                for ib, mb in enumerate(masks):
                    u = ma | mb
                    if u in seen:
                        continue
                    if u != ma and u.bit_count() > k:
                        continue
                    seen.add(u)
                    nxt.append((u, combo + (ib,)))
            acc = nxt
        chosen = dict(acc)

    # dominance filter over the canonical (len, tuple) order; the exact
    # masks prove subset-ness in two int ops per probe
    entries = [(_mask_tuple(u, ordered), u) for u in chosen]
    entries.sort(key=lambda e: (len(e[0]), e[0]))
    kept: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    kept_masks: List[int] = []
    for key, u in entries:
        dominated = False
        for prev in kept_masks:
            if not (prev & ~u):
                dominated = True
                break
        if dominated:
            continue
        kept.append((key, chosen[u]))
        kept_masks.append(u)
    total = len(kept)
    del kept[cap:]
    return kept, total


def _node_cut_rows(
    g: Gate,
    fins: Tuple[int, ...],
    leaves_of: List[List[Tuple[int, ...]]],
    bits_of: List[List[int]],
    k: int,
    cap: int,
    merge_memo: Dict[Tuple[int, ...], Tuple[list, int]],
) -> Tuple[List[Tuple[Tuple[int, ...], int]], int]:
    """Non-trivial ``(leaves, table bits)`` rows of one logic node.

    The merge + dominance work depends only on the fanin tuple (never on
    the gate), so nodes sharing fanins — e.g. the XOR/AND pairs of every
    half-adder — share one pass via *merge_memo*.
    """
    entry = merge_memo.get(fins)
    if entry is None:
        entry = _merge_and_filter([leaves_of[f] for f in fins], k, cap)
        merge_memo[fins] = entry
    kept, total = entry
    rows = []
    for key, combo in kept:
        raw = [(leaves_of[f][ci], bits_of[f][ci]) for f, ci in zip(fins, combo)]
        rows.append((key, _compose_bits(g, raw, key)))
    return rows, total


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """Enumerate priority cuts for every node.

    Parameters
    ----------
    k:
        Maximum number of cut leaves.
    cuts_per_node:
        Priority-cut limit (smallest cuts kept); the trivial cut ``{node}``
        is always kept in addition so merges never starve.

    T1 blocks: the cell and its taps get only trivial cuts (they are
    already mapped; re-matching inside them is pointless).

    Produces cut sets bit-identical to
    :func:`enumerate_cuts_reference` while allocating ``Cut`` /
    ``TruthTable`` objects only for the survivors.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    # parallel raw views of db, avoiding attribute chasing in the merge
    leaves_of: List[List[Tuple[int, ...]]] = [[] for _ in range(n)]
    bits_of: List[List[int]] = [[] for _ in range(n)]
    full_counts = [0] * n
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)
    merge_memo: Dict[Tuple[int, ...], Tuple[list, int]] = {}

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            const_tt = TruthTable.const(g is Gate.CONST1, 0)
            db[node] = [Cut((), const_tt)]
            leaves_of[node] = [()]
            bits_of[node] = [const_tt.bits]
            full_counts[node] = 1
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            leaves_of[node] = [(node,)]
            bits_of[node] = [tt_var0.bits]
            full_counts[node] = 1
            continue

        rows, total = _node_cut_rows(
            g, fanins[node], leaves_of, bits_of, k, cuts_per_node, merge_memo
        )
        full_counts[node] = total
        node_cuts = [Cut(key, TruthTable(bits, len(key))) for key, bits in rows]
        node_leaves = [key for key, _bits in rows]
        node_bits = [bits for _key, bits in rows]
        if include_trivial:
            node_cuts.append(Cut((node,), tt_var0))
            node_leaves.append((node,))
            node_bits.append(tt_var0.bits)
        db[node] = node_cuts
        leaves_of[node] = node_leaves
        bits_of[node] = node_bits

    return CutDatabase(
        db,
        k,
        epoch=net.epoch,
        cuts_per_node=cuts_per_node,
        include_trivial=include_trivial,
        full_counts=full_counts,
    )


def enumerate_cuts_reference(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """The seed per-candidate enumeration — the kernel's differential oracle.

    Allocates a frozen dataclass pair per candidate and composes tables
    through :class:`TruthTable` methods; results are bit-identical to
    :func:`enumerate_cuts`.
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            db[node] = [Cut((), TruthTable.const(g is Gate.CONST1, 0))]
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            continue

        fins = fanins[node]
        fanin_cut_sets = [db[f] for f in fins]

        chosen: Dict[Tuple[int, ...], Tuple[Cut, ...]] = {}
        for combo in itertools.product(*fanin_cut_sets):
            leaves_set = set()
            ok = True
            for c in combo:
                leaves_set.update(c.leaves)
                if len(leaves_set) > k:
                    ok = False
                    break
            if not ok:
                continue
            key = tuple(sorted(leaves_set))
            if key not in chosen:
                chosen[key] = combo

        keys = sorted(chosen.keys(), key=lambda t: (len(t), t))
        kept: List[Tuple[Tuple[int, ...], set, int]] = []
        for key in keys:
            sig = leaf_signature(key)
            ks = None
            dominated = False
            for _prev_key, prev_set, prev_sig in kept:
                if prev_sig & ~sig:
                    continue
                if ks is None:
                    ks = set(key)
                if prev_set <= ks:
                    dominated = True
                    break
            if dominated:
                continue
            kept.append((key, set(key), sig))
        kept = kept[:cuts_per_node]

        result = [
            Cut(key, _compose_table(net, g, chosen[key], key), sig)
            for key, _ks, sig in kept
        ]
        if include_trivial:
            result.append(Cut((node,), tt_var0))
        db[node] = result

    return CutDatabase(
        db,
        k,
        epoch=net.epoch,
        cuts_per_node=cuts_per_node,
        include_trivial=include_trivial,
    )


def cached_cut_database(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
) -> CutDatabase:
    """Enumerate cuts once per ``(network epoch, parameters)``.

    The database is cached on the network object and reused while
    ``net.epoch`` is unchanged; any structural mutation (``substitute``,
    ``replace_fanin``, ``compact``, ``add_gate``, ...) bumps the epoch
    and invalidates it on the next call.  Treat the returned database as
    immutable — it is shared between callers.

    ``net.clone()`` does not carry the cache over (the clone starts
    cold), so caches never alias across network copies.
    """
    cache: Optional[Dict] = getattr(net, "_cut_db_cache", None)
    if cache is None:
        cache = {}
        net._cut_db_cache = cache  # type: ignore[attr-defined]
    key = (k, cuts_per_node, include_trivial)
    db = cache.get(key)
    if db is not None and db.epoch == net.epoch:
        return db
    db = enumerate_cuts(
        net, k=k, cuts_per_node=cuts_per_node, include_trivial=include_trivial
    )
    cache[key] = db
    return db


def install_cut_database(net: LogicNetwork, db: CutDatabase) -> CutDatabase:
    """Adopt *db* as the cached database of *net*.

    The entry point for incremental flows: after
    ``new_db = old_db.remap(old_net, new_net, node_map)``, installing
    ``new_db`` on ``new_net`` makes the next
    :func:`cached_cut_database` call with the same parameters hit it
    instead of re-enumerating.  The database epoch must match the
    network's current epoch.
    """
    if db.epoch != net.epoch:
        raise NetworkError(
            f"cut database epoch {db.epoch} != network epoch {net.epoch}"
        )
    cache: Optional[Dict] = getattr(net, "_cut_db_cache", None)
    if cache is None:
        cache = {}
        net._cut_db_cache = cache  # type: ignore[attr-defined]
    cache[(db.k, db.cuts_per_node, db.include_trivial)] = db
    return db
