"""k-feasible priority cut enumeration with cut truth tables.

Follows Cong et al. (FPGA'99, ref. [8] of the paper): the cut set of a
node is built by merging the cut sets of its fanins, keeping only cuts
with at most *k* leaves, filtering dominated cuts, and pruning to the
``cuts_per_node`` best (smaller first) to bound the blow-up.

Each cut carries the truth table of the node over the cut leaves — this is
what Boolean matching consumes.  Since the function of a node over a fixed
leaf set is unique, tables are computed once per distinct leaf set (the
merge loop only manipulates leaf tuples, which keeps pure-Python
enumeration fast enough for 20k-node networks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.gates import Gate, eval_gate, is_t1_tap
from repro.network.logic_network import LogicNetwork
from repro.network.traversal import topological_order
from repro.network.truth_table import TruthTable


def leaf_signature(leaves: Tuple[int, ...]) -> int:
    """64-bit hashed bitmask of a leaf set (bit ``leaf % 64`` per leaf).

    ``sig(A) & ~sig(B) != 0`` proves A ⊄ B, so the O(cuts²) dominance
    filter rejects almost every pair with two int ops and only falls back
    to an exact set comparison on a signature hit (the classic ABC
    filter).  Bounded at 64 bits on purpose: a ``1 << node_id`` exact
    mask would make every cut carry a multi-KB big int on 20k-node
    networks.
    """
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


@dataclass(frozen=True)
class Cut:
    """A cut of some node: sorted leaf tuple + function over those leaves.

    ``signature`` is the precomputed :func:`leaf_signature` of the
    leaves, consumed by the dominance filter.
    """

    leaves: Tuple[int, ...]
    table: TruthTable
    signature: int = field(default=-1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.signature < 0:
            object.__setattr__(self, "signature", leaf_signature(self.leaves))

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        if self.signature & ~other.signature:
            return False
        return set(self.leaves) <= set(other.leaves)

    def __len__(self) -> int:
        return len(self.leaves)


class CutDatabase:
    """Cut sets for every node of a network."""

    def __init__(self, cuts: List[List[Cut]], k: int):
        self.cuts = cuts
        self.k = k

    def __getitem__(self, node: int) -> List[Cut]:
        return self.cuts[node]

    def cut_with_leaves(self, node: int, leaves: Tuple[int, ...]) -> Optional[Cut]:
        for c in self.cuts[node]:
            if c.leaves == leaves:
                return c
        return None


def _compose_table(
    net: LogicNetwork,
    gate: Gate,
    fanin_cuts: Sequence[Cut],
    leaves: Tuple[int, ...],
) -> TruthTable:
    """Truth table of ``gate`` over *leaves* from its fanins' cut tables."""
    k = len(leaves)
    pos = {leaf: i for i, leaf in enumerate(leaves)}
    mask = (1 << (1 << k)) - 1
    fanin_tts = []
    for cut in fanin_cuts:
        positions = [pos[leaf] for leaf in cut.leaves]
        fanin_tts.append(cut.table.remap(positions, k).bits)
    return TruthTable(eval_gate(gate, fanin_tts, mask) & mask, k)


def enumerate_cuts(
    net: LogicNetwork,
    k: int = 3,
    cuts_per_node: int = 8,
    include_trivial: bool = True,
    order: Optional[Sequence[int]] = None,
) -> CutDatabase:
    """Enumerate priority cuts for every node.

    Parameters
    ----------
    k:
        Maximum number of cut leaves.
    cuts_per_node:
        Priority-cut limit (smallest cuts kept); the trivial cut ``{node}``
        is always kept in addition so merges never starve.

    T1 blocks: the cell and its taps get only trivial cuts (they are
    already mapped; re-matching inside them is pointless).
    """
    if k < 1:
        raise NetworkError("cut size k must be >= 1")
    if order is None:
        order = topological_order(net)
    n = net.num_nodes()
    db: List[List[Cut]] = [[] for _ in range(n)]
    gates = net.gates
    fanins = net.fanins
    tt_var0 = TruthTable.var(0, 1)

    for node in order:
        g = gates[node]
        if g in (Gate.CONST0, Gate.CONST1):
            db[node] = [Cut((), TruthTable.const(g is Gate.CONST1, 0))]
            continue
        if g is Gate.PI or g is Gate.T1_CELL or is_t1_tap(g):
            db[node] = [Cut((node,), tt_var0)]
            continue

        fins = fanins[node]
        fanin_cut_sets = [db[f] for f in fins]

        # 1) enumerate distinct feasible leaf sets (cheap tuple-set work)
        chosen: Dict[Tuple[int, ...], Tuple[Cut, ...]] = {}
        for combo in itertools.product(*fanin_cut_sets):
            leaves_set = set()
            ok = True
            for c in combo:
                leaves_set.update(c.leaves)
                if len(leaves_set) > k:
                    ok = False
                    break
            if not ok:
                continue
            key = tuple(sorted(leaves_set))
            if key not in chosen:
                chosen[key] = combo

        # 2) dominance filter: the 64-bit leaf signatures prove most
        #    non-subset pairs in two int ops; only signature hits pay for
        #    the exact set comparison
        keys = sorted(chosen.keys(), key=lambda t: (len(t), t))
        kept: List[Tuple[Tuple[int, ...], set, int]] = []
        for key in keys:
            sig = leaf_signature(key)
            ks = None
            dominated = False
            for _prev_key, prev_set, prev_sig in kept:
                if prev_sig & ~sig:
                    continue
                if ks is None:
                    ks = set(key)
                if prev_set <= ks:
                    dominated = True
                    break
            if dominated:
                continue
            kept.append((key, set(key), sig))
        kept = kept[:cuts_per_node]

        # 3) compose tables once per surviving leaf set
        result = [
            Cut(key, _compose_table(net, g, chosen[key], key), sig)
            for key, _ks, sig in kept
        ]
        if include_trivial:
            result.append(Cut((node,), tt_var0))
        db[node] = result

    return CutDatabase(db, k)
