"""Combinational equivalence checking (CEC).

Three engines, used in escalation order by :func:`check_equivalence`:

1. exhaustive bit-parallel simulation when the PI count is small —
   *chunked* so the peak big-int width stays bounded and the first
   differing chunk terminates the run early;
2. random bit-parallel simulation (fast falsification witness).  The
   driver runs it through :func:`signature_equivalence`: per-PO
   *simulation signatures* are collected over a few wide rounds (the
   same total stimulus bits as the seed's many narrow rounds, at a
   fraction of the per-round traversal overhead, with the round width
   capped so the per-network value arrays stay within a fixed memory
   budget), and PO pairs are partitioned into distinguished pairs (a
   witness — the whole check is settled, no SAT call at all) and
   identical-signature pairs;
3. SAT on the XOR miter (complete; uses :mod:`repro.sat`) — reached
   only when *every* pair kept an identical signature.  For callers
   that need to prove a chosen *subset* of PO pairs,
   :func:`sat_equivalence` accepts ``pairs=...`` and restricts the
   Tseitin encoding to those pairs' transitive fanin cones.

The T1 flow uses CEC after every replacement pass: T1 taps evaluate their
XOR3/MAJ3/OR3 semantics in simulation, and the CNF encoder expands them
the same way, so mapped and original networks are compared directly.

The multi-round simulation engines leave ``order=None`` on every
:func:`~repro.network.simulation.simulate` call on purpose: the kernel
caches the topological order per mutation epoch, so all rounds of a CEC
run share one traversal of each (unchanged) network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EquivalenceError, NetworkError
from repro.network.logic_network import LogicNetwork
from repro.network.simulation import (
    exhaustive_pi_patterns,
    exhaustive_pi_patterns_chunk,
    random_patterns,
    simulate_pos,
)

EXHAUSTIVE_PI_LIMIT = 14
DEFAULT_RANDOM_WIDTH = 4096
DEFAULT_RANDOM_ROUNDS = 16
#: the signature engine spends the same 64 Ki stimulus bits as the seed
#: (16 rounds x 4096) in two wide rounds — ~8x fewer full-network
#: traversals for identical falsification power
DEFAULT_SIGNATURE_WIDTH = 32768
DEFAULT_SIGNATURE_ROUNDS = 2
#: per-network budget for the simulation value arrays (bits): the round
#: width is halved until ``width * num_nodes`` fits, trading traversal
#: count back for bounded peak memory on very large networks (the same
#: concern EXHAUSTIVE_CHUNK_PIS bounds on the exhaustive path)
SIGNATURE_WIDTH_BUDGET_BITS = 1 << 29
#: peak exhaustive big-int width: 2**12 bits = 512 bytes per node value
EXHAUSTIVE_CHUNK_PIS = 12


@dataclass
class CecResult:
    """Outcome of a CEC run."""

    equivalent: bool
    method: str
    counterexample: Optional[Dict[str, int]] = None  # pi name/index -> bit

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: LogicNetwork, b: LogicNetwork) -> None:
    if len(a.pis) != len(b.pis):
        raise NetworkError(
            f"PI count mismatch: {len(a.pis)} vs {len(b.pis)}"
        )
    if len(a.pos) != len(b.pos):
        raise NetworkError(
            f"PO count mismatch: {len(a.pos)} vs {len(b.pos)}"
        )


def _extract_cex(
    a: LogicNetwork, pi_vectors: Sequence[int], bit: int
) -> Dict[str, int]:
    cex = {}
    for i, pi in enumerate(a.pis):
        name = a.get_name(pi) or f"pi{i}"
        cex[name] = (pi_vectors[i] >> bit) & 1
    return cex


def simulate_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    width: int = DEFAULT_RANDOM_WIDTH,
    rounds: int = DEFAULT_RANDOM_ROUNDS,
    seed: int = 2024,
) -> CecResult:
    """Random-simulation CEC: complete only as a falsifier.

    The seed many-narrow-rounds engine, retained as the differential
    baseline for :func:`signature_equivalence` (and for callers that
    want the classic round structure)."""
    _check_interfaces(a, b)
    for r in range(rounds):
        vecs = random_patterns(len(a.pis), width, seed=seed + r)
        pos_a = simulate_pos(a, vecs, width)
        pos_b = simulate_pos(b, vecs, width)
        for va, vb in zip(pos_a, pos_b):
            diff = va ^ vb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return CecResult(False, "random", _extract_cex(a, vecs, bit))
    return CecResult(True, "random")


def signature_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    width: int = DEFAULT_SIGNATURE_WIDTH,
    rounds: int = DEFAULT_SIGNATURE_ROUNDS,
    seed: int = 2024,
) -> Tuple[CecResult, List[int]]:
    """Random CEC through per-PO simulation signatures.

    Returns ``(result, undistinguished)`` where *undistinguished* lists
    the PO indices whose signature stayed identical across every round —
    the pairs a complete check still has to hand to the SAT miter.  On a
    falsified run the first differing pair yields the counterexample and
    the remaining pairs are not refined further.

    The round width is halved (and the round count doubled, preserving
    the total stimulus) until the per-network value arrays fit
    :data:`SIGNATURE_WIDTH_BUDGET_BITS`, so very large networks trade
    traversal savings back for a bounded peak footprint.
    """
    _check_interfaces(a, b)
    num_nodes = max(a.num_nodes(), b.num_nodes(), 1)
    while (
        width > DEFAULT_RANDOM_WIDTH
        and width * num_nodes > SIGNATURE_WIDTH_BUDGET_BITS
    ):
        width //= 2
        rounds *= 2
    for r in range(rounds):
        vecs = random_patterns(len(a.pis), width, seed=seed + r)
        pos_a = simulate_pos(a, vecs, width)
        pos_b = simulate_pos(b, vecs, width)
        for i, (va, vb) in enumerate(zip(pos_a, pos_b)):
            diff = va ^ vb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return (
                    CecResult(False, "random", _extract_cex(a, vecs, bit)),
                    [],
                )
    return CecResult(True, "random"), list(range(len(a.pos)))


def exhaustive_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    chunk_pis: int = EXHAUSTIVE_CHUNK_PIS,
) -> CecResult:
    """Complete CEC by simulating all 2^k input patterns.

    Patterns are simulated in ``2**chunk_pis``-wide chunks: the peak
    big-int width is bounded regardless of the PI count, and the first
    differing chunk short-circuits the remaining ones.
    """
    _check_interfaces(a, b)
    k = len(a.pis)
    if k > EXHAUSTIVE_PI_LIMIT:
        raise NetworkError(f"{k} PIs too many for exhaustive CEC")
    if chunk_pis >= k:
        num_chunks = 1
    else:
        num_chunks = 1 << (k - chunk_pis)
    width = 1 << min(k, chunk_pis)
    for chunk in range(num_chunks):
        if num_chunks == 1:
            vecs = exhaustive_pi_patterns(k)
        else:
            vecs = exhaustive_pi_patterns_chunk(k, chunk_pis, chunk)
        pos_a = simulate_pos(a, vecs, width)
        pos_b = simulate_pos(b, vecs, width)
        for va, vb in zip(pos_a, pos_b):
            diff = va ^ vb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return CecResult(
                    False, "exhaustive", _extract_cex(a, vecs, bit)
                )
    return CecResult(True, "exhaustive")


def sat_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    conflict_limit: int = 2_000_000,
    pairs: Optional[Sequence[int]] = None,
) -> CecResult:
    """Complete CEC via a SAT miter (pairwise PO XOR, ORed).

    *pairs* restricts the miter to the given PO indices (the
    identical-signature pairs the simulation rounds could not
    distinguish); the encoding covers only the transitive fanin cones of
    those POs.  ``None`` checks every pair.
    """
    from repro.network.traversal import transitive_fanin
    from repro.sat.cnf import CnfBuilder
    from repro.sat.solver import SatSolver, SatStatus

    _check_interfaces(a, b)
    if pairs is None:
        pair_list = list(range(len(a.pos)))
    else:
        pair_list = sorted(set(pairs))
        for i in pair_list:
            if not 0 <= i < len(a.pos):
                raise NetworkError(f"PO index {i} out of range")
    if not pair_list:
        # no pairs to differ: vacuously equivalent (also covers
        # zero-PO interfaces reaching the SAT stage)
        return CecResult(True, "sat")
    builder = CnfBuilder()
    pi_vars = [builder.new_var() for _ in a.pis]
    if pairs is None or len(pair_list) == len(a.pos):
        sel_a = builder.encode_network(a, pi_vars)
        sel_b = builder.encode_network(b, pi_vars)
    else:
        # restrict the encoding to the transitive fanin cones of the
        # selected pairs (T1 taps pull in their cell's fanins, so the
        # cone is fanin-closed for the encoder)
        def cone_nodes(net: LogicNetwork, roots: List[int]) -> List[int]:
            keep = transitive_fanin(net, roots)
            return [n for n in net.topological_order() if n in keep]

        roots_a = [a.pos[i] for i in pair_list]
        roots_b = [b.pos[i] for i in pair_list]
        lits_a = builder.encode_network(a, pi_vars, nodes=cone_nodes(a, roots_a))
        lits_b = builder.encode_network(b, pi_vars, nodes=cone_nodes(b, roots_b))
        sel_a = [lits_a[i] for i in pair_list]
        sel_b = [lits_b[i] for i in pair_list]
    diffs = []
    for la, lb in zip(sel_a, sel_b):
        assert la is not None and lb is not None
        diffs.append(builder.add_xor2(la, lb))
    builder.add_clause(diffs)  # some selected PO differs
    solver = SatSolver(builder.num_vars, builder.clauses)
    status = solver.solve(conflict_limit=conflict_limit)
    if status is SatStatus.UNSAT:
        return CecResult(True, "sat")
    if status is SatStatus.SAT:
        model = solver.model()
        cex = {}
        for i, pi in enumerate(a.pis):
            name = a.get_name(pi) or f"pi{i}"
            cex[name] = 1 if model[pi_vars[i]] else 0
        return CecResult(False, "sat", cex)
    raise EquivalenceError("SAT CEC hit its conflict limit")


def check_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    complete: bool = True,
    random_width: int = DEFAULT_SIGNATURE_WIDTH,
    random_rounds: int = DEFAULT_SIGNATURE_ROUNDS,
) -> CecResult:
    """CEC with engine escalation.

    * few PIs -> chunked exhaustive (complete);
    * otherwise the signature engine first (cheap falsification, wide
      rounds); identical-signature PO pairs then go to the SAT miter —
      but only when ``complete`` asks for a proof.

    For large networks with ``complete=True`` the SAT call may be slow;
    flows use ``complete=False`` plus heavy random simulation, and the
    test-suite runs complete checks on down-scaled circuits.
    """
    _check_interfaces(a, b)
    if len(a.pis) <= EXHAUSTIVE_PI_LIMIT:
        return exhaustive_equivalence(a, b)
    res, undistinguished = signature_equivalence(
        a, b, width=random_width, rounds=random_rounds
    )
    if not res.equivalent or not complete:
        return res
    return sat_equivalence(a, b, pairs=undistinguished)


def assert_equivalent(a: LogicNetwork, b: LogicNetwork, **kwargs) -> None:
    """Raise :class:`EquivalenceError` (with witness) unless a == b."""
    res = check_equivalence(a, b, **kwargs)
    if not res.equivalent:
        raise EquivalenceError(
            f"networks differ (method={res.method})", res.counterexample
        )
