"""Combinational equivalence checking (CEC).

Three engines, used in escalation order by :func:`check_equivalence`:

1. exhaustive bit-parallel simulation when the PI count is small;
2. random bit-parallel simulation (fast falsification witness);
3. SAT on the XOR miter (complete; uses :mod:`repro.sat`).

The T1 flow uses CEC after every replacement pass: T1 taps evaluate their
XOR3/MAJ3/OR3 semantics in simulation, and the CNF encoder expands them
the same way, so mapped and original networks are compared directly.

The multi-round simulation engines leave ``order=None`` on every
:func:`~repro.network.simulation.simulate` call on purpose: the kernel
caches the topological order per mutation epoch, so all rounds of a CEC
run share one traversal of each (unchanged) network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EquivalenceError, NetworkError
from repro.network.logic_network import LogicNetwork
from repro.network.simulation import (
    exhaustive_pi_patterns,
    random_patterns,
    simulate_pos,
)

EXHAUSTIVE_PI_LIMIT = 14
DEFAULT_RANDOM_WIDTH = 4096
DEFAULT_RANDOM_ROUNDS = 16


@dataclass
class CecResult:
    """Outcome of a CEC run."""

    equivalent: bool
    method: str
    counterexample: Optional[Dict[str, int]] = None  # pi name/index -> bit

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: LogicNetwork, b: LogicNetwork) -> None:
    if len(a.pis) != len(b.pis):
        raise NetworkError(
            f"PI count mismatch: {len(a.pis)} vs {len(b.pis)}"
        )
    if len(a.pos) != len(b.pos):
        raise NetworkError(
            f"PO count mismatch: {len(a.pos)} vs {len(b.pos)}"
        )


def _extract_cex(
    a: LogicNetwork, pi_vectors: Sequence[int], bit: int
) -> Dict[str, int]:
    cex = {}
    for i, pi in enumerate(a.pis):
        name = a.get_name(pi) or f"pi{i}"
        cex[name] = (pi_vectors[i] >> bit) & 1
    return cex


def simulate_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    width: int = DEFAULT_RANDOM_WIDTH,
    rounds: int = DEFAULT_RANDOM_ROUNDS,
    seed: int = 2024,
) -> CecResult:
    """Random-simulation CEC: complete only as a falsifier."""
    _check_interfaces(a, b)
    for r in range(rounds):
        vecs = random_patterns(len(a.pis), width, seed=seed + r)
        pos_a = simulate_pos(a, vecs, width)
        pos_b = simulate_pos(b, vecs, width)
        for va, vb in zip(pos_a, pos_b):
            diff = va ^ vb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return CecResult(False, "random", _extract_cex(a, vecs, bit))
    return CecResult(True, "random")


def exhaustive_equivalence(a: LogicNetwork, b: LogicNetwork) -> CecResult:
    """Complete CEC by simulating all 2^k input patterns."""
    _check_interfaces(a, b)
    k = len(a.pis)
    if k > EXHAUSTIVE_PI_LIMIT:
        raise NetworkError(f"{k} PIs too many for exhaustive CEC")
    vecs = exhaustive_pi_patterns(k)
    width = 1 << k
    pos_a = simulate_pos(a, vecs, width)
    pos_b = simulate_pos(b, vecs, width)
    for va, vb in zip(pos_a, pos_b):
        diff = va ^ vb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            return CecResult(False, "exhaustive", _extract_cex(a, vecs, bit))
    return CecResult(True, "exhaustive")


def sat_equivalence(
    a: LogicNetwork, b: LogicNetwork, conflict_limit: int = 2_000_000
) -> CecResult:
    """Complete CEC via a SAT miter (pairwise PO XOR, ORed)."""
    from repro.sat.cnf import CnfBuilder
    from repro.sat.solver import SatSolver, SatStatus

    _check_interfaces(a, b)
    builder = CnfBuilder()
    pi_vars = [builder.new_var() for _ in a.pis]
    lits_a = builder.encode_network(a, pi_vars)
    lits_b = builder.encode_network(b, pi_vars)
    diffs = []
    for la, lb in zip(lits_a, lits_b):
        diffs.append(builder.add_xor2(la, lb))
    builder.add_clause(diffs)  # some PO differs
    solver = SatSolver(builder.num_vars, builder.clauses)
    status = solver.solve(conflict_limit=conflict_limit)
    if status is SatStatus.UNSAT:
        return CecResult(True, "sat")
    if status is SatStatus.SAT:
        model = solver.model()
        cex = {}
        for i, pi in enumerate(a.pis):
            name = a.get_name(pi) or f"pi{i}"
            cex[name] = 1 if model[pi_vars[i]] else 0
        return CecResult(False, "sat", cex)
    raise EquivalenceError("SAT CEC hit its conflict limit")


def check_equivalence(
    a: LogicNetwork,
    b: LogicNetwork,
    complete: bool = True,
    random_width: int = DEFAULT_RANDOM_WIDTH,
    random_rounds: int = DEFAULT_RANDOM_ROUNDS,
) -> CecResult:
    """CEC with engine escalation.

    * few PIs -> exhaustive (complete);
    * otherwise random simulation first (cheap falsification), then — when
      ``complete`` and the miter is small enough — SAT.

    For large networks with ``complete=True`` the SAT call may be slow;
    flows use ``complete=False`` plus heavy random simulation, and the
    test-suite runs complete checks on down-scaled circuits.
    """
    _check_interfaces(a, b)
    if len(a.pis) <= EXHAUSTIVE_PI_LIMIT:
        return exhaustive_equivalence(a, b)
    res = simulate_equivalence(a, b, width=random_width, rounds=random_rounds)
    if not res.equivalent or not complete:
        return res
    return sat_equivalence(a, b)


def assert_equivalent(a: LogicNetwork, b: LogicNetwork, **kwargs) -> None:
    """Raise :class:`EquivalenceError` (with witness) unless a == b."""
    res = check_equivalence(a, b, **kwargs)
    if not res.equivalent:
        raise EquivalenceError(
            f"networks differ (method={res.method})", res.counterexample
        )
