"""The retained tuple-layout network kernel — the flat core's oracle.

This is the pre-flat-array :class:`LogicNetwork` implementation, kept
verbatim (``gates`` as a ``List[Gate]``, ``fanins`` as a
``List[Tuple[int, ...]]``, compaction by list rebuild) so the
struct-of-arrays core in :mod:`repro.network.logic_network` has a
differential oracle: the randomized fuzz in
``tests/network/test_flat_core.py`` replays identical mutator sequences
(``add_gate`` / ``substitute`` / ``replace_fanin`` / ``compact`` /
``clone``) against both layouts and asserts identical gates, fanins,
``NodeMap`` events and ``structural_hash``.

Not part of the public API and not used by any flow path — tests and
benchmarks only.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CycleError, NetworkError
from repro.network.gates import Gate, check_arity, is_t1_tap
from repro.network.logic_network import (
    CONST0,
    CONST1,
    _COMMUTATIVE,
    fold_gate,
)
from repro.network.nodemap import NodeMap


class ReferenceLogicNetwork:
    """A combinational logic network with maintained analysis indices.

    Attributes
    ----------
    gates:
        ``gates[i]`` is the :class:`Gate` kind of node ``i``.
    fanins:
        ``fanins[i]`` is the tuple of fanin node ids of node ``i``.
    epoch:
        Mutation counter; bumped by every structural change.  Analyses
        cached against an epoch stay valid while it is unchanged.
    """

    def __init__(self, name: str = "top", *, hash_cons: bool = False):
        self.name = name
        self.gates: List[Gate] = [Gate.CONST0, Gate.CONST1]
        self.fanins: List[Tuple[int, ...]] = [(), ()]
        self._pis: List[int] = []
        self._pos: List[int] = []
        self._po_names: List[Optional[str]] = []
        self._names: Dict[int, str] = {}
        # maintained indices ---------------------------------------------------
        self._fanout: List[Dict[int, int]] = [{}, {}]  # consumer -> multiplicity
        self._struct_refs: List[int] = [0, 0]  # fanin references (POs excluded)
        self._po_pos: Dict[int, List[int]] = {}  # node -> indices into _pos
        self._epoch: int = 0
        # per-epoch analysis caches -------------------------------------------
        self._topo_cache: Optional[List[int]] = None
        self._topo_epoch: int = -1
        self._levels_cache: Optional[List[int]] = None
        self._levels_epoch: int = -1
        self._fanout_lists_cache: Optional[List[List[int]]] = None
        self._fanout_lists_epoch: int = -1
        self._shash_cache: Optional[str] = None
        self._shash_key: Optional[Tuple] = None
        # hash-consing ---------------------------------------------------------
        self._hash_cons: bool = hash_cons
        self._hash_table: Dict[Tuple, int] = {}

    # -- size / iteration ----------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter (structure only; names/POs excluded)."""
        return self._epoch

    @property
    def hash_cons(self) -> bool:
        """Whether ``add_gate`` deduplicates and folds at creation."""
        return self._hash_cons

    def set_hash_cons(self, enabled: bool) -> None:
        """Toggle hash-consed construction.

        Enabling (re)builds the structural hash table from the current
        nodes (first id wins for duplicates already present).
        """
        self._hash_cons = enabled
        if enabled:
            self._rebuild_hash_table()
        else:
            self._hash_table = {}

    def num_nodes(self) -> int:
        """Total node count including constants, PIs and taps."""
        return len(self.gates)

    def nodes(self) -> Iterator[int]:
        return iter(range(len(self.gates)))

    def num_gates(self) -> int:
        """Count of logic nodes (excludes constants, PIs and T1 taps)."""
        skip = (Gate.CONST0, Gate.CONST1, Gate.PI)
        return sum(
            1
            for g in self.gates
            if g not in skip and not is_t1_tap(g)
        )

    @property
    def pis(self) -> Tuple[int, ...]:
        return tuple(self._pis)

    @property
    def pos(self) -> Tuple[int, ...]:
        return tuple(self._pos)

    @property
    def po_names(self) -> Tuple[Optional[str], ...]:
        return tuple(self._po_names)

    # -- construction ----------------------------------------------------------

    def _append_node(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        """Unconditionally append one node and maintain the indices."""
        self.gates.append(gate)
        self.fanins.append(fanins)
        self._fanout.append({})
        self._struct_refs.append(0)
        node = len(self.gates) - 1
        for f in fanins:
            out = self._fanout[f]
            out[node] = out.get(node, 0) + 1
            self._struct_refs[f] += 1
        self._epoch += 1
        return node

    def _new_node(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        check_arity(gate, len(fanins))
        for f in fanins:
            if not 0 <= f < len(self.gates):
                raise NetworkError(f"fanin {f} does not exist")
        return self._append_node(gate, fanins)

    def _emit_hashed(self, gate: Gate, fins: Tuple[int, ...]) -> int:
        """Fold/canonicalise/dedupe one gate (the strash ``emit`` rules)."""
        while True:
            res = fold_gate(gate, fins)
            if res is None:
                break
            kind, payload = res
            if kind == "const":
                return CONST1 if payload else CONST0
            if kind == "alias":
                return payload  # type: ignore[return-value]
            gate, fins = payload  # type: ignore[assignment]
        if gate is Gate.NOT and self.gates[fins[0]] is Gate.NOT:
            return self.fanins[fins[0]][0]  # double negation
        if gate in _COMMUTATIVE:
            fins = tuple(sorted(fins))
        key = (gate, fins)
        existing = self._hash_table.get(key)
        if existing is not None:
            return existing
        node = self._append_node(gate, fins)
        self._hash_table[key] = node
        return node

    def add_pi(self, name: Optional[str] = None) -> int:
        node = self._new_node(Gate.PI, ())
        self._pis.append(node)
        if name is not None:
            self._names[node] = name
        return node

    def add_gate(self, gate: Gate, fanins: Sequence[int]) -> int:
        """Append a logic node; *gate* must not be PI/const.

        With ``hash_cons`` enabled this may instead return an existing
        node id (duplicate structure), an alias fanin (folded BUF /
        single-input gate / double negation) or a constant.
        """
        if gate in (Gate.PI, Gate.CONST0, Gate.CONST1):
            raise NetworkError(f"use add_pi()/constants for {gate.name}")
        if gate is Gate.T1_CELL:
            raise NetworkError("use add_t1_cell() for T1 blocks")
        fins = tuple(fanins)
        check_arity(gate, len(fins))
        for f in fins:
            if not 0 <= f < len(self.gates):
                raise NetworkError(f"fanin {f} does not exist")
        if is_t1_tap(gate):
            cell = fins[0]
            if self.gates[cell] is not Gate.T1_CELL:
                raise NetworkError("T1 tap fanin must be a T1_CELL node")
            if self._hash_cons:
                key = (gate, fins)
                existing = self._hash_table.get(key)
                if existing is not None:
                    return existing
                node = self._append_node(gate, fins)
                self._hash_table[key] = node
                return node
            return self._append_node(gate, fins)
        if self._hash_cons:
            return self._emit_hashed(gate, fins)
        return self._append_node(gate, fins)

    def add_t1_cell(self, a: int, b: int, c: int) -> int:
        """Append a T1 cell block over leaves (a, b, c); returns the cell id."""
        fins = (a, b, c)
        for f in fins:
            if not 0 <= f < len(self.gates):
                raise NetworkError(f"fanin {f} does not exist")
        if self._hash_cons:
            key = (Gate.T1_CELL, fins)
            existing = self._hash_table.get(key)
            if existing is not None:
                return existing
            node = self._append_node(Gate.T1_CELL, fins)
            self._hash_table[key] = node
            return node
        return self._new_node(Gate.T1_CELL, fins)

    def add_t1_tap(self, cell: int, tap: Gate) -> int:
        if not is_t1_tap(tap):
            raise NetworkError(f"{tap.name} is not a T1 tap")
        return self.add_gate(tap, (cell,))

    # convenience builders used heavily by circuit generators -----------------

    def add_not(self, a: int) -> int:
        return self.add_gate(Gate.NOT, (a,))

    def add_buf(self, a: int) -> int:
        return self.add_gate(Gate.BUF, (a,))

    def add_and(self, *fanins: int) -> int:
        return self.add_gate(Gate.AND, fanins)

    def add_or(self, *fanins: int) -> int:
        return self.add_gate(Gate.OR, fanins)

    def add_xor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XOR, fanins)

    def add_nand(self, *fanins: int) -> int:
        return self.add_gate(Gate.NAND, fanins)

    def add_nor(self, *fanins: int) -> int:
        return self.add_gate(Gate.NOR, fanins)

    def add_xnor(self, *fanins: int) -> int:
        return self.add_gate(Gate.XNOR, fanins)

    def add_maj3(self, a: int, b: int, c: int) -> int:
        return self.add_gate(Gate.MAJ3, (a, b, c))

    def add_mux(self, sel: int, d0: int, d1: int) -> int:
        """2:1 multiplexer out = sel ? d1 : d0, built from basic gates."""
        ns = self.add_not(sel)
        t0 = self.add_and(ns, d0)
        t1 = self.add_and(sel, d1)
        return self.add_or(t0, t1)

    def add_po(self, node: int, name: Optional[str] = None) -> int:
        """Mark *node* as a primary output; returns the PO index."""
        if not 0 <= node < len(self.gates):
            raise NetworkError(f"PO target {node} does not exist")
        if self.gates[node] is Gate.T1_CELL:
            raise NetworkError("a T1_CELL has no single output; tap it first")
        self._pos.append(node)
        self._po_names.append(name)
        index = len(self._pos) - 1
        self._po_pos.setdefault(node, []).append(index)
        return index

    # -- names ------------------------------------------------------------------

    def set_name(self, node: int, name: str) -> None:
        self._names[node] = name

    def get_name(self, node: int) -> Optional[str]:
        return self._names.get(node)

    # -- structure queries -------------------------------------------------------

    def gate(self, node: int) -> Gate:
        return self.gates[node]

    def fanin(self, node: int) -> Tuple[int, ...]:
        return self.fanins[node]

    def is_pi(self, node: int) -> bool:
        return self.gates[node] is Gate.PI

    def is_const(self, node: int) -> bool:
        return node in (CONST0, CONST1)

    def is_logic(self, node: int) -> bool:
        g = self.gates[node]
        return g not in (Gate.CONST0, Gate.CONST1, Gate.PI)

    def t1_cells(self) -> List[int]:
        return [n for n in self.nodes() if self.gates[n] is Gate.T1_CELL]

    def t1_taps_of(self, cell: int) -> List[int]:
        return sorted(
            n
            for n in self._fanout[cell]
            if is_t1_tap(self.gates[n]) and self.fanins[n][0] == cell
        )

    # -- maintained fanout index ------------------------------------------------

    def fanout(self, node: int) -> Tuple[int, ...]:
        """Consumers of *node* (each repeated per fanin multiplicity)."""
        out: List[int] = []
        for consumer in sorted(self._fanout[node]):
            out.extend([consumer] * self._fanout[node][consumer])
        return tuple(out)

    def fanout_count(self, node: int) -> int:
        """Reference count of *node*: fanin references plus PO references."""
        return self._struct_refs[node] + len(self._po_pos.get(node, ()))

    def compute_fanouts(self) -> List[List[int]]:
        """``fanouts[u]`` = list of nodes having u as a fanin (with repeats).

        Materialised from the maintained index and cached per epoch —
        treat the result as immutable.
        """
        if (
            self._fanout_lists_cache is not None
            and self._fanout_lists_epoch == self._epoch
        ):
            return self._fanout_lists_cache
        fanouts: List[List[int]] = [[] for _ in range(len(self.gates))]
        for node, fins in enumerate(self.fanins):
            for f in fins:
                fanouts[f].append(node)
        self._fanout_lists_cache = fanouts
        self._fanout_lists_epoch = self._epoch
        return fanouts

    def compute_fanout_counts(self) -> List[int]:
        """Per-node reference counts (fanins + POs); a fresh mutable list."""
        counts = list(self._struct_refs)
        for po in self._pos:
            counts[po] += 1
        return counts

    # -- cached analyses ---------------------------------------------------------

    def topological_order(self) -> List[int]:
        """All nodes in a fanin-before-fanout order (Kahn's algorithm).

        Includes dead nodes; raises :class:`CycleError` on combinational
        loops.  Cached per mutation epoch — treat the result as immutable.
        """
        if self._topo_cache is not None and self._topo_epoch == self._epoch:
            return self._topo_cache
        n = len(self.gates)
        fanouts = self.compute_fanouts()
        indeg = [len(fins) for fins in self.fanins]
        queue = [node for node in range(n) if indeg[node] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order.append(u)
            for v in fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise CycleError("network contains a combinational cycle")
        self._topo_cache = order
        self._topo_epoch = self._epoch
        return order

    def levels(self) -> List[int]:
        """Logic level of every node (constants/PIs are 0; taps inherit).

        Cached per mutation epoch — treat the result as immutable.
        """
        if self._levels_cache is not None and self._levels_epoch == self._epoch:
            return self._levels_cache
        order = self.topological_order()
        lvl = [0] * len(self.gates)
        gates = self.gates
        fanins = self.fanins
        for node in order:
            fins = fanins[node]
            if not fins:
                lvl[node] = 0
            elif is_t1_tap(gates[node]):
                lvl[node] = lvl[fins[0]]
            else:
                lvl[node] = 1 + max(lvl[f] for f in fins)
        self._levels_cache = lvl
        self._levels_epoch = self._epoch
        return lvl

    def depth(self) -> int:
        """Maximum level over primary outputs."""
        if not self._pos:
            return 0
        lvl = self.levels()
        return max(lvl[po] for po in self._pos)

    def structural_hash(self) -> str:
        """Canonical content hash of the live network (64-hex SHA-256).

        The hash covers exactly the semantic content of the network as a
        function of its interface: gate kinds, fanin *structure*
        (commutative fanins contribute as an unordered multiset), the PI
        interface (count and positional identity) and the PO bindings in
        slot order.  It deliberately excludes node ids, node/PO names,
        dead nodes and construction order, so it is invariant under
        :meth:`clone` and the id renumbering of :meth:`compact` /
        ``sweep``, while any semantic edit (gate change, rewiring, PO
        re-binding or re-ordering, added output) produces a different
        hash.  Two networks with equal hashes compute the same functions
        through the same live structure.

        Built from SHA-256, not Python's ``hash()``, so the value is
        stable across processes and interpreter runs — it is the
        content-address the service layer keys its cross-run result
        cache on.  Cached per (mutation epoch, PO bindings); repeated
        calls on an unchanged network are O(1).
        """
        key = (self._epoch, tuple(self._pos), tuple(self._pis))
        if self._shash_cache is not None and self._shash_key == key:
            return self._shash_cache
        digests: List[Optional[bytes]] = [None] * len(self.gates)
        digests[CONST0] = hashlib.sha256(b"CONST0").digest()
        digests[CONST1] = hashlib.sha256(b"CONST1").digest()
        for index, pi in enumerate(self._pis):
            digests[pi] = hashlib.sha256(b"PI:%d" % index).digest()
        gates = self.gates
        fanins = self.fanins
        sha256 = hashlib.sha256
        for node in self.topological_order():
            if digests[node] is not None:
                continue
            gate = gates[node]
            fins = [digests[f] for f in fanins[node]]
            if gate in _COMMUTATIVE:
                fins.sort()
            digests[node] = sha256(
                gate.name.encode() + b"(" + b"".join(fins) + b")"
            ).digest()
        h = sha256(b"NET:%d:%d|" % (len(self._pis), len(self._pos)))
        for po in self._pos:
            h.update(digests[po])
        result = h.hexdigest()
        self._shash_cache = result
        self._shash_key = key
        return result

    # -- mutation ------------------------------------------------------------------

    def substitute(self, old: int, new: int) -> int:
        """Redirect every reference to *old* (fanins and POs) to *new*.

        O(fanout of *old*) via the maintained index.  Returns the number
        of rewritten references.  The *old* node stays in the arrays until
        a :meth:`compact`; callers should not re-use it.
        """
        if old == new:
            return 0
        if not 0 <= new < len(self.gates):
            raise NetworkError(f"substitute target {new} does not exist")
        if not 0 <= old < len(self.gates):
            return 0
        rewritten = 0
        consumers = self._fanout[old]
        if consumers:
            moved = 0
            new_out = self._fanout[new]
            for node, mult in list(consumers.items()):
                fins = self.fanins[node]
                new_fins = tuple(new if f == old else f for f in fins)
                self._hash_retable(node, fins, new_fins)
                self.fanins[node] = new_fins
                new_out[node] = new_out.get(node, 0) + mult
                rewritten += mult
                moved += mult
            self._fanout[old] = {}
            self._struct_refs[old] -= moved
            self._struct_refs[new] += moved
            self._epoch += 1
        po_slots = self._po_pos.pop(old, None)
        if po_slots:
            for i in po_slots:
                self._pos[i] = new
            self._po_pos.setdefault(new, []).extend(po_slots)
            rewritten += len(po_slots)
        return rewritten

    def replace_fanin(self, node: int, old: int, new: int) -> None:
        """Rewrite one node's fanin tuple only (every occurrence of *old*)."""
        fins = self.fanins[node]
        if old not in fins:
            raise NetworkError(f"{old} is not a fanin of {node}")
        if not 0 <= new < len(self.gates):
            raise NetworkError(f"fanin {new} does not exist")
        if old == new:
            return
        mult = fins.count(old)
        new_fins = tuple(new if f == old else f for f in fins)
        self._hash_retable(node, fins, new_fins)
        self.fanins[node] = new_fins
        out = self._fanout[old]
        out[node] -= mult
        if out[node] == 0:
            del out[node]
        new_out = self._fanout[new]
        new_out[node] = new_out.get(node, 0) + mult
        self._struct_refs[old] -= mult
        self._struct_refs[new] += mult
        self._epoch += 1

    def _hash_retable(
        self, node: int, old_fins: Tuple[int, ...], new_fins: Tuple[int, ...]
    ) -> None:
        """Keep the structural hash table consistent across a fanin rewrite.

        The stale key is dropped (only if it still points at *node*) and
        the new key inserted unless another node already claims it — the
        first node keeps the slot, so lookups stay deterministic.
        """
        if not self._hash_cons:
            return
        gate = self.gates[node]
        old_key = (gate, tuple(sorted(old_fins)) if gate in _COMMUTATIVE else old_fins)
        if self._hash_table.get(old_key) == node:
            del self._hash_table[old_key]
        new_key = (gate, tuple(sorted(new_fins)) if gate in _COMMUTATIVE else new_fins)
        self._hash_table.setdefault(new_key, node)

    def _rebuild_hash_table(self) -> None:
        table: Dict[Tuple, int] = {}
        for node, (gate, fins) in enumerate(zip(self.gates, self.fanins)):
            if gate in (Gate.CONST0, Gate.CONST1, Gate.PI):
                continue
            key = (gate, tuple(sorted(fins)) if gate in _COMMUTATIVE else fins)
            table.setdefault(key, node)
        self._hash_table = table

    # -- compaction -----------------------------------------------------------------

    def live_nodes(self) -> set:
        """Nodes reachable from the POs, plus constants and PIs.

        A T1 cell is live if any of its taps is live (the tap's fanin
        keeps it reachable); a live cell does not by itself keep dead
        sibling taps alive.  PIs are always retained (interface
        stability).
        """
        seen: set = set()
        stack = list(self._pos)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self.fanins[u])
        seen.add(CONST0)
        seen.add(CONST1)
        seen.update(self._pis)
        return seen

    def compact(self) -> NodeMap:
        """Remove dead nodes in place; returns the old-id -> new-id remap.

        Live node ids are re-assigned as constants, then PIs in interface
        order, then the remaining live nodes in topological order (the
        same id discipline as a from-scratch ``sweep`` rebuild, so the two
        are interchangeable).  Dead nodes are absent from the returned
        :class:`~repro.network.nodemap.NodeMap`; their names are dropped.
        """
        order = self.topological_order()
        live = self.live_nodes()
        remap: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
        seq: List[int] = [CONST0, CONST1]
        for pi in self._pis:
            remap[pi] = len(seq)
            seq.append(pi)
        for node in order:
            if node in remap or node not in live:
                continue
            remap[node] = len(seq)
            seq.append(node)
        self.gates = [self.gates[o] for o in seq]
        self.fanins = [
            tuple(remap[f] for f in self.fanins[o]) for o in seq
        ]
        self._pis = [remap[pi] for pi in self._pis]
        self._pos = [remap[po] for po in self._pos]
        self._po_pos = {}
        for i, po in enumerate(self._pos):
            self._po_pos.setdefault(po, []).append(i)
        self._names = {
            remap[n]: name for n, name in self._names.items() if n in remap
        }
        # rebuild the maintained indices from the compacted arrays
        self._fanout = [{} for _ in seq]
        self._struct_refs = [0] * len(seq)
        for node, fins in enumerate(self.fanins):
            for f in fins:
                out = self._fanout[f]
                out[node] = out.get(node, 0) + 1
                self._struct_refs[f] += 1
        self._epoch += 1
        if self._hash_cons:
            self._rebuild_hash_table()
        return NodeMap(remap)

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the maintained indices match a from-scratch recomputation.

        Used by the differential tests and the benchmark harness; raises
        :class:`~repro.errors.NetworkError` on any divergence.
        """
        n = len(self.gates)
        if not (
            len(self.fanins) == len(self._fanout) == len(self._struct_refs) == n
        ):
            raise NetworkError("kernel arrays out of sync")
        if len(self._pos) != len(self._po_names):
            raise NetworkError("PO name list out of sync")
        fresh_fanout: List[Dict[int, int]] = [{} for _ in range(n)]
        fresh_refs = [0] * n
        for node, fins in enumerate(self.fanins):
            for f in fins:
                if not 0 <= f < n:
                    raise NetworkError(f"fanin {f} of node {node} out of range")
                d = fresh_fanout[f]
                d[node] = d.get(node, 0) + 1
                fresh_refs[f] += 1
        for node in range(n):
            if fresh_fanout[node] != self._fanout[node]:
                raise NetworkError(
                    f"fanout index stale at node {node}: "
                    f"{self._fanout[node]} != {fresh_fanout[node]}"
                )
        if fresh_refs != self._struct_refs:
            raise NetworkError("reference counts stale")
        fresh_po_pos: Dict[int, List[int]] = {}
        for i, po in enumerate(self._pos):
            fresh_po_pos.setdefault(po, []).append(i)
        mine = {k: sorted(v) for k, v in self._po_pos.items() if v}
        if mine != fresh_po_pos:
            raise NetworkError("PO index stale")
        if (
            self._fanout_lists_cache is not None
            and self._fanout_lists_epoch == self._epoch
        ):
            cached_lists = self._fanout_lists_cache
            self._fanout_lists_cache = None
            if self.compute_fanouts() != cached_lists:
                raise NetworkError("cached fanout lists stale or mutated")
        if self._topo_cache is not None and self._topo_epoch == self._epoch:
            cached = self._topo_cache
            self._topo_cache = None
            fresh = self.topological_order()
            if fresh != cached:
                raise NetworkError("cached topological order stale")
        if self._levels_cache is not None and self._levels_epoch == self._epoch:
            cached_lvl = self._levels_cache
            self._levels_cache = None
            fresh_lvl = self.levels()
            if fresh_lvl != cached_lvl:
                raise NetworkError("cached levels stale")
        if self._hash_cons:
            for key, node in self._hash_table.items():
                gate, fins = key
                if self.gates[node] is not gate:
                    raise NetworkError(f"hash table gate mismatch at {node}")
                actual = self.fanins[node]
                canon = (
                    tuple(sorted(actual)) if gate in _COMMUTATIVE else actual
                )
                if canon != fins:
                    raise NetworkError(f"hash table fanin mismatch at {node}")

    # -- misc -----------------------------------------------------------------------

    def clone(self) -> "ReferenceLogicNetwork":
        out = ReferenceLogicNetwork(self.name)
        out.gates = list(self.gates)
        out.fanins = list(self.fanins)
        out._pis = list(self._pis)
        out._pos = list(self._pos)
        out._po_names = list(self._po_names)
        out._names = dict(self._names)
        out._fanout = [dict(d) for d in self._fanout]
        out._struct_refs = list(self._struct_refs)
        out._po_pos = {k: list(v) for k, v in self._po_pos.items()}
        out._epoch = self._epoch
        # analysis caches are immutable-by-convention: share them
        out._topo_cache = self._topo_cache
        out._topo_epoch = self._topo_epoch
        out._levels_cache = self._levels_cache
        out._levels_epoch = self._levels_epoch
        out._fanout_lists_cache = self._fanout_lists_cache
        out._fanout_lists_epoch = self._fanout_lists_epoch
        out._shash_cache = self._shash_cache
        out._shash_key = self._shash_key
        out._hash_cons = self._hash_cons
        out._hash_table = dict(self._hash_table)
        return out

    def stats(self) -> Dict[str, int]:
        from collections import Counter

        counter = Counter(g.name for g in self.gates)
        return {
            "nodes": self.num_nodes(),
            "gates": self.num_gates(),
            "pis": len(self._pis),
            "pos": len(self._pos),
            "t1_cells": counter.get("T1_CELL", 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ReferenceLogicNetwork(name={self.name!r}, gates={s['gates']}, "
            f"pis={s['pis']}, pos={s['pos']}, t1={s['t1_cells']})"
        )
