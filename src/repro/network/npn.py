"""NPN canonisation of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs and/or Negating the output.  The
canonical representative is the numerically smallest truth table reachable
by any of the ``2^k * k! * 2`` transforms — exhaustive enumeration is
perfectly fine for k <= 4, which covers the 3-input matching the T1 flow
needs (48 transforms + output polarity).

Boolean matching (De Micheli, ref. [9]) then reduces to comparing NPN
canonical forms, with the applied transform recovered for netlist
rewriting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TruthTableError
from repro.network.truth_table import TruthTable


@dataclass(frozen=True)
class NpnTransform:
    """Input permutation + input polarity + output polarity.

    Applying the transform to a function f yields
    ``g(x) = f(perm/polarity applied to x) ^ output_neg`` via
    :meth:`apply`.
    """

    perm: Tuple[int, ...]
    input_neg: int
    output_neg: bool

    def apply(self, tt: TruthTable) -> TruthTable:
        out = tt.negate_vars(self.input_neg).permute(self.perm)
        return ~out if self.output_neg else out


@lru_cache(maxsize=None)
def _all_transforms(k: int) -> Tuple[NpnTransform, ...]:
    out = []
    for perm in itertools.permutations(range(k)):
        for neg in range(1 << k):
            for oneg in (False, True):
                out.append(NpnTransform(perm, neg, oneg))
    return tuple(out)


def npn_canon(tt: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Canonical representative and the transform that produces it.

    ``transform.apply(tt) == canonical``.
    """
    if tt.num_vars > 4:
        raise TruthTableError("NPN canonisation supported up to 4 variables")
    best: Optional[TruthTable] = None
    best_tf: Optional[NpnTransform] = None
    for tf in _all_transforms(tt.num_vars):
        cand = tf.apply(tt)
        if best is None or cand.bits < best.bits:
            best = cand
            best_tf = tf
    assert best is not None and best_tf is not None
    return best, best_tf


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the two functions share an NPN class."""
    if a.num_vars != b.num_vars:
        return False
    return npn_canon(a)[0].bits == npn_canon(b)[0].bits


def match_against(
    target: TruthTable, candidate: TruthTable
) -> Optional[NpnTransform]:
    """Find a transform with ``tf.apply(candidate) == target`` if one exists."""
    if target.num_vars != candidate.num_vars:
        return None
    for tf in _all_transforms(target.num_vars):
        if tf.apply(candidate).bits == target.bits:
            return tf
    return None


def npn_class_size(tt: TruthTable) -> int:
    """Number of distinct functions in the NPN class of *tt*."""
    seen = set()
    for tf in _all_transforms(tt.num_vars):
        seen.add(tf.apply(tt).bits)
    return len(seen)
