"""NPN canonisation of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs and/or Negating the output.  The
canonical representative is the numerically smallest truth table reachable
by any of the ``2^k * k! * 2`` transforms.

The mapping kernel makes :func:`npn_canon` / :func:`match_against` *table
lookups* for k <= 3: the complete function space is tiny (256 entries for
k = 3), so the canonical bits and the producing transform of **every**
function are precomputed once per process and the per-call cost collapses
to a list index.  k = 4 keeps the enumerating search but memoises it per
function (65536 functions exist; only the ones actually seen pay).

The exhaustive-search implementation is retained unchanged as
:func:`npn_canon_enum` / :func:`match_against_enum` — it is the
differential oracle the table construction is tested against (Boolean
matching per De Micheli, ref. [9] of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TruthTableError
from repro.network.truth_table import TruthTable


@dataclass(frozen=True)
class NpnTransform:
    """Input permutation + input polarity + output polarity.

    Applying the transform to a function f yields
    ``g(x) = f(rho(x)) ^ output_neg`` via :meth:`apply`, where bit ``i``
    of ``rho(x)`` is ``x[perm[i]] ^ input_neg[i]``.
    """

    perm: Tuple[int, ...]
    input_neg: int
    output_neg: bool

    def apply(self, tt: TruthTable) -> TruthTable:
        out = tt.negate_vars(self.input_neg).permute(self.perm)
        return ~out if self.output_neg else out

    def apply_bits(self, bits: int, num_vars: int) -> int:
        """:meth:`apply` on a raw table int (no TruthTable construction)."""
        out = 0
        for row, src in enumerate(_row_map(self.perm, self.input_neg)):
            if (bits >> src) & 1:
                out |= 1 << row
        if self.output_neg:
            out ^= (1 << (1 << num_vars)) - 1
        return out

    def after(self, inner: "NpnTransform") -> "NpnTransform":
        """The composite transform applying *inner* first, then ``self``.

        ``self.after(inner).apply(f) == self.apply(inner.apply(f))`` for
        every function f of the right arity.
        """
        p1, n1 = inner.perm, inner.input_neg
        p2, n2 = self.perm, self.input_neg
        perm = tuple(p2[p1[i]] for i in range(len(p1)))
        neg = 0
        for i in range(len(p1)):
            if ((n1 >> i) & 1) ^ ((n2 >> p1[i]) & 1):
                neg |= 1 << i
        return NpnTransform(perm, neg, self.output_neg ^ inner.output_neg)

    def inverse(self) -> "NpnTransform":
        """The transform undoing ``self``:
        ``self.inverse().apply(self.apply(f)) == f``."""
        k = len(self.perm)
        inv_perm = [0] * k
        neg = 0
        for i in range(k):
            inv_perm[self.perm[i]] = i
            if (self.input_neg >> i) & 1:
                neg |= 1 << self.perm[i]
        return NpnTransform(tuple(inv_perm), neg, self.output_neg)


@lru_cache(maxsize=None)
def _row_map(perm: Tuple[int, ...], input_neg: int) -> Tuple[int, ...]:
    """``row -> source row`` table of one input transform."""
    k = len(perm)
    out = []
    for row in range(1 << k):
        src = 0
        for i in range(k):
            if (row >> perm[i]) & 1:
                src |= 1 << i
        out.append(src ^ input_neg)
    return tuple(out)


@lru_cache(maxsize=None)
def _all_transforms(k: int) -> Tuple[NpnTransform, ...]:
    out = []
    for perm in itertools.permutations(range(k)):
        for neg in range(1 << k):
            for oneg in (False, True):
                out.append(NpnTransform(perm, neg, oneg))
    return tuple(out)


# -- precomputed canonisation tables (k <= 3) --------------------------------

@lru_cache(maxsize=None)
def _npn_table(k: int) -> Tuple[Tuple[int, int], ...]:
    """``bits -> (canonical bits, index into _all_transforms(k))``.

    Built by sweeping every transform over the complete function space in
    ``_all_transforms`` order with a strict-minimum update, so both the
    canonical form *and the chosen transform* are identical to what the
    enumerating oracle returns.
    """
    size = 1 << (1 << k)
    mask = size - 1
    best = list(range(size))
    best_tf = [0] * size
    first = True
    for idx, tf in enumerate(_all_transforms(k)):
        rows = _row_map(tf.perm, tf.input_neg)
        oneg = mask if tf.output_neg else 0
        for bits in range(size):
            cand = 0
            for row, src in enumerate(rows):
                if (bits >> src) & 1:
                    cand |= 1 << row
            cand ^= oneg
            if first or cand < best[bits]:
                best[bits] = cand
                best_tf[bits] = idx
        first = False
    return tuple(zip(best, best_tf))


@lru_cache(maxsize=65536)
def _npn4_canon(bits: int) -> Tuple[int, int]:
    """Lazily memoised enumeration for k = 4 (too large to tabulate)."""
    best: Optional[int] = None
    best_idx = 0
    for idx, tf in enumerate(_all_transforms(4)):
        cand = tf.apply_bits(bits, 4)
        if best is None or cand < best:
            best = cand
            best_idx = idx
    assert best is not None
    return best, best_idx


def npn_canon(tt: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Canonical representative and the transform that produces it.

    ``transform.apply(tt) == canonical``.  Table lookup for k <= 3,
    memoised enumeration for k = 4; bit-identical to
    :func:`npn_canon_enum` (including the chosen transform).
    """
    k = tt.num_vars
    if k > 4:
        raise TruthTableError("NPN canonisation supported up to 4 variables")
    if k == 4:
        bits, idx = _npn4_canon(tt.bits)
    else:
        bits, idx = _npn_table(k)[tt.bits]
    return TruthTable(bits, k), _all_transforms(k)[idx]


def warm_tables(max_k: int = 3) -> None:
    """Force-build the precomputed canonisation tables for ``k <= max_k``.

    The tables are lazy module-level ``lru_cache`` entries, so every
    fresh process pays the build cost on its first :func:`npn_canon`
    call.  Long-lived worker processes (the ``run_many`` pool, the
    service daemon's warm pool) call this once at startup instead.
    """
    for k in range(min(max_k, 3) + 1):
        _npn_table(k)


def npn_canon_enum(tt: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """The seed exhaustive search — retained as the differential oracle."""
    if tt.num_vars > 4:
        raise TruthTableError("NPN canonisation supported up to 4 variables")
    best: Optional[TruthTable] = None
    best_tf: Optional[NpnTransform] = None
    for tf in _all_transforms(tt.num_vars):
        cand = tf.apply(tt)
        if best is None or cand.bits < best.bits:
            best = cand
            best_tf = tf
    assert best is not None and best_tf is not None
    return best, best_tf


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the two functions share an NPN class."""
    if a.num_vars != b.num_vars:
        return False
    return npn_canon(a)[0].bits == npn_canon(b)[0].bits


def match_against(
    target: TruthTable, candidate: TruthTable
) -> Optional[NpnTransform]:
    """Find a transform with ``tf.apply(candidate) == target`` if one exists.

    Computed through the canonical forms: when both functions canonise to
    the same table, ``canon_tf(target)^-1 . canon_tf(candidate)`` is a
    witness.  The returned transform is always valid but need not be the
    first one :func:`match_against_enum` would enumerate.
    """
    if target.num_vars != candidate.num_vars:
        return None
    canon_t, tf_t = npn_canon(target)
    canon_c, tf_c = npn_canon(candidate)
    if canon_t.bits != canon_c.bits:
        return None
    return tf_t.inverse().after(tf_c)


def match_against_enum(
    target: TruthTable, candidate: TruthTable
) -> Optional[NpnTransform]:
    """The seed exhaustive matcher — retained as the differential oracle."""
    if target.num_vars != candidate.num_vars:
        return None
    for tf in _all_transforms(target.num_vars):
        if tf.apply(candidate).bits == target.bits:
            return tf
    return None


def npn_class_members(tt: TruthTable) -> frozenset:
    """All function tables (as ints) in the NPN class of *tt*.

    For k <= 3 this is the inverse of the canonisation table: every
    function whose precomputed canonical form equals *tt*'s.
    """
    k = tt.num_vars
    if k <= 3:
        canon = npn_canon(tt)[0].bits
        table = _npn_table(k)
        return frozenset(
            bits for bits in range(1 << (1 << k)) if table[bits][0] == canon
        )
    return frozenset(
        tf.apply_bits(tt.bits, k) for tf in _all_transforms(k)
    )


def npn_class_size(tt: TruthTable) -> int:
    """Number of distinct functions in the NPN class of *tt*."""
    return len(npn_class_members(tt))
