"""Irredundant sum-of-products (ISOP) synthesis from truth tables.

Implements the classic Minato-Morreale recursion: given an interval
[L, U] of functions (for exact synthesis L == U), produce a cube cover f
with L <= f <= U that is irredundant by construction.  Used by the
refactoring pass to resynthesise small cones.

A cube over k variables is a pair of masks ``(pos, neg)``: variable i
appears positively when bit i of ``pos`` is set, negatively when bit i of
``neg`` is set; a cube with both masks empty is the tautology.

Rewrite loops re-derive identical small covers thousands of times (a few
hundred distinct <=4-input functions cover the whole candidate stream of
a registry circuit), so :func:`cached_sop` memoises the
``(cover, gate count)`` pair per canonical ``(bits, num_vars)`` table in
a bounded LRU (:data:`ISOP_CACHE_SIZE` entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.network.truth_table import TruthTable

#: bound on the memoised resynthesis cache (distinct ≤4-input functions
#: top out at 65536; real rewrite streams use a few hundred)
ISOP_CACHE_SIZE = 1 << 14


@dataclass(frozen=True)
class Cube:
    """Product term: AND of positive and negative literals."""

    pos: int
    neg: int

    def literals(self) -> int:
        return self.pos.bit_count() + self.neg.bit_count()

    def evaluate(self, assignment: int) -> bool:
        if self.pos & ~assignment:
            return False
        if self.neg & assignment:
            return False
        return True

    def with_literal(self, var: int, positive: bool) -> "Cube":
        if positive:
            return Cube(self.pos | (1 << var), self.neg)
        return Cube(self.pos, self.neg | (1 << var))

    def to_table(self, num_vars: int) -> TruthTable:
        bits = 0
        for row in range(1 << num_vars):
            if self.evaluate(row):
                bits |= 1 << row
        return TruthTable(bits, num_vars)


def isop(tt: TruthTable) -> List[Cube]:
    """Minato-Morreale ISOP of an exactly-specified function."""
    cubes, _cover = _isop(tt, tt)
    return cubes


def isop_interval(lower: TruthTable, upper: TruthTable) -> List[Cube]:
    """ISOP of any function f with lower <= f <= upper (don't-cares)."""
    cubes, _cover = _isop(lower, upper)
    return cubes


def _top_var(l: TruthTable, u: TruthTable) -> int:
    for var in reversed(range(l.num_vars)):
        if l.depends_on(var) or u.depends_on(var):
            return var
    return -1


def _isop(l: TruthTable, u: TruthTable) -> Tuple[List[Cube], TruthTable]:
    if l.bits == 0:
        return [], TruthTable.const(False, l.num_vars)
    if u.bits == u.mask:
        return [Cube(0, 0)], TruthTable.const(True, l.num_vars)
    var = _top_var(l, u)
    assert var >= 0, "non-constant interval must depend on something"
    l0, l1 = l.cofactor(var, 0), l.cofactor(var, 1)
    u0, u1 = u.cofactor(var, 0), u.cofactor(var, 1)

    # cubes that must contain the literal !x (onset only where x=0)
    c0, f0 = _isop(l0 & ~u1, u0)
    # cubes that must contain the literal x
    c1, f1 = _isop(l1 & ~u0, u1)
    # remaining onset, coverable without mentioning x
    l_rest = (l0 & ~f0) | (l1 & ~f1)
    c2, f2 = _isop(l_rest, u0 & u1)

    cubes = (
        [c.with_literal(var, False) for c in c0]
        + [c.with_literal(var, True) for c in c1]
        + c2
    )
    x = TruthTable.var(var, l.num_vars)
    cover = (~x & (f0 | f2)) | (x & (f1 | f2))
    return cubes, cover


def cover_table(cubes: Sequence[Cube], num_vars: int) -> TruthTable:
    """OR of all cube tables — the function a cover realises."""
    bits = 0
    for cube in cubes:
        bits |= cube.to_table(num_vars).bits
    return TruthTable(bits, num_vars)


def synthesize_sop(
    net: LogicNetwork, leaves: Sequence[int], cubes: Sequence[Cube]
) -> int:
    """Build the AND-OR network of a cube cover over *leaves*.

    Returns the root node id (a constant for empty / tautological covers).
    """
    if not cubes:
        return CONST0
    terms: List[int] = []
    inverters = {}

    def inv(node: int) -> int:
        if node not in inverters:
            inverters[node] = net.add_not(node)
        return inverters[node]

    for cube in cubes:
        lits: List[int] = []
        for i, leaf in enumerate(leaves):
            if (cube.pos >> i) & 1:
                lits.append(leaf)
            elif (cube.neg >> i) & 1:
                lits.append(inv(leaf))
        if not lits:
            return CONST1  # tautological cube
        term = lits[0]
        for lit in lits[1:]:
            term = net.add_and(term, lit)
        terms.append(term)
    out = terms[0]
    for term in terms[1:]:
        out = net.add_or(out, term)
    return out


def sop_gate_count(cubes: Sequence[Cube]) -> int:
    """Gate count of the network :func:`synthesize_sop` would build.

    One AND chain per multi-literal cube, one OR chain over the cubes,
    one inverter per *distinct* negated variable.  The distinct negated
    variables are the set bits of the OR of all ``neg`` masks — no
    per-bit-position scan.
    """
    if not cubes:
        return 0
    ands = 0
    neg_union = 0
    for c in cubes:
        ands += max(0, c.literals() - 1)
        neg_union |= c.neg
    return ands + max(0, len(cubes) - 1) + neg_union.bit_count()


#: historical name for the same cost proxy
sop_cost = sop_gate_count


@lru_cache(maxsize=ISOP_CACHE_SIZE)
def _cached_sop_entry(bits: int, num_vars: int) -> Tuple[Tuple[Cube, ...], int]:
    cubes = tuple(isop(TruthTable(bits, num_vars)))
    return cubes, sop_gate_count(cubes)


def cached_sop(tt: TruthTable) -> Tuple[Tuple[Cube, ...], int]:
    """Memoised ``(ISOP cover, gate count)`` of an exact function.

    Keyed by the canonical ``(bits, num_vars)`` pair in a bounded LRU —
    the memoised resynthesis the rewrite kernel scores candidates with.
    The returned cube tuple is shared; treat it as immutable.
    """
    return _cached_sop_entry(tt.bits, tt.num_vars)


def cached_sop_bits(bits: int, num_vars: int) -> Tuple[Tuple[Cube, ...], int]:
    """:func:`cached_sop` keyed by raw table ints.

    Same memo, no :class:`TruthTable` box — the lookup the array-native
    rewrite kernel does straight from a cut database's flat row storage.
    """
    return _cached_sop_entry(bits, num_vars)


def sop_cache_info():
    """``functools`` cache statistics of the resynthesis memo."""
    return _cached_sop_entry.cache_info()


def clear_sop_cache() -> None:
    """Drop every memoised cover (batch runners between workloads)."""
    _cached_sop_entry.cache_clear()
