"""Gate alphabet of the logic network.

The network is a DAG of single-output nodes.  Most gates are ordinary
Boolean functions; the T1 flip-flop is represented by one clocked
``T1_CELL`` node (fanins = the three leaves a, b, c) plus *tap* nodes that
select one of its synchronous outputs:

====== ===========================
tap    function of (a, b, c)
====== ===========================
T1_S   XOR3  (sum, read out by R)
T1_C   MAJ3  (carry)
T1_Q   OR3
T1_CN  NOT MAJ3  (C* + inverter)
T1_QN  NOT OR3   (Q* + inverter)
====== ===========================

Tap nodes have exactly one fanin (the T1_CELL) and zero area: the physical
cell already provides the distinct output ports; only splitters for
fanout > 1 are charged at mapping time.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import GateArityError


class Gate(enum.Enum):
    """Every node kind that can appear in a :class:`LogicNetwork`."""

    CONST0 = "const0"
    CONST1 = "const1"
    PI = "pi"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MAJ3 = "maj3"
    T1_CELL = "t1_cell"
    T1_S = "t1_s"
    T1_C = "t1_c"
    T1_Q = "t1_q"
    T1_CN = "t1_cn"
    T1_QN = "t1_qn"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gate.{self.name}"


#: taps reading one synchronous output of a T1 cell
T1_TAPS: Tuple[Gate, ...] = (Gate.T1_S, Gate.T1_C, Gate.T1_Q, Gate.T1_CN, Gate.T1_QN)

#: dense integer codes for the flat-array network core: ``GATES_BY_CODE[c]``
#: is the enum member stored as byte ``c`` in ``LogicNetwork``'s gate
#: bytearray, and ``CODE_BY_GATE`` is the inverse.  Codes are the enum's
#: declaration order; they are an in-memory representation detail, never
#: serialized (files and hashes use gate *names*).
GATES_BY_CODE: Tuple[Gate, ...] = tuple(Gate)
CODE_BY_GATE: Dict[Gate, int] = {g: i for i, g in enumerate(GATES_BY_CODE)}

#: code-level sets mirroring the enum-level predicates, for loops that
#: run over the raw gate-code bytearray
T1_TAP_CODES = frozenset(CODE_BY_GATE[g] for g in T1_TAPS)
SOURCE_CODES = frozenset(
    CODE_BY_GATE[g] for g in (Gate.CONST0, Gate.CONST1, Gate.PI)
)

#: gates whose SFQ realisation is clocked (participates in stage assignment)
CLOCKED_GATES = frozenset(
    {
        Gate.NOT,
        Gate.AND,
        Gate.NAND,
        Gate.OR,
        Gate.NOR,
        Gate.XOR,
        Gate.XNOR,
        Gate.MAJ3,
        Gate.T1_CELL,
    }
)

#: allowed fanin counts per gate; ``None`` means "2 or more"
_ARITY: Dict[Gate, object] = {
    Gate.CONST0: (0,),
    Gate.CONST1: (0,),
    Gate.PI: (0,),
    Gate.BUF: (1,),
    Gate.NOT: (1,),
    Gate.AND: None,
    Gate.NAND: None,
    Gate.OR: None,
    Gate.NOR: None,
    Gate.XOR: None,
    Gate.XNOR: None,
    Gate.MAJ3: (3,),
    Gate.T1_CELL: (3,),
    Gate.T1_S: (1,),
    Gate.T1_C: (1,),
    Gate.T1_Q: (1,),
    Gate.T1_CN: (1,),
    Gate.T1_QN: (1,),
}

#: maximum fanin count accepted for variadic gates
MAX_VARIADIC_ARITY = 8


def check_arity(gate: Gate, n_fanins: int) -> None:
    """Raise :class:`GateArityError` if *gate* cannot take *n_fanins* inputs."""
    allowed = _ARITY[gate]
    if allowed is None:
        if not 2 <= n_fanins <= MAX_VARIADIC_ARITY:
            raise GateArityError(
                f"{gate.name} takes 2..{MAX_VARIADIC_ARITY} fanins, got {n_fanins}"
            )
    elif n_fanins not in allowed:  # type: ignore[operator]
        raise GateArityError(
            f"{gate.name} takes {allowed} fanins, got {n_fanins}"
        )


def _maj3(a: int, b: int, c: int) -> int:
    return (a & b) | (a & c) | (b & c)


def _reduce_and(values: Sequence[int], mask: int) -> int:
    out = mask
    for v in values:
        out &= v
    return out


def _reduce_or(values: Sequence[int]) -> int:
    out = 0
    for v in values:
        out |= v
    return out


def _reduce_xor(values: Sequence[int]) -> int:
    out = 0
    for v in values:
        out ^= v
    return out


def eval_gate(gate: Gate, fanin_values: Sequence[int], mask: int = 1) -> int:
    """Evaluate *gate* bitwise over words of fanin values.

    ``mask`` is the all-ones word for the chosen width, so the function
    works equally for single bits (mask=1), truth tables (mask=2**2**k - 1)
    and 64-bit simulation words (mask=2**64 - 1).

    T1 taps evaluate the corresponding function of the *cell's* fanins;
    callers must pass the cell fanin values (3 words) rather than the tap's
    single structural fanin.  ``T1_CELL`` itself has no single-output value
    and must not be evaluated directly.
    """
    v = fanin_values
    if gate is Gate.CONST0:
        return 0
    if gate is Gate.CONST1:
        return mask
    if gate is Gate.BUF:
        return v[0]
    if gate is Gate.NOT:
        return v[0] ^ mask
    if gate is Gate.AND:
        return _reduce_and(v, mask)
    if gate is Gate.NAND:
        return _reduce_and(v, mask) ^ mask
    if gate is Gate.OR:
        return _reduce_or(v)
    if gate is Gate.NOR:
        return _reduce_or(v) ^ mask
    if gate is Gate.XOR:
        return _reduce_xor(v)
    if gate is Gate.XNOR:
        return _reduce_xor(v) ^ mask
    if gate is Gate.MAJ3:
        return _maj3(v[0], v[1], v[2])
    if gate is Gate.T1_S:
        return _reduce_xor(v)
    if gate is Gate.T1_C:
        return _maj3(v[0], v[1], v[2])
    if gate is Gate.T1_Q:
        return _reduce_or(v)
    if gate is Gate.T1_CN:
        return _maj3(v[0], v[1], v[2]) ^ mask
    if gate is Gate.T1_QN:
        return _reduce_or(v) ^ mask
    raise GateArityError(f"gate {gate.name} has no single-output evaluation")


#: logic function of each T1 tap in terms of a plain gate
TAP_FUNCTION: Dict[Gate, Gate] = {
    Gate.T1_S: Gate.XOR,
    Gate.T1_C: Gate.MAJ3,
    Gate.T1_Q: Gate.OR,
    Gate.T1_CN: Gate.NOR,  # NOT MAJ3 has no plain gate; handled specially
    Gate.T1_QN: Gate.NOR,
}


def is_t1_tap(gate: Gate) -> bool:
    """True for the five T1 output-tap gate kinds."""
    return gate in T1_TAPS


GATE_SYMBOLS: Dict[Gate, str] = {
    Gate.CONST0: "0",
    Gate.CONST1: "1",
    Gate.PI: "pi",
    Gate.BUF: "buf",
    Gate.NOT: "!",
    Gate.AND: "&",
    Gate.NAND: "!&",
    Gate.OR: "|",
    Gate.NOR: "!|",
    Gate.XOR: "^",
    Gate.XNOR: "!^",
    Gate.MAJ3: "maj",
    Gate.T1_CELL: "T1",
    Gate.T1_S: "T1.S",
    Gate.T1_C: "T1.C",
    Gate.T1_Q: "T1.Q",
    Gate.T1_CN: "T1.C*",
    Gate.T1_QN: "T1.Q*",
}
