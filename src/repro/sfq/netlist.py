"""Mapped SFQ netlist: clocked cells, T1 blocks, DFF chains, stages.

This is the object the paper's stages B and C operate on.  Differences
from :class:`~repro.network.logic_network.LogicNetwork`:

* cells may have multiple output *ports* (the T1 cell exposes S, C, Q);
* every clocked cell carries a *stage* σ = n·S + φ (eq. 1 of the paper);
* DFF cells exist explicitly (inserted by stage C);
* splitters are not materialised as cells — a net with f consumers needs
  exactly f − 1 splitters regardless of where its DFF chain taps sit, so
  the metric layer counts them combinatorially (see
  :func:`repro.metrics.area_jj`).

Like the :class:`~repro.network.logic_network.LogicNetwork` kernel, the
netlist **maintains its consumer/PO indices across every mutation** and
carries a mutation ``epoch``:

* fanin edges must be rewritten through :meth:`replace_fanin` and PO
  bindings through :meth:`replace_po` — never by assigning
  ``cell.fanins`` / ``netlist.pos`` directly — so the per-signal consumer
  index stays current;
* :meth:`topological_cells` and :meth:`structure` are cached per epoch:
  repeated calls on an unchanged netlist are O(1), and the returned
  objects must be treated as immutable;
* ``cell.stage`` writes are *not* structural: they do not bump the epoch
  (schedules iterate on stages without invalidating the structure view).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import MappingError, NetworkError
from repro.network.gates import Gate

#: a signal is one output port of one cell
Signal = Tuple[int, str]

OUT = "out"  # default single output port
T1_PORTS = ("S", "C", "Q")
SPLITTER_PORTS = ("o0", "o1")


class CellKind(enum.Enum):
    """Kinds of netlist elements (clocked: GATE, T1, DFF)."""

    PI = "pi"
    GATE = "gate"
    T1 = "t1"
    DFF = "dff"
    CONST0 = "const0"  # never pulses (logic 0 = pulse absence)
    CONST1 = "const1"  # pulses once per cycle at stage 0
    SPLITTER = "splitter"  # asynchronous 1-to-2 pulse fanout

    def __repr__(self) -> str:  # pragma: no cover
        return f"CellKind.{self.name}"


@dataclass
class Cell:
    """One netlist element."""

    index: int
    kind: CellKind
    op: Optional[Gate] = None  # for GATE cells
    fanins: Tuple[Signal, ...] = ()
    stage: Optional[int] = None
    name: Optional[str] = None

    @property
    def clocked(self) -> bool:
        return self.kind in (CellKind.GATE, CellKind.T1, CellKind.DFF)

    def output_ports(self) -> Tuple[str, ...]:
        if self.kind is CellKind.T1:
            return T1_PORTS
        if self.kind is CellKind.SPLITTER:
            return SPLITTER_PORTS
        return (OUT,)


class NetlistStructure:
    """Per-epoch structural view consumed by scheduling and DFF insertion.

    Everything the §II-B/§II-C passes need, extracted once per mutation
    epoch (see :meth:`SFQNetlist.structure`) instead of per call:

    * ``fanin_drivers`` / ``fanin_signals`` — flat fanin structure;
    * ``nets`` — one entry per driven signal with its ordinary (non-T1)
      consumer cells; PO signals are present even with no cell consumers;
    * ``t1_consumers`` — T1 cells fed by each driver cell (T1 fanins get
      dedicated staggering chains, so they are not part of ``nets``);
    * ``net_slots`` / ``po_slots`` — (consumer, fanin index) and PO slot
      bindings per signal, for chain rewiring;
    * ``order`` — a topological order of the cells.

    The view is a snapshot: its containers are owned by the view, so
    later netlist mutations never alias into it.  Treat it as read-only.
    """

    def __init__(self, netlist: "SFQNetlist"):
        self.netlist = netlist
        self.n = netlist.n_phases
        cells = netlist.cells
        self.is_t1 = [c.kind is CellKind.T1 for c in cells]
        self.clocked = [c.clocked for c in cells]
        self.fanin_drivers: List[List[int]] = [
            [sig[0] for sig in c.fanins] for c in cells
        ]
        self.fanin_signals: List[Tuple[Signal, ...]] = [c.fanins for c in cells]
        # one net per driven signal (a T1 cell drives up to three nets)
        self.nets: Dict[Signal, List[int]] = {}
        # T1 cells fed by each driver cell
        self.t1_consumers: List[Set[int]] = [set() for _ in cells]
        # (consumer, fanin index) slots per signal, ordinary consumers only
        self.net_slots: Dict[Signal, List[Tuple[int, int]]] = {}
        for c in cells:
            for i, sig in enumerate(c.fanins):
                if c.kind is CellKind.T1:
                    self.t1_consumers[sig[0]].add(c.index)
                else:
                    self.nets.setdefault(sig, []).append(c.index)
                    self.net_slots.setdefault(sig, []).append((c.index, i))
        # ordinary (non-T1) consumers per driver cell, by signal
        self.signals_of_cell: List[List[Signal]] = [[] for _ in cells]
        for sig in self.nets:
            self.signals_of_cell[sig[0]].append(sig)
        const_kinds = (CellKind.CONST0, CellKind.CONST1)
        self.po_signals: Set[Signal] = {
            sig
            for sig, _name in netlist.pos
            if cells[sig[0]].kind not in const_kinds
        }
        for sig in self.po_signals:
            self.nets.setdefault(sig, [])
            if sig not in self.signals_of_cell[sig[0]]:
                self.signals_of_cell[sig[0]].append(sig)
        # PO slot indices per signal (all POs, const-driven included)
        self.po_slots: Dict[Signal, List[int]] = {}
        for po_idx, (sig, _name) in enumerate(netlist.pos):
            self.po_slots.setdefault(sig, []).append(po_idx)
        # flat ordinary-consumer list per driver cell (for window bounds)
        self.net_consumers: List[List[int]] = [[] for _ in cells]
        for sig, cons in self.nets.items():
            self.net_consumers[sig[0]].extend(cons)
        self.order = netlist.topological_cells()


class SFQNetlist:
    """Mutable mapped netlist with maintained consumer/PO indices."""

    def __init__(self, name: str = "top", n_phases: int = 1):
        self.name = name
        self.n_phases = n_phases
        self.cells: List[Cell] = []
        self.pis: List[int] = []
        self.pos: List[Tuple[Signal, Optional[str]]] = []
        self._epoch = 0
        # maintained indices: signal -> consumer cell ids / PO slot indices
        self._consumer_index: Dict[Signal, List[int]] = {}
        self._po_index: Dict[Signal, List[int]] = {}
        self._topo_cache: Optional[Tuple[int, List[int]]] = None
        self._structure_cache: Optional[Tuple[int, NetlistStructure]] = None

    @property
    def epoch(self) -> int:
        """Monotone counter bumped by every structural mutation."""
        return self._epoch

    def _bump(self) -> None:
        self._epoch += 1

    # -- construction -------------------------------------------------------

    def _add(self, cell: Cell) -> int:
        self.cells.append(cell)
        for sig in cell.fanins:
            self._consumer_index.setdefault(sig, []).append(cell.index)
        self._bump()
        return cell.index

    def add_pi(self, name: Optional[str] = None) -> int:
        idx = len(self.cells)
        self._add(Cell(idx, CellKind.PI, stage=0, name=name))
        self.pis.append(idx)
        return idx

    def add_const(self, value: bool) -> int:
        """A constant source (used only for constant primary outputs)."""
        idx = len(self.cells)
        kind = CellKind.CONST1 if value else CellKind.CONST0
        return self._add(Cell(idx, kind, stage=0))

    def add_gate(self, op: Gate, fanins: Sequence[Signal], name=None) -> int:
        idx = len(self.cells)
        self._check_signals(fanins)
        return self._add(
            Cell(idx, CellKind.GATE, op=op, fanins=tuple(fanins), name=name)
        )

    def add_t1(self, a: Signal, b: Signal, c: Signal, name=None) -> int:
        idx = len(self.cells)
        self._check_signals((a, b, c))
        return self._add(Cell(idx, CellKind.T1, fanins=(a, b, c), name=name))

    def add_dff(self, fanin: Signal, stage: Optional[int] = None) -> int:
        idx = len(self.cells)
        self._check_signals((fanin,))
        return self._add(Cell(idx, CellKind.DFF, fanins=(fanin,), stage=stage))

    def add_splitter(self, fanin: Signal) -> int:
        """An asynchronous 1-to-2 splitter cell (no clock, no stage)."""
        idx = len(self.cells)
        self._check_signals((fanin,))
        return self._add(Cell(idx, CellKind.SPLITTER, fanins=(fanin,)))

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        self._check_signals((signal,))
        self.pos.append((signal, name))
        slot = len(self.pos) - 1
        self._po_index.setdefault(signal, []).append(slot)
        self._bump()
        return slot

    def _check_signals(self, signals: Sequence[Signal]) -> None:
        for cell_id, port in signals:
            if not 0 <= cell_id < len(self.cells):
                raise NetworkError(f"signal references missing cell {cell_id}")
            cell = self.cells[cell_id]
            if port not in cell.output_ports():
                raise NetworkError(
                    f"cell {cell_id} ({cell.kind.name}) has no port {port!r}"
                )

    # -- index-maintaining mutation -----------------------------------------

    def replace_fanin(self, cell_id: int, fanin_index: int, new_sig: Signal) -> None:
        """Rewire one fanin slot of a cell, keeping the consumer index."""
        cell = self.cells[cell_id]
        if not 0 <= fanin_index < len(cell.fanins):
            raise NetworkError(
                f"cell {cell_id} has no fanin slot {fanin_index}"
            )
        old = cell.fanins[fanin_index]
        if old == new_sig:
            return
        self._check_signals((new_sig,))
        fans = list(cell.fanins)
        fans[fanin_index] = new_sig
        cell.fanins = tuple(fans)
        users = self._consumer_index[old]
        users.remove(cell_id)  # one entry per fanin slot -> drop exactly one
        if not users:
            del self._consumer_index[old]
        self._consumer_index.setdefault(new_sig, []).append(cell_id)
        self._bump()

    def replace_po(self, po_index: int, new_sig: Signal) -> None:
        """Retarget one primary output, keeping the PO index."""
        old, name = self.pos[po_index]
        if old == new_sig:
            return
        self._check_signals((new_sig,))
        self.pos[po_index] = (new_sig, name)
        slots = self._po_index[old]
        slots.remove(po_index)
        if not slots:
            del self._po_index[old]
        self._po_index.setdefault(new_sig, []).append(po_index)
        self._bump()

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def clocked_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.clocked)

    def gate_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.GATE)

    def t1_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.T1)

    def dff_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.DFF)

    def num_dffs(self) -> int:
        return sum(1 for _ in self.dff_cells())

    def consumers_of(self, signal: Signal) -> Tuple[int, ...]:
        """Consumer cell ids of one signal, from the maintained index."""
        return tuple(self._consumer_index.get(signal, ()))

    def po_slots_of(self, signal: Signal) -> Tuple[int, ...]:
        """PO slot indices bound to one signal, from the maintained index."""
        return tuple(self._po_index.get(signal, ()))

    def consumers(self) -> Dict[Signal, List[int]]:
        """signal -> consumer cell ids (POs contribute id -1).

        Reads the maintained indices; the returned dict is fresh and
        mutable, built in O(edges).
        """
        out: Dict[Signal, List[int]] = {
            sig: list(users) for sig, users in self._consumer_index.items()
        }
        for sig, slots in self._po_index.items():
            out.setdefault(sig, []).extend(-1 for _ in slots)
        return out

    def driver_cell(self, signal: Signal) -> Cell:
        return self.cells[signal[0]]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """(driver cell, consumer cell) pairs over all fanin signals."""
        for cell in self.cells:
            for sig in cell.fanins:
                yield sig[0], cell.index

    def max_stage(self) -> int:
        stages = [c.stage for c in self.cells if c.clocked and c.stage is not None]
        return max(stages) if stages else 0

    def topological_cells(self) -> List[int]:
        """A topological order of the cells, cached per mutation epoch.

        Treat the returned list as immutable — it is shared with the
        cache.
        """
        cached = self._topo_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        n = len(self.cells)
        indeg = [0] * n
        fanouts: List[List[int]] = [[] for _ in range(n)]
        for cell in self.cells:
            indeg[cell.index] = len(cell.fanins)
            for sig in cell.fanins:
                fanouts[sig[0]].append(cell.index)
        queue = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order.append(u)
            for v in fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise NetworkError("netlist contains a cycle")
        self._topo_cache = (self._epoch, order)
        return order

    def structure(self) -> NetlistStructure:
        """The :class:`NetlistStructure` view, cached per mutation epoch."""
        cached = self._structure_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        view = NetlistStructure(self)
        self._structure_cache = (self._epoch, view)
        return view

    def check_indices(self) -> None:
        """Assert the maintained indices equal a from-scratch rebuild."""
        fresh_cons: Dict[Signal, List[int]] = {}
        for cell in self.cells:
            for sig in cell.fanins:
                fresh_cons.setdefault(sig, []).append(cell.index)
        fresh_pos: Dict[Signal, List[int]] = {}
        for slot, (sig, _name) in enumerate(self.pos):
            fresh_pos.setdefault(sig, []).append(slot)
        maintained = {s: sorted(u) for s, u in self._consumer_index.items()}
        if maintained != {s: sorted(u) for s, u in fresh_cons.items()}:
            raise NetworkError("consumer index diverged from fanin tuples")
        if {s: sorted(u) for s, u in self._po_index.items()} != {
            s: sorted(u) for s, u in fresh_pos.items()
        }:
            raise NetworkError("PO index diverged from the PO list")

    def stats(self) -> Dict[str, int]:
        from collections import Counter

        kinds = Counter(c.kind.name for c in self.cells)
        return {
            "cells": len(self.cells),
            "gates": kinds.get("GATE", 0),
            "t1": kinds.get("T1", 0),
            "dffs": kinds.get("DFF", 0),
            "pis": len(self.pis),
            "pos": len(self.pos),
        }

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (
            f"SFQNetlist({self.name!r}, n={self.n_phases}, gates={s['gates']}, "
            f"t1={s['t1']}, dffs={s['dffs']})"
        )
