"""Mapped SFQ netlist: clocked cells, T1 blocks, DFF chains, stages.

This is the object the paper's stages B and C operate on.  Differences
from :class:`~repro.network.logic_network.LogicNetwork`:

* cells may have multiple output *ports* (the T1 cell exposes S, C, Q);
* every clocked cell carries a *stage* σ = n·S + φ (eq. 1 of the paper);
* DFF cells exist explicitly (inserted by stage C);
* splitters are not materialised as cells — a net with f consumers needs
  exactly f − 1 splitters regardless of where its DFF chain taps sit, so
  the metric layer counts them combinatorially (see
  :func:`repro.metrics.area_jj`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import MappingError, NetworkError
from repro.network.gates import Gate

#: a signal is one output port of one cell
Signal = Tuple[int, str]

OUT = "out"  # default single output port
T1_PORTS = ("S", "C", "Q")
SPLITTER_PORTS = ("o0", "o1")


class CellKind(enum.Enum):
    """Kinds of netlist elements (clocked: GATE, T1, DFF)."""

    PI = "pi"
    GATE = "gate"
    T1 = "t1"
    DFF = "dff"
    CONST0 = "const0"  # never pulses (logic 0 = pulse absence)
    CONST1 = "const1"  # pulses once per cycle at stage 0
    SPLITTER = "splitter"  # asynchronous 1-to-2 pulse fanout

    def __repr__(self) -> str:  # pragma: no cover
        return f"CellKind.{self.name}"


@dataclass
class Cell:
    """One netlist element."""

    index: int
    kind: CellKind
    op: Optional[Gate] = None  # for GATE cells
    fanins: Tuple[Signal, ...] = ()
    stage: Optional[int] = None
    name: Optional[str] = None

    @property
    def clocked(self) -> bool:
        return self.kind in (CellKind.GATE, CellKind.T1, CellKind.DFF)

    def output_ports(self) -> Tuple[str, ...]:
        if self.kind is CellKind.T1:
            return T1_PORTS
        if self.kind is CellKind.SPLITTER:
            return SPLITTER_PORTS
        return (OUT,)


class SFQNetlist:
    """Mutable mapped netlist."""

    def __init__(self, name: str = "top", n_phases: int = 1):
        self.name = name
        self.n_phases = n_phases
        self.cells: List[Cell] = []
        self.pis: List[int] = []
        self.pos: List[Tuple[Signal, Optional[str]]] = []

    # -- construction -------------------------------------------------------

    def _add(self, cell: Cell) -> int:
        self.cells.append(cell)
        return cell.index

    def add_pi(self, name: Optional[str] = None) -> int:
        idx = len(self.cells)
        self._add(Cell(idx, CellKind.PI, stage=0, name=name))
        self.pis.append(idx)
        return idx

    def add_const(self, value: bool) -> int:
        """A constant source (used only for constant primary outputs)."""
        idx = len(self.cells)
        kind = CellKind.CONST1 if value else CellKind.CONST0
        return self._add(Cell(idx, kind, stage=0))

    def add_gate(self, op: Gate, fanins: Sequence[Signal], name=None) -> int:
        idx = len(self.cells)
        self._check_signals(fanins)
        return self._add(
            Cell(idx, CellKind.GATE, op=op, fanins=tuple(fanins), name=name)
        )

    def add_t1(self, a: Signal, b: Signal, c: Signal, name=None) -> int:
        idx = len(self.cells)
        self._check_signals((a, b, c))
        return self._add(Cell(idx, CellKind.T1, fanins=(a, b, c), name=name))

    def add_dff(self, fanin: Signal, stage: Optional[int] = None) -> int:
        idx = len(self.cells)
        self._check_signals((fanin,))
        return self._add(Cell(idx, CellKind.DFF, fanins=(fanin,), stage=stage))

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        self._check_signals((signal,))
        self.pos.append((signal, name))
        return len(self.pos) - 1

    def _check_signals(self, signals: Sequence[Signal]) -> None:
        for cell_id, port in signals:
            if not 0 <= cell_id < len(self.cells):
                raise NetworkError(f"signal references missing cell {cell_id}")
            cell = self.cells[cell_id]
            if port not in cell.output_ports():
                raise NetworkError(
                    f"cell {cell_id} ({cell.kind.name}) has no port {port!r}"
                )

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def clocked_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.clocked)

    def gate_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.GATE)

    def t1_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.T1)

    def dff_cells(self) -> Iterator[Cell]:
        return (c for c in self.cells if c.kind is CellKind.DFF)

    def num_dffs(self) -> int:
        return sum(1 for _ in self.dff_cells())

    def consumers(self) -> Dict[Signal, List[int]]:
        """signal -> consumer cell ids (POs contribute id -1)."""
        out: Dict[Signal, List[int]] = {}
        for cell in self.cells:
            for sig in cell.fanins:
                out.setdefault(sig, []).append(cell.index)
        for sig, _name in self.pos:
            out.setdefault(sig, []).append(-1)
        return out

    def driver_cell(self, signal: Signal) -> Cell:
        return self.cells[signal[0]]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """(driver cell, consumer cell) pairs over all fanin signals."""
        for cell in self.cells:
            for sig in cell.fanins:
                yield sig[0], cell.index

    def max_stage(self) -> int:
        stages = [c.stage for c in self.cells if c.clocked and c.stage is not None]
        return max(stages) if stages else 0

    def topological_cells(self) -> List[int]:
        n = len(self.cells)
        indeg = [0] * n
        fanouts: List[List[int]] = [[] for _ in range(n)]
        for cell in self.cells:
            indeg[cell.index] = len(cell.fanins)
            for sig in cell.fanins:
                fanouts[sig[0]].append(cell.index)
        queue = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order.append(u)
            for v in fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            raise NetworkError("netlist contains a cycle")
        return order

    def stats(self) -> Dict[str, int]:
        from collections import Counter

        kinds = Counter(c.kind.name for c in self.cells)
        return {
            "cells": len(self.cells),
            "gates": kinds.get("GATE", 0),
            "t1": kinds.get("T1", 0),
            "dffs": kinds.get("DFF", 0),
            "pis": len(self.pis),
            "pos": len(self.pos),
        }

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (
            f"SFQNetlist({self.name!r}, n={self.n_phases}, gates={s['gates']}, "
            f"t1={s['t1']}, dffs={s['dffs']})"
        )
