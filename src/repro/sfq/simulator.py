"""Pulse-level streaming simulator for staged SFQ netlists.

Models the gate-level-pipelined operation of a multiphase RSFQ circuit:

* logic 1 = presence of an SFQ pulse, logic 0 = its absence;
* a clocked cell at stage σ fires once per cycle, at global stage times
  t = w·n + σ for wave w = 0, 1, 2, ... — one new input wave enters the
  pipeline every cycle (full throughput);
* pulses travel to consumers instantly (JTL delays are abstracted away;
  ordering is by stage) and wait in the consumer's input loop until its
  clock fires;
* every pulse carries its *wave tag*; a cell firing wave w that finds a
  pulse of any other wave on an input raises
  :class:`~repro.errors.HazardError` — this is the dynamic counterpart of
  the static stage-gap rule;
* the T1 cell is simulated through its behavioural state machine
  (:mod:`repro.sfq.t1_cell`): overlapping T pulses raise a hazard, the
  readout emits the synchronous S/C/Q values.

Deliveries at time t become visible only after all firings at time t —
a pulse arriving exactly when the clock fires belongs to the next window,
matching the boundary case gap = n.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HazardError, SimulationError, TimingError
from repro.network.gates import Gate, eval_gate
from repro.sfq.netlist import Cell, CellKind, SFQNetlist, Signal
from repro.sfq.t1_cell import T1CellState


@dataclass
class StreamResult:
    """Outcome of a streaming run."""

    po_values: List[List[int]]  # [wave][po_index]
    num_waves: int
    horizon: int  # last global stage time simulated

    def po_stream(self, po_index: int) -> List[int]:
        return [wave[po_index] for wave in self.po_values]


class PulseSimulator:
    """Simulate a staged netlist on a stream of input waves."""

    def __init__(self, netlist: SFQNetlist):
        self.netlist = netlist
        self.n = netlist.n_phases
        for cell in netlist.cells:
            if cell.clocked and cell.stage is None:
                raise SimulationError(
                    f"cell {cell.index} has no stage; run DFF insertion first"
                )

    def run(self, waves: Sequence[Sequence[int]]) -> StreamResult:
        """Stream the given input waves through the pipeline.

        ``waves[w]`` is the PI bit vector of wave w (aligned with
        ``netlist.pis``).  Returns the PO bit vectors per wave.
        """
        nl = self.netlist
        n = self.n
        num_waves = len(waves)
        if num_waves == 0:
            return StreamResult([], 0, 0)
        for w, vec in enumerate(waves):
            if len(vec) != len(nl.pis):
                raise SimulationError(
                    f"wave {w} has {len(vec)} bits, expected {len(nl.pis)}"
                )

        consumers: Dict[Signal, List[Tuple[int, int]]] = defaultdict(list)
        for cell in nl.cells:
            for i, sig in enumerate(cell.fanins):
                consumers[sig].append((cell.index, i))
        po_of_signal: Dict[Signal, List[int]] = defaultdict(list)
        for pi_idx, (sig, _name) in enumerate(nl.pos):
            po_of_signal[sig].append(pi_idx)
        pi_position = {cell_idx: i for i, cell_idx in enumerate(nl.pis)}

        # firing schedule: time -> [(cell_index, wave)]
        schedule: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        horizon = 0
        for cell in nl.cells:
            if cell.kind is CellKind.PI or cell.kind is CellKind.CONST1 or cell.clocked:
                stage = cell.stage
                assert stage is not None
                for w in range(num_waves):
                    t = w * n + stage
                    schedule[t].append((cell.index, w))
                    horizon = max(horizon, t)

        # input pulse buffers: (cell, fanin_idx) -> list of wave tags
        buffers: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        # T1 behavioural state + arrival times per cell
        t1_state: Dict[int, T1CellState] = {
            c.index: T1CellState() for c in nl.t1_cells()
        }
        po_out = [[0] * len(nl.pos) for _ in range(num_waves)]

        for t in range(horizon + 1):
            firings = schedule.get(t)
            if not firings:
                continue
            emissions: List[Tuple[Signal, int, int]] = []  # (signal, wave, bit)

            for cell_idx, wave in firings:
                cell = nl.cells[cell_idx]
                if cell.kind is CellKind.PI:
                    bit = int(waves[wave][pi_position[cell_idx]])
                    emissions.append(((cell_idx, "out"), wave, bit))
                    continue
                if cell.kind is CellKind.CONST1:
                    emissions.append(((cell_idx, "out"), wave, 1))
                    continue
                if cell.kind is CellKind.T1:
                    state = t1_state[cell_idx]
                    # the R pulse (clock) performs the readout
                    count = state.toggles_since_readout
                    if count > 3:
                        raise HazardError(
                            f"T1 cell {cell_idx} collected {count} pulses in "
                            "one cycle"
                        )
                    # check wave tags on the T buffers
                    for i in range(3):
                        tags = buffers.pop((cell_idx, i), [])
                        for tag in tags:
                            if tag != wave:
                                raise HazardError(
                                    f"T1 cell {cell_idx} input {i} holds a "
                                    f"wave-{tag} pulse at readout of wave {wave}"
                                )
                    out = state.readout(t)
                    emissions.append(((cell_idx, "S"), wave, out["S"]))
                    emissions.append(((cell_idx, "C"), wave, out["C"]))
                    emissions.append(((cell_idx, "Q"), wave, out["Q"]))
                    continue
                # GATE or DFF: gather inputs
                values = []
                for i in range(len(cell.fanins)):
                    tags = buffers.pop((cell_idx, i), [])
                    bit = 0
                    for tag in tags:
                        if tag != wave:
                            raise HazardError(
                                f"cell {cell_idx} fanin {i} holds a wave-{tag} "
                                f"pulse when firing wave {wave} at t={t}"
                            )
                        if bit:
                            raise HazardError(
                                f"cell {cell_idx} fanin {i}: duplicate pulse "
                                f"in one clock window (wave {wave})"
                            )
                        bit = 1
                    values.append(bit)
                if cell.kind is CellKind.DFF:
                    out_bit = values[0]
                else:
                    assert cell.op is not None
                    out_bit = eval_gate(cell.op, values, 1)
                emissions.append(((cell_idx, "out"), wave, out_bit))

            # deliver after all firings at this time step; asynchronous
            # splitters forward pulses within the same instant
            work = list(emissions)
            while work:
                sig, wave, bit = work.pop()
                for po_idx in po_of_signal.get(sig, ()):
                    po_out[wave][po_idx] = bit
                if not bit:
                    continue  # logic 0 = no pulse
                for consumer_idx, fanin_idx in consumers.get(sig, ()):
                    consumer = nl.cells[consumer_idx]
                    if consumer.kind is CellKind.SPLITTER:
                        work.append(((consumer_idx, "o0"), wave, bit))
                        work.append(((consumer_idx, "o1"), wave, bit))
                    elif consumer.kind is CellKind.T1:
                        # T pulse: feed the behavioural state machine now
                        t1_state[consumer_idx].pulse_t(t)
                        buffers[(consumer_idx, fanin_idx)].append(wave)
                    else:
                        buffers[(consumer_idx, fanin_idx)].append(wave)

        # leftover pulses mean a consumer never fired for them
        for (cell_idx, fanin_idx), tags in buffers.items():
            if tags:
                raise TimingError(
                    f"cell {cell_idx} fanin {fanin_idx} left with pulses "
                    f"{tags} after the run (missing firings)"
                )
        return StreamResult(po_out, num_waves, horizon)


def stream_compare(
    netlist: SFQNetlist,
    logic_pos_fn,
    waves: Sequence[Sequence[int]],
) -> StreamResult:
    """Run the stream and compare each wave against a golden model.

    ``logic_pos_fn(wave_bits) -> list of PO bits``.  Raises
    :class:`SimulationError` on the first mismatch.
    """
    result = PulseSimulator(netlist).run(waves)
    for w, vec in enumerate(waves):
        expect = logic_pos_fn(list(vec))
        got = result.po_values[w]
        if list(expect) != list(got):
            raise SimulationError(
                f"wave {w}: netlist outputs {got} != golden {list(expect)}"
            )
    return result
