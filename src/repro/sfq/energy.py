"""RSFQ energy and power estimation.

The paper motivates RSFQ by its "two to three orders of magnitude" power
advantage over CMOS (§I); this module quantifies mapped netlists with the
standard first-order RSFQ model (Krylov & Friedman, ref. [2]):

* **dynamic energy** — each Josephson junction dissipates
  ``E_sw ≈ I_c · Φ0`` per 2π phase slip (one pulse), where
  Φ0 = h/2e ≈ 2.068 mV·ps is the flux quantum.  Per clock cycle the
  switched-JJ count is the cell's JJ count times its switching activity
  (clock-driven JJs in clocked cells fire every cycle; data JJs fire with
  the data activity factor);
* **static power** — conventional RSFQ biases every JJ through a resistor
  from a common voltage rail: ``P_static ≈ V_bias · I_bias`` per JJ,
  which typically dominates total power (ERSFQ/eSFQ variants eliminate
  it; exposed as a model flag).

These are estimates for comparing mapping choices, not device-level
numbers; all constants are explicit and overridable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# NOTE: repro.metrics imports repro.sfq.cell_library, so importing it at
# module scope would make repro.sfq <-> repro.metrics circular; resolved
# lazily inside _cell_jj instead.
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.netlist import CellKind, SFQNetlist

#: flux quantum h/2e in webers (V·s)
PHI0_WB = 2.067833848e-15


@dataclass(frozen=True)
class EnergyModel:
    """First-order RSFQ energy parameters."""

    critical_current_ua: float = 100.0   # typical I_c
    bias_voltage_mv: float = 2.6         # common SFQ bias rail
    bias_fraction: float = 0.7           # I_b / I_c
    data_activity: float = 0.5           # average data switching factor
    ersfq: bool = False                  # True: no static bias dissipation

    @property
    def switch_energy_j(self) -> float:
        """Energy of one JJ switching event: I_c · Φ0."""
        return self.critical_current_ua * 1e-6 * PHI0_WB

    @property
    def static_power_per_jj_w(self) -> float:
        if self.ersfq:
            return 0.0
        return (
            self.bias_voltage_mv
            * 1e-3
            * self.critical_current_ua
            * 1e-6
            * self.bias_fraction
        )


@dataclass(frozen=True)
class EnergyReport:
    """Energy/power summary of one netlist at one clock frequency."""

    total_jj: int
    clocked_jj: int
    dynamic_energy_per_cycle_j: float
    static_power_w: float
    frequency_ghz: float

    @property
    def dynamic_power_w(self) -> float:
        return self.dynamic_energy_per_cycle_j * self.frequency_ghz * 1e9

    @property
    def total_power_w(self) -> float:
        return self.dynamic_power_w + self.static_power_w

    def summary(self) -> str:
        return (
            f"{self.total_jj} JJ total ({self.clocked_jj} in clocked cells); "
            f"E/cycle = {self.dynamic_energy_per_cycle_j * 1e18:.1f} aJ; "
            f"at {self.frequency_ghz:g} GHz: dynamic "
            f"{self.dynamic_power_w * 1e6:.2f} uW + static "
            f"{self.static_power_w * 1e6:.2f} uW = "
            f"{self.total_power_w * 1e6:.2f} uW"
        )


def _cell_jj(netlist: SFQNetlist, library: CellLibrary) -> tuple:
    total = 0
    clocked = 0
    for cell in netlist.cells:
        if cell.kind in (CellKind.PI, CellKind.CONST0, CellKind.CONST1):
            continue
        if cell.kind is CellKind.DFF:
            jj = library.dff.jj_count
        elif cell.kind is CellKind.T1:
            jj = library.t1.jj_count
        elif cell.kind is CellKind.SPLITTER:
            jj = library.splitter.jj_count
        else:
            jj = library.gate_area(cell.op, len(cell.fanins))
        total += jj
        if cell.clocked:
            clocked += jj
    from repro.metrics import count_splitters

    total += count_splitters(netlist) * library.splitter.jj_count
    return total, clocked


def estimate_energy(
    netlist: SFQNetlist,
    frequency_ghz: float = 20.0,
    model: Optional[EnergyModel] = None,
    library: Optional[CellLibrary] = None,
) -> EnergyReport:
    """Estimate per-cycle energy and power of a mapped netlist.

    Clocked-cell JJs are charged at full activity (the clock pulse always
    arrives); asynchronous JJs (splitters, JTL) and the data-dependent
    share switch with ``model.data_activity``.
    """
    model = model or EnergyModel()
    library = library or default_library()
    total, clocked = _cell_jj(netlist, library)
    async_jj = total - clocked
    # within a clocked cell, roughly half the JJs belong to the clock path
    clock_path = 0.5 * clocked
    data_path = 0.5 * clocked + async_jj
    switched = clock_path + model.data_activity * data_path
    return EnergyReport(
        total_jj=total,
        clocked_jj=clocked,
        dynamic_energy_per_cycle_j=switched * model.switch_energy_j,
        static_power_w=total * model.static_power_per_jj_w,
        frequency_ghz=frequency_ghz,
    )
