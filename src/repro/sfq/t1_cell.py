"""Pulse-level behavioural model of the T1 flip-flop (Fig. 1 of the paper).

The cell is a two-state superconductive loop (Polonsky et al., ref. [5]):

* internal state 0: bias current flows towards JQ;
* a pulse on **T** in state 0 switches JQ → emits **Q*** and flips to 1;
* a pulse on **T** in state 1 switches JC → emits **C*** and flips to 0;
* a pulse on **R** in state 1 switches JS → emits **S** and resets to 0;
* a pulse on **R** in state 0 is rejected by JR (no output).

Used as a full adder (Fig. 1c): the three operand pulses a, b, c are
staggered onto T at phases φ0 < φ1 < φ2 and the clock is the R pulse of
the next stage.  Over one cycle with k operand pulses the cell emits

* Q* on every 0→1 toggle  → at least one Q* pulse iff k ≥ 1 (**OR3**);
* C* on every 1→0 toggle  → at least one C* pulse iff k ≥ 2 (**MAJ3**
  for k ≤ 3);
* S on the readout iff the final state is 1, i.e. k odd (**XOR3**).

The raw Q*/C* ports can pulse twice per cycle (k = 3 gives Q* at the 1st
and 3rd toggle); the synchronous view (what the mapped netlist uses)
merges them — any pulse during the cycle counts as logic 1.  Negated
outputs attach clocked inverters downstream.

Two overlapping T pulses merge into one electrically — the model raises
:class:`~repro.errors.HazardError`, which is exactly the data hazard the
paper's multiphase staggering (eq. 3-5) exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.errors import HazardError


@dataclass(frozen=True)
class T1Event:
    """One pulse observed at a T1 port."""

    time: int
    port: str  # "T", "R" (inputs) or "S", "C*", "Q*" (outputs)


@dataclass
class T1CellState:
    """Behavioural T1-FF instance."""

    state: int = 0  # loop state: 0 or 1
    last_t_time: Optional[int] = None
    toggles_since_readout: int = 0
    history: List[T1Event] = field(default_factory=list)

    def pulse_t(self, time: int) -> List[str]:
        """A pulse on the toggle input; returns emitted output ports."""
        if self.last_t_time is not None and time == self.last_t_time:
            raise HazardError(
                f"two T pulses overlap at time {time}: pulses merge and the "
                "count is lost (violates the paper's input-staggering rule)"
            )
        self.last_t_time = time
        self.history.append(T1Event(time, "T"))
        self.toggles_since_readout += 1
        if self.state == 0:
            self.state = 1
            self.history.append(T1Event(time, "Q*"))
            return ["Q*"]
        self.state = 0
        self.history.append(T1Event(time, "C*"))
        return ["C*"]

    def pulse_r(self, time: int) -> List[str]:
        """A pulse on the reset/readout input; returns emitted ports."""
        self.history.append(T1Event(time, "R"))
        outputs: List[str] = []
        if self.state == 1:
            outputs.append("S")
            self.history.append(T1Event(time, "S"))
        self.state = 0
        self.toggles_since_readout = 0
        self.last_t_time = None
        return outputs

    # -- synchronous (cycle) view --------------------------------------------

    def readout(self, time: int) -> Dict[str, int]:
        """Clocked readout: the logic values the mapped netlist consumes.

        Must be called where the R pulse would arrive.  Returns the three
        synchronous outputs for the pulses seen this cycle.
        """
        count = self.toggles_since_readout
        self.pulse_r(time)
        return {
            "S": count % 2,          # XOR3
            "C": 1 if count >= 2 else 0,  # MAJ3 for <= 3 inputs
            "Q": 1 if count >= 1 else 0,  # OR3
        }


def simulate_pulse_train(
    events: Sequence[Tuple[int, str]]
) -> List[T1Event]:
    """Replay a (time, port) pulse train; returns the full event history.

    ``port`` is "T" or "R".  This regenerates Fig. 1b: feed the figure's
    stimulus and observe the S/C*/Q* responses.
    """
    cell = T1CellState()
    for time, port in sorted(events, key=lambda e: e[0]):
        if port == "T":
            cell.pulse_t(time)
        elif port == "R":
            cell.pulse_r(time)
        else:
            raise ValueError(f"unknown input port {port!r}")
    return cell.history


def full_adder_cycle(a: int, b: int, c: int) -> Tuple[int, int, int]:
    """One full-adder cycle through the behavioural cell.

    Pulses for the asserted operands arrive at staggered times 0, 1, 2;
    the readout (R) arrives at time 3.  Returns (sum, carry, or3).
    """
    cell = T1CellState()
    for t, bit in enumerate((a, b, c)):
        if bit:
            cell.pulse_t(t)
    out = cell.readout(3)
    return out["S"], out["C"], out["Q"]


def waveform_ascii(
    history: Sequence[T1Event],
    t_max: Optional[int] = None,
    ports: Sequence[str] = ("T", "R", "S", "C*", "Q*"),
) -> str:
    """ASCII rendering of a pulse history (the Fig. 1b reproduction)."""
    if not history:
        return "(no events)"
    horizon = t_max if t_max is not None else max(e.time for e in history) + 1
    lines = []
    for port in ports:
        times = {e.time for e in history if e.port == port}
        cells = "".join("|" if t in times else "_" for t in range(horizon + 1))
        lines.append(f"{port:>3} {cells}")
    scale = "    " + "".join(
        str(t % 10) for t in range(horizon + 1)
    )
    return "\n".join(lines + [scale])
