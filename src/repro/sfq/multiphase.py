"""Multiphase clocking algebra (eq. 1 of the paper and the DFF-count rules).

An n-phase system has clock signals t_0..t_{n-1}; a clocked element g has
phase φ(g) and epoch S(g), combined into the *stage*

    σ(g) = n · S(g) + φ(g).

Throughput is one wave per cycle: every clocked element fires once per
cycle at its phase.  A pulse produced by a driver at stage σ_d must be
consumed within n stages, otherwise the *next* wave's pulse catches up —
hence a producer→consumer stage gap g needs ⌈g/n⌉ − 1 path-balancing DFFs
(evenly reachable chain positions σ_d + n, σ_d + 2n, ...).  With n = 1
this degenerates to the classical g − 1 full path balancing.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import TimingError


def stage_of(epoch: int, phase: int, n_phases: int) -> int:
    """σ = n·S + φ (eq. 1)."""
    if not 0 <= phase < n_phases:
        raise TimingError(f"phase {phase} out of range for n={n_phases}")
    return n_phases * epoch + phase


def phase_of(stage: int, n_phases: int) -> int:
    """φ(g) from a stage."""
    return stage % n_phases


def epoch_of(stage: int, n_phases: int) -> int:
    """S(g) from a stage."""
    return stage // n_phases


def depth_cycles(max_stage: int, n_phases: int) -> int:
    """Circuit depth in clock cycles: ⌈σ_max / n⌉."""
    return math.ceil(max_stage / n_phases) if max_stage > 0 else 0


def edge_dffs(gap: int, n_phases: int) -> int:
    """Path-balancing DFFs on one producer→consumer edge of stage gap *gap*."""
    if gap < 1:
        raise TimingError(f"stage gap must be >= 1, got {gap}")
    return (gap - 1) // n_phases


def edge_dffs_unchecked(gap: int, n_phases: int) -> int:
    """`edge_dffs` without the gap validation, for hot loops.

    ``(gap - 1) // n == ceil(gap / n) - 1`` for every gap >= 1; the caller
    must have established feasibility (gap >= 1) already.
    """
    return (gap - 1) // n_phases


def net_dffs(gaps: Sequence[int], n_phases: int) -> int:
    """DFFs for one net whose fanout edges have the given gaps.

    The chain is shared: DFFs sit at σ_d + n, σ_d + 2n, ...; every
    consumer taps the latest chain element within n stages, so the net
    cost is the maximum edge cost.
    """
    if not gaps:
        return 0
    return max(edge_dffs(g, n_phases) for g in gaps)


def chain_stages(driver_stage: int, longest_gap: int, n_phases: int) -> List[int]:
    """Stages of the shared DFF chain serving a net.

    Chain element j sits at σ_d + (j+1)·n; the chain is long enough that
    the farthest consumer (at σ_d + longest_gap) still has a source within
    n stages.
    """
    count = net_dffs([longest_gap], n_phases) if longest_gap >= 1 else 0
    return [driver_stage + (j + 1) * n_phases for j in range(count)]


def source_stage_for(
    driver_stage: int, chain: Sequence[int], consumer_stage: int, n_phases: int
) -> int:
    """Stage of the element (driver or chain DFF) feeding a consumer.

    Picks the latest element whose stage is strictly below the consumer's;
    raises when even the last chain element is more than n stages away.
    """
    candidates = [driver_stage] + [s for s in chain if s < consumer_stage]
    src = max(candidates)
    if consumer_stage - src > n_phases:
        raise TimingError(
            f"no chain element within {n_phases} stages of consumer at "
            f"{consumer_stage} (closest: {src})"
        )
    if consumer_stage <= src:
        raise TimingError("consumer not after its source")
    return src


def validate_stage(stage: int) -> None:
    if stage < 0:
        raise TimingError(f"negative stage {stage}")
