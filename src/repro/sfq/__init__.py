"""SFQ technology substrate: cells, netlists, clocking, simulation."""

from repro.sfq.cell_library import (
    CellLibrary,
    CellSpec,
    DFF_SPEC,
    SPLITTER_SPEC,
    T1_SPEC,
    conventional_full_adder_area,
    default_library,
)
from repro.sfq.mapping import decompose_to_library, map_to_sfq
from repro.sfq.multiphase import (
    chain_stages,
    depth_cycles,
    edge_dffs,
    epoch_of,
    net_dffs,
    phase_of,
    source_stage_for,
    stage_of,
)
from repro.sfq.energy import EnergyModel, EnergyReport, estimate_energy
from repro.sfq.netlist import OUT, Cell, CellKind, SFQNetlist, Signal, T1_PORTS
from repro.sfq.splitters import (
    SplitterReport,
    materialize_splitters,
    resolve_clocked_driver,
    splitter_count,
)
from repro.sfq.simulator import PulseSimulator, StreamResult, stream_compare
from repro.sfq.t1_cell import (
    T1CellState,
    T1Event,
    full_adder_cycle,
    simulate_pulse_train,
    waveform_ascii,
)
from repro.sfq.timing import TimingReport, assert_timing, check_timing

__all__ = [
    "Cell",
    "CellKind",
    "CellLibrary",
    "CellSpec",
    "DFF_SPEC",
    "EnergyModel",
    "EnergyReport",
    "SplitterReport",
    "estimate_energy",
    "materialize_splitters",
    "resolve_clocked_driver",
    "splitter_count",
    "OUT",
    "PulseSimulator",
    "SFQNetlist",
    "SPLITTER_SPEC",
    "Signal",
    "StreamResult",
    "T1CellState",
    "T1Event",
    "T1_PORTS",
    "T1_SPEC",
    "TimingReport",
    "assert_timing",
    "chain_stages",
    "check_timing",
    "conventional_full_adder_area",
    "decompose_to_library",
    "default_library",
    "depth_cycles",
    "edge_dffs",
    "epoch_of",
    "full_adder_cycle",
    "map_to_sfq",
    "net_dffs",
    "phase_of",
    "simulate_pulse_train",
    "source_stage_for",
    "stage_of",
    "stream_compare",
    "waveform_ascii",
]
