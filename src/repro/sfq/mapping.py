"""Technology mapping: logic network → SFQ netlist.

The mapping is structural and 1:1 (the gate alphabet *is* the cell
library): every logic node becomes one clocked cell, T1 blocks become T1
cells, and the five T1 taps become port reads (S/C/Q) plus an explicit
clocked inverter for the negated taps (C*/Q* + NOT, as in §I-A of the
paper).  BUFs map to free JTL wiring (pass-through).

Constant fanins are rejected — run :func:`repro.network.cleanup.strash`
first; n-ary gates wider than the library are decomposed by
:func:`decompose_to_library`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.network.gates import Gate, is_t1_tap
from repro.network.logic_network import CONST0, CONST1, LogicNetwork
from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.netlist import OUT, SFQNetlist, Signal


def decompose_to_library(
    net: LogicNetwork, library: Optional[CellLibrary] = None
) -> LogicNetwork:
    """Rewrite n-ary AND/OR/XOR wider than the library into balanced trees.

    Inverted gates (NAND/NOR/XNOR) decompose into the positive tree with
    the top node inverted-kind when available.
    """
    library = library or default_library()
    out = LogicNetwork(net.name)
    mapping: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for pi in net.pis:
        mapping[pi] = out.add_pi(net.get_name(pi))

    base_of = {
        Gate.NAND: Gate.AND,
        Gate.NOR: Gate.OR,
        Gate.XNOR: Gate.XOR,
    }

    def tree(gate: Gate, fins: List[int], max_arity: int) -> int:
        while len(fins) > max_arity:
            grouped: List[int] = []
            for i in range(0, len(fins), max_arity):
                chunk = fins[i : i + max_arity]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(out.add_gate(gate, chunk))
            fins = grouped
        return out.add_gate(gate, fins) if len(fins) > 1 else fins[0]

    for node in net.topological_order():
        if node in mapping:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue
        fins = [mapping[f] for f in net.fanins[node]]
        if g is Gate.T1_CELL:
            mapping[node] = out.add_t1_cell(*fins)
        elif is_t1_tap(g):
            mapping[node] = out.add_t1_tap(fins[0], g)
        elif g in (Gate.AND, Gate.OR, Gate.XOR) and not library.has_cell(
            g, len(fins)
        ):
            mapping[node] = tree(g, fins, library.max_arity(g))
        elif g in base_of and not library.has_cell(g, len(fins)):
            base = base_of[g]
            top = tree(base, fins, library.max_arity(base))
            mapping[node] = out.add_not(top)
        else:
            mapping[node] = out.add_gate(g, tuple(fins))
    for po, name in zip(net.pos, net.po_names):
        out.add_po(mapping[po], name)
    return out


def map_to_sfq(
    net: LogicNetwork,
    n_phases: int = 1,
    library: Optional[CellLibrary] = None,
) -> Tuple[SFQNetlist, Dict[int, Signal]]:
    """Map a logic network onto an :class:`SFQNetlist`.

    Returns ``(netlist, node_to_signal)`` where ``node_to_signal`` gives
    the netlist signal carrying each live logic node's value.
    """
    library = library or default_library()
    netlist = SFQNetlist(net.name, n_phases=n_phases)
    sig: Dict[int, Signal] = {}

    for pi in net.pis:
        sig[pi] = (netlist.add_pi(net.get_name(pi)), OUT)

    order = net.topological_order()
    used = _used_nodes(net)
    for node in order:
        if node in sig or node not in used:
            continue
        g = net.gates[node]
        if g is Gate.PI:
            continue
        if g in (Gate.CONST0, Gate.CONST1):
            continue  # only referenced constants raise below
        fins = net.fanins[node]
        for f in fins:
            if f in (CONST0, CONST1):
                raise MappingError(
                    f"node {node} has constant fanin; run strash() before mapping"
                )
        if g is Gate.BUF:
            sig[node] = sig[fins[0]]  # free JTL
            continue
        if g is Gate.T1_CELL:
            a, b, c = (sig[f] for f in fins)
            cell = netlist.add_t1(a, b, c, name=net.get_name(node))
            sig[node] = (cell, "S")  # placeholder; taps select real ports
            continue
        if is_t1_tap(g):
            cell = sig[fins[0]][0]
            if g is Gate.T1_S:
                sig[node] = (cell, "S")
            elif g is Gate.T1_C:
                sig[node] = (cell, "C")
            elif g is Gate.T1_Q:
                sig[node] = (cell, "Q")
            elif g is Gate.T1_CN:
                inv = netlist.add_gate(Gate.NOT, [(cell, "C")])
                sig[node] = (inv, OUT)
            else:  # T1_QN
                inv = netlist.add_gate(Gate.NOT, [(cell, "Q")])
                sig[node] = (inv, OUT)
            continue
        spec = library.cell_for(g, len(fins))  # raises if unmappable
        assert spec.clocked
        cell = netlist.add_gate(
            g, [sig[f] for f in fins], name=net.get_name(node)
        )
        sig[node] = (cell, OUT)

    const_cells: Dict[int, Signal] = {}
    for po, name in zip(net.pos, net.po_names):
        if po in (CONST0, CONST1):
            if po not in const_cells:
                const_cells[po] = (netlist.add_const(po == CONST1), OUT)
            netlist.add_po(const_cells[po], name)
            continue
        netlist.add_po(sig[po], name)
    return netlist, sig


def _used_nodes(net: LogicNetwork) -> set:
    """Nodes reachable from POs (plus PIs)."""
    from repro.network.traversal import transitive_fanin

    used = set(transitive_fanin(net, net.pos))
    used.update(net.pis)
    return used
