"""Explicit splitter-tree materialisation.

SFQ pulses cannot drive more than one input: a net with f consumers needs
a tree of f − 1 one-to-two splitter cells.  The metric layer counts them
combinatorially (:func:`repro.metrics.count_splitters`); this pass makes
them *physical*: every multi-consumer signal is rewritten through a
balanced binary splitter tree, after which each signal drives exactly one
input.

Splitters are asynchronous (no clock, no stage); timing and simulation
treat them as transparent.  Materialisation is therefore purely
structural — it never changes DFF counts, stages or functionality — and
is validated against the combinatorial formula in the tests.

Run it after DFF insertion when a physical-design-ready netlist is
needed (e.g. for the DOT export or splitter-depth analysis)::

    report = materialize_splitters(netlist)
    report.splitters_added   # == the f-1 formula over the pre-pass nets
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import NetworkError
from repro.sfq.netlist import CellKind, OUT, SFQNetlist, Signal


@dataclass
class SplitterReport:
    """Result of one materialisation pass."""

    splitters_added: int = 0
    max_tree_depth: int = 0
    trees: Dict[Signal, int] = field(default_factory=dict)  # root sig -> size


def _consumer_slots(netlist: SFQNetlist) -> Dict[Signal, List[Tuple[int, int]]]:
    """signal -> [(cell, fanin index)] plus PO slots as (-1, po index)."""
    out: Dict[Signal, List[Tuple[int, int]]] = {}
    for cell in netlist.cells:
        for i, sig in enumerate(cell.fanins):
            out.setdefault(sig, []).append((cell.index, i))
    for po_idx, (sig, _name) in enumerate(netlist.pos):
        out.setdefault(sig, []).append((-1, po_idx))
    return out


def materialize_splitters(netlist: SFQNetlist) -> SplitterReport:
    """Rewrite every multi-consumer net through a balanced splitter tree."""
    report = SplitterReport()
    if any(c.kind is CellKind.SPLITTER for c in netlist.cells):
        raise NetworkError("splitters already materialised")
    slots = _consumer_slots(netlist)
    for sig in sorted(slots):
        consumers = slots[sig]
        if len(consumers) < 2:
            continue
        # build a balanced binary tree producing len(consumers) outputs
        outputs: List[Signal] = [sig]
        depth = 0
        while len(outputs) < len(consumers):
            outputs.sort()  # deterministic
            src = outputs.pop(0)
            idx = netlist.add_splitter(src)
            outputs.append((idx, "o0"))
            outputs.append((idx, "o1"))
            report.splitters_added += 1
        # wire each consumer to one tree output
        tree_depth = _tree_depth(netlist, outputs, sig)
        report.max_tree_depth = max(report.max_tree_depth, tree_depth)
        report.trees[sig] = len(consumers) - 1
        for (cons, slot_idx), out_sig in zip(consumers, outputs):
            if cons == -1:
                netlist.replace_po(slot_idx, out_sig)
            else:
                netlist.replace_fanin(cons, slot_idx, out_sig)
    return report


def _tree_depth(netlist: SFQNetlist, leaves: List[Signal], root: Signal) -> int:
    depth = 0
    for sig in leaves:
        d = 0
        cur = sig
        while cur != root and netlist.cells[cur[0]].kind is CellKind.SPLITTER:
            cur = netlist.cells[cur[0]].fanins[0]
            d += 1
        depth = max(depth, d)
    return depth


def resolve_clocked_driver(netlist: SFQNetlist, sig: Signal) -> Signal:
    """Walk back through asynchronous splitters to the clocked source."""
    seen = 0
    while netlist.cells[sig[0]].kind is CellKind.SPLITTER:
        sig = netlist.cells[sig[0]].fanins[0]
        seen += 1
        if seen > len(netlist.cells):  # pragma: no cover - defensive
            raise NetworkError("splitter cycle")
    return sig


def splitter_count(netlist: SFQNetlist) -> int:
    """Number of physical splitter cells in the netlist."""
    return sum(1 for c in netlist.cells if c.kind is CellKind.SPLITTER)
