"""Static timing-rule checker for staged SFQ netlists.

Validates the invariants that phase assignment (eq. 3) and DFF insertion
(eq. 5) must establish; the pulse-level simulator then re-checks them
dynamically.  Rules, for an n-phase netlist:

R1. every clocked cell has a stage, PIs are at stage 0;
R2. every producer→consumer edge has stage gap in [1, n] — beyond n the
    next wave's pulse overwrites the loop before readout;
R3. the three fanins of a T1 cell arrive at pairwise distinct stages
    (otherwise T pulses overlap and merge);
R4. DFF fanin gaps obey R2 (chains correctly spaced).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import TimingError
from repro.sfq.netlist import CellKind, SFQNetlist


@dataclass
class TimingReport:
    """Outcome of a check; ``violations`` empty means clean."""

    n_phases: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            preview = "; ".join(self.violations[:5])
            raise TimingError(
                f"{len(self.violations)} timing violations: {preview}"
            )


def check_timing(netlist: SFQNetlist) -> TimingReport:
    """Run all rules; returns a report (does not raise)."""
    n = netlist.n_phases
    report = TimingReport(n)
    v = report.violations

    for cell in netlist.cells:
        if cell.kind is CellKind.PI:
            if cell.stage is None or not 0 <= cell.stage < n:
                v.append(
                    f"PI cell {cell.index} stage {cell.stage} outside "
                    f"epoch 0 (must be one of phases 0..{n - 1})"
                )
            continue
        if not cell.clocked:
            continue
        if cell.stage is None:
            v.append(f"{cell.kind.name} cell {cell.index} has no stage")
            continue
        if cell.stage < 0:
            v.append(f"cell {cell.index} has negative stage {cell.stage}")

    from repro.sfq.splitters import resolve_clocked_driver

    for cell in netlist.cells:
        if not cell.clocked or cell.stage is None:
            continue
        for sig in cell.fanins:
            driver = netlist.driver_cell(resolve_clocked_driver(netlist, sig))
            if driver.stage is None:
                continue  # reported above
            gap = cell.stage - driver.stage
            if gap < 1:
                v.append(
                    f"edge {driver.index}->{cell.index}: gap {gap} < 1"
                )
            elif gap > n:
                v.append(
                    f"edge {driver.index}->{cell.index}: gap {gap} > n={n} "
                    "(pulse overwritten by next wave)"
                )

    for cell in netlist.t1_cells():
        if cell.stage is None:
            continue
        arrivals = []
        for sig in cell.fanins:
            driver = netlist.driver_cell(resolve_clocked_driver(netlist, sig))
            if driver.stage is not None:
                arrivals.append(driver.stage)
        if len(set(arrivals)) != len(arrivals):
            v.append(
                f"T1 cell {cell.index}: fanin arrival stages {arrivals} "
                "not pairwise distinct (eq. 5 violated)"
            )
    return report


def assert_timing(netlist: SFQNetlist) -> None:
    """Run all timing rules and raise on the first violation set."""
    check_timing(netlist).raise_if_failed()
