"""RSFQ cell library: JJ cost model.

The paper reports area as a Josephson-junction (JJ) count, i.e. a linear
sum of per-cell costs taken from an RSFQ standard cell library (ref. [6],
Yorozu et al.).  That library is not redistributable, so this module
defines an explicit, documented cost model pinned to the paper's two
anchor facts:

* the T1-based full adder costs **29 JJ** (§I-A);
* 29 JJ is **~40 %** of the conventional XOR3 + MAJ3 + splitters
  realisation (\"60 % fewer\"), which therefore costs ~72-75 JJ.

Individual 2-input clocked gate costs follow the usual RSFQ ballpark
(8-14 JJ); DFF = 6 JJ and splitter = 3 JJ are the standard textbook
numbers (Krylov & Friedman).  Absolute JJ counts in Table I depend on
these constants, but every ratio the paper reports is pinned by the
anchors above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import MappingError
from repro.network.gates import Gate


@dataclass(frozen=True)
class CellSpec:
    """One library cell."""

    name: str
    jj_count: int
    clocked: bool
    description: str = ""


#: cost of one path-balancing / staggering D flip-flop
DFF_SPEC = CellSpec("DFF", 6, True, "destructive-readout D flip-flop")
#: cost of one splitter (1-to-2 pulse fanout element)
SPLITTER_SPEC = CellSpec("SPLIT", 3, False, "pulse splitter")
#: Josephson transmission line segment (wiring buffer); free in our model
JTL_SPEC = CellSpec("JTL", 0, False, "JTL wiring (not charged)")
#: the extended T1 flip-flop configured as a multi-output adder cell
T1_SPEC = CellSpec(
    "T1",
    29,
    True,
    "T1 flip-flop full-adder configuration (S/C/Q synchronous outputs)",
)


class CellLibrary:
    """Maps (gate kind, arity) to a :class:`CellSpec`."""

    def __init__(
        self,
        gate_cells: Dict[Tuple[Gate, int], CellSpec],
        dff: CellSpec = DFF_SPEC,
        splitter: CellSpec = SPLITTER_SPEC,
        t1: CellSpec = T1_SPEC,
        jtl: CellSpec = JTL_SPEC,
    ):
        self.gate_cells = dict(gate_cells)
        self.dff = dff
        self.splitter = splitter
        self.t1 = t1
        self.jtl = jtl

    def cell_for(self, gate: Gate, arity: int) -> CellSpec:
        spec = self.gate_cells.get((gate, arity))
        if spec is None:
            raise MappingError(
                f"no library cell for {gate.name} with {arity} fanins"
            )
        return spec

    def has_cell(self, gate: Gate, arity: int) -> bool:
        return (gate, arity) in self.gate_cells

    def gate_area(self, gate: Gate, arity: int) -> int:
        return self.cell_for(gate, arity).jj_count

    def max_arity(self, gate: Gate) -> int:
        arities = [a for (g, a) in self.gate_cells if g is gate]
        if not arities:
            raise MappingError(f"gate {gate.name} not in library")
        return max(arities)


def default_library() -> CellLibrary:
    """The cost model described in the module docstring."""
    cells = {
        (Gate.NOT, 1): CellSpec("NOT", 9, True, "clocked inverter"),
        (Gate.AND, 2): CellSpec("AND2", 10, True),
        (Gate.AND, 3): CellSpec("AND3", 16, True),
        (Gate.OR, 2): CellSpec("OR2", 12, True),
        (Gate.OR, 3): CellSpec("OR3", 18, True),
        (Gate.XOR, 2): CellSpec("XOR2", 11, True),
        (Gate.XOR, 3): CellSpec("XOR3", 30, True, "compound 3-input XOR"),
        (Gate.NAND, 2): CellSpec("NAND2", 13, True),
        (Gate.NOR, 2): CellSpec("NOR2", 14, True),
        (Gate.XNOR, 2): CellSpec("XNOR2", 13, True),
        (Gate.MAJ3, 3): CellSpec("MAJ3", 36, True, "compound 3-input majority"),
    }
    return CellLibrary(cells)


def conventional_full_adder_area(lib: Optional[CellLibrary] = None) -> int:
    """Area of the conventional FA: XOR3 + MAJ3 + 3 input splitters.

    With the default library this is 30 + 36 + 3*3 = 75 JJ, making the
    29-JJ T1 realisation ~39 % — the paper's \"40 % of the area\" /
    \"60 % fewer\" claim.
    """
    lib = lib or default_library()
    return (
        lib.gate_area(Gate.XOR, 3)
        + lib.gate_area(Gate.MAJ3, 3)
        + 3 * lib.splitter.jj_count
    )
