"""Clock distribution network synthesis and accounting.

The paper (like most SFQ mapping papers) reports logic + path-balancing
area only; the clock network is a constant factor left to physical
design.  This module makes that factor measurable: in an n-phase system
every clocked cell must receive one of n phase-shifted clock pulse
streams, each distributed by a binary splitter tree from its phase
source.

For a phase with s sinks the tree needs s − 1 splitters and has depth
⌈log2 s⌉; each tree level adds JTL delay, reported as a skew-depth
estimate.  ``clock_network_area`` can be added to the logic area for a
"physical" Table-I variant (see the optional columns in
``repro.metrics``-level helpers below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sfq.cell_library import CellLibrary, default_library
from repro.sfq.netlist import CellKind, SFQNetlist


@dataclass(frozen=True)
class PhaseTree:
    """Clock tree of one phase."""

    phase: int
    sinks: int
    splitters: int
    depth: int


@dataclass
class ClockPlan:
    """Clock networks of all phases of one netlist."""

    n_phases: int
    trees: List[PhaseTree] = field(default_factory=list)

    @property
    def total_splitters(self) -> int:
        return sum(t.splitters for t in self.trees)

    @property
    def total_sinks(self) -> int:
        return sum(t.sinks for t in self.trees)

    @property
    def max_depth(self) -> int:
        return max((t.depth for t in self.trees), default=0)

    def area_jj(self, library: Optional[CellLibrary] = None) -> int:
        library = library or default_library()
        return self.total_splitters * library.splitter.jj_count

    def summary(self) -> str:
        per_phase = ", ".join(
            f"φ{t.phase}:{t.sinks} sinks/{t.splitters} spl" for t in self.trees
        )
        return (
            f"{self.n_phases}-phase clock network: {self.total_sinks} sinks, "
            f"{self.total_splitters} splitters "
            f"(max tree depth {self.max_depth}); {per_phase}"
        )


def plan_clock_network(netlist: SFQNetlist) -> ClockPlan:
    """Plan the per-phase clock splitter trees for a staged netlist.

    Every clocked cell (gates, T1 cells, DFFs) is a sink of the tree of
    its phase φ = σ mod n.  Cells must already carry stages.
    """
    n = netlist.n_phases
    sinks: Dict[int, int] = {p: 0 for p in range(n)}
    for cell in netlist.cells:
        if not cell.clocked:
            continue
        assert cell.stage is not None, "stage assignment must run first"
        sinks[cell.stage % n] += 1
    trees = []
    for phase in range(n):
        s = sinks[phase]
        trees.append(
            PhaseTree(
                phase=phase,
                sinks=s,
                splitters=max(0, s - 1),
                depth=math.ceil(math.log2(s)) if s > 1 else 0,
            )
        )
    return ClockPlan(n_phases=n, trees=trees)


def total_area_with_clock(
    netlist: SFQNetlist, library: Optional[CellLibrary] = None
) -> int:
    """Logic + balancing + splitter area *plus* the clock network."""
    from repro.metrics import area_jj

    library = library or default_library()
    return area_jj(netlist, library) + plan_clock_network(netlist).area_jj(
        library
    )


def clock_overhead_ratio(
    netlist: SFQNetlist, library: Optional[CellLibrary] = None
) -> float:
    """Clock-network share of the total (clock-inclusive) area."""
    from repro.metrics import area_jj

    library = library or default_library()
    logic = area_jj(netlist, library)
    clock = plan_clock_network(netlist).area_jj(library)
    return clock / (logic + clock) if (logic + clock) else 0.0
