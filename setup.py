"""Legacy installer shim for tooling that still invokes ``setup.py``.

Canonical package metadata (name, version, entry points, python_requires)
lives in ``pyproject.toml``; setuptools reads it from there, so nothing
may be redeclared here without creating a conflict.
"""

from setuptools import setup

setup()
