"""Strict-JSON contract for the benchmark report writers.

``BENCH_*.json`` files are consumed by CI artifacts and external
tooling; they must parse under a strict JSON reader (no ``Infinity`` /
``NaN`` tokens, which Python's default ``json.dumps`` happily emits for
non-finite floats).
"""

import json
import math
from pathlib import Path

import pytest

from repro.io.json_report import (
    dump_json_report,
    dumps_json_report,
    sanitize_report,
    strict_loads,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestSanitize:
    def test_infinity_becomes_null_with_flag(self):
        out = sanitize_report({"final_cost": float("inf"), "other": 1.5})
        assert out == {"final_cost": None, "final_cost_finite": False,
                       "other": 1.5}

    def test_negative_infinity_and_nan(self):
        out = sanitize_report({"a": float("-inf"), "b": float("nan")})
        assert out["a"] is None and out["a_finite"] is False
        assert out["b"] is None and out["b_finite"] is False

    def test_nested_structures(self):
        out = sanitize_report(
            {"runs": [{"cost": float("inf")}, {"cost": 2.0}],
             "trace": [1.0, float("inf"), 3.0]}
        )
        assert out["runs"][0] == {"cost": None, "cost_finite": False}
        assert out["runs"][1] == {"cost": 2.0}
        assert out["trace"] == [1.0, None, 3.0]

    def test_existing_flag_not_clobbered(self):
        out = sanitize_report({"cost": float("inf"), "cost_finite": True})
        assert out["cost"] is None
        # the explicit (if inconsistent) flag wins over the synthesized one
        assert out["cost_finite"] is True

    def test_finite_payload_unchanged(self):
        payload = {"a": 1, "b": [1.5, "x", None], "c": {"d": True}}
        assert sanitize_report(payload) == payload

    def test_dumps_is_strict(self):
        text = dumps_json_report({"cost": float("inf")})
        assert "Infinity" not in text
        strict_loads(text)

    def test_strict_loads_rejects_infinity(self):
        with pytest.raises(ValueError):
            strict_loads('{"x": Infinity}')
        with pytest.raises(ValueError):
            strict_loads('{"x": NaN}')

    def test_dump_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        dump_json_report(path, {"score": float("-inf"), "n": 3})
        data = strict_loads(path.read_text())
        assert data == {"score": None, "score_finite": False, "n": 3}


class TestCommittedReports:
    @pytest.mark.parametrize(
        "name", sorted(p.name for p in REPO_ROOT.glob("BENCH_*.json"))
    )
    def test_roundtrips_through_strict_parser(self, name):
        text = (REPO_ROOT / name).read_text()
        data = strict_loads(text)  # raises on Infinity / NaN tokens
        # and a re-serialization stays strict
        json.dumps(data, allow_nan=False)

    def test_reports_exist(self):
        names = {p.name for p in REPO_ROOT.glob("BENCH_*.json")}
        assert {"BENCH_kernel.json", "BENCH_schedule.json",
                "BENCH_mapping.json"} <= names

    def test_no_nonfinite_floats_survive(self):
        for path in REPO_ROOT.glob("BENCH_*.json"):
            def walk(obj):
                if isinstance(obj, dict):
                    for v in obj.values():
                        walk(v)
                elif isinstance(obj, list):
                    for v in obj:
                        walk(v)
                elif isinstance(obj, float):
                    assert math.isfinite(obj), path
            walk(json.loads(path.read_text()))
