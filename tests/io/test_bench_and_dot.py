"""Tests for .bench round-trips and DOT export."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.errors import ParseError
from repro.io import (
    dumps_bench,
    dumps_netlist_dot,
    dumps_network_dot,
    loads_bench,
)
from repro.network import (
    Gate,
    LogicNetwork,
    check_equivalence,
    exhaustive_equivalence,
)


class TestBenchRoundTrip:
    def test_simple(self):
        net = LogicNetwork()
        a, b = net.add_pi("a"), net.add_pi("b")
        net.add_po(net.add_nand(a, b), "y")
        back = loads_bench(dumps_bench(net))
        assert exhaustive_equivalence(net, back).equivalent

    def test_adder(self):
        net = ripple_carry_adder(5)
        back = loads_bench(dumps_bench(net))
        assert check_equivalence(net, back).equivalent

    def test_t1_expansion(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi(x) for x in "abc")
        cell = net.add_t1_cell(a, b, c)
        net.add_po(net.add_t1_tap(cell, Gate.T1_S), "s")
        net.add_po(net.add_t1_tap(cell, Gate.T1_CN), "cn")
        back = loads_bench(dumps_bench(net))
        assert exhaustive_equivalence(net, back).equivalent

    def test_constants_rejected(self):
        net = LogicNetwork()
        net.add_pi("a")
        net.add_po(1, "one")
        with pytest.raises(ParseError):
            dumps_bench(net)


class TestBenchParsing:
    def test_iscas_style(self):
        text = """
# sample
INPUT(G1)
INPUT(G2)
OUTPUT(G3)
G3 = NAND(G1, G2)
"""
        net = loads_bench(text)
        assert len(net.pis) == 2
        from repro.network import simulate_exhaustive

        assert simulate_exhaustive(net)[0].bits == 0b0111

    def test_out_of_order(self):
        text = """
INPUT(a)
OUTPUT(y)
y = NOT(t)
t = BUFF(a)
"""
        net = loads_bench(text)
        from repro.network import simulate_exhaustive

        assert simulate_exhaustive(net)[0].bits == 0b01

    def test_dff_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_loop_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n")


class TestDot:
    def test_network_dot(self):
        net = ripple_carry_adder(2)
        text = dumps_network_dot(net)
        assert text.startswith("digraph")
        assert "->" in text
        assert "triangle" in text

    def test_netlist_dot_with_stages(self):
        from repro.core import FlowConfig, run_flow

        res = run_flow(ripple_carry_adder(3), FlowConfig(verify="none"))
        text = dumps_netlist_dot(res.netlist)
        assert "σ=" in text
        assert "rank=same" in text
        assert "T1" in text
