"""Tests for BLIF read/write round-trips."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.errors import ParseError
from repro.io import dumps_blif, loads_blif
from repro.network import (
    Gate,
    LogicNetwork,
    check_equivalence,
    exhaustive_equivalence,
)


def roundtrip(net):
    return loads_blif(dumps_blif(net))


class TestRoundTrip:
    def test_simple_gates(self):
        net = LogicNetwork("g")
        a, b = net.add_pi("a"), net.add_pi("b")
        net.add_po(net.add_and(a, b), "y_and")
        net.add_po(net.add_or(a, b), "y_or")
        net.add_po(net.add_xor(a, b), "y_xor")
        net.add_po(net.add_nand(a, b), "y_nand")
        net.add_po(net.add_nor(a, b), "y_nor")
        net.add_po(net.add_xnor(a, b), "y_xnor")
        net.add_po(net.add_not(a), "y_not")
        back = roundtrip(net)
        assert exhaustive_equivalence(net, back).equivalent

    def test_maj3(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi(x) for x in "abc")
        net.add_po(net.add_maj3(a, b, c), "m")
        assert exhaustive_equivalence(net, roundtrip(net)).equivalent

    def test_adder(self):
        net = ripple_carry_adder(6)
        back = roundtrip(net)
        assert check_equivalence(net, back).equivalent
        assert back.name == net.name

    def test_t1_block_expanded_functionally(self):
        net = LogicNetwork("t1m")
        a, b, c = (net.add_pi(x) for x in "abc")
        cell = net.add_t1_cell(a, b, c)
        for tap in (Gate.T1_S, Gate.T1_C, Gate.T1_CN, Gate.T1_Q, Gate.T1_QN):
            net.add_po(net.add_t1_tap(cell, tap), f"o_{tap.name}")
        back = roundtrip(net)
        assert len(back.t1_cells()) == 0  # structural expansion
        assert exhaustive_equivalence(net, back).equivalent

    def test_constant_pos(self):
        net = LogicNetwork()
        net.add_pi("a")
        net.add_po(0, "zero")
        net.add_po(1, "one")
        back = roundtrip(net)
        assert exhaustive_equivalence(net, back).equivalent

    def test_po_names_preserved(self):
        net = ripple_carry_adder(3)
        back = roundtrip(net)
        assert back.po_names == net.po_names


class TestParsing:
    def test_dont_care_rows(self):
        text = """
.model m
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
"""
        net = loads_blif(text)
        from repro.network import simulate_exhaustive, TruthTable

        tt = simulate_exhaustive(net)[0]
        expect = TruthTable.from_function(
            lambda a, b, c: bool(a or (b and c)), 3
        )
        assert tt == expect

    def test_inverted_cover(self):
        text = """
.model m
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        net = loads_blif(text)
        from repro.network import simulate_exhaustive

        tt = simulate_exhaustive(net)[0]
        assert tt.bits == 0b0111  # NAND

    def test_out_of_order_names(self):
        text = """
.model m
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
"""
        net = loads_blif(text)
        from repro.network import simulate_exhaustive

        assert simulate_exhaustive(net)[0].bits == 0b01

    def test_latch_rejected(self):
        with pytest.raises(ParseError):
            loads_blif(".model m\n.latch a b\n.end\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(ParseError):
            loads_blif(".model m\n.inputs a\n.outputs nope\n.end\n")

    def test_bad_cover_row(self):
        with pytest.raises(ParseError):
            loads_blif(
                ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n"
            )
