"""Property tests: BLIF and .bench round-trips on random networks."""

import pytest

from repro.io import dumps_bench, dumps_blif, loads_bench, loads_blif
from repro.network import check_equivalence
from tests.test_flow_fuzz import random_network


@pytest.mark.parametrize("seed", range(10))
def test_blif_roundtrip_random(seed):
    net = random_network(seed, num_pis=5, num_gates=25)
    back = loads_blif(dumps_blif(net))
    assert len(back.pis) == len(net.pis)
    assert len(back.pos) == len(net.pos)
    res = check_equivalence(net, back, complete=True)
    assert res.equivalent, (seed, res.counterexample)


@pytest.mark.parametrize("seed", range(10))
def test_bench_roundtrip_random(seed):
    net = random_network(50 + seed, num_pis=5, num_gates=25)
    back = loads_bench(dumps_bench(net))
    res = check_equivalence(net, back, complete=True)
    assert res.equivalent, (seed, res.counterexample)


@pytest.mark.parametrize("seed", range(5))
def test_blif_of_t1_network_random(seed):
    """Networks containing T1 blocks export functionally."""
    from repro.core.t1_detection import detect_and_replace
    from repro.network.cleanup import strash

    net = random_network(100 + seed, num_pis=6, num_gates=40, p_wide=0.5)
    work, _ = strash(net)
    replaced = detect_and_replace(work).network
    back = loads_blif(dumps_blif(replaced))
    res = check_equivalence(net, back, complete=True)
    assert res.equivalent, (seed, res.counterexample)


@pytest.mark.parametrize("seed", range(5))
def test_cross_format(seed):
    """BLIF -> network -> bench -> network stays equivalent."""
    net = random_network(200 + seed, num_pis=4, num_gates=15)
    via_blif = loads_blif(dumps_blif(net))
    via_both = loads_bench(dumps_bench(via_blif))
    res = check_equivalence(net, via_both, complete=True)
    assert res.equivalent, seed
