"""Tests for the Verilog writers (structural output sanity)."""

import re

import pytest

from repro.circuits import ripple_carry_adder
from repro.core import FlowConfig, run_flow
from repro.io.verilog import dumps_sfq_verilog, dumps_verilog
from repro.network import Gate, LogicNetwork


class TestLogicVerilog:
    def test_module_structure(self):
        net = ripple_carry_adder(3)
        text = dumps_verilog(net)
        assert text.startswith("module adder")
        assert text.rstrip().endswith("endmodule")
        assert "input a0" in text.replace(",", "").replace("  ", " ")
        assert "xor" in text

    def test_maj3_as_assign(self):
        net = LogicNetwork("m")
        a, b, c = (net.add_pi(x) for x in "abc")
        net.add_po(net.add_maj3(a, b, c), "y")
        text = dumps_verilog(net)
        assert "(a & b) | (a & c) | (b & c)" in text

    def test_t1_taps_emitted(self):
        net = LogicNetwork("t")
        a, b, c = (net.add_pi(x) for x in "abc")
        cell = net.add_t1_cell(a, b, c)
        net.add_po(net.add_t1_tap(cell, Gate.T1_S), "s")
        net.add_po(net.add_t1_tap(cell, Gate.T1_CN), "cn")
        text = dumps_verilog(net)
        assert "xor" in text
        assert "_maj" in text
        assert "not" in text

    def test_constants(self):
        net = LogicNetwork("k")
        net.add_pi("a")
        net.add_po(1, "one")
        text = dumps_verilog(net)
        assert "assign one = 1'b1;" in text

    def test_weird_names_escaped(self):
        net = LogicNetwork("weird")
        a = net.add_pi("data[3]")
        net.add_po(net.add_not(a), "out.q")
        text = dumps_verilog(net)
        assert "\\data[3] " in text
        assert "\\out.q " in text

    def test_balanced_parens_and_semicolons(self):
        net = ripple_carry_adder(4)
        text = dumps_verilog(net)
        assert text.count("(") == text.count(")")
        for line in text.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith(("module", "endmodule", "//")):
                # statement lines end in ';'; port-list lines end in '(' or
                # are the continuation/closing of the header
                ok = stripped.endswith((";", "(", ");")) or "," in stripped
                assert ok, line


class TestSfqVerilog:
    def _netlist(self):
        return run_flow(
            ripple_carry_adder(4),
            FlowConfig(n_phases=4, use_t1=True, verify="none"),
        ).netlist

    def test_cells_instantiated(self):
        text = dumps_sfq_verilog(self._netlist())
        assert "SFQ_T1" in text
        assert "SFQ_DFF" in text
        assert ".clk(clk)" in text

    def test_stage_comments(self):
        text = dumps_sfq_verilog(self._netlist())
        assert re.search(r"// stage \d+", text)

    def test_one_instance_per_clocked_cell(self):
        nl = self._netlist()
        text = dumps_sfq_verilog(nl)
        t1_count = sum(1 for _ in nl.t1_cells())
        dff_count = nl.num_dffs()
        assert text.count("SFQ_T1 ") == t1_count
        assert text.count("SFQ_DFF ") == dff_count

    def test_splitters_emitted_when_materialised(self):
        from repro.sfq import materialize_splitters, splitter_count

        nl = self._netlist()
        materialize_splitters(nl)
        text = dumps_sfq_verilog(nl)
        assert text.count("SFQ_SPLIT ") == splitter_count(nl)
