"""Pipeline composition, shim equivalence and hook semantics."""

import pytest

from repro.circuits import build, ripple_carry_adder
from repro.core import FlowConfig, run_flow
from repro.errors import PipelineError, ReproError
from repro.pipeline import (
    BalancePass,
    DffInsertPass,
    FlowContext,
    IlpPhasePass,
    MapPass,
    Pass,
    Pipeline,
    SplitterPass,
    T1DetectPass,
)

STANDARD_NAMES = [
    "decompose", "t1_detect", "map_to_sfq", "phase_assign", "dff_insert",
    "verify_metrics",
]


class TestComposition:
    def test_standard_order(self):
        assert Pipeline.standard().names() == STANDARD_NAMES

    def test_standard_baseline_drops_detection(self):
        names = Pipeline.standard(n_phases=1, use_t1=False).names()
        assert names == [n for n in STANDARD_NAMES if n != "t1_detect"]

    def test_standard_optional_passes(self):
        names = Pipeline.standard(
            balance_network=True, materialize_splitters=True
        ).names()
        assert names.index("balance") == names.index("decompose") + 1
        assert names.index("materialize_splitters") == (
            names.index("dff_insert") + 1
        )

    def test_t1_needs_three_phases(self):
        with pytest.raises(ReproError):
            Pipeline.standard(n_phases=2, use_t1=True)

    def test_with_pass_append_before_after(self):
        pipe = Pipeline.standard()
        assert pipe.with_pass(BalancePass()).names()[-1] == "balance"
        assert pipe.with_pass(
            BalancePass(), before="t1_detect"
        ).names()[1] == "balance"
        assert pipe.with_pass(
            BalancePass(), after="decompose"
        ).names()[1] == "balance"
        with pytest.raises(PipelineError):
            pipe.with_pass(BalancePass(), before="decompose", after="decompose")

    def test_without_and_replace(self):
        pipe = Pipeline.standard()
        assert "t1_detect" not in pipe.without("t1_detect").names()
        swapped = pipe.replace("phase_assign", IlpPhasePass())
        assert swapped.names() == pipe.names()
        at = swapped.names().index("phase_assign")
        assert isinstance(swapped.passes[at], IlpPhasePass)

    def test_unknown_name_raises(self):
        pipe = Pipeline.standard()
        with pytest.raises(PipelineError):
            pipe.without("no_such_pass")
        with pytest.raises(PipelineError):
            pipe.replace("no_such_pass", BalancePass())
        with pytest.raises(PipelineError):
            pipe.with_pass(BalancePass(), after="no_such_pass")

    def test_duplicate_pass_name_rejected(self):
        pipe = Pipeline.standard()
        with pytest.raises(PipelineError):
            pipe.with_pass(MapPass(n_phases=2))

    def test_builder_is_immutable(self):
        pipe = Pipeline.standard()
        names = pipe.names()
        pipe.without("t1_detect")
        pipe.with_pass(BalancePass())
        pipe.replace("dff_insert", DffInsertPass(share_chains=False))
        pipe.with_hooks(on_pass_start=lambda ctx, p: None)
        assert pipe.names() == names
        assert pipe.hooks == ()

    def test_passes_satisfy_protocol(self):
        for p in Pipeline.standard(
            balance_network=True, materialize_splitters=True
        ).passes:
            assert isinstance(p, Pass)

    def test_custom_pass_object(self):
        class CountGates:
            name = "count_gates"

            def run(self, ctx):
                ctx.extras["gates"] = ctx.network.num_gates()
                return ctx

        ctx = (
            Pipeline.standard(use_t1=False, verify="none")
            .with_pass(CountGates(), after="decompose")
            .run(ripple_carry_adder(4))
        )
        assert ctx.extras["gates"] > 0


class TestShimEquivalence:
    """run_flow(net, cfg) must equal the equivalent pipeline, bit for bit."""

    CONFIGS = [
        FlowConfig(n_phases=4, use_t1=True, verify="cec"),
        FlowConfig(n_phases=1, use_t1=False, verify="none"),
        FlowConfig(n_phases=4, use_t1=False, verify="none"),
        FlowConfig(n_phases=3, use_t1=True, verify="none", sweeps=2),
        FlowConfig(n_phases=4, use_t1=True, verify="none",
                   share_chains=False, balance_network=True),
    ]

    @pytest.mark.parametrize("bench", ["adder", "c6288", "sin"])
    @pytest.mark.parametrize("cfg", CONFIGS)
    def test_metrics_identical(self, bench, cfg):
        net = build(bench, "ci")
        res = run_flow(net, cfg)
        ctx = Pipeline.from_config(cfg).run(net)
        assert ctx.metrics == res.metrics
        assert (ctx.t1_found, ctx.t1_used) == (res.t1_found, res.t1_used)
        assert ctx.verified == res.verified

    def test_every_registered_benchmark(self):
        """Pipeline.standard() == run_flow() on the whole registry."""
        from repro.circuits import names

        cfg = FlowConfig(verify="none")
        pipe = Pipeline.standard(verify="none")
        for bench in names():
            net = build(bench, "ci")
            assert pipe.run(net).metrics == run_flow(net, cfg).metrics, bench

    def test_to_result_round_trip(self):
        net = build("adder", "ci")
        cfg = FlowConfig(verify="cec")
        res = Pipeline.from_config(cfg).run(net).to_result(cfg)
        direct = run_flow(net, cfg)
        assert res.metrics == direct.metrics
        assert res.insertion.total == direct.insertion.total
        assert res.name == direct.name

    def test_standard_matches_from_config_defaults(self):
        assert Pipeline.standard().names() == (
            Pipeline.from_config(FlowConfig()).names()
        )


class TestExecution:
    def test_context_artifacts_and_timings(self):
        pipe = Pipeline.standard(verify="full")
        ctx = pipe.run(build("adder", "ci"))
        assert isinstance(ctx, FlowContext)
        assert set(ctx.timings) == set(pipe.names())
        assert all(t >= 0 for t in ctx.timings.values())
        assert ctx.runtime_s >= sum(ctx.timings.values()) * 0.5
        assert ctx.netlist is not None
        assert ctx.detection is not None
        assert ctx.insertion is not None
        assert ctx.verified is True
        assert len(ctx.events) >= len(pipe.names())

    def test_metrics_before_finalize_raises(self):
        pipe = Pipeline.standard().without("verify_metrics")
        ctx = pipe.run(build("adder", "ci"))
        with pytest.raises(PipelineError):
            _ = ctx.num_dffs

    def test_missing_map_pass_raises(self):
        pipe = Pipeline.standard(use_t1=False).without("map_to_sfq")
        with pytest.raises(PipelineError):
            pipe.run(ripple_carry_adder(4))

    def test_source_network_not_mutated(self):
        net = ripple_carry_adder(8)
        gates_before = net.num_gates()
        Pipeline.standard(verify="none").run(net)
        assert net.num_gates() == gates_before

    def test_splitter_pass_materializes(self):
        ctx = Pipeline.standard(
            use_t1=False, verify="none", materialize_splitters=True
        ).run(ripple_carry_adder(4))
        assert ctx.metrics.area_jj > 0


class TestHooks:
    def test_hook_invocation_order(self):
        calls = []
        pipe = Pipeline.standard(use_t1=False, verify="none").with_hooks(
            on_pass_start=lambda ctx, p: calls.append(("start", p.name)),
            on_pass_end=lambda ctx, p, dt: calls.append(("end", p.name, dt)),
        )
        pipe.run(ripple_carry_adder(4))
        names = pipe.names()
        assert [c[1] for c in calls[0::2]] == names  # starts, in order
        assert [c[1] for c in calls[1::2]] == names  # ends, in order
        assert all(c[0] == "start" for c in calls[0::2])
        assert all(c[0] == "end" and c[2] >= 0 for c in calls[1::2])

    def test_multiple_hooks_all_fire(self):
        seen_a, seen_b = [], []
        pipe = (
            Pipeline.standard(use_t1=False, verify="none")
            .with_hooks(on_pass_end=lambda ctx, p, dt: seen_a.append(p.name))
            .with_hooks(on_pass_end=lambda ctx, p, dt: seen_b.append(p.name))
        )
        pipe.run(ripple_carry_adder(4))
        assert seen_a == seen_b == pipe.names()

    def test_without_hooks(self):
        pipe = Pipeline.standard().with_hooks(
            on_pass_start=lambda ctx, p: None
        )
        assert pipe.without_hooks().hooks == ()
