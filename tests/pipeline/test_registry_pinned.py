"""Pinned Pipeline.standard() metrics over the full circuit registry.

These values were produced by the PR 3 flow and re-verified bit-identical
after the PR 4 scheduling-kernel refactor and the PR 5 mapping-kernel
refactor: the delta-evaluated heuristic reproduces the seed
scan-and-rebuild sweeps, and the table-driven NPN matching /
allocation-light cut enumeration / incremental candidate selection
reproduce the seed mapping front-end exactly — on every registered
circuit at both presets.  Any intentional scheduling or mapping change
must update these numbers (and should only ever lower the DFF counts).
"""

import pytest

from repro.circuits import build
from repro.circuits.registry import TABLE1_ORDER
from repro.pipeline import Pipeline

#: (gates, t1, dffs, splitters, area_jj, depth_cycles) per circuit
PINNED_CI = {
    "adder": (2, 15, 83, 2, 960, 5),
    "c7552": (118, 9, 31, 123, 2379, 3),
    "c6288": (65, 22, 28, 88, 1754, 4),
    "sin": (657, 14, 91, 664, 10000, 11),
    "voter": (33, 92, 56, 23, 3415, 8),
    "square": (98, 34, 80, 142, 2918, 6),
    "multiplier": (111, 46, 58, 158, 3309, 6),
    "log2": (375, 68, 205, 442, 8728, 22),
}

PINNED_PAPER = {
    "adder": (2, 127, 6047, 2, 39992, 33),
    "c7552": (444, 45, 754, 483, 13337, 9),
    "c6288": (407, 220, 313, 628, 14308, 10),
    "sin": (5418, 47, 634, 5452, 79663, 33),
    "voter": (55, 990, 640, 41, 33244, 13),
    "square": (1692, 1076, 3156, 2816, 75811, 25),
    "multiplier": (3026, 2201, 3761, 5228, 132722, 26),
    "log2": (2379, 752, 1921, 3182, 69441, 77),
}

#: the paper's Table I "found" / "used" columns per circuit (§II-A
#: detection), pinned since PR 5 so mapping-layer refactors prove
#: bit-identity of the whole candidate pipeline, not only the final
#: netlist metrics
FOUND_USED_CI = {
    "adder": (15, 15),
    "c7552": (9, 9),
    "c6288": (22, 22),
    "sin": (18, 14),
    "voter": (92, 92),
    "square": (34, 34),
    "multiplier": (46, 46),
    "log2": (68, 68),
}

FOUND_USED_PAPER = {
    "adder": (127, 127),
    "c7552": (45, 45),
    "c6288": (220, 220),
    "sin": (62, 47),
    "voter": (990, 990),
    "square": (1076, 1076),
    "multiplier": (2201, 2201),
    "log2": (752, 752),
}


def as_tuple(metrics):
    d = metrics.as_dict()
    return (
        d["gates"], d["t1"], d["dffs"], d["splitters"],
        d["area_jj"], d["depth_cycles"],
    )


class TestPinnedRegistryMetrics:
    def test_registry_is_fully_pinned(self):
        assert set(PINNED_CI) == set(TABLE1_ORDER)
        assert set(PINNED_PAPER) == set(TABLE1_ORDER)
        assert set(FOUND_USED_CI) == set(TABLE1_ORDER)
        assert set(FOUND_USED_PAPER) == set(TABLE1_ORDER)

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_ci_preset(self, name):
        ctx = Pipeline.standard(n_phases=4, use_t1=True, verify="none").run(
            build(name, "ci")
        )
        assert as_tuple(ctx.metrics) == PINNED_CI[name]
        assert (ctx.t1_found, ctx.t1_used) == FOUND_USED_CI[name]

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_paper_preset(self, name):
        ctx = Pipeline.standard(n_phases=4, use_t1=True, verify="none").run(
            build(name, "paper")
        )
        assert as_tuple(ctx.metrics) == PINNED_PAPER[name]
        assert (ctx.t1_found, ctx.t1_used) == FOUND_USED_PAPER[name]
