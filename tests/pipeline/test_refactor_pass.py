"""The optional refactor pass: opt-in rewriting inside a pipeline flow."""

from repro.circuits import build
from repro.pipeline import Pipeline, RefactorPass


class TestRefactorPass:
    def test_insertable_after_decompose(self):
        pipe = Pipeline.standard().with_pass(RefactorPass(), after="decompose")
        names = pipe.names()
        assert names.index("refactor") == names.index("decompose") + 1

    def test_flow_metrics_cec_validated(self):
        net = build("adder", "ci")
        pipe = Pipeline.standard(verify="cec").with_pass(
            RefactorPass(), after="decompose"
        )
        ctx = pipe.run(net)
        # the refactored flow must survive end-to-end CEC against the
        # source network and still produce real metrics
        assert ctx.verified is True
        assert ctx.metrics.area_jj > 0
        assert ctx.metrics.num_gates > 0
        assert "refactor" in ctx.timings
        assert any("refactor:" in e for e in ctx.events)

    def test_never_grows_the_network(self):
        net = build("adder", "ci")
        seen = {}

        def snap(ctx, p, _elapsed):
            seen[p.name] = ctx.network.num_gates()

        pipe = (
            Pipeline.standard(verify="cec")
            .with_pass(
                RefactorPass(rewrite_passes=2, priority="gain"),
                after="decompose",
            )
            .with_hooks(on_pass_end=snap)
        )
        ctx = pipe.run(net)
        assert ctx.verified is True
        assert seen["refactor"] <= seen["decompose"]
