"""run_many / run_table: ordering, parallel determinism, shim parity."""

import pytest

from repro.circuits import TABLE1_ORDER, build, ripple_carry_adder
from repro.core import run_baselines_and_t1
from repro.errors import PipelineError
from repro.pipeline import (
    Pipeline,
    baseline_pipelines,
    run_many,
    run_table,
    warm_worker,
)


class TestRunMany:
    def test_shared_pipeline_preserves_order(self):
        nets = [ripple_carry_adder(b) for b in (4, 6, 8)]
        contexts = run_many(nets, pipeline=Pipeline.standard(verify="none"))
        assert [c.name for c in contexts] == [n.name for n in nets]
        assert contexts[0].num_dffs < contexts[-1].num_dffs

    def test_mixed_items(self):
        net = ripple_carry_adder(4)
        t1 = Pipeline.standard(verify="none")
        base = t1.without("t1_detect")
        contexts = run_many([net, (net, base)], pipeline=t1)
        assert contexts[0].t1_used > 0
        assert contexts[1].t1_used == 0

    def test_missing_pipeline_raises(self):
        with pytest.raises(PipelineError):
            run_many([ripple_carry_adder(4)])

    def test_parallel_matches_serial(self):
        nets = [build(name, "ci") for name in ("adder", "c6288", "sin")]
        pipe = Pipeline.standard(verify="none")
        serial = run_many(nets, pipeline=pipe, jobs=1)
        parallel = run_many(nets, pipeline=pipe, jobs=2)
        for s, p in zip(serial, parallel):
            assert s.metrics == p.metrics
            assert s.events == p.events

    def test_parallel_drops_hooks_but_runs(self):
        seen = []
        pipe = Pipeline.standard(verify="none").with_hooks(
            on_pass_end=lambda ctx, p, dt: seen.append(p.name)
        )
        contexts = run_many(
            [ripple_carry_adder(4), ripple_carry_adder(6)],
            pipeline=pipe,
            jobs=2,
        )
        assert len(contexts) == 2
        assert all(c.metrics.area_jj > 0 for c in contexts)


class TestRunTable:
    def test_jobs2_table_identical_to_serial(self):
        """Acceptance: the Table-I preset gives the same Table at jobs=2."""
        serial = run_table(TABLE1_ORDER, preset="ci", jobs=1)
        parallel = run_table(TABLE1_ORDER, preset="ci", jobs=2)
        assert serial.format() == parallel.format()
        assert serial.as_dicts() == parallel.as_dicts()

    def test_row_matches_legacy_shim(self):
        net = build("adder", "ci")
        legacy = run_baselines_and_t1(net, n_phases=4, verify="none")
        table = run_table(["adder"], preset="ci")
        row = table.rows[0]
        assert row.dff_t1 == legacy["t1"].num_dffs
        assert row.area_1phi == legacy["1phi"].area_jj
        assert row.depth_nphi == legacy["nphi"].depth_cycles

    def test_progress_callback(self):
        seen = []
        run_table(["adder"], preset="ci", progress=seen.append)
        assert seen == ["adder"]


class TestBaselinePipelines:
    def test_labels_and_phases(self):
        pipes = baseline_pipelines(n_phases=4)
        assert set(pipes) == {"1phi", "nphi", "t1"}
        assert "t1_detect" in pipes["t1"].names()
        assert "t1_detect" not in pipes["1phi"].names()
        assert "t1_detect" not in pipes["nphi"].names()

    def test_shim_jobs_parity(self):
        net = build("c6288", "ci")
        serial = run_baselines_and_t1(net, verify="none")
        pooled = run_baselines_and_t1(net, verify="none", jobs=2)
        for label in serial:
            assert serial[label].metrics == pooled[label].metrics


class TestWarmWorker:
    def test_prewarms_npn_and_t1_tables(self):
        from repro.core.t1_matching import t1_match_table
        from repro.network import npn

        warm_worker()
        # k<=3 canon tables and the T1 match table are now materialised;
        # a second call is a cheap no-op against the same module caches
        for k in (0, 1, 2, 3):
            assert npn._npn_table(k) is npn._npn_table(k)
        assert t1_match_table() is t1_match_table()
        warm_worker()

    def test_pool_results_unchanged_by_warm_initializer(self):
        # run_many(jobs=2) routes through the warmed pool; parity with
        # serial execution proves warming is observable only in latency
        nets = [ripple_carry_adder(b) for b in (4, 6)]
        pipe = Pipeline.standard(verify="none")
        serial = run_many(nets, pipeline=pipe, jobs=1)
        pooled = run_many(nets, pipeline=pipe, jobs=2)
        for s, p in zip(serial, pooled):
            assert s.metrics == p.metrics


class TestStreaming:
    def test_on_result_streams_in_submission_order(self):
        order = []
        nets = [ripple_carry_adder(b) for b in (4, 6, 8)]
        run_many(
            nets,
            pipeline=Pipeline.standard(verify="none"),
            jobs=2,
            on_result=lambda i, ctx: order.append((i, ctx.name)),
        )
        assert order == [(i, n.name) for i, n in enumerate(nets)]

    def test_progress_fires_per_benchmark_with_jobs(self):
        seen = []
        run_table(["adder", "c6288"], preset="ci", jobs=2,
                  progress=seen.append)
        assert seen == ["adder", "c6288"]
