"""BatchJournal + journaled run_many/run_table: crash-safe checkpointing."""

import pytest

from repro.circuits import build, ripple_carry_adder
from repro.errors import PipelineError
from repro.io.json_report import strict_loads
from repro.pipeline import (
    BatchJournal,
    Pipeline,
    ResumedResult,
    pipeline_fingerprint,
    run_many,
)
from repro.pipeline.journal import JOURNAL_SCHEMA


class TestJournalFile:
    def test_header_written_on_create(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={"k": 1}):
            pass
        lines = path.read_text().splitlines()
        header = strict_loads(lines[0])
        assert header == {"schema": JOURNAL_SCHEMA, "meta": {"k": 1}}

    def test_record_and_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={"k": 1}) as j:
            j.record("a", {"x": 1})
            j.record("b", {"x": 2})
            assert j.written_count == 2
        with BatchJournal(path, meta={"k": 1}, resume=True) as j2:
            assert j2.completed("a") == {"x": 1}
            assert j2.completed("b") == {"x": 2}
            assert j2.completed("c") is None
            assert j2.completed_count == 2
            assert j2.written_count == 0

    def test_resume_meta_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={"preset": "ci"}):
            pass
        with pytest.raises(PipelineError, match="different sweep"):
            BatchJournal(path, meta={"preset": "paper"}, resume=True)

    def test_resume_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"some": "other file"}\n')
        with pytest.raises(PipelineError, match=JOURNAL_SCHEMA):
            BatchJournal(path, resume=True)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={}) as j:
            j.record("a", {"x": 1})
            j.record("b", {"x": 2})
        # simulate a crash mid-append: the final line is half-written
        text = path.read_text()
        path.write_text(text + '{"key": "c", "repo')
        with BatchJournal(path, meta={}, resume=True) as j2:
            assert j2.completed("a") == {"x": 1}
            assert j2.completed("b") == {"x": 2}
            assert j2.completed("c") is None

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={}) as j:
            j.record("a", {"x": 1})
        lines = path.read_text().splitlines()
        lines.insert(1, '{"key": "z", "repo')  # corrupt NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PipelineError, match="corrupt"):
            BatchJournal(path, meta={}, resume=True)

    def test_fresh_mode_truncates_existing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path, meta={}) as j:
            j.record("a", {"x": 1})
        with BatchJournal(path, meta={}) as j2:
            assert j2.completed("a") is None


class TestJournaledRunMany:
    def test_journal_records_every_job(self, tmp_path):
        path = tmp_path / "j.jsonl"
        nets = [ripple_carry_adder(b) for b in (4, 6)]
        pipe = Pipeline.standard(verify="none")
        with BatchJournal(path) as j:
            run_many(nets, pipeline=pipe, journal=j)
            assert j.written_count == 2
        assert len(path.read_text().splitlines()) == 3  # header + 2

    def test_resume_replays_bit_identically_and_skips_work(self, tmp_path):
        path = tmp_path / "j.jsonl"
        nets = [ripple_carry_adder(b) for b in (4, 6, 8)]
        pipe = Pipeline.standard(verify="none")
        with BatchJournal(path) as j:
            fresh = run_many(nets, pipeline=pipe, journal=j)
        with BatchJournal(path, resume=True) as j2:
            replayed = run_many(nets, pipeline=pipe, journal=j2)
            assert j2.written_count == 0  # nothing re-ran
        for orig, back in zip(fresh, replayed):
            assert isinstance(back, ResumedResult)
            assert back.num_dffs == orig.num_dffs
            assert back.area_jj == orig.metrics.area_jj
            assert back.depth_cycles == orig.metrics.depth_cycles
            assert back.t1_found == orig.t1_found
            assert back.t1_used == orig.t1_used

    def test_partial_resume_runs_only_missing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        nets = [ripple_carry_adder(b) for b in (4, 6)]
        pipe = Pipeline.standard(verify="none")
        with BatchJournal(path) as j:
            run_many(nets[:1], pipeline=pipe, journal=j)
        with BatchJournal(path, resume=True) as j2:
            results = run_many(nets, pipeline=pipe, journal=j2)
            assert j2.written_count == 1  # only the missing job ran
        assert isinstance(results[0], ResumedResult)
        assert not isinstance(results[1], ResumedResult)

    def test_on_result_fires_for_resumed_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        nets = [ripple_carry_adder(b) for b in (4, 6)]
        pipe = Pipeline.standard(verify="none")
        with BatchJournal(path) as j:
            run_many(nets, pipeline=pipe, journal=j)
        seen = []
        with BatchJournal(path, resume=True) as j2:
            run_many(nets, pipeline=pipe, journal=j2,
                     on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1]

    def test_journal_with_jobs2_matches_serial(self, tmp_path):
        nets = [build(name, "ci") for name in ("adder", "c6288")]
        pipe = Pipeline.standard(verify="none")
        with BatchJournal(tmp_path / "s.jsonl") as js:
            serial = run_many(nets, pipeline=pipe, jobs=1, journal=js)
        with BatchJournal(tmp_path / "p.jsonl") as jp:
            pooled = run_many(nets, pipeline=pipe, jobs=2, journal=jp)
        for s, p in zip(serial, pooled):
            assert s.metrics == p.metrics
        # same keys, same semantic records (timing fields vary per run)
        s_lines = (tmp_path / "s.jsonl").read_text().splitlines()
        p_lines = (tmp_path / "p.jsonl").read_text().splitlines()
        for s_line, p_line in zip(s_lines[1:], p_lines[1:]):
            s_rec, p_rec = strict_loads(s_line), strict_loads(p_line)
            assert s_rec["key"] == p_rec["key"]
            for field in ("benchmark", "metrics", "t1", "verified",
                          "events", "degraded"):
                assert s_rec["report"][field] == p_rec["report"][field]


class TestFingerprint:
    def test_same_flow_same_fingerprint(self):
        a = Pipeline.standard(verify="none")
        b = Pipeline.standard(verify="none")
        assert pipeline_fingerprint(a) == pipeline_fingerprint(b)

    def test_different_flow_different_fingerprint(self):
        a = Pipeline.standard(verify="none")
        b = Pipeline.standard(verify="none", n_phases=5)
        c = Pipeline.standard(verify="cec")
        assert pipeline_fingerprint(a) != pipeline_fingerprint(b)
        assert pipeline_fingerprint(a) != pipeline_fingerprint(c)

    def test_metricless_resumed_result_raises(self):
        broken = ResumedResult("k", {"no": "metrics"})
        with pytest.raises(PipelineError, match="no metrics"):
            broken.num_dffs
