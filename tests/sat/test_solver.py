"""Tests for the CDCL SAT solver, including brute-force cross-checks."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CnfBuilder, SatSolver, SatStatus, solve_cnf, to_dimacs


def brute_force_sat(num_vars, clauses):
    for bits in range(1 << num_vars):
        ok = True
        for clause in clauses:
            sat = False
            for lit in clause:
                v = abs(lit)
                val = (bits >> (v - 1)) & 1
                if (lit > 0) == bool(val):
                    sat = True
                    break
            if not sat:
                ok = False
                break
        if ok:
            return True
    return False


def check_model(clauses, model):
    for clause in clauses:
        assert any(
            (lit > 0) == model[abs(lit)] for lit in clause
        ), f"clause {clause} unsatisfied"


class TestBasics:
    def test_single_unit(self):
        status, model = solve_cnf(1, [[1]])
        assert status is SatStatus.SAT
        assert model[1] is True

    def test_contradiction(self):
        status, _ = solve_cnf(1, [[1], [-1]])
        assert status is SatStatus.UNSAT

    def test_simple_implication_chain(self):
        # x1 -> x2 -> x3, x1 true, x3 false: UNSAT
        clauses = [[-1, 2], [-2, 3], [1], [-3]]
        status, _ = solve_cnf(3, clauses)
        assert status is SatStatus.UNSAT

    def test_satisfiable_chain(self):
        clauses = [[-1, 2], [-2, 3], [1]]
        status, model = solve_cnf(3, clauses)
        assert status is SatStatus.SAT
        check_model(clauses, model)

    def test_tautology_clause_ignored(self):
        status, _ = solve_cnf(2, [[1, -1], [2]])
        assert status is SatStatus.SAT

    def test_pigeonhole_3_into_2_unsat(self):
        # var p_{i,j}: pigeon i in hole j; i in 0..2, j in 0..1
        def v(i, j):
            return 1 + i * 2 + j

        clauses = []
        for i in range(3):
            clauses.append([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-v(i1, j), -v(i2, j)])
        status, _ = solve_cnf(6, clauses)
        assert status is SatStatus.UNSAT


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_3cnf_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(2, 30)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            vars_ = rng.sample(range(1, num_vars + 1), min(size, num_vars))
            clauses.append([v if rng.random() < 0.5 else -v for v in vars_])
        expect = brute_force_sat(num_vars, clauses)
        status, model = solve_cnf(num_vars, clauses)
        assert (status is SatStatus.SAT) == expect
        if model is not None:
            check_model(clauses, model)


class TestCnfBuilder:
    def test_and_encoding(self):
        b = CnfBuilder()
        x, y = b.new_var(), b.new_var()
        out = b.add_and([x, y])
        for vx, vy in itertools.product((False, True), repeat=2):
            clauses = list(b.clauses)
            clauses.append([x] if vx else [-x])
            clauses.append([y] if vy else [-y])
            status, model = solve_cnf(b.num_vars, clauses)
            assert status is SatStatus.SAT
            assert model[out] == (vx and vy)

    def test_maj3_encoding(self):
        b = CnfBuilder()
        x, y, z = b.new_var(), b.new_var(), b.new_var()
        out = b.add_maj3(x, y, z)
        for vx, vy, vz in itertools.product((False, True), repeat=3):
            clauses = list(b.clauses)
            clauses.append([x] if vx else [-x])
            clauses.append([y] if vy else [-y])
            clauses.append([z] if vz else [-z])
            status, model = solve_cnf(b.num_vars, clauses)
            assert status is SatStatus.SAT
            assert model[out] == (int(vx) + int(vy) + int(vz) >= 2)

    def test_xor_encoding(self):
        b = CnfBuilder()
        x, y, z = b.new_var(), b.new_var(), b.new_var()
        out = b.add_xor([x, y, z])
        for vx, vy, vz in itertools.product((False, True), repeat=3):
            clauses = list(b.clauses)
            clauses.append([x] if vx else [-x])
            clauses.append([y] if vy else [-y])
            clauses.append([z] if vz else [-z])
            status, model = solve_cnf(b.num_vars, clauses)
            assert status is SatStatus.SAT
            assert model[abs(out)] == (
                (vx ^ vy ^ vz) if out > 0 else not (vx ^ vy ^ vz)
            )

    def test_dimacs_output(self):
        text = to_dimacs(2, [[1, -2], [2]])
        assert text.splitlines()[0] == "p cnf 2 2"
        assert "1 -2 0" in text


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_hypothesis_random_cnf(data):
    num_vars = data.draw(st.integers(2, 6))
    clauses = data.draw(
        st.lists(
            st.lists(
                st.integers(1, num_vars).map(
                    lambda v: v
                ).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=20,
        )
    )
    expect = brute_force_sat(num_vars, clauses)
    status, model = solve_cnf(num_vars, clauses)
    assert (status is SatStatus.SAT) == expect
    if model is not None:
        check_model(clauses, model)
