"""Public-API stability: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.network",
    "repro.sat",
    "repro.solvers",
    "repro.sfq",
    "repro.core",
    "repro.circuits",
    "repro.io",
    "repro.pipeline",
    "repro.pipeline.passes",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    exported = getattr(mod, "__all__", [])
    for name in exported:
        assert hasattr(mod, name) or name in (
            "run_flow", "FlowConfig", "FlowResult",  # lazy in repro/__init__
        ), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    mod = importlib.import_module(package)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name, None)
        if obj is None:
            continue
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{package}.{name}")
    assert not undocumented, undocumented


def test_lazy_top_level_attributes():
    import repro

    assert callable(repro.run_flow)
    assert repro.FlowConfig is not None
    assert callable(repro.run_many)
    assert repro.Pipeline.standard().names()
    assert "adder" in repro.benchmark_registry
    with pytest.raises(AttributeError):
        repro.nonexistent_attribute


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_cli_entry_point_configured():
    import tomllib

    with open("pyproject.toml", "rb") as fh:
        meta = tomllib.load(fh)
    assert meta["project"]["scripts"]["repro-flow"] == "repro.cli:main"
