"""repro.faults: plan grammar, trigger determinism, activation paths."""

import pytest

from repro import faults
from repro.errors import FaultInjected, FaultPlanError
from repro.faults import FaultPlan, FaultRule, parse_plan


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear()
    yield
    faults.clear()


class TestParsing:
    def test_full_grammar(self):
        plan = parse_plan("seed=7;worker.crash@nth=2;client.request@p=0.25,times=3")
        assert plan.seed == 7
        assert plan.rules[0] == FaultRule(point="worker.crash", nth=2)
        assert plan.rules[1] == FaultRule(
            point="client.request", p=0.25, times=3
        )

    def test_empty_segments_ignored(self):
        plan = parse_plan(";;worker.crash@nth=1;;")
        assert len(plan.rules) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "worker.crash",           # no trigger spec
            "worker.crash@",          # empty trigger spec
            "@nth=1",                 # empty point
            "worker.crash@nth=x",     # non-integer
            "worker.crash@nth=-1",    # negative
            "worker.crash@p=1.5",     # probability out of range
            "worker.crash@p=x",       # probability not a number
            "worker.crash@frob=1",    # unknown trigger
            "seed=x",                 # bad plan seed
            "justtext",               # not point@... nor seed=
        ],
    )
    def test_bad_plans_raise(self, bad):
        with pytest.raises(FaultPlanError):
            parse_plan(bad)


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = parse_plan("x@nth=3")
        assert [plan.should_fire("x") for _ in range(5)] == [
            False, False, True, False, False,
        ]

    def test_after_fires_every_later_hit(self):
        plan = parse_plan("x@after=2")
        assert [plan.should_fire("x") for _ in range(5)] == [
            False, False, True, True, True,
        ]

    def test_every_fires_periodically(self):
        plan = parse_plan("x@every=2")
        assert [plan.should_fire("x") for _ in range(6)] == [
            False, True, False, True, False, True,
        ]

    def test_times_caps_fires(self):
        plan = parse_plan("x@after=0,times=2")
        assert [plan.should_fire("x") for _ in range(5)] == [
            True, True, False, False, False,
        ]

    def test_p_is_deterministic_per_seed(self):
        plan_a = parse_plan("seed=5;x@p=0.5")
        plan_b = parse_plan("seed=5;x@p=0.5")
        seq_a = [plan_a.should_fire("x") for _ in range(64)]
        seq_b = [plan_b.should_fire("x") for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)  # a real Bernoulli stream
        plan_c = parse_plan("seed=6;x@p=0.5")
        seq_c = [plan_c.should_fire("x") for _ in range(64)]
        assert seq_a != seq_c

    def test_p_stream_isolated_per_point(self):
        # interleaving hits of another point must not shift x's stream
        plan_solo = parse_plan("seed=9;x@p=0.5")
        solo = [plan_solo.should_fire("x") for _ in range(32)]
        plan_mixed = parse_plan("seed=9;x@p=0.5;y@p=0.5")
        mixed = []
        for _ in range(32):
            plan_mixed.should_fire("y")
            mixed.append(plan_mixed.should_fire("x"))
        assert solo == mixed

    def test_wildcard_prefix(self):
        plan = parse_plan("worker.*@after=0")
        assert plan.should_fire("worker.crash")
        assert plan.should_fire("worker.hang")
        assert plan.should_fire("worker")
        assert not plan.should_fire("cache.get")

    def test_and_within_segment(self):
        plan = parse_plan("x@every=2,times=1")
        assert [plan.should_fire("x") for _ in range(6)] == [
            False, True, False, False, False, False,
        ]

    def test_counters(self):
        plan = parse_plan("x@nth=1")
        plan.should_fire("x")
        plan.should_fire("x")
        plan.should_fire("y")
        assert plan.hit_counts() == {"x": 2, "y": 1}
        assert plan.fire_counts() == {"x": 1}
        assert plan.total_fires() == 1


class TestModuleState:
    def test_noop_without_plan(self):
        assert faults.should_fire("anything") is False
        faults.fire("anything")  # must not raise
        assert faults.fire_counts() == {}

    def test_install_and_fire(self):
        faults.install("x@nth=1")
        with pytest.raises(FaultInjected) as exc_info:
            faults.fire("x", "boom")
        assert exc_info.value.point == "x"
        assert "boom" in str(exc_info.value)
        faults.fire("x")  # nth=1 consumed

    def test_injected_context_restores_previous(self):
        outer = faults.install("x@nth=99")
        with faults.injected("y@nth=1") as plan:
            assert isinstance(plan, FaultPlan)
            assert faults.active() is plan
        assert faults.active() is outer

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "x@nth=1")
        # force a fresh lazy env load
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ENV_LOADED", False)
        assert faults.should_fire("x") is True
        assert faults.should_fire("x") is False

    def test_clear_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "x@nth=1")
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ENV_LOADED", False)
        faults.clear()
        assert faults.should_fire("x") is False
