"""Tests for the FIR filter application circuit."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.fir import fir_filter, fir_reference
from repro.errors import ReproError
from repro.network import simulate_words


def bus_val(bits):
    v = 0
    for i, b in enumerate(bits):
        v |= b << i
    return v


def run_fir(net, samples, sample_bits):
    row = []
    for s in samples:
        row.extend((s >> i) & 1 for i in range(sample_bits))
    return bus_val(simulate_words(net, [row])[0])


class TestFunctional:
    @given(
        samples=st.lists(st.integers(0, 255), min_size=4, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, samples):
        coeffs = [3, 5, 7, 2]
        net = fir_filter(coeffs, sample_bits=8)
        got = run_fir(net, samples, 8)
        assert got == fir_reference(samples, coeffs, 8)

    def test_single_tap_identity(self):
        net = fir_filter([1], sample_bits=6)
        assert run_fir(net, [37], 6) == 37

    def test_power_of_two_coefficient_is_shift(self):
        net = fir_filter([8], sample_bits=6)
        assert run_fir(net, [37], 6) == 37 * 8

    def test_zero_coefficient_tap_ignored(self):
        coeffs = [0, 4]
        net = fir_filter(coeffs, sample_bits=4)
        rng = random.Random(0)
        for _ in range(10):
            s = [rng.randrange(16), rng.randrange(16)]
            assert run_fir(net, s, 4) == 4 * s[1]

    def test_max_values_no_overflow(self):
        coeffs = [7, 7, 7]
        net = fir_filter(coeffs, sample_bits=5)
        samples = [31, 31, 31]
        assert run_fir(net, samples, 5) == 21 * 31

    def test_empty_coeffs_rejected(self):
        with pytest.raises(ReproError):
            fir_filter([])

    def test_negative_coeffs_rejected(self):
        with pytest.raises(ReproError):
            fir_filter([1, -2])


class TestMapping:
    def test_t1_rich(self):
        """Shift-add trees are full-adder fabric: T1 detection bites."""
        from repro.core import FlowConfig, run_flow

        net = fir_filter([3, 5, 7, 2], sample_bits=6)
        res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="cec"))
        assert res.t1_used >= 5
        assert res.verified is True

    def test_streams_one_sample_per_cycle(self):
        from repro.core import FlowConfig, run_flow
        from repro.sfq import PulseSimulator

        coeffs = [3, 1, 2]
        bits = 4
        net = fir_filter(coeffs, sample_bits=bits)
        res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
        rng = random.Random(7)
        stimulus = []
        expect = []
        for _ in range(12):
            samples = [rng.randrange(1 << bits) for _ in coeffs]
            row = []
            for s in samples:
                row.extend((s >> i) & 1 for i in range(bits))
            stimulus.append(row)
            expect.append(fir_reference(samples, coeffs, bits))
        out = PulseSimulator(res.netlist).run(stimulus)
        got = [bus_val(v) for v in out.po_values]
        assert got == expect
