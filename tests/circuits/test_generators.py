"""Functional validation of every Table-I benchmark generator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    TABLE1_ORDER,
    braun_multiplier,
    build,
    c6288_like,
    c7552_like,
    cordic_sin_network,
    cordic_sin_reference,
    log2_network,
    log2_reference,
    majority_voter,
    names,
    sin_float_of_output,
    squarer,
)
from repro.errors import ReproError
from repro.network import depth, simulate_words


def bus_val(bits):
    v = 0
    for i, b in enumerate(bits):
        v |= b << i
    return v


def int_row(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestMultiplier:
    @given(a=st.integers(0, 1023), b=st.integers(0, 1023))
    @settings(max_examples=30, deadline=None)
    def test_product(self, a, b):
        net = braun_multiplier(10)
        out = simulate_words(net, [int_row(a, 10) + int_row(b, 10)])[0]
        assert bus_val(out) == a * b

    def test_truncated_width(self):
        net = braun_multiplier(6, out_bits=6)
        out = simulate_words(net, [int_row(37, 6) + int_row(21, 6)])[0]
        assert bus_val(out) == (37 * 21) % 64

    def test_c6288_is_16x16(self):
        net = c6288_like()
        assert len(net.pis) == 32
        assert len(net.pos) == 32


class TestSquarer:
    @given(a=st.integers(0, 2**10 - 1))
    @settings(max_examples=30, deadline=None)
    def test_square(self, a):
        net = squarer(10)
        out = simulate_words(net, [int_row(a, 10)])[0]
        assert bus_val(out) == a * a

    def test_bit1_constant_zero(self):
        # squares mod 4 are 0 or 1: output bit 1 folds to constant 0
        from repro.network.cleanup import strash

        net, _ = strash(squarer(6))
        assert net.pos[1] == 0  # CONST0 node after constant folding


class TestVoter:
    @pytest.mark.parametrize("n", [5, 15, 33])
    def test_majority(self, n):
        net = majority_voter(n)
        rng = random.Random(n)
        for _ in range(30):
            bits = [rng.randint(0, 1) for _ in range(n)]
            out = simulate_words(net, [bits])[0]
            assert out[0] == (1 if sum(bits) > n // 2 else 0)

    def test_exact_threshold(self):
        net = majority_voter(9)
        row = [1] * 5 + [0] * 4
        assert simulate_words(net, [row])[0][0] == 1
        row = [1] * 4 + [0] * 5
        assert simulate_words(net, [row])[0][0] == 0

    def test_balanced_depth(self):
        # Wallace-style popcount: depth must be logarithmic-ish, not linear
        net = majority_voter(99)
        assert depth(net) < 30


class TestCordicSin:
    @given(angle=st.integers(-(1 << 10), 1 << 10))
    @settings(max_examples=25, deadline=None)
    def test_circuit_matches_reference_bit_exactly(self, angle):
        width, iters = 13, 9
        net = cordic_sin_network(width=width, iterations=iters)
        word = angle & ((1 << width) - 1)
        out = simulate_words(net, [int_row(word, width)])[0]
        assert bus_val(out) == cordic_sin_reference(word, width, iters)

    def test_reference_approximates_sin(self):
        width, iters = 16, 12
        frac = width - 3
        for angle in (-1.2, -0.5, 0.0, 0.3, 0.9, 1.5):
            word = int(round(angle * (1 << frac))) & ((1 << width) - 1)
            got = sin_float_of_output(
                cordic_sin_reference(word, width, iters), width
            )
            assert abs(got - math.sin(angle)) < 0.01, angle


class TestLog2:
    @given(v=st.integers(1, 255))
    @settings(max_examples=30, deadline=None)
    def test_circuit_matches_reference(self, v):
        width, frac = 8, 4
        net = log2_network(width=width, frac_bits=frac)
        out = simulate_words(net, [int_row(v, width)])[0]
        f_got = bus_val(out[:frac])
        e_got = bus_val(out[frac:])
        e_ref, f_ref = log2_reference(v, width, frac)
        assert (e_got, f_got) == (e_ref, f_ref)

    def test_reference_approximates_log2(self):
        for v in (1, 2, 3, 7, 100, 255, 4000, 65535):
            e, f = log2_reference(v, 16, 8)
            approx = e + f / 256
            assert abs(approx - math.log2(v)) < 0.02, v

    def test_zero_input_all_zero(self):
        net = log2_network(width=8, frac_bits=4)
        out = simulate_words(net, [int_row(0, 8)])[0]
        assert all(b == 0 for b in out)

    def test_power_of_two_width_required(self):
        with pytest.raises(ValueError):
            log2_network(width=12)


class TestC7552:
    @given(
        a=st.integers(0, 255),
        b=st.integers(0, 255),
        sel=st.integers(0, 1),
        en=st.integers(0, 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_outputs(self, a, b, sel, en):
        net = c7552_like(8)
        row = int_row(a, 8) + int_row(b, 8) + [sel, en]
        out = dict(zip(net.po_names, simulate_words(net, [row])[0]))
        s = a + b
        for i in range(8):
            if en:
                assert out[f"y{i}"] == (s >> i) & 1
            else:
                bw = (a ^ b) if sel else (a & b)
                assert out[f"y{i}"] == (bw >> i) & 1
        assert out["cout"] == (en & (s >> 8))
        assert out["a_ge_b"] == (1 if a >= b else 0)
        assert out["a_eq_b"] == (1 if a == b else 0)
        assert out["parity"] == (
            (bin(a).count("1") + bin(b).count("1") + sel) & 1
        )


class TestRegistry:
    def test_all_names_build_ci(self):
        for name in names():
            net = build(name, "ci")
            assert net.num_gates() > 0
            assert net.name == name

    def test_table1_order(self):
        assert TABLE1_ORDER[0] == "adder"
        assert len(TABLE1_ORDER) == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            build("nonesuch")

    def test_unknown_preset_raises(self):
        with pytest.raises(ReproError):
            build("adder", "huge")

    def test_paper_preset_sizes(self):
        net = build("adder", "paper")
        assert len(net.pis) == 256
        net = build("voter", "paper")
        assert len(net.pis) == 1001
