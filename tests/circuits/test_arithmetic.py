"""Functional tests of the arithmetic building blocks (vs integer math)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    compare_ge_bus,
    ge_const,
    kogge_stone_adder,
    parity_tree,
    ripple_carry_adder,
)
from repro.network import LogicNetwork, simulate_words
from repro.network.logic_network import CONST1


def bus_val(bits):
    v = 0
    for i, b in enumerate(bits):
        v |= b << i
    return v


def int_row(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestAdders:
    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rca_is_integer_addition(self, a, b):
        net = ripple_carry_adder(16)
        out = simulate_words(net, [int_row(a, 16) + int_row(b, 16)])[0]
        assert bus_val(out) == a + b

    @given(a=st.integers(0, 2**12 - 1), b=st.integers(0, 2**12 - 1))
    @settings(max_examples=40, deadline=None)
    def test_kogge_stone_matches_rca(self, a, b):
        net = kogge_stone_adder(12)
        out = simulate_words(net, [int_row(a, 12) + int_row(b, 12)])[0]
        assert bus_val(out) == a + b

    def test_rca_structure_is_fa_chain(self):
        from repro.network import Gate

        net = ripple_carry_adder(8)
        kinds = [net.gate(n) for n in net.nodes() if net.is_logic(n)]
        assert kinds.count(Gate.MAJ3) == 7
        assert kinds.count(Gate.AND) == 1  # half adder carry

    def test_kogge_stone_depth_logarithmic(self):
        from repro.network import depth

        # 1 level of g/p + 5 prefix levels of OR(AND) + final sum XOR
        assert depth(kogge_stone_adder(32)) <= 1 + 2 * 5 + 1
        # far below the ripple-carry depth of 32
        assert depth(kogge_stone_adder(32)) < 16

    def test_adder_carry_out(self):
        net = ripple_carry_adder(4)
        out = simulate_words(net, [int_row(15, 4) + int_row(1, 4)])[0]
        assert out[-1] == 1  # cout
        assert bus_val(out[:-1]) == 0


class TestComparators:
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_compare_ge_bus(self, a, b):
        net = LogicNetwork()
        abus = [net.add_pi() for _ in range(8)]
        bbus = [net.add_pi() for _ in range(8)]
        net.add_po(compare_ge_bus(net, abus, bbus))
        out = simulate_words(net, [int_row(a, 8) + int_row(b, 8)])[0]
        assert out[0] == (1 if a >= b else 0)

    @given(a=st.integers(0, 255), t=st.integers(-5, 300))
    @settings(max_examples=60, deadline=None)
    def test_ge_const(self, a, t):
        net = LogicNetwork()
        abus = [net.add_pi() for _ in range(8)]
        net.add_po(ge_const(net, abus, t))
        out = simulate_words(net, [int_row(a, 8)])[0]
        assert out[0] == (1 if a >= t else 0), (a, t)

    def test_ge_const_extremes(self):
        net = LogicNetwork()
        abus = [net.add_pi() for _ in range(4)]
        assert ge_const(net, abus, 0) == CONST1
        assert ge_const(net, abus, 16) == 0  # CONST0


class TestParity:
    @given(v=st.integers(0, 2**10 - 1))
    @settings(max_examples=40, deadline=None)
    def test_parity_tree(self, v):
        net = LogicNetwork()
        bus = [net.add_pi() for _ in range(10)]
        net.add_po(parity_tree(net, bus))
        out = simulate_words(net, [int_row(v, 10)])[0]
        assert out[0] == bin(v).count("1") % 2

    def test_parity_tree_depth(self):
        from repro.network import depth

        net = LogicNetwork()
        bus = [net.add_pi() for _ in range(27)]
        net.add_po(parity_tree(net, bus))
        assert depth(net) == 3  # ternary tree of XOR3
