"""Chaos: journaled batch sweeps killed mid-flight and resumed.

``batch.abort`` fires in the collection loop *before* a fresh result
reaches the journal — the closest deterministic stand-in for a SIGKILL
landing between two checkpoints.  Resuming from the surviving journal
must reproduce the uninterrupted sweep exactly.
"""

import os

import pytest

from repro import faults
from repro.circuits import ripple_carry_adder
from repro.errors import FaultInjected
from repro.io.json_report import strict_loads
from repro.pipeline import (
    BatchJournal,
    Pipeline,
    ResumedResult,
    run_many,
    run_table,
)

#: the seeded schedules to replay (CI pins one seed per matrix job)
CHAOS_SEEDS = [
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "7,19").split(",")
    if s.strip()
]

TABLE_KWARGS = dict(benchmarks=["adder"], preset="ci", sweeps=2)


def _semantics(result):
    """(dffs, area, depth) regardless of fresh-vs-resumed result type."""
    if isinstance(result, ResumedResult):
        return (result.num_dffs, result.area_jj, result.depth_cycles)
    return (
        result.num_dffs,
        result.metrics.area_jj,
        result.metrics.depth_cycles,
    )


def test_kill_mid_table_then_resume_is_identical(tmp_path):
    clean = run_table(**TABLE_KWARGS)
    path = tmp_path / "journal.jsonl"
    # the sweep is 3 flows; die right before the third hits the journal
    with faults.injected("batch.abort@nth=3"):
        with pytest.raises(FaultInjected, match="batch killed"):
            run_table(**TABLE_KWARGS, journal_path=path)
    lines = path.read_text().splitlines()
    assert len(lines) == 3  # header + the 2 flows that survived
    keys = [strict_loads(line)["key"] for line in lines[1:]]
    assert len(set(keys)) == len(keys)

    resumed = run_table(**TABLE_KWARGS, journal_path=path, resume=True)
    assert resumed.format() == clean.format()
    # and the journal now holds the full sweep, no duplicates
    keys = [
        strict_loads(line)["key"]
        for line in path.read_text().splitlines()[1:]
    ]
    assert len(keys) == 3
    assert len(set(keys)) == 3


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_randomized_kills_converge_to_identical_table(tmp_path, seed):
    """Keep killing the sweep at seeded random checkpoints; every resume
    picks up the surviving prefix, and the final table is bit-identical
    to an uninterrupted run."""
    clean = run_table(**TABLE_KWARGS)
    path = tmp_path / "journal.jsonl"
    kills = 0
    # one continuing plan across all attempts: the Bernoulli stream keeps
    # advancing between kills, and times=2 bounds the loop deterministically
    with faults.injected(f"seed={seed};batch.abort@p=0.5,times=2"):
        resume = False
        while True:
            try:
                table = run_table(
                    **TABLE_KWARGS, journal_path=path, resume=resume
                )
                break
            except FaultInjected:
                kills += 1
                assert kills <= 2
                resume = True
    assert table.format() == clean.format()


def test_kill_mid_parallel_run_many_then_resume(tmp_path):
    nets = [ripple_carry_adder(b) for b in (4, 6, 8)]
    pipe = Pipeline.standard(verify="none")
    clean = run_many(nets, pipeline=pipe)

    path = tmp_path / "journal.jsonl"
    with BatchJournal(path) as journal:
        with faults.injected("batch.abort@nth=2"):
            with pytest.raises(FaultInjected):
                run_many(nets, pipeline=pipe, jobs=2, journal=journal)
        assert journal.written_count == 1  # one checkpoint survived

    with BatchJournal(path, resume=True) as journal:
        results = run_many(nets, pipeline=pipe, jobs=2, journal=journal)
        assert journal.written_count == 2  # only the missing jobs ran

    assert [_semantics(r) for r in results] == [
        _semantics(c) for c in clean
    ]
    keys = [
        strict_loads(line)["key"]
        for line in path.read_text().splitlines()[1:]
    ]
    assert len(keys) == 3
    assert len(set(keys)) == 3
