"""Chaos: the flow service under randomized seeded fault schedules.

Each test replays a fixed-seed Bernoulli fault schedule (crashes,
dropped pipes, broken cache, connection resets) against real jobs and
asserts the resilience invariants the service promises:

* **no lost jobs** — every accepted job reaches a terminal state;
* **bit-identical retries** — a job that succeeded after any number of
  crashes/retries reports exactly what a fault-free run reports;
* **clean drains** — shutdown under chaos still drains accepted work.
"""

import os
import signal

import pytest

from repro import faults
from repro.errors import ServiceError
from repro.service import (
    TERMINAL_STATES,
    FlowDaemon,
    FlowService,
    ServiceClient,
    registry_circuit,
)

#: the seeded schedules to replay (CI pins one seed per matrix job)
CHAOS_SEEDS = [
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "7,19").split(",")
    if s.strip()
]

ADDER = registry_circuit("adder", "ci")

#: distinct configs so the sweep exercises cache misses, not one key
CONFIGS = [
    {"verify": "none"},
    {"verify": "none", "sweeps": 2},
    {"verify": "none", "use_t1": False},
]

#: report fields that must be reproducible (timing fields vary per run)
SEMANTIC_FIELDS = ("benchmark", "metrics", "t1", "verified", "events",
                   "degraded")

#: the in-process schedule: worker crashes, pre-dispatch pipe drops,
#: flow errors, and a cache that fails open on both get and put.
#: (worker.hang is deliberately absent — hung jobs only die via the
#: per-job timeout, which would dominate the test's wall clock.)
SERVICE_PLAN = (
    "seed={seed};worker.crash@p=0.25;dispatch.pipe@p=0.15;"
    "worker.flow_error@p=0.1;cache.get@p=0.25;cache.put@p=0.25"
)


@pytest.fixture(scope="module")
def baseline():
    """Fault-free semantic reports, one per config, to diff chaos against."""
    service = FlowService(workers=2, queue_size=16, job_timeout_s=120.0)
    service.start()
    try:
        out = []
        for cfg in CONFIGS:
            status = service.submit({"circuit": ADDER, "config": cfg})
            job = service.wait(status["job_id"], timeout=120)
            assert job.state == "done"
            out.append(service.job_result(job.id))
        return out
    finally:
        service.stop(drain_timeout=10.0)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_no_lost_jobs_and_identical_done_results(seed, baseline):
    service = FlowService(
        workers=2, queue_size=32, job_timeout_s=120.0, job_max_attempts=3
    )
    service.start()
    stopped = False
    try:
        with faults.injected(SERVICE_PLAN.format(seed=seed)):
            submitted = []
            for i in range(9):
                cfg_index = i % len(CONFIGS)
                status = service.submit(
                    {"circuit": ADDER, "config": CONFIGS[cfg_index]}
                )
                submitted.append((cfg_index, status["job_id"]))

            for cfg_index, job_id in submitted:
                job = service.wait(job_id, timeout=120)
                # invariant 1: nothing is lost — every job terminates
                assert job.state in TERMINAL_STATES
                if job.state == "done":
                    # invariant 2: retried results are bit-identical
                    report = service.job_result(job_id)
                    for field in SEMANTIC_FIELDS:
                        assert report[field] == baseline[cfg_index][field]
                elif job.state == "failed":
                    assert "injected flow error" in job.error
                else:
                    assert job.state == "quarantined"
                    assert "all 3 attempts" in job.error

            metrics = service.metrics()
            assert metrics["jobs"]["submitted"] == 9
            assert metrics["workers"]["alive"] == 2
            # invariant 3: the drain completes despite in-flight chaos
            drained = service.stop(drain_timeout=30.0)
            stopped = True
            assert drained is True
    finally:
        if not stopped:
            service.stop(drain_timeout=10.0)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_http_end_to_end_survives_transport_chaos(seed, baseline):
    """Client retries + server retries compose: the caller still gets
    either the exact fault-free report or an explicit quarantine error —
    never a hang, never a wrong answer."""
    plan = (
        f"seed={seed};client.request@p=0.2;server.reject@p=0.1;"
        "worker.crash@p=0.2;cache.put@p=0.3"
    )
    daemon = FlowDaemon(port=0, workers=2, queue_size=16, job_timeout_s=120.0)
    daemon.start()
    stopped = False
    try:
        client = ServiceClient(daemon.url, retries=8, backoff_s=0.01)
        client.wait_ready(30.0)
        with faults.injected(plan):
            for i in range(6):
                cfg_index = i % len(CONFIGS)
                try:
                    report = client.submit_and_wait(
                        ADDER, config=CONFIGS[cfg_index], timeout=120.0
                    )
                except ServiceError as exc:
                    # a persistently-crashing job may quarantine; that is
                    # an explicit, attributed outcome — not a lost job
                    assert "quarantined" in str(exc)
                else:
                    for field in SEMANTIC_FIELDS:
                        assert report[field] == baseline[cfg_index][field]
            drained = daemon.stop()
            stopped = True
            assert drained is True
    finally:
        if not stopped:
            daemon.stop()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_sigterm_mid_chaos_drains_accepted_work(seed):
    daemon = FlowDaemon(port=0, workers=2, queue_size=16, job_timeout_s=120.0)
    daemon.start()
    old_handlers = daemon.install_signal_handlers()
    stopped = False
    try:
        client = ServiceClient(daemon.url, retries=8, backoff_s=0.01)
        client.wait_ready(30.0)
        with faults.injected(f"seed={seed};worker.crash@p=0.3"):
            job_ids = []
            for i in range(4):
                status = client.submit(
                    ADDER, config=CONFIGS[i % len(CONFIGS)]
                )
                job_ids.append(status["job_id"])
            os.kill(os.getpid(), signal.SIGTERM)
            assert daemon.wait_for_stop(timeout=10.0) is True
            drained = daemon.stop()
            stopped = True
            # every job accepted before the SIGTERM finished in the drain
            assert drained is True
            for job_id in job_ids:
                job = daemon.service.wait(job_id, timeout=1.0)
                assert job.state in TERMINAL_STATES
    finally:
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
        if not stopped:
            daemon.stop()
