"""Chaos-suite fixtures: hard wall-clock timeouts, no leaked fault plans.

Chaos tests drive the service and batch layers under randomized (but
seeded) fault schedules; the failure mode of a resilience bug is a hang
or a lost job.  The SIGALRM fixture guarantees a hang dies loudly with
a traceback (no pytest-timeout plugin in the image); the fault-plan
fixture guarantees one test's schedule never bleeds into the next.
Tune the limit with ``REPRO_TEST_TIMEOUT_S`` (seconds, default 180) and
the seed list with ``REPRO_CHAOS_SEEDS`` (comma-separated, default
``7,19`` — CI runs one seed per matrix job).
"""

import os
import signal

import pytest

from repro import faults

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "180"))


@pytest.fixture(autouse=True)
def hard_timeout():
    """Kill any test that wedges past the hard wall-clock limit."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TIMEOUT_S:g}s hard timeout "
            "(REPRO_TEST_TIMEOUT_S)"
        )

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    """A fault plan installed by one test must never outlive it."""
    yield
    faults.clear()
